"""Ablation: discriminating healthy from unhealthy nodes (Secs. 4, 9).

The purpose of the penalty/reward layer, measured: populations with one
intermittent (unhealthy) node plus external transients hitting all
nodes, replayed through three filters on identical health-vector
streams.  Expected shape: immediate isolation detects fastest but
sacrifices healthy nodes; p/r (and a matched α-count) detect the
unhealthy node reliably with no false isolations, p/r with the simpler
two-parameter tuning the paper argues for.
"""

from conftest import emit

from repro.analysis.reporting import render_table
from repro.experiments.discrimination import discrimination_study

REPETITIONS = 10


def run_study():
    return discrimination_study(repetitions=REPETITIONS)


def test_discrimination_filters(benchmark):
    summaries = benchmark.pedantic(run_study, rounds=1, iterations=1)
    rows = []
    for s in summaries:
        rows.append((
            s.filter_name,
            f"{100 * s.detection_rate:.0f}%",
            "-" if s.mean_detection_round is None
            else f"{s.mean_detection_round:.0f} rounds",
            f"{100 * s.false_positive_rate:.0f}%",
        ))
    text = render_table(
        ["filter", "unhealthy node detected", "mean time to isolation",
         "healthy nodes isolated"],
        rows,
        title=f"Discrimination study — 1 intermittent node + external "
              f"transients, {REPETITIONS} populations")
    emit("discrimination", text)

    by_name = {s.filter_name: s for s in summaries}
    pr = by_name["penalty/reward"]
    imm = by_name["immediate"]
    assert pr.detection_rate == 1.0
    assert pr.false_positive_rate == 0.0
    assert imm.false_positive_rate > 0.5
    assert imm.mean_detection_round < pr.mean_detection_round
