"""Figure 1: the protocol phase pipeline over consecutive rounds.

Fig. 1 illustrates how the phases of multiple interleaved protocol
instances share each execution of ``diag_i``: the syndrome formed at
round ``k`` (local detection of round ``k-1``) is disseminated, then
aggregated and analysed at round ``k+2``, diagnosing round ``k-1``.

This benchmark traces one instance end-to-end on the simulated cluster
and prints the pipeline table, verifying Lemma 1's round bookkeeping
(diagnosed round = analysis round - 3 with send alignment).
"""

from conftest import emit

from repro.analysis.reporting import render_table
from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster
from repro.faults.scenarios import SlotBurst

FAULT_ROUND = 6


def run_pipeline_trace():
    config = uniform_config(4, penalty_threshold=10 ** 6,
                            reward_threshold=10 ** 6)
    dc = DiagnosedCluster(config, seed=0)
    dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, FAULT_ROUND, 2, 1))
    dc.run_rounds(FAULT_ROUND + 6)

    rows = []
    for k in range(FAULT_ROUND, FAULT_ROUND + 4):
        syndrome = dc.trace.first("syndrome", node=1, round_index=k)
        analysis = dc.trace.first("cons_hv", node=1, round_index=k)
        rows.append((
            k,
            "slot 2 faulty" if k == FAULT_ROUND else "-",
            "".join(map(str, syndrome.data["syndrome"])),
            "".join(map(str, analysis.data["cons_hv"])),
            analysis.data["diagnosed_round"],
        ))
    return dc, rows


def test_figure1_pipeline(benchmark):
    dc, rows = benchmark(run_pipeline_trace)
    text = render_table(
        ["round k", "bus event", "local syndrome (detects k-1)",
         "cons_hv at k", "diagnoses round"],
        rows,
        title="Fig. 1 — phase pipeline at node 1 (fault in round "
              f"{FAULT_ROUND}, slot 2)")
    emit("figure1_pipeline", text)

    # Lemma 1 bookkeeping: analysis at k covers k-3; the fault appears
    # in the local syndrome at k+1 and in the health vector at k+3.
    syndromes = {r[0]: r[2] for r in rows}
    assert syndromes[FAULT_ROUND + 1][1] == "0"
    vectors = {r[0]: (r[3], r[4]) for r in rows}
    assert vectors[FAULT_ROUND + 3] == ("1011", FAULT_ROUND)
