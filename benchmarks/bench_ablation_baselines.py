"""Ablation: the add-on protocol vs. the related-work baselines.

Two comparisons the paper draws in Sec. 2 / Sec. 9, measured:

1. **Multi-fault tolerance vs. TTP/C membership.**  Two coincident
   benign sender faults (outside TTP/C's single-fault assumption) are
   injected.  The add-on protocol diagnoses both consistently and no
   correct node is harmed (Lemma 2: N=4 tolerates b=2); the TTP/C-style
   clique-avoidance takes down correct nodes.

2. **Transient filtering: p/r vs. α-count.**  Under an identical fault
   stream (one transient, a clean gap of exactly the reward window,
   another transient), p/r forgets the first transient exactly at R
   while a matched α-count retains a residue — the coupling the
   paper's alternative model [7] removes.
"""

from conftest import emit

from repro.analysis.metrics import completeness_holds, correctness_holds
from repro.analysis.reporting import render_table
from repro.baselines.alpha_count import AlphaCount, equivalent_alpha_config
from repro.baselines.ttpc_membership import (
    TTPCMembershipCluster,
    coincident_sender_faults,
)
from repro.core.config import uniform_config
from repro.core.penalty_reward import PenaltyRewardState
from repro.core.service import DiagnosedCluster
from repro.faults.scenarios import SlotBurst

FAULT_ROUND = 6


def addon_double_fault():
    config = uniform_config(4, penalty_threshold=10 ** 6,
                            reward_threshold=10 ** 6)
    dc = DiagnosedCluster(config, seed=0)
    dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, FAULT_ROUND, 2, 2))
    dc.run_rounds(FAULT_ROUND + 8)
    obedient = dc.obedient_node_ids()
    detected = (completeness_holds(dc.trace, FAULT_ROUND, 2, obedient)
                and completeness_holds(dc.trace, FAULT_ROUND, 3, obedient))
    no_collateral = correctness_holds(dc.trace, FAULT_ROUND, [1, 4], obedient)
    return detected, no_collateral, dc.agreed_active_vector()


def ttpc_double_fault():
    cluster = TTPCMembershipCluster(4)
    cluster.run_rounds(6, coincident_sender_faults(1, (2, 3), n_nodes=4))
    victims = {n for _k, _s, n in cluster.self_removals}
    collateral = sorted(victims - {2, 3})
    return cluster.surviving_fraction(), collateral


def filter_comparison(gap_rounds=50, reward_threshold=50):
    pr = PenaltyRewardState(uniform_config(
        2, penalty_threshold=10, reward_threshold=reward_threshold))
    ac = AlphaCount(equivalent_alpha_config(
        2, penalty_threshold=10, reward_threshold=reward_threshold))
    for filt in (pr, ac):
        filt.update([0, 1])
        for _ in range(gap_rounds):
            filt.update([1, 1])
        filt.update([0, 1])
    return pr.penalties[0], ac.alpha[0]


def run_all():
    return addon_double_fault(), ttpc_double_fault(), filter_comparison()


def test_ablation_baselines(benchmark):
    (addon, ttpc, filters) = benchmark.pedantic(run_all, rounds=1,
                                                iterations=1)
    detected, no_collateral, active = addon
    surviving, collateral = ttpc
    pr_pen, ac_alpha = filters

    rows = [
        ("add-on protocol (this paper)",
         "both detected" if detected else "MISSED",
         "none" if no_collateral and active == (1, 1, 1, 1)
         else "correct nodes harmed"),
        ("TTP/C-style membership",
         "resolved via clique avoidance",
         f"correct nodes {collateral} taken down "
         f"({surviving:.0%} survive)"),
    ]
    text = render_table(
        ["protocol", "2 coincident benign faults (N=4)",
         "collateral damage"],
        rows, title="Ablation — multi-fault tolerance vs. TTP/C membership")

    rows2 = [
        ("penalty/reward (this paper)",
         f"{pr_pen} (fresh count: first transient forgotten at R)"),
        ("alpha-count (matched decay)",
         f"{ac_alpha:.3f} (residue of the first transient remains)"),
    ]
    text2 = render_table(
        ["filter", "score after transient / R-round gap / transient"],
        rows2, title="Ablation — transient filtering: p/r vs. alpha-count")
    emit("ablation_baselines", text + "\n\n" + text2)

    assert detected and no_collateral and active == (1, 1, 1, 1)
    assert collateral and surviving < 1.0
    assert pr_pen == 1
    assert ac_alpha > 1.0
