"""Sec. 10 ablation: detection latency across protocol variants.

The paper's portability/latency tradeoff, measured: the add-on protocol
with send alignment (any schedule) detects in 3 rounds; the
``forall j: send_curr_round_j`` fast path in 2; the system-level
per-slot variant in 1 round (2 for membership decisions).  Bandwidth is
N bits per message in all variants.
"""

from conftest import emit

from repro.analysis.metrics import detection_latency_rounds
from repro.analysis.reporting import render_table
from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster, LowLatencyCluster
from repro.faults.scenarios import SlotBurst
from repro.tt.frames import syndrome_size_bits

FAULT_ROUND, FAULT_SLOT = 6, 2


def permissive(**kw):
    return uniform_config(4, penalty_threshold=10 ** 6,
                          reward_threshold=10 ** 6, **kw)


def measure_addon(all_send_curr):
    config = permissive(all_send_curr_round=all_send_curr)
    dc = DiagnosedCluster(config, seed=0,
                          exec_after=4 if all_send_curr else 0)
    dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, FAULT_ROUND,
                                      FAULT_SLOT, 1))
    dc.run_rounds(FAULT_ROUND + 8)
    return detection_latency_rounds(dc.trace, FAULT_ROUND, FAULT_SLOT)


def measure_lowlatency():
    llc = LowLatencyCluster(permissive(), seed=0)
    tb = llc.cluster.timebase
    llc.cluster.add_scenario(SlotBurst(tb, FAULT_ROUND, FAULT_SLOT, 1))
    llc.run_rounds(FAULT_ROUND + 4)
    records = [r for r in llc.trace.select(category="cons_slot")
               if r.data["diagnosed_round"] == FAULT_ROUND
               and r.data["slot"] == FAULT_SLOT]
    decided = min(r.time for r in records)
    observable = tb.delivery_time(FAULT_ROUND, FAULT_SLOT)
    return (decided - observable) / tb.round_length


def run_all():
    return measure_addon(False), measure_addon(True), measure_lowlatency()


def test_latency_variants(benchmark):
    aligned, fast, lowlat = benchmark(run_all)
    rows = [
        ("add-on, send alignment", "unconstrained scheduling",
         f"{aligned} rounds", f"{syndrome_size_bits(4)} bits"),
        ("add-on, forall send_curr_round", "jobs after last slot",
         f"{fast} rounds", f"{syndrome_size_bits(4)} bits"),
        ("system-level per-slot (Sec. 10)", "analysis after every slot",
         f"{lowlat:.2f} rounds", f"{syndrome_size_bits(4)} bits"),
        ("TTP/C built-in (paper Sec. 2)", "system-level, single fault",
         "2 slots / 2 rounds", "O(N) bits"),
    ]
    text = render_table(
        ["variant", "scheduling constraint", "detection latency",
         "bandwidth per message"],
        rows, title="Sec. 10 — latency vs. portability across variants")
    emit("latency_variants", text)
    assert (aligned, fast) == (3, 2)
    assert lowlat <= 1.01
