"""Extension ablation: tuning the reintegration reward threshold.

Quantifies the paper's closing proposal (Sec. 9): isolated nodes kept
under observation and readmitted after a reintegration reward
threshold.  Swept over the aerospace lightning-bolt scenario:

* thresholds below the scenario's worst time-to-reappearance
  (500 ms = 200 rounds) readmit the node *between* bursts — each
  readmission is followed by another isolation (flapping), i.e.
  repeated recovery actions for the applications;
* the smallest flap-free threshold (just above 200 rounds) maximises
  availability among the safe settings — the same correlation window
  logic that sizes R itself (Fig. 3), applied to recovery.
"""

from conftest import emit

from repro.analysis.reporting import render_table
from repro.experiments.reintegration_tuning import threshold_sweep

THRESHOLDS = (50, 150, 250, 400, 2000)


def run_sweep():
    return threshold_sweep(thresholds=THRESHOLDS)


def test_reintegration_threshold_tuning(benchmark):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [(p.threshold_rounds,
             f"{p.threshold_rounds * 2.5:.0f} ms",
             f"{p.availability_fraction:.0%}",
             p.isolations, p.reintegrations, p.flapping_cycles)
            for p in points]
    text = render_table(
        ["R_reint (rounds)", "window", "availability", "isolations",
         "reintegrations", "flapping cycles"],
        rows,
        title="Reintegration tuning — aerospace lightning bolt "
              "(worst reappearance: 500 ms = 200 rounds)")
    emit("reintegration_tuning", text)

    by_threshold = {p.threshold_rounds: p for p in points}
    # Below the worst reappearance: flapping.
    assert by_threshold[50].flapping_cycles >= 3
    assert by_threshold[150].flapping_cycles >= 2
    # Just above it: one isolation, one clean readmission.
    assert by_threshold[250].flapping_cycles == 0
    assert by_threshold[250].reintegrations == 1
    # Oversized thresholds only lose availability.
    assert (by_threshold[2000].availability_fraction
            < by_threshold[250].availability_fraction)
