"""Scaling ablation: resilience grows with the number of nodes.

Empirical validation of Lemma 2 across cluster sizes: every fault
allocation (s byzantine + b coincident benign) inside the
``N > 2s + b + 1`` bound preserves correctness, completeness and
consistency; the tolerated-fault frontier grows linearly with N — the
introduction's "resiliency also scales with the number of available
nodes".
"""

from conftest import emit

from repro.analysis.reporting import render_table
from repro.experiments.resilience import (
    capacity_frontier,
    max_benign_within_bound,
    resilience_sweep,
)

N_RANGE = (4, 5, 6, 8)


def run_sweep():
    return resilience_sweep(n_range=N_RANGE)


def test_scaling_resilience(benchmark):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    frontier = capacity_frontier(n_range=N_RANGE)

    rows = []
    for n in N_RANGE:
        checked = [p for p in points if p.n_nodes == n]
        ok = sum(1 for p in checked if p.properties_hold)
        frontier_str = ", ".join(
            f"s={s}: b<={b}" for s, b in frontier[n].items())
        rows.append((n, len(checked), f"{ok}/{len(checked)}", frontier_str))
    text = render_table(
        ["N", "allocations tested", "properties held",
         "tolerated frontier (Lemma 2)"],
        rows,
        title="Scaling — coincident-fault resilience vs. cluster size")
    emit("scaling_resilience", text)

    assert all(p.properties_hold for p in points if p.within_bound)
    # Linear growth of the benign-fault capacity with N.
    assert max_benign_within_bound(8, 0) == 2 * max_benign_within_bound(5, 0)
    caps = [max_benign_within_bound(n, 0) for n in N_RANGE]
    assert caps == sorted(caps) and caps[-1] > caps[0]
