"""Sec. 2: the related-work comparison, with measured entries verified.

Renders the paper's positioning table and cross-checks the rows that
this repository actually measures: the add-on protocol's latency and
bandwidth (``bench_latency_variants``) and TTP/C's single-fault
behaviour (``bench_ablation_baselines``).
"""

from conftest import emit

from repro.analysis.metrics import detection_latency_rounds
from repro.analysis.reporting import render_table
from repro.baselines.comparison import RELATED_WORK, comparison_rows
from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster
from repro.faults.scenarios import SlotBurst
from repro.tt.frames import syndrome_size_bits


def verify_addon_row():
    """Measured backing for the add-on protocol's table entry."""
    config = uniform_config(4, penalty_threshold=10 ** 6,
                            reward_threshold=10 ** 6)
    dc = DiagnosedCluster(config, seed=0)
    dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, 6, 2, 1))
    dc.run_rounds(14)
    return detection_latency_rounds(dc.trace, 6, 2), syndrome_size_bits(4)


def test_related_work_comparison(benchmark):
    latency, bits = benchmark(verify_addon_row)
    text = render_table(
        ["protocol", "fault assumption", "malicious?", "latency",
         "bandwidth/msg", "placement"],
        comparison_rows(),
        title="Sec. 2 — diagnostic/membership protocol comparison")
    text += (f"\nmeasured (this repo): add-on latency {latency} rounds "
             f"(+1 for the isolation decision = paper's worst case 4); "
             f"diagnostic message {bits} bits at N=4")
    emit("related_work", text)

    assert latency <= 4 - 1
    assert bits == 4
    names = [e.name for e in RELATED_WORK]
    assert "TTP/C membership" in names
    assert sum(e.tolerates_malicious for e in RELATED_WORK) == 2
