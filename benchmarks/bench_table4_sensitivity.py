"""Table 4 sensitivity: why the paper's numbers fall where they do.

The Table 4 reproduction (bench_table4_isolation) matches the paper to
a few percent except the SR row.  This bench measures the two
physical-timing degrees of freedom a bench-top injection has and a
simulator must choose:

* the *phase* of the burst train relative to the TDMA round grid, and
* how much of a frame a disturbance must cover to actually corrupt it
  (marginally clipped frames can survive the receivers' checks).

Sweeping both produces a min-max envelope per criticality class.  All
of the paper's Table 4 values — including SR's 4.595 s — fall inside
the measured band, supporting the claim that the residual deltas are
injection-timing physics, not protocol behaviour.
"""

from conftest import emit

from repro.analysis.reporting import render_table
from repro.core.config import CriticalityClass
from repro.experiments.adverse import PAPER_TABLE4
from repro.experiments.sensitivity import band, phase_sweep

C = CriticalityClass

PHASES = (0.0, 0.3, 0.6)
OVERLAPS = (0.0, 0.5, 0.9)


def run_sweep():
    return phase_sweep(phases=PHASES, overlaps=OVERLAPS)


def test_table4_phase_sensitivity(benchmark):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for cls in (C.SC, C.SR, C.NSR):
        b = band(points, cls)
        paper = PAPER_TABLE4[("automotive", cls)]
        inside = b["min"] - 0.05 <= paper <= b["max"] + 0.05
        rows.append((cls.name, f"{b['min']:.3f} s", f"{b['max']:.3f} s",
                     f"{paper:.3f} s", "yes" if inside else "NO"))
    text = render_table(
        ["class", "band min", "band max", "paper", "paper inside band"],
        rows,
        title="Table 4 sensitivity — time to isolation vs. burst phase "
              f"and frame-overlap threshold ({len(points)} runs)")
    emit("table4_sensitivity", text)

    for cls in (C.SC, C.SR, C.NSR):
        b = band(points, cls)
        paper = PAPER_TABLE4[("automotive", cls)]
        assert b["min"] - 0.05 <= paper <= b["max"] + 0.05, (cls, b, paper)
