"""Table 2: experimental tuning of the p/r algorithm.

Reruns the paper's tuning experiment on the simulated cluster: inject
continuous faulty bursts, read the penalty counter when each class's
maximum tolerated diagnostic latency elapses, then derive
``P = max(p_class)`` and ``s_class = ceil(P / p_class)``.

Expected to match the paper *exactly* (the quantities are protocol
arithmetic at T = 2.5 ms): automotive P = 197 with s = 40/6/1,
aerospace P = 17 with s = 1, R = 10^6.
"""

import os

from conftest import emit

from repro.analysis.reporting import render_table
from repro.core.config import CriticalityClass
from repro.experiments.table2 import PAPER_TABLE2
from repro.runner.sweep import run_table2_sweep

C = CriticalityClass

PAPER_S = {
    ("Automotive", C.SC): 40,
    ("Automotive", C.SR): 6,
    ("Automotive", C.NSR): 1,
    ("Aerospace", C.SC): 1,
}

EXAMPLES = {
    ("Automotive", C.SC): "X-by-wire",
    ("Automotive", C.SR): "Stability control",
    ("Automotive", C.NSR): "Door control",
    ("Aerospace", C.SC): "High Lift, Landing Gear",
}


#: Worker processes; one (domain, class) measurement per task, result
#: identical for any value.
JOBS = min(4, os.cpu_count() or 1)


def run_tuning():
    return run_table2_sweep(seed=0, jobs=JOBS)


def test_table2_tuning(benchmark):
    rows_data = benchmark(run_tuning)
    rows = []
    for r in rows_data:
        key = (r.domain, r.criticality_class)
        rows.append((
            r.domain, r.criticality_class.name, EXAMPLES[key],
            f"{r.tolerated_outage * 1e3:.0f} ms",
            r.measured_budget,
            f"{r.criticality} (paper: {PAPER_S[key]})",
            r.penalty_threshold,
            f"{r.reward_threshold:.0e}",
            f"{r.round_length * 1e3:.1f} ms",
        ))
    text = render_table(
        ["Domain", "Class", "Example", "Tolerated outage",
         "Measured budget", "Crit. lvl (s_i)", "P", "R", "TDMA"],
        rows, title="Table 2 — experimental tuning of the p/r algorithm")
    emit("table2_tuning", text)

    by_key = {(r.domain, r.criticality_class): r for r in rows_data}
    for key, s in PAPER_S.items():
        assert by_key[key].criticality == s, key
    assert by_key[("Automotive", C.SC)].penalty_threshold == \
        PAPER_TABLE2["automotive"]["P"] == 197
    assert by_key[("Aerospace", C.SC)].penalty_threshold == \
        PAPER_TABLE2["aerospace"]["P"] == 17
