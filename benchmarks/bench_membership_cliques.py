"""Sec. 7 / Theorem 2: membership liveness and clique detection.

Reruns the paper's clique-detection experiment class (disturbance node
between Node 1 and the rest of the cluster) across every disturbed
sender slot, and reports the view-change latency in protocol rounds —
verifying Theorem 2's "new view after two complete executions of the
modified diagnostic protocol".
"""

from conftest import emit

from repro.analysis.reporting import render_table
from repro.experiments.validation import run_clique_experiment


def run_clique_sweep():
    results = []
    for sender in (2, 3, 4):
        for seed in range(3):
            results.append((sender, seed,
                            run_clique_experiment(disturbed_sender=sender,
                                                  seed=seed)))
    return results


def test_membership_clique_detection(benchmark):
    results = benchmark.pedantic(run_clique_sweep, rounds=1, iterations=1)
    rows = []
    for sender, seed, result in results:
        rows.append((
            f"slot {sender}", seed,
            "{1}",
            "yes" if result.detected else "NO",
            result.view_latency_rounds,
            "{" + ",".join(map(str, result.final_view or ())) + "}",
        ))
    text = render_table(
        ["disturbed slot", "seed", "minority clique", "detected",
         "view latency (rounds)", "new view"],
        rows,
        title="Sec. 7 — minority-clique detection (disturbance between "
              "Node 1 and the cluster)")
    emit("membership_cliques", text)

    assert all(r.passed for _s, _seed, r in results)
    # Theorem 2: two executions of the modified protocol = two pipeline
    # depths (3 rounds each) after the fault.
    assert all(r.view_latency_rounds <= 6 for _s, _seed, r in results)
