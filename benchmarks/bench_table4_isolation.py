"""Tables 3-4: time to incorrect isolation under abnormal transients.

Runs the two Table 3 scenarios (automotive blinking light, aerospace
lightning bolt) against the tuned Table 2 configurations and measures
when each criticality class's node is (incorrectly) isolated — the
paper's Table 4.

Paper values:  automotive SC/SR/NSR = 0.518 / 4.595 / 24.475 s,
aerospace SC = 0.205 s.  Our idealised, round-aligned bursts land the
same ordering and magnitudes (see EXPERIMENTS.md for the deltas).
"""

from conftest import emit

from repro.analysis.reporting import render_table
from repro.core.config import CriticalityClass
from repro.experiments.adverse import (
    PAPER_TABLE4,
    aerospace_adverse,
    automotive_adverse,
)

C = CriticalityClass


def run_table4():
    return automotive_adverse(seed=0), aerospace_adverse(seed=0)


def test_table4_time_to_isolation(benchmark):
    auto, aero = benchmark.pedantic(run_table4, rounds=1, iterations=1)

    scen_rows = [
        ("Auto (blinking light)", "10 ms", "500 ms", 50),
        ("Aero (lightning bolt)", "40 ms", "160 ms", 1),
        ("", "40 ms", "290 ms", 1),
        ("", "40 ms", "500 ms", 9),
    ]
    scen_text = render_table(["Scenario", "Burst", "TTReapp.", "# Inj."],
                             scen_rows,
                             title="Table 3 — abnormal transient scenarios "
                                   "(inputs)")

    rows = []
    for result, domain in ((auto, "automotive"), (aero, "aerospace")):
        classes = " / ".join(c.name for c in result.times)
        measured = " / ".join(f"{t:.3f}" for t in result.times.values())
        paper = " / ".join(f"{PAPER_TABLE4[(domain, c)]:.3f}"
                           for c in result.times)
        rows.append((result.domain, classes, f"{measured} sec",
                     f"{paper} sec"))
    text = render_table(
        ["Setting", "Criticality class", "Time to isolation (measured)",
         "Time to isolation (paper)"],
        rows, title="Table 4 — time to incorrect isolation")
    emit("table4_isolation", scen_text + "\n\n" + text)

    # Shape assertions: ordering and magnitudes.
    t = auto.times
    assert t[C.SC] < t[C.SR] < t[C.NSR]
    assert abs(t[C.SC] - 0.518) < 0.02
    assert abs(t[C.SR] - 4.595) < 0.6
    assert abs(t[C.NSR] - 24.475) < 1.0
    assert abs(aero.times[C.SC] - 0.205) < 0.02
