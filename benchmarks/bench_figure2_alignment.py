"""Figure 2: the read alignment example (round k, l_i = 2).

Regenerates the paper's alignment figure from live simulation state: a
node whose diagnostic job runs after slot 2 reads a mixed interface
snapshot (slots 1-2 fresh from round k, slots 3-4 from round k-1) and
reconstructs, with the buffered previous snapshot, the vector of values
all sent in round k-1.

The benchmark times the pure alignment operation over a sweep of all
split points and cluster sizes.
"""

from conftest import emit

from repro.analysis.reporting import render_table
from repro.core.alignment import read_align
from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster
from repro.tt.node import JobContext


class SnapshotProbe:
    """A job recording raw interface snapshots each round."""

    def __init__(self):
        self.snapshots = {}

    def execute(self, ctx: JobContext) -> None:
        ctrl = ctx.controller
        self.snapshots[ctx.round_index] = (
            ctrl.read_interface()[1:], ctx.params.l)


def alignment_sweep():
    """Time read_align across split points and sizes."""
    total = 0
    for n in (4, 8, 16, 64):
        prev = [("prev", j) for j in range(n)]
        curr = [("curr", j) for j in range(n)]
        for l in range(n + 1):
            total += len(read_align(prev, curr, l))
    return total


def figure2_example():
    """Live reproduction of the Fig. 2 situation (l_i = 2)."""
    config = uniform_config(4, penalty_threshold=10 ** 6,
                            reward_threshold=10 ** 6)
    dc = DiagnosedCluster(config, seed=0, exec_after=2)
    probe = SnapshotProbe()
    # Install the probe on node 3 alongside its diagnostic job.
    dc.cluster.nodes[3].jobs.insert(0, probe)
    k = 8
    dc.run_rounds(k + 2)
    curr, l = probe.snapshots[k]
    prev, _ = probe.snapshots[k - 1]
    aligned = read_align(prev, curr, l)
    return l, prev, curr, aligned


def test_figure2_alignment(benchmark):
    benchmark(alignment_sweep)
    l, prev, curr, aligned = figure2_example()
    assert l == 2

    def tag(payload):
        return "ε" if payload is None else "".join(map(str, payload))

    rows = [
        ("previous read (round k-1)", *[tag(p) for p in prev]),
        ("current read (round k)", *[tag(p) for p in curr]),
        (f"aligned (l_i = {l})", *[tag(p) for p in aligned]),
    ]
    text = render_table(
        ["vector", "dm_1", "dm_2", "dm_3", "dm_4"], rows,
        title="Fig. 2 — read alignment at node 3 (job after slot 2)")
    emit("figure2_alignment", text)
    # The aligned vector takes dm_1, dm_2 from the buffer and dm_3,
    # dm_4 from the current read.
    assert aligned[:2] == prev[:2]
    assert aligned[2:] == curr[2:]
