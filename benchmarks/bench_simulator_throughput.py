"""Engineering benchmark: simulator and protocol throughput.

Not a paper artefact — this measures the reproduction substrate itself
so regressions in the discrete-event engine or the protocol hot path
are visible: simulated rounds per second for growing cluster sizes,
with the full diagnostic stack running on every node, plus a
sustained-fault point comparing the bitset analysis plane against the
tuple reference plane (same traces, different representation).

``REPRO_BENCH_ROUNDS`` scales the per-point round count down for smoke
runs (CI uses 50; the default 200 is the tracked-artefact setting).
"""

import os
import tempfile
import time

from conftest import emit, emit_json

from repro.analysis.reporting import render_table
from repro.campaign import run_campaign, validation_campaign
from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster
from repro.faults.scenarios import crash
from repro.store import ResultStore

ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "200"))

#: N=64 stresses the packed representation where tuple churn hurt most;
#: smaller points track the substrate overheads.
POINTS = (4, 8, 16, 32, 64)
SUSTAINED_N = 16


def run_cluster(n_nodes: int, bitset: bool = True,
                sustained_fault: bool = False) -> None:
    config = uniform_config(n_nodes, penalty_threshold=10 ** 6,
                            reward_threshold=10 ** 6)
    dc = DiagnosedCluster(config, seed=0, trace_level=0, bitset=bitset)
    if sustained_fault:
        # A never-isolated crashed sender keeps one ε row in every
        # matrix, defeating the uniform shortcut: every round runs the
        # full column analysis, which is what this point measures.
        dc.cluster.add_scenario(crash(2, from_round=2))
    dc.run_rounds(ROUNDS)
    assert dc.cluster.rounds_completed == ROUNDS


def _rounds_per_s(n_nodes: int, **kwargs) -> float:
    start = time.perf_counter()
    run_cluster(n_nodes, **kwargs)
    return ROUNDS / (time.perf_counter() - start)


def test_throughput_n4(benchmark):
    benchmark(run_cluster, 4)


def test_throughput_n8(benchmark):
    benchmark(run_cluster, 8)


def test_throughput_n16(benchmark):
    benchmark(run_cluster, 16)


def _campaign_cache_point() -> dict:
    """Cold vs warm wall time for a small campaign through the store."""
    definition = validation_campaign(repetitions=1)
    with tempfile.TemporaryDirectory() as cache_dir:
        with ResultStore(cache_dir) as store:
            start = time.perf_counter()
            cold = run_campaign(definition.labeled_specs, store=store)
            cold_s = time.perf_counter() - start
            start = time.perf_counter()
            warm = run_campaign(definition.labeled_specs, store=store)
            warm_s = time.perf_counter() - start
    assert cold.misses == len(definition.labeled_specs)
    assert warm.hits == len(definition.labeled_specs)
    return {
        "tasks": len(definition.labeled_specs),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_hits": warm.hits,
        "warm_tasks_per_s": round(warm.hits / warm_s, 1),
        "speedup": round(cold_s / warm_s, 2),
    }


def test_throughput_summary(benchmark):
    def measure():
        points = []
        for n in POINTS:
            rps = _rounds_per_s(n)
            points.append({"n_nodes": n, "rounds": ROUNDS,
                           "rounds_per_s": round(rps, 1),
                           "slots_per_s": round(rps * n, 1)})
        sustained = {
            "n_nodes": SUSTAINED_N, "rounds": ROUNDS,
            "scenario": "crash(2) never isolated; one ε row per matrix",
            "tuple_rounds_per_s": round(_rounds_per_s(
                SUSTAINED_N, bitset=False, sustained_fault=True), 1),
            "bitset_rounds_per_s": round(_rounds_per_s(
                SUSTAINED_N, bitset=True, sustained_fault=True), 1),
        }
        sustained["speedup"] = round(
            sustained["bitset_rounds_per_s"]
            / sustained["tuple_rounds_per_s"], 2)
        return points, sustained, _campaign_cache_point()

    points, sustained, campaign_cache = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    rows = [(p["n_nodes"], p["rounds"],
             f"{p['rounds_per_s']:,.0f} rounds/s",
             f"{p['slots_per_s']:,.0f} slots/s") for p in points]
    rows.append((f"{SUSTAINED_N} (faulty)", ROUNDS,
                 f"{sustained['bitset_rounds_per_s']:,.0f} rounds/s",
                 f"{sustained['speedup']}x vs tuple plane"))
    rows.append(("campaign (warm)", campaign_cache["tasks"],
                 f"{campaign_cache['warm_tasks_per_s']:,.0f} tasks/s",
                 f"{campaign_cache['speedup']}x vs cold"))
    emit("simulator_throughput", render_table(
        ["N", "rounds simulated", "throughput", "slot throughput"],
        rows, title="Substrate throughput (full diagnostic stack)"))
    emit_json("BENCH_simulator_throughput", {
        "benchmark": "simulator_throughput",
        "config": {"trace_level": 0, "fault_free": True,
                   "rounds_per_point": ROUNDS},
        "points": points,
        "sustained_fault": sustained,
        "campaign_cache": campaign_cache,
    }, to_root=True)
