"""Engineering benchmark: simulator and protocol throughput.

Not a paper artefact — this measures the reproduction substrate itself
so regressions in the discrete-event engine or the protocol hot path
are visible: simulated rounds per second for growing cluster sizes,
with the full diagnostic stack running on every node.
"""

from conftest import emit, emit_json

from repro.analysis.reporting import render_table
from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster

ROUNDS = 200


def run_cluster(n_nodes: int) -> None:
    config = uniform_config(n_nodes, penalty_threshold=10 ** 6,
                            reward_threshold=10 ** 6)
    dc = DiagnosedCluster(config, seed=0, trace_level=0)
    dc.run_rounds(ROUNDS)
    assert dc.cluster.rounds_completed == ROUNDS


def test_throughput_n4(benchmark):
    benchmark(run_cluster, 4)


def test_throughput_n8(benchmark):
    benchmark(run_cluster, 8)


def test_throughput_n16(benchmark):
    benchmark(run_cluster, 16)


def test_throughput_summary(benchmark):
    import time

    def measure():
        points = []
        for n in (4, 8, 16, 32):
            start = time.perf_counter()
            run_cluster(n)
            elapsed = time.perf_counter() - start
            points.append({"n_nodes": n, "rounds": ROUNDS,
                           "rounds_per_s": round(ROUNDS / elapsed, 1),
                           "slots_per_s": round(ROUNDS * n / elapsed, 1)})
        return points

    points = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [(p["n_nodes"], p["rounds"],
             f"{p['rounds_per_s']:,.0f} rounds/s",
             f"{p['slots_per_s']:,.0f} slots/s") for p in points]
    emit("simulator_throughput", render_table(
        ["N", "rounds simulated", "throughput", "slot throughput"],
        rows, title="Substrate throughput (full diagnostic stack)"))
    emit_json("BENCH_simulator_throughput", {
        "benchmark": "simulator_throughput",
        "config": {"trace_level": 0, "fault_free": True,
                   "rounds_per_point": ROUNDS},
        "points": points,
    })
