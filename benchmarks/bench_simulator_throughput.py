"""Engineering benchmark: simulator and protocol throughput.

Not a paper artefact — this measures the reproduction substrate itself
so regressions in the discrete-event engine or the protocol hot path
are visible: simulated rounds per second for growing cluster sizes,
with the full diagnostic stack running on every node, plus a
sustained-fault point comparing the bitset analysis plane against the
tuple reference plane (same traces, different representation).

``REPRO_BENCH_ROUNDS`` scales the per-point round count down for smoke
runs (CI uses 50; the default 200 is the tracked-artefact setting).
"""

import os
import tempfile
import time

from conftest import emit, emit_json

from repro.analysis.reporting import render_table
from repro.campaign import campaign_tasks, run_campaign, validation_campaign
from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster
from repro.faults.scenarios import crash
from repro.spec import ClusterSpec, ProtocolSpec, RunSpec, ScenarioSpec
from repro.spec.build import build
from repro.store import ResultStore
from repro.vec import NUMPY_AVAILABLE

ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "200"))

#: N=64 stresses the packed representation where tuple churn hurt most;
#: smaller points track the substrate overheads.
POINTS = (4, 8, 16, 32, 64)
SUSTAINED_N = 16

#: Backend face-off points: N=64 carries the tracked >=10x acceptance
#: target for the vectorized round kernel.
BACKEND_POINTS = (16, 64, 128)
MONTE_CARLO_N = 16
MONTE_CARLO_REPLICATES = 1000

#: Stochastic-channel point: Gilbert-Elliott bursts keep the injection
#: layer busy every round, measuring what the mask-precomputation path
#: costs relative to per-slot event-engine sampling.
GILBERT_ELLIOTT_N = 16


def run_cluster(n_nodes: int, bitset: bool = True,
                sustained_fault: bool = False) -> None:
    config = uniform_config(n_nodes, penalty_threshold=10 ** 6,
                            reward_threshold=10 ** 6)
    dc = DiagnosedCluster(config, seed=0, trace_level=0, bitset=bitset)
    if sustained_fault:
        # A never-isolated crashed sender keeps one ε row in every
        # matrix, defeating the uniform shortcut: every round runs the
        # full column analysis, which is what this point measures.
        dc.cluster.add_scenario(crash(2, from_round=2))
    dc.run_rounds(ROUNDS)
    assert dc.cluster.rounds_completed == ROUNDS


def _rounds_per_s(n_nodes: int, **kwargs) -> float:
    start = time.perf_counter()
    run_cluster(n_nodes, **kwargs)
    return ROUNDS / (time.perf_counter() - start)


def test_throughput_n4(benchmark):
    benchmark(run_cluster, 4)


def test_throughput_n8(benchmark):
    benchmark(run_cluster, 8)


def test_throughput_n16(benchmark):
    benchmark(run_cluster, 16)


def _backend_spec(n_nodes: int) -> RunSpec:
    """The sustained-fault workload as a spec both backends accept."""
    return RunSpec(
        protocol=ProtocolSpec(n_nodes=n_nodes,
                              penalty_threshold=10 ** 6,
                              reward_threshold=10 ** 6,
                              criticalities=(1,) * n_nodes),
        cluster=ClusterSpec(seed=0, trace_level=0),
        scenarios=(ScenarioSpec("SenderFault",
                                {"sender": 2, "kind": "benign",
                                 "from_round": 2}),),
        n_rounds=ROUNDS,
    )


def _gilbert_elliott_spec(n_nodes: int) -> RunSpec:
    """A bursty-channel workload: errors in ~17% of slots."""
    return RunSpec(
        protocol=ProtocolSpec(n_nodes=n_nodes,
                              penalty_threshold=10 ** 6,
                              reward_threshold=10 ** 6,
                              criticalities=(1,) * n_nodes),
        cluster=ClusterSpec(seed=0, trace_level=0),
        scenarios=(ScenarioSpec("GilbertElliottChannel",
                                {"p_gb": 0.1, "p_bg": 0.5,
                                 "error_good": 0.0, "error_bad": 1.0,
                                 "rng_stream": "bench-ge"}),),
        n_rounds=ROUNDS,
    )


def _event_rounds_per_s(spec: RunSpec) -> float:
    start = time.perf_counter()
    dc = build(spec)
    dc.run_rounds(spec.n_rounds)
    return spec.n_rounds / (time.perf_counter() - start)


def _vectorized_rounds_per_s(spec: RunSpec) -> float:
    from repro.vec import run_batch

    start = time.perf_counter()
    run_batch(spec)
    return spec.n_rounds / (time.perf_counter() - start)


def _backend_points() -> dict:
    """Event vs vectorized rounds/s plus the Monte Carlo batch point.

    Timings include each backend's per-run setup (spec build vs
    schedule compilation + injection lowering), i.e. what a campaign
    cache miss actually pays.
    """
    points = []
    for n in BACKEND_POINTS:
        spec = _backend_spec(n)
        event = _event_rounds_per_s(spec)
        vectorized = _vectorized_rounds_per_s(spec)
        points.append({"n_nodes": n, "rounds": ROUNDS,
                       "event_rounds_per_s": round(event, 1),
                       "vectorized_rounds_per_s": round(vectorized, 1),
                       "speedup": round(vectorized / event, 2)})

    from repro.vec import run_batch

    spec = _backend_spec(MONTE_CARLO_N)
    start = time.perf_counter()
    run_batch(spec, replicates=MONTE_CARLO_REPLICATES)
    batch_s = time.perf_counter() - start
    start = time.perf_counter()
    build(spec).run_rounds(spec.n_rounds)
    event_replicate_s = time.perf_counter() - start
    monte_carlo = {
        "n_nodes": MONTE_CARLO_N,
        "replicates": MONTE_CARLO_REPLICATES,
        "rounds_per_replicate": ROUNDS,
        "batch_s": round(batch_s, 3),
        "replicates_per_s": round(MONTE_CARLO_REPLICATES / batch_s, 1),
        "event_replicates_per_s": round(1.0 / event_replicate_s, 2),
        "speedup": round((MONTE_CARLO_REPLICATES / batch_s)
                         * event_replicate_s, 1),
    }
    ge_spec = _gilbert_elliott_spec(GILBERT_ELLIOTT_N)
    ge_event = _event_rounds_per_s(ge_spec)
    ge_vectorized = _vectorized_rounds_per_s(ge_spec)
    gilbert_elliott = {
        "n_nodes": GILBERT_ELLIOTT_N, "rounds": ROUNDS,
        "p_gb": 0.1, "p_bg": 0.5,
        "event_rounds_per_s": round(ge_event, 1),
        "vectorized_rounds_per_s": round(ge_vectorized, 1),
        "speedup": round(ge_vectorized / ge_event, 2),
    }

    n64 = next(p for p in points if p["n_nodes"] == 64)
    return {"points": points, "n64_speedup": n64["speedup"],
            "monte_carlo": monte_carlo,
            "gilbert_elliott": gilbert_elliott}


def _campaign_cache_point() -> dict:
    """Cold vs warm wall time for a small campaign through the store.

    Also times the warm *consultation* both ways — one indexed lookup
    per task (the pre-``get_many`` shape) vs one batched query — since
    on a fully-warm campaign the consultation IS the run.
    """
    definition = validation_campaign(repetitions=1)
    keys = [task.key for task in campaign_tasks(definition.labeled_specs)]
    with tempfile.TemporaryDirectory() as cache_dir:
        with ResultStore(cache_dir) as store:
            start = time.perf_counter()
            cold = run_campaign(definition.labeled_specs, store=store)
            cold_s = time.perf_counter() - start
            start = time.perf_counter()
            warm = run_campaign(definition.labeled_specs, store=store)
            warm_s = time.perf_counter() - start
            per_key_s = min(
                _timed(lambda: [store.get(key) for key in keys])
                for _ in range(3))
            batched_s = min(
                _timed(lambda: store.get_many(keys)) for _ in range(3))
    assert cold.misses == len(definition.labeled_specs)
    assert warm.hits == len(definition.labeled_specs)
    return {
        "tasks": len(definition.labeled_specs),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_hits": warm.hits,
        "warm_tasks_per_s": round(warm.hits / warm_s, 1),
        "speedup": round(cold_s / warm_s, 2),
        "consult_per_key_tasks_per_s": round(len(keys) / per_key_s, 1),
        "consult_batched_tasks_per_s": round(len(keys) / batched_s, 1),
        "consult_speedup": round(per_key_s / batched_s, 2),
    }


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _legacy_chunked_run(labeled, jobs: int):
    """The pre-streaming dispatch shape, preserved for comparison: a
    fresh process pool per fixed-size chunk, with a barrier after each
    chunk (the slowest task idles every other worker)."""
    from repro.campaign.engine import execute_spec_task
    from repro.runner.pool import Task, run_tasks

    tasks = campaign_tasks(labeled)
    chunk = max(4, jobs)
    results = []
    for start in range(0, len(tasks), chunk):
        batch = tasks[start:start + chunk]
        results.extend(run_tasks(
            [Task(execute_spec_task, (t.spec.to_dict(),), {})
             for t in batch],
            jobs=jobs, on_error="collect"))
    return results


DISPATCH_JOBS = 4
DISPATCH_REPEATS = 3


def _dispatch_point() -> dict:
    """Persistent streaming pool vs legacy per-chunk pools, plus a
    remote-stub smoke run, on the 18-task validation campaign."""
    definition = validation_campaign(repetitions=1)
    labeled = definition.labeled_specs
    legacy_s = min(_timed(lambda: _legacy_chunked_run(labeled,
                                                      DISPATCH_JOBS))
                   for _ in range(DISPATCH_REPEATS))
    streaming_s = min(
        _timed(lambda: run_campaign(labeled, jobs=DISPATCH_JOBS,
                                    dispatch="pool"))
        for _ in range(DISPATCH_REPEATS))
    remote_s = _timed(lambda: run_campaign(labeled, jobs=2,
                                           dispatch="remote-stub"))
    return {
        "tasks": len(labeled),
        "jobs": DISPATCH_JOBS,
        "repeats": DISPATCH_REPEATS,
        "legacy_chunked_s": round(legacy_s, 4),
        "persistent_pool_s": round(streaming_s, 4),
        "speedup": round(legacy_s / streaming_s, 2),
        "remote_stub_hosts": 2,
        "remote_stub_s": round(remote_s, 4),
    }


SERVICE_WARM_REQUESTS = 25
SERVICE_CONCURRENT_CLIENTS = 8


def _service_point() -> dict:
    """The HTTP service: warm vs cold request cost, and N-client dedup.

    A cold POST pays one simulation; warm POSTs of the same submission
    are pure store lookups over the wire, and N concurrent identical
    clients dedup onto a single execution — the service counters are
    the proof.
    """
    import json as _json
    import threading
    import urllib.request

    from repro.service import JobManager, ServiceThread, create_app

    def post(url: str, body: bytes) -> dict:
        req = urllib.request.Request(url + "/v1/jobs", data=body)
        with urllib.request.urlopen(req, timeout=60) as resp:
            return _json.loads(resp.read())

    def wait_done(url: str, job_id: str) -> None:
        while True:
            with urllib.request.urlopen(f"{url}/v1/jobs/{job_id}",
                                        timeout=60) as resp:
                if _json.loads(resp.read())["state"] in ("done", "failed"):
                    return
            time.sleep(0.01)

    spec = _backend_spec(4).with_updates(n_rounds=min(ROUNDS, 50))
    body = _json.dumps(spec.to_dict()).encode("utf-8")
    with tempfile.TemporaryDirectory() as cache_dir:
        manager = JobManager(store_root=cache_dir, workers=4,
                             queue_limit=16)
        server = ServiceThread(create_app(manager)).start()
        try:
            url = server.url
            start = time.perf_counter()
            created = post(url, body)
            wait_done(url, created["job_id"])
            cold_s = time.perf_counter() - start

            start = time.perf_counter()
            for _ in range(SERVICE_WARM_REQUESTS):
                response = post(url, body)
                assert response["cached"] is True
            warm_s = time.perf_counter() - start

            # N concurrent identical clients on a fresh submission.
            fresh = _json.dumps(
                spec.with_updates(
                    cluster=ClusterSpec(seed=1, trace_level=0)
                ).to_dict()).encode("utf-8")
            responses = []

            def client():
                responses.append(post(url, fresh))

            threads = [threading.Thread(target=client)
                       for _ in range(SERVICE_CONCURRENT_CLIENTS)]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wait_done(url, responses[0]["job_id"])
            fanin_s = time.perf_counter() - start
            counters = manager.metrics_snapshot()["service"]["counters"]
        finally:
            server.stop()
            manager.shutdown()
    assert len({r["job_id"] for r in responses}) == 1
    # 2 = the cold job + the fan-in job; everything else attached.
    executed = counters["service.created"]
    assert executed == 2, counters
    return {
        "rounds": spec.n_rounds,
        "cold_s": round(cold_s, 4),
        "warm_requests": SERVICE_WARM_REQUESTS,
        "warm_s": round(warm_s, 4),
        "warm_requests_per_s": round(SERVICE_WARM_REQUESTS / warm_s, 1),
        "speedup": round(cold_s / (warm_s / SERVICE_WARM_REQUESTS), 2),
        "concurrent_clients": SERVICE_CONCURRENT_CLIENTS,
        "concurrent_s": round(fanin_s, 4),
        "simulations_executed": executed - 1,
        "submissions": counters["service.submitted"],
    }


def test_throughput_summary(benchmark):
    def measure():
        points = []
        for n in POINTS:
            rps = _rounds_per_s(n)
            points.append({"n_nodes": n, "rounds": ROUNDS,
                           "rounds_per_s": round(rps, 1),
                           "slots_per_s": round(rps * n, 1)})
        sustained = {
            "n_nodes": SUSTAINED_N, "rounds": ROUNDS,
            "scenario": "crash(2) never isolated; one ε row per matrix",
            "tuple_rounds_per_s": round(_rounds_per_s(
                SUSTAINED_N, bitset=False, sustained_fault=True), 1),
            "bitset_rounds_per_s": round(_rounds_per_s(
                SUSTAINED_N, bitset=True, sustained_fault=True), 1),
        }
        sustained["speedup"] = round(
            sustained["bitset_rounds_per_s"]
            / sustained["tuple_rounds_per_s"], 2)
        backends = _backend_points() if NUMPY_AVAILABLE else None
        return (points, sustained, _campaign_cache_point(),
                _dispatch_point(), _service_point(), backends)

    points, sustained, campaign_cache, dispatch, service, backends = \
        benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [(p["n_nodes"], p["rounds"],
             f"{p['rounds_per_s']:,.0f} rounds/s",
             f"{p['slots_per_s']:,.0f} slots/s") for p in points]
    rows.append((f"{SUSTAINED_N} (faulty)", ROUNDS,
                 f"{sustained['bitset_rounds_per_s']:,.0f} rounds/s",
                 f"{sustained['speedup']}x vs tuple plane"))
    rows.append(("campaign (warm)", campaign_cache["tasks"],
                 f"{campaign_cache['warm_tasks_per_s']:,.0f} tasks/s",
                 f"{campaign_cache['speedup']}x vs cold"))
    rows.append(("consult (batched)", campaign_cache["tasks"],
                 f"{campaign_cache['consult_batched_tasks_per_s']:,.0f} "
                 f"tasks/s",
                 f"{campaign_cache['consult_speedup']}x vs per-key gets"))
    rows.append((f"dispatch (jobs={dispatch['jobs']})", dispatch["tasks"],
                 f"{dispatch['persistent_pool_s']:.2f} s campaign",
                 f"{dispatch['speedup']}x vs per-chunk pools"))
    rows.append(("service (warm)", service["warm_requests"],
                 f"{service['warm_requests_per_s']:,.0f} req/s",
                 f"{service['speedup']}x vs cold POST"))
    rows.append((f"service ({service['concurrent_clients']} clients)",
                 service["concurrent_clients"],
                 f"{service['simulations_executed']} simulation executed",
                 "content-addressed dedup"))
    if backends:
        for p in backends["points"]:
            rows.append((f"{p['n_nodes']} (vectorized)", p["rounds"],
                         f"{p['vectorized_rounds_per_s']:,.0f} rounds/s",
                         f"{p['speedup']}x vs event backend"))
        mc = backends["monte_carlo"]
        rows.append((f"{mc['n_nodes']} (Monte Carlo)", mc["replicates"],
                     f"{mc['replicates_per_s']:,.0f} replicates/s",
                     f"{mc['speedup']}x vs per-task event runs"))
        ge = backends["gilbert_elliott"]
        rows.append((f"{ge['n_nodes']} (GE bursts)", ge["rounds"],
                     f"{ge['vectorized_rounds_per_s']:,.0f} rounds/s",
                     f"{ge['speedup']}x vs event backend"))
    emit("simulator_throughput", render_table(
        ["N", "rounds simulated", "throughput", "slot throughput"],
        rows, title="Substrate throughput (full diagnostic stack)"))
    document = {
        "benchmark": "simulator_throughput",
        "config": {"trace_level": 0, "fault_free": True,
                   "rounds_per_point": ROUNDS},
        "points": points,
        "sustained_fault": sustained,
        "campaign_cache": campaign_cache,
        "dispatch": dispatch,
        "service": service,
    }
    if backends:
        document["backends"] = backends
    emit_json("BENCH_simulator_throughput", document, to_root=True)
