"""Sec. 10: the unchanged protocol across TT platform profiles.

The paper's portability claim, exercised: identical protocol code on
the timing envelopes of FlexRay, TTP/C, SAFEbus and TT-Ethernet.  The
detection latency in *rounds* is platform-invariant (3 rounds with send
alignment); only the wall-clock latency scales with the platform's
round length.  Bandwidth stays N bits per diagnostic message.
"""

from conftest import emit

from repro.analysis.reporting import render_table
from repro.experiments.portability import portability_sweep


def test_portability_sweep(benchmark):
    results = benchmark.pedantic(portability_sweep, rounds=1, iterations=1)
    rows = [(r.platform, r.n_nodes, f"{r.round_ms:.1f} ms",
             r.latency_rounds, f"{r.latency_ms:.1f} ms",
             f"{r.message_bits} bits", f"{r.round_bits} bits",
             "ok" if r.oracle_ok else "VIOLATED")
            for r in results]
    text = render_table(
        ["platform", "N", "round", "latency (rounds)", "latency (ms)",
         "per message", "per round", "Theorem 1 oracle"],
        rows,
        title="Sec. 10 — portability: identical protocol code per platform")
    emit("portability", text)

    assert all(r.oracle_ok for r in results)
    assert {r.latency_rounds for r in results} == {3}
    assert all(r.message_bits == r.n_nodes for r in results)
