"""Figure 3: setting the reward threshold R (rounds of 2.5 ms).

Regenerates the tradeoff the paper plots: for each external transient
rate, the probability of incorrectly correlating a second independent
transient as a function of R, alongside the probability of correctly
correlating a genuinely intermittent internal fault.  The paper's pick
R = 10^6 gives a ≈42 min window with < 1 % transient correlation at the
considered rates.

Closed-form curves are cross-validated by Monte-Carlo simulation of
the p/r counters.
"""

from conftest import emit

from repro.analysis.reporting import render_table
from repro.analysis.reliability import p_correlate_transient
from repro.experiments.figure3 import (
    DEFAULT_RATES_PER_HOUR,
    figure3_series,
    paper_choice_summary,
    simulate_point,
)


def compute_series():
    return figure3_series()


def test_figure3_reward_tradeoff(benchmark):
    series = benchmark(compute_series)

    headers = ["R", "window R*T"]
    headers += [f"P(corr) @ {rate}/h" for rate in DEFAULT_RATES_PER_HOUR]
    headers += ["P(corr intermittent, MTTR 60 s)"]
    rows = []
    for i, point in enumerate(series[0].points):
        window = point.window_seconds
        window_str = (f"{window:.1f} s" if window < 120
                      else f"{window / 60:.1f} min")
        row = [f"1e{len(str(point.reward_threshold)) - 1}", window_str]
        row += [f"{s.points[i].p_correlate_transient:.4g}" for s in series]
        row += [f"{point.p_correlate_intermittent:.4g}"]
        rows.append(row)
    summary = paper_choice_summary()
    text = render_table(
        headers, rows,
        title="Fig. 3 — reward-threshold tradeoff at T = 2.5 ms "
              f"(paper's choice: R = 1e6 -> window ≈ "
              f"{summary['window_minutes']:.1f} min)")
    emit("figure3_reward", text)

    # Paper's headline claims.
    assert 41 < summary["window_minutes"] < 43
    assert summary["p_correlate_at_0.01_per_hour"] < 0.01
    # Monte-Carlo agreement at the paper's operating point.
    mc = simulate_point(1.0, 10 ** 6, trials=3000, seed=0)
    exact = p_correlate_transient(1.0 / 3600.0, 10 ** 6)
    assert abs(mc - exact) < 0.05
