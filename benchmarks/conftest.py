"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered output is printed (run pytest with ``-s`` to see it inline)
and also written to ``benchmarks/results/<name>.txt`` so the
reproduction artefacts survive the run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a reproduction artefact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")
