"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered output is printed (run pytest with ``-s`` to see it inline)
and also written to ``benchmarks/results/<name>.txt`` so the
reproduction artefacts survive the run.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def emit(name: str, text: str) -> None:
    """Print a reproduction artefact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")


def emit_json(name: str, payload: Any, to_root: bool = False) -> None:
    """Persist a machine-readable artefact as ``results/<name>.json``.

    Sorted keys and a fixed indent keep the file stable under
    re-emission, so the perf trajectory is diffable across commits.
    With ``to_root`` the file is additionally published at the
    repository root (headline artefacts tracked in git, e.g.
    ``BENCH_simulator_throughput.json``).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    (RESULTS_DIR / f"{name}.json").write_text(text, encoding="utf-8")
    if to_root:
        (REPO_ROOT / f"{name}.json").write_text(text, encoding="utf-8")
