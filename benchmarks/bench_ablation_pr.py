"""Ablation: the p/r algorithm vs. immediate isolation (Sec. 9).

Quantifies the availability argument the paper makes qualitatively:
under the automotive blinking-light scenario, isolate-on-first-fault
(P = 0) takes down the entire cluster during the first 10 ms burst —
a whole-system restart — while the tuned p/r configuration keeps each
criticality class alive for its full tolerated window and the comfort
electronics ~50x longer than the safety-critical nodes.
"""

from conftest import emit

from repro.analysis.reporting import render_table
from repro.core.config import CriticalityClass
from repro.experiments.adverse import immediate_isolation_ablation

C = CriticalityClass


def run_ablation():
    return immediate_isolation_ablation(seed=0)


def test_ablation_pr_vs_immediate(benchmark):
    ablation = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    pr = ablation.pr_times
    rows = [
        ("immediate isolation (P = 0)", "ALL nodes",
         f"{ablation.immediate_all_down:.3f} s",
         "whole-system restart"),
        ("p/r, tuned (Table 2)", "SC (s = 40)",
         f"{pr[C.SC]:.3f} s", f"{pr[C.SC] / ablation.immediate_all_down:.0f}x longer"),
        ("p/r, tuned (Table 2)", "SR (s = 6)",
         f"{pr[C.SR]:.3f} s", f"{pr[C.SR] / ablation.immediate_all_down:.0f}x longer"),
        ("p/r, tuned (Table 2)", "NSR (s = 1)",
         f"{pr[C.NSR]:.3f} s", f"{pr[C.NSR] / ablation.immediate_all_down:.0f}x longer"),
    ]
    text = render_table(
        ["strategy", "nodes down", "time to isolation", "vs. immediate"],
        rows,
        title="Ablation — availability under the blinking-light scenario")
    emit("ablation_pr", text)

    assert ablation.immediate_all_down < 0.05
    assert pr[C.SC] > 10 * ablation.immediate_all_down
    assert pr[C.NSR] > 40 * pr[C.SC]
