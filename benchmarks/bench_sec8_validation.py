"""Sec. 8: the fault-injection validation campaign.

The paper injects 1500 physical faults over 18 experiment classes on a
4-node cluster and reports that the protocol properties held in every
experiment.  This benchmark reruns the campaign on the simulated
cluster (a configurable number of repetitions per class — the paper
uses 100; the benchmark default keeps the run short while the full
campaign is available via ``repro-diag validate --reps 100``) and
prints the per-class pass rates.
"""

import os

from conftest import emit

from repro.analysis.reporting import render_table
from repro.runner.sweep import run_validation_sweep

REPETITIONS = 3
#: Worker processes for the sweep; the aggregate result is identical
#: for any value (the sweep merges verdicts in task order).
JOBS = min(4, os.cpu_count() or 1)


def run_campaign():
    return run_validation_sweep(repetitions=REPETITIONS, jobs=JOBS)


def test_sec8_validation_campaign(benchmark):
    summary = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    rates = summary.pass_rates()
    rows = [(cls, len(summary.results[cls]), f"{100 * rates[cls]:.0f}%")
            for cls in sorted(summary.results)]
    rows.append(("TOTAL", summary.total_injections,
                 "100%" if summary.all_passed else "FAILURES"))
    text = render_table(
        ["experiment class", "injections", "pass rate"], rows,
        title=f"Sec. 8 — validation campaign ({REPETITIONS} repetitions "
              f"per class; paper: 100 reps, 1500 injections, all passed)")
    emit("sec8_validation", text)
    assert summary.all_passed
    assert len(summary.results) == 18
