"""Table 1: the example diagnostic matrix (nodes 3-4 benign faulty).

Regenerates the paper's worked example: two coincident benign faulty
senders (3 and 4) fail in both the diagnosed and the dissemination
round; the remaining nodes' syndromes plus ε rows vote to the
consistent health vector ``1 1 0 0``.

The benchmark times one full protocol pipeline on the simulated
cluster (fault injection -> dissemination -> aggregation -> voting) and
prints the matrix as in Table 1.
"""

from conftest import emit

from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster
from repro.core.syndrome import EPSILON, DiagnosticMatrix
from repro.core.voting import h_maj
from repro.faults.scenarios import SenderFault

FAULT_ROUNDS = [6, 7, 8, 9]  # diagnosed + dissemination rounds


def build_and_vote():
    """Run the Table 1 scenario and return (matrix, cons_hv)."""
    config = uniform_config(4, penalty_threshold=10 ** 6,
                            reward_threshold=10 ** 6)
    dc = DiagnosedCluster(config, seed=0)
    for faulty in (3, 4):
        dc.cluster.add_scenario(SenderFault(faulty, kind="benign",
                                            rounds=FAULT_ROUNDS))
    dc.run_rounds(14)

    # Reconstruct the matrix node 1 voted on for diagnosed round 6:
    # rows are the syndromes disseminated about round 6 (ε for the
    # faulty senders whose dissemination also failed).
    matrix = DiagnosticMatrix(4)
    for sender in range(1, 5):
        if sender in (3, 4):
            matrix.set_row(sender, EPSILON)
        else:
            syndrome = dc.trace.first("syndrome", node=sender,
                                      round_index=7)
            matrix.set_row(sender, syndrome.data["syndrome"])
    cons_hv = tuple(h_maj(matrix.column(j)) for j in range(1, 5))
    observed = dc.health_vectors(1)[6]
    assert observed == cons_hv == (1, 1, 0, 0), (observed, cons_hv)
    return matrix, cons_hv


def test_table1_matrix(benchmark):
    matrix, cons_hv = benchmark(build_and_vote)
    text = (
        "Table 1 — example diagnostic matrix (nodes 3 and 4 benign faulty)\n"
        + matrix.render()
        + "\nvoted cons_hv | " + "  ".join(map(str, cons_hv))
        + "\npaper          | 1  1  0  0"
    )
    emit("table1_matrix", text)
    assert cons_hv == (1, 1, 0, 0)
