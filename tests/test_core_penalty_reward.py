"""Unit tests for the penalty/reward algorithm (Alg. 2)."""

import pytest

from repro.core.config import uniform_config
from repro.core.penalty_reward import (
    PenaltyRewardState,
    faulty_rounds_to_isolation,
    isolation_latency_seconds,
    rounds_to_isolation,
    transient_correlation_probability,
)


def make_pr(penalty_threshold=3, reward_threshold=5, criticalities=None,
            n=4):
    config = uniform_config(n, penalty_threshold=penalty_threshold,
                            reward_threshold=reward_threshold)
    if criticalities is not None:
        config = config.with_updates(criticalities=criticalities)
    return PenaltyRewardState(config)


HEALTHY = [1, 1, 1, 1]


class TestUpdate:
    def test_initial_counters_zero(self):
        pr = make_pr()
        assert pr.penalties == [0, 0, 0, 0]
        assert pr.rewards == [0, 0, 0, 0]

    def test_fault_increments_penalty_by_criticality(self):
        pr = make_pr(criticalities=[40, 6, 1, 40])
        pr.update([0, 0, 0, 1])
        assert pr.penalties == [40, 6, 1, 0]

    def test_fault_resets_reward(self):
        pr = make_pr()
        pr.update([0, 1, 1, 1])
        pr.update(HEALTHY)
        assert pr.rewards[0] == 1
        pr.update([0, 1, 1, 1])
        assert pr.rewards[0] == 0

    def test_reward_only_grows_with_pending_penalty(self):
        # Alg. 2: the reward branch requires penalties[i] > 0.
        pr = make_pr()
        pr.update(HEALTHY)
        assert pr.rewards == [0, 0, 0, 0]

    def test_reward_threshold_clears_both_counters(self):
        pr = make_pr(reward_threshold=3)
        pr.update([0, 1, 1, 1])
        for _ in range(3):
            pr.update(HEALTHY)
        assert pr.penalties[0] == 0
        assert pr.rewards[0] == 0

    def test_penalty_strictly_above_threshold_isolates(self):
        pr = make_pr(penalty_threshold=3)
        acts = [pr.update([0, 1, 1, 1]) for _ in range(4)]
        # Penalties 1, 2, 3 are tolerated; 4 > 3 isolates.
        assert [a[0] for a in acts] == [1, 1, 1, 0]

    def test_zero_threshold_isolates_first_fault(self):
        pr = make_pr(penalty_threshold=0)
        act = pr.update([0, 1, 1, 1])
        assert act[0] == 0

    def test_counters_keep_accumulating_after_threshold(self):
        # Alg. 2 has no special case for already-isolated nodes; the
        # AND with the activity vector happens in the caller.
        pr = make_pr(penalty_threshold=1)
        for _ in range(5):
            act = pr.update([0, 1, 1, 1])
        assert pr.penalties[0] == 5
        assert act[0] == 0

    def test_independent_per_node_counters(self):
        pr = make_pr()
        pr.update([0, 1, 0, 1])
        pr.update([1, 1, 0, 1])
        assert pr.penalties == [1, 0, 2, 0]
        assert pr.rewards == [1, 0, 0, 0]

    def test_size_mismatch_rejected(self):
        pr = make_pr()
        with pytest.raises(ValueError):
            pr.update([1, 1])

    def test_update_single_matches_update(self):
        full = make_pr(penalty_threshold=2, reward_threshold=3)
        single = make_pr(penalty_threshold=2, reward_threshold=3)
        pattern = [[0, 1, 1, 1], HEALTHY, [0, 1, 1, 1], HEALTHY, HEALTHY,
                   HEALTHY, [0, 0, 1, 1]]
        for hv in pattern:
            acts = full.update(hv)
            singles = [single.update_single(j, faulty=(hv[j - 1] == 0))
                       for j in range(1, 5)]
            assert acts == singles
            assert full.snapshot() == single.snapshot()

    def test_reset_node(self):
        pr = make_pr()
        pr.update([0, 1, 1, 1])
        pr.reset_node(1)
        assert pr.counters_of(1) == (0, 0)


class TestDerivedQuantities:
    def test_faulty_rounds_to_isolation(self):
        # P=197: criticality 40 -> isolated on round floor(197/40)+1 = 5.
        assert faulty_rounds_to_isolation(197, 40) == 5
        assert faulty_rounds_to_isolation(197, 6) == 33
        assert faulty_rounds_to_isolation(197, 1) == 198
        assert faulty_rounds_to_isolation(17, 1) == 18
        assert faulty_rounds_to_isolation(0, 1) == 1

    def test_matches_simulated_counters(self):
        for P, s in [(197, 40), (17, 1), (3, 1), (10, 4)]:
            pr = make_pr(penalty_threshold=P, criticalities=[s, 1, 1, 1])
            rounds = 0
            while True:
                rounds += 1
                if pr.update([0, 1, 1, 1])[0] == 0:
                    break
            assert rounds == faulty_rounds_to_isolation(P, s)

    def test_rounds_to_isolation_uses_node_criticality(self):
        config = uniform_config(4, penalty_threshold=197,
                                reward_threshold=10).with_updates(
            criticalities=[40, 6, 1, 40])
        assert rounds_to_isolation(config, 1) == 5
        assert rounds_to_isolation(config, 3) == 198

    def test_isolation_latency_includes_pipeline(self):
        config = uniform_config(4, penalty_threshold=3, reward_threshold=10)
        # 4 faulty rounds + 3 pipeline rounds, at 2.5 ms.
        assert isolation_latency_seconds(config, 1, 2.5e-3) == \
            pytest.approx(7 * 2.5e-3)

    def test_transient_correlation_probability(self):
        # Paper: R = 1e6, T = 2.5 ms -> window = 2500 s.
        p = transient_correlation_probability(1 / 250000.0, 10 ** 6, 2.5e-3)
        assert p == pytest.approx(1 - pow(2.718281828459045, -0.01), rel=1e-6)
        assert transient_correlation_probability(0.0, 10, 1.0) == 0.0
        with pytest.raises(ValueError):
            transient_correlation_probability(-1.0, 10, 1.0)


class TestValidationErrors:
    def test_criticality_must_be_positive(self):
        with pytest.raises(ValueError):
            faulty_rounds_to_isolation(10, 0)
