"""Exhaustive serialization round-trip over the scenario registry.

Every type in ``SCENARIO_REGISTRY`` must survive
``to_dict -> from_dict -> to_dict`` with an identical dict and an
identical repr.  The ``EXAMPLES`` table below is asserted to cover the
registry *exactly*, so registering a new scenario type without adding
an example here fails this module loudly instead of silently shipping
an untested serialization path.
"""

from __future__ import annotations

import pytest

from repro.sim.rng import RandomStreams
from repro.spec.model import SCENARIO_REGISTRY

# One representative parameter dict per registered type.  Values are
# chosen to exercise non-default fields (optional windows, explicit
# causes, stream names) so the round-trip covers more than defaults.
EXAMPLES = {
    "AdaptiveSaboteur": {"sender": 2, "margin": 3, "cause": "sab"},
    "BurstSequence": {"start": 0.001,
                      "pattern": [[0.0, 0.0005], [0.002, 0.0004]],
                      "cause": "lightning"},
    "BusBurst": {"start": 0.002, "duration": 0.001, "cause": "noise",
                 "min_overlap": 0.1},
    "ChannelBurst": {"channel": 1, "start": 0.0, "duration": 0.0005},
    "CorrelatedEMI": {"event_rate": 0.25, "width": 2, "cause": "emi",
                      "rng_stream": "emi"},
    "DutyCycleIntermittent": {"sender": 3, "period_rounds": 6,
                              "on_rounds": 2, "first_round": 4,
                              "rng_stream": "duty"},
    "FaultStorm": {"gust_rate": 0.3, "intensity": 0.5, "senders": [1, 3],
                   "start_round": 2, "duration_rounds": 10,
                   "rng_stream": "storm"},
    "GilbertElliottChannel": {"p_gb": 0.1, "p_bg": 0.4,
                              "error_good": 0.02, "error_bad": 0.95,
                              "start_bad": True, "rng_stream": "ge"},
    "IntermittentSender": {"sender": 2, "mean_reappearance_rounds": 5.0,
                           "burst_rounds": 2, "first_round": 1,
                           "rng_stream": "int"},
    "PeriodicBurst": {"start": 0.0, "burst_length": 0.0004,
                      "time_to_reappearance": 0.01, "count": 3},
    "PoissonTransients": {"rate": 120.0, "burst_length": 0.0005,
                          "start": 0.001, "rng_stream": "poisson"},
    "RandomSlotNoise": {"probability": 0.1, "rng_stream": "noise"},
    "SenderFault": {"sender": 1, "kind": "benign", "rounds": [0, 2, 5]},
    "SlotBurst": {"round_index": 3, "slot": 2, "n_slots": 2},
}


def test_examples_cover_registry_exactly():
    """New registrations must add an example here (and vice versa)."""
    assert set(EXAMPLES) == set(SCENARIO_REGISTRY)


@pytest.mark.parametrize("type_name", sorted(EXAMPLES))
def test_registry_round_trip_is_identity(type_name):
    cls = SCENARIO_REGISTRY[type_name]
    data = {"type": type_name, **EXAMPLES[type_name]}
    first = cls.from_dict(data, streams=RandomStreams(0))
    once = first.to_dict()
    assert once["type"] == type_name
    second = cls.from_dict(once, streams=RandomStreams(0))
    assert second.to_dict() == once
    assert repr(second) == repr(first)


@pytest.mark.parametrize("type_name", sorted(EXAMPLES))
def test_registry_dicts_are_json_native(type_name):
    """Every spec dict survives the JSON codec unchanged."""
    import json

    cls = SCENARIO_REGISTRY[type_name]
    data = {"type": type_name, **EXAMPLES[type_name]}
    once = cls.from_dict(data, streams=RandomStreams(0)).to_dict()
    assert json.loads(json.dumps(once)) == once
