"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig, uniform_config
from repro.core.service import DiagnosedCluster
from repro.tt.timebase import TimeBase


@pytest.fixture
def timebase() -> TimeBase:
    """The paper's prototype timing: 4 slots, 2.5 ms rounds."""
    return TimeBase(n_slots=4, round_length=2.5e-3)


@pytest.fixture
def permissive_config() -> ProtocolConfig:
    """A 4-node config whose p/r thresholds never trigger (pure
    diagnosis tests)."""
    return uniform_config(4, penalty_threshold=10 ** 6,
                          reward_threshold=10 ** 6)


@pytest.fixture
def small_config() -> ProtocolConfig:
    """A 4-node config with small thresholds (isolation tests)."""
    return uniform_config(4, penalty_threshold=3, reward_threshold=10)


def make_cluster(config: ProtocolConfig, **kwargs) -> DiagnosedCluster:
    """Convenience constructor used across integration tests."""
    kwargs.setdefault("seed", 0)
    return DiagnosedCluster(config, **kwargs)
