"""Shared fixtures and determinism policy for the test suite.

Statistical tests (marker ``statistical``, see ``pyproject.toml``)
compare sampled frequencies against closed forms.  They are required
to be *deterministic*: every random draw must come from an explicitly
seeded ``random.Random`` / ``RandomStreams``, so each test observes
one frozen sample path and its tolerance band (documented inline,
sized at roughly four standard deviations of the estimator) either
always holds or never holds — tier-1 cannot flake.  The autouse
fixture below enforces the seeding discipline by poisoning the global
``random`` module for the duration of any ``statistical`` test.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import ProtocolConfig, uniform_config
from repro.core.service import DiagnosedCluster
from repro.tt.timebase import TimeBase


@pytest.fixture(autouse=True)
def _statistical_tests_forbid_global_random(request):
    """Fail any ``statistical`` test that touches the *global* RNG.

    The shared ``random`` module is process-global mutable state; a
    statistical test drawing from it would see a sample path dependent
    on test ordering.  Only instance RNGs with explicit seeds are
    allowed inside such tests.
    """
    if request.node.get_closest_marker("statistical") is None:
        yield
        return

    def _poisoned(*_args, **_kwargs):
        raise AssertionError(
            "statistical tests must draw from an explicitly seeded "
            "random.Random/RandomStreams instance, not the global "
            "random module (ordering-dependent, can flake)")

    saved = random.random, random.randrange, random.randint, random.uniform
    random.random = random.randrange = _poisoned
    random.randint = random.uniform = _poisoned
    try:
        yield
    finally:
        (random.random, random.randrange,
         random.randint, random.uniform) = saved


@pytest.fixture
def timebase() -> TimeBase:
    """The paper's prototype timing: 4 slots, 2.5 ms rounds."""
    return TimeBase(n_slots=4, round_length=2.5e-3)


@pytest.fixture
def permissive_config() -> ProtocolConfig:
    """A 4-node config whose p/r thresholds never trigger (pure
    diagnosis tests)."""
    return uniform_config(4, penalty_threshold=10 ** 6,
                          reward_threshold=10 ** 6)


@pytest.fixture
def small_config() -> ProtocolConfig:
    """A 4-node config with small thresholds (isolation tests)."""
    return uniform_config(4, penalty_threshold=3, reward_threshold=10)


def make_cluster(config: ProtocolConfig, **kwargs) -> DiagnosedCluster:
    """Convenience constructor used across integration tests."""
    kwargs.setdefault("seed", 0)
    return DiagnosedCluster(config, **kwargs)
