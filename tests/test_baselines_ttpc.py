"""Tests for the TTP/C-style membership baseline.

These encode the behavioural contrasts the paper draws in Sec. 2:
TTP/C handles a single fault with low latency but relies on the
single-fault assumption — coincident faults can take down correct
nodes via the clique-avoidance check.
"""

import pytest

from repro.baselines.ttpc_membership import (
    TTPCMembershipCluster,
    asymmetric_receiver_fault,
    benign_sender_fault,
    coincident_sender_faults,
)


class TestFaultFree:
    def test_stable_full_membership(self):
        cluster = TTPCMembershipCluster(4)
        cluster.run_rounds(10)
        assert cluster.alive_nodes() == (1, 2, 3, 4)
        assert cluster.consistent_membership()
        assert cluster.membership_of(1) == frozenset({1, 2, 3, 4})
        assert not cluster.self_removals

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            TTPCMembershipCluster(1)


class TestSingleSenderFault:
    def test_sender_removed_from_all_memberships(self):
        cluster = TTPCMembershipCluster(4)
        cluster.run_rounds(6, benign_sender_fault(2, slot=3, n_nodes=4))
        for node in (1, 2, 4):
            assert 3 not in cluster.membership_of(node)
        assert cluster.consistent_membership()

    def test_faulty_sender_fails_silent_at_next_slot(self):
        cluster = TTPCMembershipCluster(4)
        cluster.run_rounds(6, benign_sender_fault(2, slot=3, n_nodes=4))
        # Node 3 sees everyone's membership excluding it -> rejections
        # dominate at its next slot -> clique-avoidance self-removal.
        assert (3, 3, 3) in [(k, s, n) for k, s, n in cluster.self_removals]

    def test_correct_nodes_survive(self):
        cluster = TTPCMembershipCluster(4)
        cluster.run_rounds(6, benign_sender_fault(2, slot=3, n_nodes=4))
        assert set(cluster.alive_nodes()) == {1, 2, 4}


class TestAsymmetricReceiverFault:
    def test_minority_receiver_eliminated_within_two_rounds(self):
        cluster = TTPCMembershipCluster(4)
        # Node 4 alone misses node 2's frame in round 1.
        cluster.run_rounds(4, asymmetric_receiver_fault(1, slot=2,
                                                        failed_receivers={4}))
        assert 4 not in cluster.alive_nodes()
        removal_rounds = [k for k, s, n in cluster.self_removals if n == 4]
        assert removal_rounds and removal_rounds[0] <= 3
        # The majority keeps a consistent membership.
        assert cluster.consistent_membership()


class TestSingleFaultAssumptionViolation:
    def test_coincident_faults_take_down_correct_nodes(self):
        # Two benign sender faults in one round (N=4): every correct
        # node rejects 2 of its 3 observed frames, fails the
        # clique-avoidance check and drops out — the whole-system
        # failure mode the add-on protocol avoids (it tolerates b=2 at
        # N=4 by Lemma 2).
        cluster = TTPCMembershipCluster(4)
        cluster.run_rounds(6, coincident_sender_faults(1, (2, 3), n_nodes=4))
        assert cluster.surviving_fraction() < 1.0
        victims = {n for _k, _s, n in cluster.self_removals}
        assert victims - {2, 3}, "a correct node must have been taken down"

    def test_single_fault_keeps_availability_high(self):
        cluster = TTPCMembershipCluster(4)
        cluster.run_rounds(6, benign_sender_fault(1, slot=2, n_nodes=4))
        assert cluster.surviving_fraction() == pytest.approx(3 / 4)
