"""Tests for the platform profiles and the portability harness."""

import pytest

from repro.experiments.portability import (
    diagnosed_cluster_for,
    portability_sweep,
    run_on_platform,
)
from repro.tt.platforms import (
    FLEXRAY,
    PLATFORMS,
    SAFEBUS,
    TTP_C,
    TT_ETHERNET,
)


class TestProfiles:
    def test_all_named_platforms_present(self):
        assert set(PLATFORMS) == {"FlexRay", "TTP/C", "SAFEbus",
                                  "TT-Ethernet"}

    def test_ttpc_matches_paper_prototype(self):
        assert TTP_C.round_length == pytest.approx(2.5e-3)
        assert TTP_C.default_n_nodes == 4
        assert TTP_C.n_channels == 2

    def test_timebase_generation(self):
        tb = FLEXRAY.timebase()
        assert tb.n_slots == 8
        assert tb.round_length == pytest.approx(5e-3)
        tb16 = FLEXRAY.timebase(16)
        assert tb16.n_slots == 16

    def test_make_cluster(self):
        cluster = SAFEBUS.make_cluster(seed=1)
        assert cluster.n_nodes == 4
        assert cluster.bus.n_channels == 2
        cluster.run_rounds(2)
        assert cluster.trace.count("tx") == 8


class TestPortabilityHarness:
    def test_diagnosed_cluster_inherits_profile(self):
        dc = diagnosed_cluster_for(TT_ETHERNET)
        assert dc.config.n_nodes == 8
        assert dc.cluster.timebase.round_length == pytest.approx(10e-3)
        assert dc.cluster.bus.n_channels == 1

    @pytest.mark.parametrize("profile", list(PLATFORMS.values()),
                             ids=lambda p: p.name)
    def test_protocol_unchanged_on_each_platform(self, profile):
        result = run_on_platform(profile, seed=0)
        assert result.oracle_ok
        assert result.latency_rounds == 3
        assert result.message_bits == result.n_nodes

    def test_sweep_covers_all_platforms(self):
        results = portability_sweep(seed=1)
        assert [r.platform for r in results] == \
            ["FlexRay", "TTP/C", "SAFEbus", "TT-Ethernet"]
        # Wall-clock latency scales with the round length.
        by_name = {r.platform: r for r in results}
        assert by_name["SAFEbus"].latency_ms < by_name["TTP/C"].latency_ms \
            < by_name["TT-Ethernet"].latency_ms
