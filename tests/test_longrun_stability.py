"""Long-horizon stability tests (marked slow).

These runs exercise the stack for thousands of rounds with mixed
stochastic fault processes and assert global invariants: bounded
memory in the protocol buffers, oracle-clean diagnosis wherever the
theorem conditions hold, and consistent p/r counter evolution across
all obedient nodes.
"""

import pytest

from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster, LowLatencyCluster
from repro.experiments.oracle import check_against_oracle
from repro.faults.processes import IntermittentSender, PoissonTransients


def mixed_cluster(seed=0, n_rounds=4000):
    # R = 400 rounds (1 s) correlates the intermittent's reappearances
    # (mean 40 rounds; a >400-round gap is a 1-in-e^10 event) while the
    # per-node external transient inter-arrival (~1600 rounds at 1/s on
    # the bus) almost always resets — the Fig. 3 design point, scaled.
    config = uniform_config(4, penalty_threshold=20, reward_threshold=400)
    dc = DiagnosedCluster(config, seed=seed, trace_level=1)
    streams = dc.cluster.streams
    dc.cluster.add_scenario(PoissonTransients(
        rate=1.0, burst_length=0.5e-3, rng=streams.stream("transients")))
    dc.cluster.add_scenario(IntermittentSender(
        3, mean_reappearance_rounds=40, rng=streams.stream("intermittent")))
    dc.run_rounds(n_rounds)
    return dc


@pytest.mark.slow
class TestLongRun:
    def test_counters_stay_consistent_for_thousands_of_rounds(self):
        dc = mixed_cluster(seed=1)
        snapshots = {i: dc.service(i).pr.snapshot() for i in (1, 2, 4)}
        assert len({str(s) for s in snapshots.values()}) == 1
        actives = {tuple(dc.service(i).active) for i in (1, 2, 4)}
        assert len(actives) == 1

    def test_unhealthy_node_eventually_isolated_healthy_not(self):
        dc = mixed_cluster(seed=2)
        active = dc.service(1).active
        assert active[2] == 0, "the intermittent node must be isolated"
        assert active[0] == 1 and active[1] == 1 and active[3] == 1

    def test_protocol_buffers_bounded(self):
        dc = mixed_cluster(seed=3, n_rounds=2000)
        for i in range(1, 5):
            service = dc.service(i)
            assert len(service._own_ls_by_round) <= 8
            controller = dc.cluster.node(i).controller
            for history in controller._history.values():
                assert len(history) <= 4

    def test_oracle_clean_over_long_mixed_run(self):
        config = uniform_config(4, penalty_threshold=10 ** 6,
                                reward_threshold=10 ** 6)
        dc = DiagnosedCluster(config, seed=4, trace_level=2)
        dc.cluster.add_scenario(PoissonTransients(
            rate=2.0, burst_length=0.4e-3,
            rng=dc.cluster.streams.stream("transients")))
        dc.run_rounds(1500)
        report = check_against_oracle(dc)
        assert report.ok, report.violations[:3]
        assert report.rounds_checked > 1000

    def test_lowlatency_long_run_consistency(self):
        config = uniform_config(4, penalty_threshold=50,
                                reward_threshold=200)
        llc = LowLatencyCluster(config, seed=5, trace_level=0)
        llc.cluster.add_scenario(PoissonTransients(
            rate=2.0, burst_length=0.4e-3,
            rng=llc.cluster.streams.stream("transients")))
        llc.run_rounds(2000)
        assert llc.consistent_verdicts()
        actives = {tuple(llc.service(i).active) for i in range(1, 5)}
        assert len(actives) == 1
