"""Tests for the application layer (producers, consumers, outages)."""

import pytest

from repro.apps import ConsumerJob, ProducerJob, app_channel
from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster
from repro.faults.scenarios import SenderFault, SlotBurst, crash
from repro.sim.trace import Trace


def build(config=None, seed=0):
    config = config or uniform_config(4, penalty_threshold=10 ** 6,
                                      reward_threshold=10 ** 6)
    return DiagnosedCluster(config, seed=seed)


def install_pair(dc, provider=2, consumer_node=1, budget=4,
                 with_diag_link=True):
    producer = ProducerJob("speed")
    consumer = ConsumerJob(
        "speed", provider=provider, tolerated_outage_rounds=budget,
        trace=dc.trace,
        diagnostic=dc.service(consumer_node) if with_diag_link else None)
    dc.cluster.install_job(provider, producer)
    dc.cluster.install_job(consumer_node, consumer)
    return producer, consumer


class TestEndToEnd:
    def test_values_flow_with_one_round_delay(self):
        dc = build()
        producer, consumer = install_pair(dc)
        dc.run_rounds(10)
        assert consumer.consumed
        for round_index, value in consumer.consumed:
            # The consumer (job at round k, l=0) reads the value the
            # producer published in round k-1 or k-2 depending on the
            # producer's slot position vs. its job offset.
            assert value in (round_index - 1, round_index - 2)

    def test_app_and_diag_share_the_frame(self):
        dc = build()
        producer, consumer = install_pair(dc)
        dc.run_rounds(10)
        # The diagnostic protocol is unaffected by the co-hosted app...
        assert dc.consistent_health_history()
        # ...and the frame carries both channels.
        tx_payload = dc.cluster.node(1).controller.read_interface()[2]
        assert "diag" in tx_payload
        assert app_channel("speed") in tx_payload

    def test_transient_outage_within_budget(self):
        dc = build()
        producer, consumer = install_pair(dc, budget=4)
        dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, 6, 2, 1))
        dc.run_rounds(14)
        assert consumer.worst_outage == 1
        assert not consumer.deadline_misses
        assert not dc.trace.select(category="outage")

    def test_outage_recorded_when_budget_exceeded(self):
        dc = build()
        producer, consumer = install_pair(dc, budget=3,
                                          with_diag_link=False)
        dc.cluster.add_scenario(SenderFault(
            2, kind="benign", rounds=lambda k: 6 <= k < 12))
        dc.run_rounds(16)
        assert consumer.deadline_misses == [10]  # 4th missed round
        outages = dc.trace.select(category="outage")
        assert len(outages) == 1
        assert outages[0].data["provider"] == 2

    def test_isolation_triggers_recovery_before_deadline(self):
        # The Sec. 9 contract: tune P so diagnosis completes inside the
        # application's outage budget -> the consumer never misses its
        # deadline; it switches to recovery when the provider is
        # isolated.
        config = uniform_config(4, penalty_threshold=2, reward_threshold=10)
        dc = build(config)
        # Budget of 7 rounds > isolation latency (3 faulty rounds + 3
        # pipeline rounds).
        producer, consumer = install_pair(dc, budget=7)
        dc.cluster.add_scenario(crash(2, from_round=6))
        dc.run_rounds(20)
        assert consumer.recovered_at is not None
        assert not consumer.deadline_misses
        rec = dc.trace.select(category="recovery")
        assert rec and rec[0].data["provider"] == 2

    def test_under_tuned_budget_misses_deadline(self):
        # Conversely, an outage budget below the diagnostic latency is
        # violated before diagnosis completes -> the tuning procedure
        # would reject this configuration.
        config = uniform_config(4, penalty_threshold=10, reward_threshold=10)
        dc = build(config)
        producer, consumer = install_pair(dc, budget=3)
        dc.cluster.add_scenario(crash(2, from_round=6))
        dc.run_rounds(20)
        assert consumer.deadline_misses


class TestValidation:
    def test_budget_positive(self):
        with pytest.raises(ValueError):
            ConsumerJob("x", provider=1, tolerated_outage_rounds=0,
                        trace=Trace())

    def test_producer_custom_compute(self):
        dc = build()
        producer = ProducerJob("cmd", compute=lambda k: {"round": k})
        consumer = ConsumerJob("cmd", provider=3,
                               tolerated_outage_rounds=5, trace=dc.trace)
        dc.cluster.install_job(3, producer)
        dc.cluster.install_job(1, consumer)
        dc.run_rounds(8)
        assert consumer.consumed
        assert all(isinstance(v, dict) for _k, v in consumer.consumed)
