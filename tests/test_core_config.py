"""Unit tests for protocol configuration."""

import pytest

from repro.core.config import (
    AEROSPACE_PENALTY_THRESHOLD,
    AUTOMOTIVE_PENALTY_THRESHOLD,
    PAPER_REWARD_THRESHOLD,
    CriticalityClass,
    IsolationMode,
    ProtocolConfig,
    aerospace_config,
    automotive_config,
    uniform_config,
)


class TestValidation:
    def test_minimum_nodes(self):
        with pytest.raises(ValueError):
            uniform_config(1)

    def test_criticalities_length(self):
        with pytest.raises(ValueError):
            ProtocolConfig(n_nodes=4, penalty_threshold=1,
                           reward_threshold=1, criticalities=[1, 1])

    def test_criticalities_positive(self):
        with pytest.raises(ValueError):
            ProtocolConfig(n_nodes=2, penalty_threshold=1,
                           reward_threshold=1, criticalities=[1, 0])

    def test_thresholds(self):
        with pytest.raises(ValueError):
            uniform_config(4, penalty_threshold=-1)
        with pytest.raises(ValueError):
            uniform_config(4, reward_threshold=0)

    def test_reintegration_requires_observe(self):
        with pytest.raises(ValueError):
            uniform_config(4, reintegration_reward_threshold=10)
        # OK with observe mode.
        cfg = uniform_config(4, isolation_mode=IsolationMode.OBSERVE,
                             reintegration_reward_threshold=10)
        assert cfg.reintegration_reward_threshold == 10


class TestDerived:
    def test_criticality_of_is_one_based(self):
        cfg = uniform_config(4).with_updates(criticalities=[40, 6, 1, 40])
        assert cfg.criticality_of(1) == 40
        assert cfg.criticality_of(3) == 1

    def test_detection_pipeline_rounds(self):
        assert uniform_config(4).detection_pipeline_rounds() == 3
        assert uniform_config(
            4, all_send_curr_round=True).detection_pipeline_rounds() == 2

    def test_halt_defaults_by_mode(self):
        assert uniform_config(4).effective_halt_on_self_isolation is True
        observe = uniform_config(4, isolation_mode=IsolationMode.OBSERVE)
        assert observe.effective_halt_on_self_isolation is False
        forced = uniform_config(4, halt_on_self_isolation=False)
        assert forced.effective_halt_on_self_isolation is False

    def test_with_updates_returns_new_config(self):
        cfg = uniform_config(4)
        other = cfg.with_updates(penalty_threshold=99)
        assert other.penalty_threshold == 99
        assert cfg.penalty_threshold != 99


class TestPresets:
    def test_automotive_table2(self):
        cfg = automotive_config([CriticalityClass.SC, CriticalityClass.SR,
                                 CriticalityClass.NSR, CriticalityClass.SC])
        assert cfg.penalty_threshold == AUTOMOTIVE_PENALTY_THRESHOLD == 197
        assert cfg.reward_threshold == PAPER_REWARD_THRESHOLD == 10 ** 6
        assert list(cfg.criticalities) == [40, 6, 1, 40]

    def test_aerospace_table2(self):
        cfg = aerospace_config(4)
        assert cfg.penalty_threshold == AEROSPACE_PENALTY_THRESHOLD == 17
        assert list(cfg.criticalities) == [1, 1, 1, 1]
