"""Serial/parallel exactness of the experiment runner.

The contract of :mod:`repro.runner` is that the worker count is purely
an execution detail: ``jobs=1`` reproduces the serial campaign
functions exactly, and any ``jobs > 1`` reproduces ``jobs=1`` exactly
(explicit per-task seeds, submission-order merging).  These tests pin
both halves of the contract plus the pool primitives themselves.
"""

import pytest

from repro.experiments.table2 import table2
from repro.experiments.validation import run_validation_campaign
from repro.runner.pool import Task, TaskError, derive_task_seeds, run_tasks
from repro.runner.sweep import (
    run_table2_sweep,
    run_validation_sweep,
    validation_tasks,
)

REPS = 2


def _square(x):
    return x * x


def _boom():
    raise RuntimeError("worker failure")


class TestPool:
    def test_serial_preserves_task_order(self):
        tasks = [Task(_square, (i,)) for i in range(6)]
        assert run_tasks(tasks, jobs=1) == [i * i for i in range(6)]

    def test_parallel_preserves_task_order(self):
        tasks = [Task(_square, (i,)) for i in range(12)]
        assert run_tasks(tasks, jobs=4) == [i * i for i in range(12)]

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="worker failure"):
            run_tasks([Task(_boom)], jobs=2)
        with pytest.raises(RuntimeError, match="worker failure"):
            run_tasks([Task(_boom)], jobs=1)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_collect_mode_keeps_sibling_results(self, jobs):
        tasks = [Task(_square, (1,)), Task(_boom), Task(_square, (3,))]
        results = run_tasks(tasks, jobs=jobs, on_error="collect")
        assert results[0] == 1 and results[2] == 9
        error = results[1]
        assert isinstance(error, TaskError)
        assert error.index == 1
        assert error.error_type == "RuntimeError"
        assert error.message == "worker failure"
        assert not error.timed_out
        assert "RuntimeError" in error.traceback

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_collect_mode_all_failures(self, jobs):
        results = run_tasks([Task(_boom), Task(_boom)], jobs=jobs,
                            on_error="collect")
        assert all(isinstance(r, TaskError) for r in results)
        assert [r.index for r in results] == [0, 1]

    def test_raise_mode_raises_first_error_in_task_order(self):
        tasks = [Task(_square, (1,)), Task(_boom), Task(_square, (2,))]
        with pytest.raises(RuntimeError, match="worker failure"):
            run_tasks(tasks, jobs=2)

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_tasks([], on_error="ignore")

    def test_derived_seeds_stable_and_distinct(self):
        seeds = derive_task_seeds(0, "burst", 8)
        assert seeds == derive_task_seeds(0, "burst", 8)
        assert len(set(seeds)) == len(seeds)
        assert derive_task_seeds(0, "clique", 8) != seeds
        assert derive_task_seeds(1, "burst", 8) != seeds
        with pytest.raises(ValueError):
            derive_task_seeds(0, "burst", -1)


class TestValidationSweep:
    def test_task_grid_matches_campaign_shape(self):
        tasks = validation_tasks(repetitions=1, n_nodes=4)
        classes = [cls for cls, _task in tasks]
        # 12 burst classes + penalty-reward + 4 malicious + clique = 18.
        assert len(set(classes)) == 18
        assert len(tasks) == 18

    def test_jobs1_matches_serial_campaign(self):
        serial = run_validation_campaign(repetitions=REPS)
        sweep = run_validation_sweep(repetitions=REPS, jobs=1)
        assert sweep.results == serial.results
        assert sweep.total_injections == serial.total_injections
        assert sweep.all_passed == serial.all_passed

    def test_jobs4_matches_jobs1(self):
        one = run_validation_sweep(repetitions=REPS, jobs=1)
        four = run_validation_sweep(repetitions=REPS, jobs=4)
        assert four.results == one.results
        assert four.pass_rates() == one.pass_rates()


class TestTable2Sweep:
    def test_jobs_equivalence(self):
        serial = table2(seed=0)
        assert run_table2_sweep(seed=0, jobs=1) == serial
        assert run_table2_sweep(seed=0, jobs=4) == serial
