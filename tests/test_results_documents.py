"""Campaign documents through the results pipeline: load, render, diff.

The checked-in fixture (tests/data/results/) is a real
``campaign run rare-events --reps 2 --out`` document plus one golden
render per format.  Goldens are byte-for-byte: the document embeds its
tables (schema /2), re-rendering must not depend on simulation code,
jobs count, or cache temperature.
"""

import json
import os

import pytest

from repro.campaign import build_campaign, result_document, run_campaign
from repro.results import render_tables
from repro.results.diff import diff_documents, diff_flat, flatten, render_diff
from repro.results.source import (
    DocumentError,
    document_fingerprint,
    generic_task_table,
    load_document,
    parse_document,
    tables_for_document,
    tables_from_store,
)
from repro.store import ResultStore

DATA = os.path.join(os.path.dirname(__file__), "data", "results")
FIXTURE = os.path.join(DATA, "rare_events_reps2.doc.json")

GOLDEN_BY_FORMAT = {
    "ascii": "golden.txt",
    "markdown": "golden.md",
    "latex": "golden.tex",
    "csv": "golden.csv",
    "html": "golden.html",
    "json": "golden.json",
}


def fixture_dict():
    with open(FIXTURE, "r", encoding="utf-8") as fh:
        return json.load(fh)


class TestDocumentLoading:
    def test_fixture_loads_with_embedded_tables(self):
        doc = load_document(FIXTURE)
        assert doc.schema == "repro-campaign-result/2"
        assert doc.campaign == "rare-events"
        assert doc.tables is not None and len(doc.tables) == 1
        assert doc.tables[0].name == "rare-events"
        assert len(doc.labels) == 6
        assert doc.failed_labels == ()

    def test_rejects_unknown_schema(self):
        data = fixture_dict()
        data["schema"] = "repro-campaign-result/99"
        with pytest.raises(DocumentError, match="unsupported document schema"):
            parse_document(data)

    def test_rejects_non_object(self):
        with pytest.raises(DocumentError, match="JSON object"):
            parse_document(["not", "a", "document"])

    def test_schema_1_compat_reader_rebuilds_tables(self):
        data = fixture_dict()
        data["schema"] = "repro-campaign-result/1"
        del data["tables"]
        doc = parse_document(data)
        assert doc.tables is None
        rebuilt = tables_for_document(doc)
        embedded = list(load_document(FIXTURE).tables)
        assert rebuilt == embedded

    def test_embedded_tables_match_reaggregation(self):
        # the /2 fast path and the /1-style rebuild must agree exactly
        doc = load_document(FIXTURE)
        assert tables_for_document(doc, prefer_embedded=False) == \
            list(doc.tables)

    def test_results_raise_on_failed_tasks(self):
        data = fixture_dict()
        task = data["tasks"][0]
        del task["result"]
        task["error"] = {"type": "RuntimeError", "message": "boom",
                         "timed_out": False}
        doc = parse_document(data)
        with pytest.raises(DocumentError, match="1 failed task"):
            doc.results()

    def test_unknown_campaign_falls_back_to_generic_table(self):
        data = fixture_dict()
        data["campaign"] = "ad-hoc-specfile"
        del data["tables"]
        doc = parse_document(data)
        tables = tables_for_document(doc)
        assert tables == [generic_task_table(doc)]
        assert tables[0].headers == ("label", "digest", "result")
        assert len(tables[0].rows) == 6


class TestFingerprint:
    def test_stable_across_schema_and_embedded_tables(self):
        doc2 = load_document(FIXTURE)
        data = fixture_dict()
        data["schema"] = "repro-campaign-result/1"
        del data["tables"]
        doc1 = parse_document(data)
        assert document_fingerprint(doc1) == document_fingerprint(doc2)

    def test_sensitive_to_payloads(self):
        data = fixture_dict()
        data["tasks"][0]["digest"] = "0" * 12
        assert document_fingerprint(parse_document(data)) != \
            document_fingerprint(load_document(FIXTURE))


class TestGoldenRenders:
    @pytest.mark.parametrize("fmt,golden", sorted(GOLDEN_BY_FORMAT.items()))
    def test_render_matches_golden_bytes(self, fmt, golden):
        doc = load_document(FIXTURE)
        rendered = render_tables(tables_for_document(doc), fmt) + "\n"
        with open(os.path.join(DATA, golden), "rb") as fh:
            assert rendered.encode("utf-8") == fh.read()


class TestFlattenAndDiff:
    def test_flatten_paths(self):
        flat = flatten({"a": {"b": [1, {"c": 2}]}, "d": 3})
        assert flat == {"a.b[0]": 1, "a.b[1].c": 2, "d": 3}

    def test_diff_flat_reports_absent_sides(self):
        diffs = diff_flat({"x": 1, "y": 2}, {"x": 1, "z": 3})
        assert diffs == [("y", 2, "<absent>"), ("z", "<absent>", 3)]

    def test_identical_documents(self):
        doc = load_document(FIXTURE)
        diff = diff_documents(doc, doc)
        assert diff.identical
        assert "documents identical" in render_diff(diff)

    def test_seed_change_names_diverging_spec_params(self):
        doc_a = load_document(FIXTURE)
        definition = build_campaign("rare-events", reps=2, seed=7)
        result = run_campaign(definition.labeled_specs,
                              name=definition.name)
        doc_b = parse_document(result_document(definition, result))

        diff = diff_documents(doc_a, doc_b)
        assert not diff.identical
        assert ("seed", 0, 7) in diff.params
        assert len(diff.tasks) == 6          # every replicate reseeded
        for task in diff.tasks:
            paths = [p for p, _a, _b in task.diverging_params]
            assert paths == ["cluster.seed"]

        text = render_diff(diff)
        assert "param seed: 0 -> 7" in text
        assert "spec cluster.seed: 0 -> 7" in text
        # same labels on both sides: divergence is parametric
        assert diff.only_a == [] and diff.only_b == []

    def test_provenance_lines_query_store_index(self, tmp_path):
        doc_a = load_document(FIXTURE)
        data = fixture_dict()
        data["tasks"][0]["digest"] = "f" * 12
        doc_b = parse_document(data)
        with ResultStore(str(tmp_path)) as store:
            store.put(doc_a.tasks[0]["key"], {"result": 1, "snapshot": {}})
            text = render_diff(diff_documents(doc_a, doc_b), store=store)
        digest = doc_a.tasks[0]["digest"]
        assert f"provenance A: 1 cached key(s) under digest {digest}" in text
        assert "provenance B: 0 cached key(s)" in text


class TestStoreBackedTables:
    def test_tables_from_store_match_document(self, tmp_path):
        definition = build_campaign("rare-events", reps=2)
        with ResultStore(str(tmp_path)) as store:
            run_campaign(definition.labeled_specs, name=definition.name,
                         store=store)
            tables = tables_from_store(definition, store)
        assert tables == list(load_document(FIXTURE).tables)

    def test_missing_results_name_the_campaign(self, tmp_path):
        definition = build_campaign("rare-events", reps=2)
        with ResultStore(str(tmp_path)) as store:
            with pytest.raises(DocumentError,
                               match="missing 6/6.*rare-events"):
                tables_from_store(definition, store)

    def test_document_regenerates_byte_identical(self, tmp_path):
        # cold store, then warm store: the fixture must be reproducible
        definition = build_campaign("rare-events", reps=2)
        docs = []
        with ResultStore(str(tmp_path)) as store:
            for _ in range(2):
                result = run_campaign(definition.labeled_specs,
                                      name=definition.name, store=store)
                from repro.obs.export import render_json
                docs.append(render_json(result_document(definition, result)))
        with open(FIXTURE, "r", encoding="utf-8") as fh:
            fixture = fh.read()
        assert docs[0] == docs[1] == fixture


def test_fixture_docs_deep_equal_ignores_key_field_only():
    # the task "key" embeds the package version; everything else in the
    # fixture must be derivable from the simulation alone
    data = fixture_dict()
    from repro import __version__
    for task in data["tasks"]:
        assert task["key"].endswith(f":{__version__}")
        assert task["key"].split(":")[0].startswith(task["digest"])
