"""Tests for the α-count and immediate-isolation baselines."""

import pytest

from repro.baselines.alpha_count import (
    AlphaCount,
    AlphaCountConfig,
    equivalent_alpha_config,
)
from repro.baselines.immediate import ImmediateIsolation


class TestAlphaCount:
    def test_score_grows_on_faults(self):
        ac = AlphaCount(AlphaCountConfig(2, decay=0.5, alpha_threshold=3.0))
        ac.update([0, 1])
        ac.update([0, 1])
        assert ac.alpha[0] == pytest.approx(2.0)
        assert ac.alpha[1] == 0.0

    def test_score_decays_geometrically(self):
        ac = AlphaCount(AlphaCountConfig(2, decay=0.5, alpha_threshold=10.0))
        ac.update([0, 1])
        ac.update([1, 1])
        ac.update([1, 1])
        assert ac.alpha[0] == pytest.approx(0.25)

    def test_signals_above_threshold_and_latches(self):
        ac = AlphaCount(AlphaCountConfig(2, decay=0.9, alpha_threshold=2.5))
        acts = [ac.update([0, 1])[0] for _ in range(4)]
        # Scores 1, 2, 3, 4: the third faulty round crosses 2.5.
        assert acts == [1, 1, 0, 0]
        # Signalled state latches even if the node recovers.
        assert ac.update([1, 1])[0] == 0

    def test_continuous_fault_budget(self):
        ac = AlphaCount(AlphaCountConfig(4, decay=0.5, alpha_threshold=5.0))
        assert ac.rounds_to_signal_continuous() == 6

    def test_decay_validation(self):
        with pytest.raises(ValueError):
            AlphaCountConfig(2, decay=1.5, alpha_threshold=1.0)
        with pytest.raises(ValueError):
            AlphaCountConfig(2, decay=0.5, alpha_threshold=0.0)

    def test_equivalent_config_matches_pr_budget(self):
        cfg = equivalent_alpha_config(4, penalty_threshold=197,
                                      reward_threshold=10 ** 6,
                                      criticality=40)
        ac = AlphaCount(cfg)
        from repro.core.penalty_reward import faulty_rounds_to_isolation
        assert ac.rounds_to_signal_continuous() == \
            faulty_rounds_to_isolation(197, 40)

    def test_decay_halflife_matches_reward_window(self):
        cfg = equivalent_alpha_config(4, penalty_threshold=10,
                                      reward_threshold=100)
        assert cfg.decay ** 100 == pytest.approx(0.5)

    def test_alpha_count_never_fully_forgets(self):
        # The qualitative difference from p/r: after the reward window
        # p/r resets exactly, α-count retains a residue.
        cfg = equivalent_alpha_config(2, penalty_threshold=10,
                                      reward_threshold=50)
        ac = AlphaCount(cfg)
        ac.update([0, 1])
        for _ in range(50):
            ac.update([1, 1])
        assert 0 < ac.alpha[0] < 1.0

    def test_size_mismatch(self):
        ac = AlphaCount(AlphaCountConfig(2, decay=0.5, alpha_threshold=1.0))
        with pytest.raises(ValueError):
            ac.update([1, 1, 1])


class TestImmediateIsolation:
    def test_first_fault_isolates(self):
        imm = ImmediateIsolation(4)
        act = imm.update([1, 0, 1, 1])
        assert act == [1, 0, 1, 1]

    def test_isolation_is_permanent(self):
        imm = ImmediateIsolation(4)
        imm.update([1, 0, 1, 1])
        act = imm.update([1, 1, 1, 1])
        assert act == [1, 0, 1, 1]

    def test_whole_system_restart_condition(self):
        imm = ImmediateIsolation(4)
        imm.update([0, 0, 0, 0])
        assert imm.all_isolated

    def test_equivalent_to_pr_with_zero_threshold(self):
        from repro.core.config import uniform_config
        from repro.core.penalty_reward import PenaltyRewardState
        pr = PenaltyRewardState(uniform_config(4, penalty_threshold=0,
                                               reward_threshold=10))
        imm = ImmediateIsolation(4)
        active_pr = [1] * 4
        pattern = [[1, 0, 1, 1], [1, 1, 1, 1], [0, 1, 1, 0], [1, 1, 1, 1]]
        for hv in pattern:
            active_pr = [a and c for a, c in zip(active_pr, pr.update(hv))]
            act_imm = imm.update(hv)
            assert active_pr == act_imm

    def test_size_mismatch(self):
        imm = ImmediateIsolation(2)
        with pytest.raises(ValueError):
            imm.update([1])
