"""Tests for the rare-event estimators (repro.analysis.rare).

The estimator arithmetic is pinned against hand-computed values; the
Monte Carlo drivers are pinned against a *scripted ground truth*: a
fault scenario whose isolation probability has an exact closed form,
which the estimated confidence interval must cover.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.analysis.rare import (
    MonteCarloEstimate,
    estimate_probability,
    isolation_curve,
    isolation_probability,
    splitting_estimate,
    stratified_estimate,
    wilson_interval,
)
from repro.spec import ClusterSpec, ProtocolSpec, RunSpec, ScenarioSpec

# ----------------------------------------------------------------------
# Wilson interval / point estimate
# ----------------------------------------------------------------------


def test_wilson_interval_validates_inputs():
    with pytest.raises(ValueError):
        wilson_interval(0, 0)
    with pytest.raises(ValueError):
        wilson_interval(-1, 10)
    with pytest.raises(ValueError):
        wilson_interval(11, 10)


def test_wilson_interval_known_value():
    # Classic reference point: 5/10 at z=1.96 -> (0.2366, 0.7634).
    low, high = wilson_interval(5, 10)
    assert low == pytest.approx(0.2366, abs=1e-4)
    assert high == pytest.approx(0.7634, abs=1e-4)


def test_wilson_interval_behaves_at_the_boundaries():
    low0, high0 = wilson_interval(0, 20)
    assert low0 == 0.0 and 0.0 < high0 < 0.2
    low1, high1 = wilson_interval(20, 20)
    assert 0.8 < low1 < 1.0 and high1 == 1.0


def test_estimate_probability_packs_the_interval():
    est = estimate_probability(3, 12)
    assert est.p_hat == pytest.approx(0.25)
    assert (est.ci_low, est.ci_high) == wilson_interval(3, 12)
    assert est.successes == 3 and est.trials == 12
    assert est.contains(0.25)
    assert not est.contains(0.99)
    assert est.half_width() == pytest.approx(
        (est.ci_high - est.ci_low) / 2)


# ----------------------------------------------------------------------
# Stratified estimator
# ----------------------------------------------------------------------


def test_stratified_estimate_validates_inputs():
    with pytest.raises(ValueError):
        stratified_estimate([])
    with pytest.raises(ValueError):  # weights must sum to 1
        stratified_estimate([(0.5, 1, 10)])
    with pytest.raises(ValueError):  # zero trials
        stratified_estimate([(1.0, 0, 0)])
    with pytest.raises(ValueError):  # successes out of range
        stratified_estimate([(1.0, 11, 10)])


def test_stratified_estimate_hand_computed():
    # Two strata: w=0.9 with 1/100, w=0.1 with 50/100.
    est = stratified_estimate([(0.9, 1, 100), (0.1, 50, 100)])
    assert est.p_hat == pytest.approx(0.9 * 0.01 + 0.1 * 0.5)
    var = (0.81 * 0.01 * 0.99 / 100) + (0.01 * 0.25 / 100)
    assert est.half_width() == pytest.approx(1.96 * math.sqrt(var),
                                             rel=1e-6)
    assert est.successes == 51 and est.trials == 200


def test_stratified_single_stratum_matches_normal_interval():
    est = stratified_estimate([(1.0, 30, 100)])
    sigma = math.sqrt(0.3 * 0.7 / 100)
    assert est.p_hat == pytest.approx(0.3)
    assert est.ci_low == pytest.approx(0.3 - 1.96 * sigma)
    assert est.ci_high == pytest.approx(0.3 + 1.96 * sigma)


# ----------------------------------------------------------------------
# Splitting estimator
# ----------------------------------------------------------------------


def test_splitting_estimate_validates_inputs():
    with pytest.raises(ValueError):
        splitting_estimate([])
    with pytest.raises(ValueError):
        splitting_estimate([(1, 0)])
    with pytest.raises(ValueError):
        splitting_estimate([(5, 4)])


def test_splitting_estimate_multiplies_stages():
    # 10/100 then 20/100: p_hat = 0.1 * 0.2 = 0.02.
    est = splitting_estimate([(10, 100), (20, 100)])
    assert est.p_hat == pytest.approx(0.02)
    log_var = (0.9 / (100 * 0.1)) + (0.8 / (100 * 0.2))
    sigma = math.sqrt(log_var)
    assert est.ci_low == pytest.approx(0.02 * math.exp(-1.96 * sigma))
    assert est.ci_high == pytest.approx(0.02 * math.exp(1.96 * sigma))
    assert est.ci_low < est.p_hat < est.ci_high


def test_splitting_estimate_single_stage_reduces_to_direct():
    est = splitting_estimate([(10, 100)])
    assert est.p_hat == pytest.approx(0.1)


def test_splitting_estimate_zero_success_stage():
    """A dry stage yields p_hat 0 with a conservative finite upper."""
    est = splitting_estimate([(10, 100), (0, 50)])
    assert est.p_hat == 0.0
    assert est.ci_low == 0.0
    cap = wilson_interval(10, 100)[1] * wilson_interval(0, 50)[1]
    assert est.ci_high == pytest.approx(cap)
    assert 0.0 < est.ci_high < 0.05


# ----------------------------------------------------------------------
# Scripted ground truth: exact isolation probability
# ----------------------------------------------------------------------
#
# A FaultStorm restricted to sender 2 with intensity 1.0 hits that
# sender in a round iff the gust coin (rate q) fires, so over a window
# of m rounds the penalty count is Binomial(m, q).  With criticality 1,
# penalty threshold P, and a reward threshold too large to ever fire,
# node 2 is isolated iff the count reaches P + 1:
#
#     p_exact = sum_{k=P+1}^{m} C(m, k) q^k (1-q)^(m-k)

Q, M, P = 0.4, 8, 3
EXACT = sum(math.comb(M, k) * Q**k * (1 - Q) ** (M - k)
            for k in range(P + 1, M + 1))


def _storm_spec(seed: int = 100) -> RunSpec:
    protocol = ProtocolSpec(n_nodes=4, penalty_threshold=P,
                            reward_threshold=50,
                            criticalities=(1, 1, 1, 1))
    storm = ScenarioSpec("FaultStorm",
                         {"gust_rate": Q, "intensity": 1.0,
                          "senders": [2], "start_round": 2,
                          "duration_rounds": M, "rng_stream": "storm"})
    return RunSpec(protocol=protocol, cluster=ClusterSpec(seed=seed),
                   scenarios=(storm,), n_rounds=15)


@pytest.mark.slow
def test_isolation_probability_covers_exact_ground_truth():
    """The estimator's CI covers the closed-form probability.

    120 replicates at p ~= 0.406 give a CI half-width of ~0.09; the
    assertion is on *coverage* (the interval contains the truth), not
    on the point estimate, so the fixed seed cannot make it flaky —
    seed 100 is known to land inside.
    """
    est = isolation_probability(_storm_spec(), replicates=120,
                                target_node=2)
    assert isinstance(est, MonteCarloEstimate)
    assert est.trials == 120
    assert est.contains(EXACT), (est, EXACT)
    # Sanity on the closed form itself.
    assert EXACT == pytest.approx(0.4059136)


@pytest.mark.slow
def test_isolation_probability_backends_agree():
    pytest.importorskip("numpy")
    event = isolation_probability(_storm_spec(), replicates=40,
                                  target_node=2)
    vec = isolation_probability(
        replace(_storm_spec(), backend="vectorized"), replicates=40,
        target_node=2)
    assert vec == event


def test_isolation_probability_counts_any_node_without_target():
    # Healthy cluster: nobody is ever isolated -> estimate 0.
    protocol = ProtocolSpec(n_nodes=4, penalty_threshold=1,
                            reward_threshold=2,
                            criticalities=(1, 1, 1, 1))
    spec = RunSpec(protocol=protocol, cluster=ClusterSpec(seed=0),
                   scenarios=(), n_rounds=5)
    est = isolation_probability(spec, replicates=5)
    assert est.successes == 0
    assert est.p_hat == 0.0


def test_isolation_curve_pairs_x_with_estimates():
    points = [(0.4, _storm_spec(seed=10))]
    curve = isolation_curve(points, replicates=10, target_node=2)
    assert len(curve) == 1
    x, est = curve[0]
    assert x == 0.4
    assert est.trials == 10


# ----------------------------------------------------------------------
# rare-events campaign definition
# ----------------------------------------------------------------------


def test_rare_events_campaign_smoke():
    from repro.campaign import (
        RARE_EVENT_RATES,
        build_campaign,
        rare_events_campaign,
        run_campaign,
    )

    definition = rare_events_campaign(replicates=2)
    labeled = definition.labeled_specs
    assert len(labeled) == 2 * len(RARE_EVENT_RATES)
    result = run_campaign(labeled, name=definition.name)
    result.raise_first_error()
    rows = definition.aggregate(result.results)
    assert [rate for rate, _est in rows] == list(RARE_EVENT_RATES)
    for _rate, est in rows:
        assert isinstance(est, MonteCarloEstimate)
        assert est.trials == 2
    rendered = definition.render(rows)
    assert "False-alarm" in rendered
    assert "p_gb" in rendered
    # The named-campaign builder resolves to the same definition.
    again = build_campaign("rare-events", reps=2)
    assert [label for label, _ in again.labeled_specs] == [
        label for label, _ in labeled]
