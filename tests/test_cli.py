"""Tests for the repro-diag command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_demo_runs(capsys):
    assert main(["demo", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "consistent health vector" in out
    assert "consistent across nodes: True" in out


def test_table2_output(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "| Automotive | SC    |" in out
    assert "197" in out and "40" in out
    assert "| Aerospace" in out and "17" in out


def test_table4_output(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "Time to isolation" in out
    assert "Automotive" in out and "Aerospace" in out


def test_figure3_output(capsys):
    assert main(["figure3"]) == 0
    out = capsys.readouterr().out
    assert "P(correlate 2nd transient)" in out
    assert "R = 1e+06" in out


def test_validate_small_campaign(capsys):
    assert main(["validate", "--reps", "1"]) == 0
    out = capsys.readouterr().out
    assert "all passed: True" in out
    assert "clique-detection" in out


def test_portability_output(capsys):
    assert main(["portability"]) == 0
    out = capsys.readouterr().out
    assert "FlexRay" in out and "TT-Ethernet" in out
    assert "VIOLATED" not in out


def test_resilience_output(capsys):
    assert main(["resilience"]) == 0
    out = capsys.readouterr().out
    assert "Lemma 2 frontier" in out
    assert "s=0: b<=2" in out


def test_discrimination_output(capsys):
    assert main(["discrimination", "--reps", "2"]) == 0
    out = capsys.readouterr().out
    assert "penalty/reward" in out and "immediate" in out


def test_timeline_output(capsys):
    assert main(["timeline"]) == 0
    out = capsys.readouterr().out
    assert "fault: crash-2 @ slot 2" in out
    assert "isolate node 2" in out


def test_version_flag(capsys):
    import repro

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro-diag {repro.__version__}"


def test_spec_demo_emits_valid_runspec(capsys):
    from repro.spec import RunSpec

    assert main(["spec", "demo"]) == 0
    spec = RunSpec.from_json(capsys.readouterr().out)
    assert spec.n_rounds > 0


def test_spec_validate_emits_campaign_array(capsys):
    import json

    from repro.spec import RunSpec

    assert main(["spec", "validate", "--reps", "1"]) == 0
    specs = json.loads(capsys.readouterr().out)
    assert len(specs) == 18
    assert all(RunSpec.from_dict(s).reducer for s in specs)


def test_spec_table2_emits_campaign_array(capsys):
    import json

    assert main(["spec", "table2"]) == 0
    specs = json.loads(capsys.readouterr().out)
    assert specs and all(s["reducer"] == "table2.penalty-budget"
                         for s in specs)


def test_run_from_file(capsys, tmp_path):
    main(["spec", "demo"])
    spec_json = capsys.readouterr().out
    path = tmp_path / "demo.json"
    path.write_text(spec_json)
    assert main(["run", str(path)]) == 0
    out = capsys.readouterr().out
    assert "1 run(s)" in out
    assert "0 failed" in out


def test_run_from_stdin(capsys, monkeypatch):
    import io

    main(["spec", "demo"])
    spec_json = capsys.readouterr().out
    monkeypatch.setattr("sys.stdin", io.StringIO(spec_json))
    assert main(["run", "-"]) == 0
    assert "1 run(s)" in capsys.readouterr().out


def test_run_campaign_parallel_with_metrics(capsys, tmp_path):
    import json

    main(["spec", "validate", "--reps", "1"])
    campaign = capsys.readouterr().out
    path = tmp_path / "campaign.json"
    path.write_text(campaign)
    metrics_path = tmp_path / "metrics.json"
    assert main(["run", str(path), "--jobs", "2",
                 "--metrics-out", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    assert "18 run(s), 18 scored, 0 failed" in out
    report = json.loads(metrics_path.read_text())
    assert any(name.startswith("spec.run.")
               for name in report["metrics"]["counters"])


def test_run_from_stdin_accepts_campaign_array(capsys, monkeypatch):
    import io

    main(["spec", "table2"])
    campaign = capsys.readouterr().out
    monkeypatch.setattr("sys.stdin", io.StringIO(campaign))
    assert main(["run", "-"]) == 0
    out = capsys.readouterr().out
    assert "run(s)" in out and "0 failed" in out


def test_run_rejects_mismatched_schema(capsys, monkeypatch):
    import io
    import json

    main(["spec", "demo"])
    spec = json.loads(capsys.readouterr().out)
    spec["spec"] = "repro-runspec/99"
    monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(spec)))
    assert main(["run", "-"]) == 2
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "repro-runspec/99" in captured.err


def test_campaign_run_cold_then_warm(capsys, tmp_path):
    store = str(tmp_path / "store")
    args = ["campaign", "run", "validate", "--reps", "1",
            "--store", store]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "all passed: True" in cold
    assert "18 task(s): 0 cached, 18 executed" in cold
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "18 task(s): 18 cached, 0 executed" in warm


def test_campaign_out_documents_byte_identical(capsys, tmp_path):
    store = str(tmp_path / "store")
    cold_out = tmp_path / "cold.json"
    warm_out = tmp_path / "warm.json"
    assert main(["campaign", "run", "validate", "--reps", "1",
                 "--store", store, "--jobs", "2",
                 "--out", str(cold_out)]) == 0
    assert main(["campaign", "run", "validate", "--reps", "1",
                 "--store", store, "--out", str(warm_out)]) == 0
    capsys.readouterr()
    assert cold_out.read_bytes() == warm_out.read_bytes()


def test_campaign_run_from_spec_file(capsys, tmp_path):
    main(["spec", "table2"])
    path = tmp_path / "table2.json"
    path.write_text(capsys.readouterr().out)
    assert main(["campaign", "run", str(path), "--no-store"]) == 0
    out = capsys.readouterr().out
    assert "task(s):" in out and "0 failed" in out


def test_campaign_run_rejects_unknown_source(capsys):
    assert main(["campaign", "run", "figure9"]) == 2
    assert "neither a named campaign" in capsys.readouterr().err


def test_campaign_status_and_gc(capsys, tmp_path):
    store = str(tmp_path / "store")
    assert main(["campaign", "run", "validate", "--reps", "1",
                 "--store", store]) == 0
    capsys.readouterr()
    assert main(["campaign", "status", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "completed" in out
    assert "18" in out
    assert main(["campaign", "gc", "--store", store,
                 "--max-entries", "4"]) == 0
    out = capsys.readouterr().out
    assert "evicted 14" in out
    assert main(["campaign", "status", "--store", store]) == 0
    assert "4 cached result(s)" in capsys.readouterr().out
