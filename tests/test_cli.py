"""Tests for the repro-diag command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_demo_runs(capsys):
    assert main(["demo", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "consistent health vector" in out
    assert "consistent across nodes: True" in out


def test_table2_output(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "| Automotive | SC    |" in out
    assert "197" in out and "40" in out
    assert "| Aerospace" in out and "17" in out


def test_table4_output(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "Time to isolation" in out
    assert "Automotive" in out and "Aerospace" in out


def test_figure3_output(capsys):
    assert main(["figure3"]) == 0
    out = capsys.readouterr().out
    assert "P(correlate 2nd transient)" in out
    assert "R = 1e+06" in out


def test_validate_small_campaign(capsys):
    assert main(["validate", "--reps", "1"]) == 0
    out = capsys.readouterr().out
    assert "all passed: True" in out
    assert "clique-detection" in out


def test_portability_output(capsys):
    assert main(["portability"]) == 0
    out = capsys.readouterr().out
    assert "FlexRay" in out and "TT-Ethernet" in out
    assert "VIOLATED" not in out


def test_resilience_output(capsys):
    assert main(["resilience"]) == 0
    out = capsys.readouterr().out
    assert "Lemma 2 frontier" in out
    assert "s=0: b<=2" in out


def test_discrimination_output(capsys):
    assert main(["discrimination", "--reps", "2"]) == 0
    out = capsys.readouterr().out
    assert "penalty/reward" in out and "immediate" in out


def test_timeline_output(capsys):
    assert main(["timeline"]) == 0
    out = capsys.readouterr().out
    assert "fault: crash-2 @ slot 2" in out
    assert "isolate node 2" in out
