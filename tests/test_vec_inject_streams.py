"""Draw-for-draw RNG equality between vectorized lowering and the
event engine.

Backend equivalence (pinned end-to-end by
``tests/test_backend_equivalence_fuzz.py``) ultimately rests on one
mechanical fact: for each replicate seed, mask precomputation in
:func:`repro.vec.inject.lower_injection` consumes *exactly the same
values from exactly the same named RNG stream* as the event engine
does while simulating that replicate.  These tests pin that fact
directly for the two stochastic models with the trickiest draw
schedules — :class:`PoissonTransients` (continuous-time arrivals,
lazily extended) and :class:`GilbertElliottChannel` (two draws per
slot: error coin, then transition coin) — by comparing

* the lowered ``stoch_hit`` mask against an independently built
  instance probed slot by slot, and
* the *final RNG stream state* after lowering against the stream state
  of an event-engine run of the same seed — equal end states mean
  every intermediate draw matched, per seed, per replicate.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.sim.rng import RandomStreams
from repro.spec import ClusterSpec, ProtocolSpec, RunSpec, ScenarioSpec
from repro.spec.build import build
from repro.vec.compiler import compile_schedule
from repro.vec.inject import lower_injection

N_NODES = 4
N_ROUNDS = 12
SEEDS = (0, 1, 7, 42)


def _spec(scenario: ScenarioSpec, seed: int = 0) -> RunSpec:
    protocol = ProtocolSpec(n_nodes=N_NODES, penalty_threshold=3,
                            reward_threshold=4,
                            criticalities=(1,) * N_NODES)
    return RunSpec(protocol=protocol, cluster=ClusterSpec(seed=seed),
                   scenarios=(scenario,), n_rounds=N_ROUNDS)


POISSON = ScenarioSpec("PoissonTransients",
                       {"rate": 250.0, "burst_length": 0.0008,
                        "rng_stream": "poisson"})
GILBERT = ScenarioSpec("GilbertElliottChannel",
                       {"p_gb": 0.15, "p_bg": 0.4, "error_good": 0.02,
                        "error_bad": 0.9, "rng_stream": "ge"})


@pytest.mark.parametrize("scenario,stream", [(POISSON, "poisson"),
                                             (GILBERT, "ge")])
def test_lowered_mask_matches_fresh_instance_probe(scenario, stream):
    """stoch_hit[rep] equals an independent per-seed slot probe."""
    spec = _spec(scenario)
    lowered = lower_injection(spec, compile_schedule(spec), N_ROUNDS,
                              seeds=SEEDS)
    tb = build(spec).cluster.timebase
    for rep, seed in enumerate(SEEDS):
        inst = scenario.build(streams=RandomStreams(seed))
        expected = np.zeros((N_ROUNDS, N_NODES), dtype=bool)
        for p in range(N_ROUNDS):
            for s in range(1, N_NODES + 1):
                expected[p, s - 1] = not inst.is_quiescent(p, s, tb)
        assert np.array_equal(lowered.stoch_hit[rep], expected), (
            stream, seed)


@pytest.mark.parametrize("scenario,stream", [(POISSON, "poisson"),
                                             (GILBERT, "ge")])
def test_lowering_and_event_engine_share_the_stream_state(scenario, stream):
    """After simulating a seed both backends leave the named stream in
    the identical generator state — i.e. they drew the same number of
    values, in the same order, with the same results.

    The event engine queries the scenario while executing rounds; the
    vectorized path queries it while precomputing masks.  Prefix-stable
    lazy sampling makes both walks consume the stream identically, and
    ``getstate()`` equality is the strongest per-replicate witness of
    that: a single extra, missing, or reordered draw diverges it.
    """
    for seed in SEEDS:
        # Event engine: run the replicate to completion.
        spec = _spec(scenario, seed=seed)
        dc = build(spec)
        dc.run_rounds(N_ROUNDS)
        event_state = dc.cluster.streams.stream(stream).getstate()

        # Vectorized lowering path: rebuild the instance the way
        # _lower_stochastic does and probe the same horizon.
        streams = RandomStreams(seed)
        inst = scenario.build(streams=streams)
        tb = dc.cluster.timebase
        for p in range(N_ROUNDS):
            for s in range(1, N_NODES + 1):
                inst.is_quiescent(p, s, tb)
        vec_state = streams.stream(stream).getstate()

        assert vec_state == event_state, (stream, seed)


def test_replicates_use_independent_streams():
    """Different seeds produce different masks (no shared stream)."""
    spec = _spec(GILBERT)
    lowered = lower_injection(spec, compile_schedule(spec), N_ROUNDS,
                              seeds=SEEDS)
    distinct = {lowered.stoch_hit[rep].tobytes()
                for rep in range(len(SEEDS))}
    assert len(distinct) > 1
