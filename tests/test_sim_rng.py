"""Unit tests for named random substreams."""

from repro.sim.rng import RandomStreams, derive_seed


def test_derive_seed_is_stable():
    # Hash-based: must not change across runs or platforms.
    assert derive_seed(0, "a") == derive_seed(0, "a")
    s1 = derive_seed(42, "bus-noise")
    s2 = derive_seed(42, "bus-noise")
    assert s1 == s2


def test_derive_seed_distinguishes_names_and_seeds():
    assert derive_seed(0, "a") != derive_seed(0, "b")
    assert derive_seed(0, "a") != derive_seed(1, "a")


def test_same_name_returns_same_stream_object():
    streams = RandomStreams(7)
    assert streams.stream("x") is streams.stream("x")


def test_streams_reproducible_across_instances():
    a = RandomStreams(5).stream("fault")
    b = RandomStreams(5).stream("fault")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_streams_independent_of_creation_order():
    one = RandomStreams(9)
    first = one.stream("alpha")
    _ = one.stream("beta")
    draws_with_beta = [first.random() for _ in range(5)]

    two = RandomStreams(9)
    second = two.stream("alpha")  # never creates "beta"
    draws_without_beta = [second.random() for _ in range(5)]
    assert draws_with_beta == draws_without_beta


def test_fork_is_namespaced_and_reproducible():
    base = RandomStreams(3)
    f1 = base.fork("rep-1")
    f2 = base.fork("rep-2")
    assert f1.master_seed != f2.master_seed
    again = RandomStreams(3).fork("rep-1")
    assert again.master_seed == f1.master_seed
    assert (again.stream("s").random()
            == RandomStreams(3).fork("rep-1").stream("s").random())
