"""Property-based hardening of the H-maj voting layer (hypothesis).

Complements :mod:`tests.test_properties` (which checks the Lemma 2
resilience bound) with the contracts the observability refactor leans
on: ``h_maj_explain`` is a pure annotation of ``h_maj``, voting is
invariant under vote permutation, unanimity always wins, and the
uniform-matrix identity shortcut used by the analysis fast path agrees
with the general per-column vote on arbitrary uniform matrices.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.syndrome import EPSILON, DiagnosticMatrix, make_syndrome
from repro.core.voting import BOTTOM, h_maj, h_maj_explain

votes_strategy = st.lists(st.sampled_from([0, 1, EPSILON]),
                          min_size=0, max_size=15)


# ---------------------------------------------------------------------------
# h_maj_explain is h_maj plus a truthful reason
# ---------------------------------------------------------------------------
@given(votes_strategy)
def test_explain_decision_equals_h_maj(votes):
    decision, reason = h_maj_explain(votes)
    assert decision == h_maj(votes)
    assert reason in ("bottom", "majority", "default")


@given(votes_strategy)
def test_explain_reason_is_consistent_with_votes(votes):
    decision, reason = h_maj_explain(votes)
    surviving = [v for v in votes if v is not EPSILON]
    if reason == "bottom":
        assert not surviving
        assert decision is BOTTOM
    elif reason == "majority":
        # The decision occurs strictly more often than its complement.
        assert surviving.count(decision) > len(surviving) / 2
    else:  # default
        # Tied surviving votes; the protocol prefers availability.
        assert decision == 1
        assert surviving.count(0) == surviving.count(1) > 0


@given(votes_strategy, st.randoms(use_true_random=False))
def test_explain_permutation_invariant(votes, rnd):
    baseline = h_maj_explain(votes)
    shuffled = list(votes)
    rnd.shuffle(shuffled)
    assert h_maj_explain(shuffled) == baseline


# ---------------------------------------------------------------------------
# Unanimity
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=1),
       st.integers(min_value=1, max_value=12),
       st.integers(min_value=0, max_value=6))
def test_unanimity_wins_regardless_of_epsilon_padding(value, copies, eps):
    votes = [value] * copies + [EPSILON] * eps
    decision, reason = h_maj_explain(votes)
    assert decision == value
    assert reason == "majority"


# ---------------------------------------------------------------------------
# Uniform-matrix shortcut vs the general vote
# ---------------------------------------------------------------------------
@st.composite
def uniform_matrices(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    row = draw(st.lists(st.integers(min_value=0, max_value=1),
                        min_size=n, max_size=n))
    return DiagnosticMatrix.uniform(n, row), row


@given(uniform_matrices())
def test_uniform_shortcut_agrees_with_general_vote(pair):
    """The analysis skips voting when ``uniform_row`` is set; that is
    only sound if per-column H-maj over the same matrix would have
    produced exactly the shared row — for *any* row, not just the
    all-healthy one."""
    matrix, row = pair
    assert matrix.uniform_row() == make_syndrome(row)
    general = [h_maj(matrix.column(j))
               for j in range(1, matrix.n_nodes + 1)]
    assert general == list(row)


@given(st.integers(min_value=2, max_value=10))
def test_all_healthy_uniform_matrix_has_no_epsilon_rows(n):
    matrix = DiagnosticMatrix.uniform(n, [1] * n)
    assert matrix.epsilon_rows() == 0
    assert matrix.uniform_row() == (1,) * n


@given(uniform_matrices(), st.data())
def test_set_row_clears_uniform_marker(pair, data):
    matrix, _row = pair
    sender = data.draw(st.integers(min_value=1, max_value=matrix.n_nodes))
    matrix.set_row(sender, EPSILON)
    assert matrix.uniform_row() is None
    assert matrix.epsilon_rows() == 1


# ---------------------------------------------------------------------------
# epsilon_rows ground truth
# ---------------------------------------------------------------------------
@given(st.integers(min_value=2, max_value=8), st.data())
def test_epsilon_rows_counts_exactly_the_missing_rows(n, data):
    missing = data.draw(st.sets(st.integers(min_value=1, max_value=n)))
    matrix = DiagnosticMatrix(n)
    for sender in range(1, n + 1):
        if sender not in missing:
            matrix.set_row(sender, [1] * n)
    # A fresh matrix starts all-epsilon; rows we installed are counted
    # out, the untouched ones remain.
    assert matrix.epsilon_rows() == len(missing)
    for j in range(1, n + 1):
        column = matrix.column(j)
        assert column.count(EPSILON) == len(missing - {j})
