"""Integration tests for the low-latency system-level variant (Sec. 10)."""

import pytest

from repro.core.config import uniform_config
from repro.core.service import LowLatencyCluster
from repro.faults.scenarios import SenderFault, SlotBurst, crash

FAULT_ROUND = 6


def permissive():
    return uniform_config(4, penalty_threshold=10 ** 6,
                          reward_threshold=10 ** 6)


def make_llc(scenario=None, seed=0, rounds=14, config=None, **kw):
    llc = LowLatencyCluster(config or permissive(), seed=seed, **kw)
    if scenario is not None:
        llc.cluster.add_scenario(scenario)
    llc.run_rounds(rounds)
    return llc


class TestPerSlotVerdicts:
    def test_fault_free_all_ones(self):
        llc = make_llc()
        for node in range(1, 5):
            verdicts = llc.service(node).verdicts
            assert verdicts and all(v == 1 for v in verdicts.values())

    def test_single_slot_fault_detected(self):
        llc = make_llc(SlotBurst(make_llc().cluster.timebase,
                                 FAULT_ROUND, 2, 1))
        for node in range(1, 5):
            assert llc.service(node).verdicts[(FAULT_ROUND, 2)] == 0
            assert llc.service(node).verdicts[(FAULT_ROUND, 3)] == 1

    def test_verdicts_consistent_across_nodes(self):
        llc = make_llc(SlotBurst(make_llc().cluster.timebase,
                                 FAULT_ROUND, 1, 3))
        assert llc.consistent_verdicts()

    def test_detection_latency_exactly_one_round(self):
        tb_probe = make_llc().cluster.timebase
        llc = make_llc(SlotBurst(tb_probe, FAULT_ROUND, 2, 1))
        records = [r for r in llc.trace.select(category="cons_slot")
                   if r.data["diagnosed_round"] == FAULT_ROUND
                   and r.data["slot"] == 2 and r.data["verdict"] == 0]
        assert len(records) == 4
        tb = llc.cluster.timebase
        expected = tb.delivery_time(FAULT_ROUND + 1, 2)
        for rec in records:
            assert rec.time == pytest.approx(expected)


class TestBlackout:
    def test_blackout_self_diagnosis(self):
        tb = make_llc().cluster.timebase
        llc = make_llc(SlotBurst(tb, FAULT_ROUND, 1, 8), rounds=16)
        for node in range(1, 5):
            verdicts = llc.service(node).verdicts
            for s in range(1, 5):
                assert verdicts[(FAULT_ROUND, s)] == 0
                assert verdicts[(FAULT_ROUND + 1, s)] == 0
            assert verdicts[(FAULT_ROUND + 2, 1)] == 1
        assert llc.consistent_verdicts()


class TestIsolation:
    def test_crash_isolated_via_per_slot_pr(self):
        cfg = uniform_config(4, penalty_threshold=3, reward_threshold=10)
        llc = make_llc(crash(2, from_round=FAULT_ROUND), rounds=16,
                       config=cfg)
        for node in range(1, 5):
            assert llc.service(node).active_nodes() == (1, 3, 4)

    def test_isolation_latency_shorter_than_addon(self):
        # P=3, s=1: 4 faulty rounds + 1 round pipeline (vs 3 for the
        # add-on variant).
        cfg = uniform_config(4, penalty_threshold=3, reward_threshold=10)
        llc = make_llc(crash(2, from_round=FAULT_ROUND), rounds=16,
                       config=cfg)
        iso = llc.trace.select(category="isolation")
        assert iso
        diag_rounds = {r.data["diagnosed_round"] for r in iso}
        assert diag_rounds == {FAULT_ROUND + 3}  # 4th faulty round


class TestMembershipVariant:
    def test_asymmetric_fault_excludes_minority(self):
        cfg = permissive()
        llc = LowLatencyCluster(cfg, seed=0, membership=True)
        llc.cluster.add_scenario(SenderFault(
            3, kind="asymmetric", rounds=[FAULT_ROUND], detectable_by=[1]))
        llc.run_rounds(FAULT_ROUND + 8)
        for node in (2, 3, 4):
            assert 1 not in llc.service(node).view

    def test_membership_latency_about_two_rounds(self):
        cfg = permissive()
        llc = LowLatencyCluster(cfg, seed=0, membership=True)
        llc.cluster.add_scenario(SenderFault(
            3, kind="asymmetric", rounds=[FAULT_ROUND], detectable_by=[1]))
        llc.run_rounds(FAULT_ROUND + 8)
        views = [r for r in llc.trace.select(category="view")
                 if r.node in (2, 3, 4)]
        assert views
        tb = llc.cluster.timebase
        fault_t = tb.slot_start(FAULT_ROUND, 3)
        for rec in views:
            assert rec.time - fault_t <= 3.1 * tb.round_length

    def test_benign_fault_view_without_accusations(self):
        cfg = permissive()
        llc = LowLatencyCluster(cfg, seed=0, membership=True)
        llc.cluster.add_scenario(SenderFault(2, kind="benign",
                                             rounds=[FAULT_ROUND]))
        llc.run_rounds(FAULT_ROUND + 6)
        for node in (1, 3, 4):
            assert llc.service(node).view == frozenset({1, 3, 4})
