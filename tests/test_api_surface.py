"""API surface quality gate.

Walks every public module of the library and asserts the documentation
contract: every ``__all__`` entry resolves, every public class/function
has a docstring, and the package-level convenience imports stay intact.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name for _finder, name, _ispkg in pkgutil.walk_packages(
        repro.__path__, prefix="repro.")
)


def public_modules():
    return [m for m in MODULES if not m.rsplit(".", 1)[-1].startswith("_")]


@pytest.mark.parametrize("module_name", public_modules())
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", public_modules())
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


@pytest.mark.parametrize("module_name", public_modules())
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if obj.__module__ != module_name:
                continue  # re-export; documented at its home module
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
            if inspect.isclass(obj):
                for meth_name, meth in inspect.getmembers(
                        obj, inspect.isfunction):
                    if meth_name.startswith("_"):
                        continue
                    if meth.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited
                    assert meth.__doc__, (
                        f"{module_name}.{name}.{meth_name} lacks a docstring")


def test_top_level_convenience_imports():
    for name in repro.__all__:
        assert hasattr(repro, name)
    # The headline API is importable from the root.
    assert repro.DiagnosedCluster is not None
    assert repro.uniform_config(4).n_nodes == 4


def test_version_declared():
    assert repro.__version__ == "1.6.0"
