"""The declarative results layer: specs, renderers, cache, plot gate.

Everything here is renderer-neutral plumbing: a TableSpec materialises
into formatted string cells exactly once, every renderer consumes those
same cells, and derived values (rendered strings) memoise under the
document fingerprint.  The campaign-document end of the pipeline is
covered in test_results_documents.py.
"""

import pytest

from repro.results import (
    FORMATS,
    Column,
    Series,
    SeriesSpec,
    Table,
    TableSpec,
    render_ascii,
    render_csv,
    render_json_tables,
    render_latex,
    render_markdown,
    render_tables,
)
from repro.results.cache import DerivedCache
from repro.results.plots import (
    MATPLOTLIB_AVAILABLE,
    PlotUnavailableError,
    require_matplotlib,
)

SPEC = TableSpec(
    name="demo",
    title=lambda rows: f"{len(rows)} row(s)",
    columns=(
        Column("name", lambda r: r[0]),
        Column("value", lambda r: r[1]),
    ),
    footer=lambda rows: (f"total: {sum(r[1] for r in rows)}",),
)


class TestTableSpec:
    def test_build_formats_cells_once(self):
        table = SPEC.build([("a", 0.5), ("b", -0.0)])
        assert table.title == "2 row(s)"
        assert table.headers == ("name", "value")
        assert table.rows == (("a", "0.5"), ("b", "0"))
        assert table.footer == ("total: 0.5",)

    def test_default_rows_is_identity(self):
        table = TableSpec(name="t", columns=(Column("x", lambda r: r),)) \
            .build([1, 2])
        assert table.rows == (("1",), ("2",))

    def test_static_title_and_no_footer(self):
        spec = TableSpec(name="t", title="fixed",
                         columns=(Column("x", lambda r: r),))
        table = spec.build([1])
        assert table.title == "fixed"
        assert table.footer == ()

    def test_table_roundtrips_through_dict(self):
        table = SPEC.build([("a", 1), ("b|c", 2)])
        assert Table.from_dict(table.to_dict()) == table

    def test_series_spec_builds_and_roundtrips(self):
        spec = SeriesSpec(
            name="s", x_label="x", y_label="y", title="curves",
            curves=lambda v: {"up": [(1, 1), (2, 4)], "down": [(1, -1)]})
        series = spec.build(None)
        assert series.curves == (("up", ((1.0, 1.0), (2.0, 4.0))),
                                 ("down", ((1.0, -1.0),)))
        assert Series.from_dict(series.to_dict()) == series


class TestRenderers:
    def test_ascii_matches_historic_render_table(self):
        from repro.analysis.reporting import render_table
        table = SPEC.build([("a", 1), ("b", 2)])
        expected = render_table(table.headers, table.rows,
                                title=table.title) + "\ntotal: 3"
        assert render_ascii(table) == expected

    def test_markdown_pipe_table_with_escapes(self):
        table = SPEC.build([("a|b", 1)])
        out = render_markdown(table)
        assert out.splitlines()[0] == "### 1 row(s)"
        assert "| a\\|b | 1 |" in out
        assert "*total: 1*" in out

    def test_latex_environment_with_escapes(self):
        table = TableSpec(
            name="t", title="95% CI",
            columns=(Column("p_gb", lambda r: r),)).build(["a&b"])
        out = render_latex(table)
        assert out.startswith("\\begin{table}[ht]")
        assert out.endswith("\\end{table}")
        assert "\\caption{95\\% CI}" in out
        assert "p\\_gb \\\\" in out
        assert "a\\&b \\\\" in out

    def test_csv_quotes_and_comments(self):
        table = SPEC.build([("a,b", 1)])
        out = render_csv(table)
        assert out.splitlines()[0] == "# 1 row(s)"
        assert '"a,b",1' in out
        assert out.splitlines()[-1] == "# total: 1"
        assert not out.endswith("\n")

    def test_json_is_sorted_and_schema_tagged(self):
        out = render_json_tables([SPEC.build([("a", 1)])])
        import json
        doc = json.loads(out)
        assert doc["schema"] == "repro-results/1"
        assert doc["tables"][0]["rows"] == [["a", "1"]]
        assert out == json.dumps(doc, sort_keys=True, indent=2)

    def test_render_tables_dispatch_covers_all_formats(self):
        tables = [SPEC.build([("a", 1)]), SPEC.build([("b", 2)])]
        for fmt in FORMATS:
            out = render_tables(tables, fmt)
            assert "a" in out and "1" in out
        assert render_tables(tables, "ascii").count("+--") > 2

    def test_render_tables_unknown_format(self):
        # "html" used to be the canonical unknown format; it is real now.
        with pytest.raises(ValueError, match="unknown format"):
            render_tables([], "pdf")


class TestDerivedCache:
    def test_memoizes_in_process(self):
        cache = DerivedCache()
        calls = []
        value = cache.get_or_compute("f" * 64, "render.csv",
                                     lambda: calls.append(1) or "out")
        again = cache.get_or_compute("f" * 64, "render.csv",
                                     lambda: calls.append(1) or "out")
        assert value == again == "out"
        assert calls == [1]
        assert (cache.hits, cache.misses) == (1, 1)

    def test_persists_in_store_across_instances(self, tmp_path):
        from repro.store import ResultStore
        with ResultStore(str(tmp_path)) as store:
            first = DerivedCache(store, version="1")
            assert first.get_or_compute("a" * 64, "render.md",
                                        lambda: "rendered") == "rendered"
            warm = DerivedCache(store, version="1")
            boom = (lambda: (_ for _ in ()).throw(AssertionError("recomputed")))
            assert warm.get_or_compute("a" * 64, "render.md",
                                       boom) == "rendered"
            assert (warm.hits, warm.misses) == (1, 0)

    def test_version_segment_invalidates(self, tmp_path):
        from repro.store import ResultStore
        with ResultStore(str(tmp_path)) as store:
            DerivedCache(store, version="1").get_or_compute(
                "a" * 64, "render.md", lambda: "old")
            fresh = DerivedCache(store, version="2").get_or_compute(
                "a" * 64, "render.md", lambda: "new")
            assert fresh == "new"

    def test_default_version_is_package_version(self):
        from repro import __version__
        cache = DerivedCache()
        assert cache.key("a" * 64, "render.csv") == (
            "a" * 64 + f":derived.render.csv:{__version__}")


class TestPlotGate:
    def test_gate_matches_availability(self):
        if MATPLOTLIB_AVAILABLE:  # pragma: no cover - CI soft-dep job
            require_matplotlib()
        else:
            with pytest.raises(PlotUnavailableError,
                               match="requires matplotlib"):
                require_matplotlib()

    @pytest.mark.skipif(not MATPLOTLIB_AVAILABLE,
                        reason="matplotlib not installed")
    def test_emit_plots_writes_files(self, tmp_path):  # pragma: no cover
        from repro.results.plots import emit_plots
        series = Series(name="s", x_label="x", y_label="y",
                        curves=(("c", ((1.0, 1.0), (2.0, 4.0))),))
        paths = emit_plots([series], str(tmp_path))
        assert [p.endswith("s.png") for p in paths] == [True]
