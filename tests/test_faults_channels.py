"""Unit tests for the channel/fault-model library (repro.faults.channels).

Three layers of pinning:

* behavioural unit tests per model (validation, oracles, directive
  shapes, probe/directive draw equivalence);
* *seed-stability golden tests* fixing the exact sampled sequences for
  fixed ``RandomStreams`` seeds — any refactor of the RNG stream
  derivation or the models' draw order is caught byte-for-byte;
* serialization round-trips through the ``SerializableScenario``
  contract, including the stale-stream rejection.
"""

from __future__ import annotations

import pytest

from repro.faults.channels import (
    AdaptiveSaboteur,
    CorrelatedEMI,
    DutyCycleIntermittent,
    FaultStorm,
    GilbertElliottChannel,
    gilbert_elliott_error_rate,
    gilbert_elliott_stationary_bad,
)
from repro.faults.injector import InjectionLayer, TransmissionContext
from repro.faults.model import ReceptionOutcome
from repro.sim.rng import RandomStreams
from repro.tt.timebase import TimeBase

TB = TimeBase(n_slots=4, round_length=2.5e-3)


def _ctx(round_index, slot, timebase=TB):
    n = timebase.n_slots
    return TransmissionContext(
        time=timebase.slot_start(round_index, slot),
        round_index=round_index, slot=slot, sender=slot,
        receivers=tuple(range(1, n + 1)), channel=0, timebase=timebase)


def _stream(name, seed=7):
    return RandomStreams(seed).stream(name)


# ----------------------------------------------------------------------
# Gilbert-Elliott
# ----------------------------------------------------------------------

def test_gilbert_elliott_validates_parameters():
    rng = _stream("ge")
    with pytest.raises(ValueError):
        GilbertElliottChannel(p_gb=0.0, p_bg=0.5, rng=rng)
    with pytest.raises(ValueError):
        GilbertElliottChannel(p_gb=0.5, p_bg=1.5, rng=rng)
    with pytest.raises(ValueError):
        GilbertElliottChannel(p_gb=0.5, p_bg=0.5, error_bad=1.2, rng=rng)


def test_gilbert_elliott_closed_forms():
    ge = GilbertElliottChannel(p_gb=0.1, p_bg=0.4, error_good=0.05,
                               error_bad=0.9, rng=_stream("ge"))
    assert ge.stationary_bad() == pytest.approx(0.1 / 0.5)
    assert ge.stationary_error_rate() == pytest.approx(
        0.8 * 0.05 + 0.2 * 0.9)
    assert ge.mean_burst_slots() == pytest.approx(2.5)
    assert gilbert_elliott_stationary_bad(0.1, 0.4) == ge.stationary_bad()
    assert gilbert_elliott_error_rate(0.1, 0.4, 0.05, 0.9) == (
        ge.stationary_error_rate())


def test_gilbert_elliott_probe_matches_directives():
    """Probing and directive evaluation sample the identical sequence."""
    a = GilbertElliottChannel(p_gb=0.2, p_bg=0.5, rng=_stream("x"))
    b = GilbertElliottChannel(p_gb=0.2, p_bg=0.5, rng=_stream("x"))
    for p in range(8):
        for s in range(1, TB.n_slots + 1):
            probed = not a.is_quiescent(p, s, TB)
            fired = bool(list(b.directives(_ctx(p, s))))
            assert probed == fired, (p, s)


def test_gilbert_elliott_rejects_mismatched_slot_count():
    ge = GilbertElliottChannel(p_gb=0.2, p_bg=0.5, rng=_stream("x"))
    assert ge.is_quiescent(0, 1, TB) in (True, False)
    with pytest.raises(ValueError, match="bound to 4 slots"):
        ge.slot_error(0, 1, TimeBase(n_slots=8, round_length=2.5e-3))


def test_gilbert_elliott_golden_sequence():
    """Seed-stability: the exact per-slot error flags for seed 7/"ge".

    Byte-for-byte pin of the sampled sequence; a change to the stream
    derivation, the draw order (error coin before transition coin) or
    the state update breaks this list.
    """
    ge = GilbertElliottChannel(p_gb=0.1, p_bg=0.4, error_good=0.05,
                               error_bad=0.9, rng=_stream("ge"),
                               rng_stream="ge")
    assert [int(b) for b in ge.error_sequence(40, TB)] == [
        0, 0, 0, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 0]


# ----------------------------------------------------------------------
# Correlated EMI
# ----------------------------------------------------------------------

def test_emi_validates_parameters():
    rng = _stream("emi")
    with pytest.raises(ValueError):
        CorrelatedEMI(event_rate=0.0, width=2, rng=rng)
    with pytest.raises(ValueError):
        CorrelatedEMI(event_rate=0.5, width=0, rng=rng)


def test_emi_neighbourhood_is_contiguous_and_wraps():
    emi = CorrelatedEMI(event_rate=1.0, width=2, rng=_stream("emi"))
    for p in range(12):
        affected = sorted(emi.affected_receivers(p, TB))
        assert len(affected) == 2
        lo, hi = affected
        assert hi - lo == 1 or (lo, hi) == (1, TB.n_slots)  # ring wrap


def test_emi_width_covering_all_nodes():
    emi = CorrelatedEMI(event_rate=1.0, width=4, rng=_stream("emi"))
    assert sorted(emi.affected_receivers(0, TB)) == [1, 2, 3, 4]


def test_emi_directive_is_asymmetric_for_affected_receivers():
    emi = CorrelatedEMI(event_rate=1.0, width=2, rng=_stream("emi"))
    layer = InjectionLayer()
    layer.add(emi)
    affected = emi.affected_receivers(0, TB)
    out = layer.apply(_ctx(0, 1))
    for r in range(1, TB.n_slots + 1):
        expected = (ReceptionOutcome.DETECTABLE if r in affected
                    else ReceptionOutcome.OK)
        assert out.outcomes[r] is expected, r


def test_emi_probe_matches_directives_draw_for_draw():
    a = CorrelatedEMI(event_rate=0.3, width=2, rng=_stream("e2"))
    b = CorrelatedEMI(event_rate=0.3, width=2, rng=_stream("e2"))
    for p in range(20):
        probed = not a.is_quiescent(p, 1, TB)
        fired = bool(list(b.directives(_ctx(p, 1))))
        assert probed == fired, p


def test_emi_golden_events():
    """Seed-stability: exact (round -> neighbourhood) map for seed 7."""
    emi = CorrelatedEMI(event_rate=0.3, width=2, rng=_stream("emi"),
                        rng_stream="emi")
    events = {p: sorted(emi.affected_receivers(p, TB))
              for p in range(20) if emi.affected_receivers(p, TB)}
    assert events == {2: [1, 4], 4: [2, 3], 5: [2, 3], 6: [1, 4],
                      19: [1, 4]}


# ----------------------------------------------------------------------
# Duty-cycle intermittent
# ----------------------------------------------------------------------

def test_duty_cycle_validates_parameters():
    rng = _stream("duty")
    with pytest.raises(ValueError):
        DutyCycleIntermittent(sender=1, period_rounds=0, on_rounds=1, rng=rng)
    with pytest.raises(ValueError):
        DutyCycleIntermittent(sender=1, period_rounds=4, on_rounds=5, rng=rng)
    with pytest.raises(ValueError):
        DutyCycleIntermittent(sender=1, period_rounds=4, on_rounds=0, rng=rng)


def test_duty_cycle_occupancy_is_exact_per_period():
    """Every period contains exactly ``on_rounds`` faulty rounds."""
    duty = DutyCycleIntermittent(sender=2, period_rounds=5, on_rounds=2,
                                 rng=_stream("d"))
    for period in range(10):
        rounds = range(period * 5, (period + 1) * 5)
        assert sum(duty.is_faulty_round(p) for p in rounds) == 2, period


def test_duty_cycle_window_is_contiguous():
    duty = DutyCycleIntermittent(sender=1, period_rounds=6, on_rounds=3,
                                 rng=_stream("d2"))
    for period in range(8):
        faulty = [p for p in range(period * 6, (period + 1) * 6)
                  if duty.is_faulty_round(p)]
        assert faulty == list(range(faulty[0], faulty[0] + 3)), period


def test_duty_cycle_respects_first_round():
    duty = DutyCycleIntermittent(sender=1, period_rounds=3, on_rounds=3,
                                 rng=_stream("d3"), first_round=5)
    assert not any(duty.is_faulty_round(p) for p in range(5))
    assert all(duty.is_faulty_round(p) for p in range(5, 11))


def test_duty_cycle_only_touches_its_sender():
    duty = DutyCycleIntermittent(sender=2, period_rounds=3, on_rounds=3,
                                 rng=_stream("d4"))
    assert duty.is_quiescent(0, 1, TB)
    assert not duty.is_quiescent(0, 2, TB)
    assert list(duty.directives(_ctx(0, 1))) == []
    assert len(list(duty.directives(_ctx(0, 2)))) == 1


def test_duty_cycle_golden_rounds():
    """Seed-stability: exact faulty-round list for seed 7/"duty"."""
    duty = DutyCycleIntermittent(sender=2, period_rounds=5, on_rounds=2,
                                 rng=_stream("duty"), rng_stream="duty")
    assert [p for p in range(25) if duty.is_faulty_round(p)] == [
        0, 1, 6, 7, 12, 13, 18, 19, 22, 23]


# ----------------------------------------------------------------------
# Fault storm
# ----------------------------------------------------------------------

def test_storm_validates_parameters():
    rng = _stream("storm")
    with pytest.raises(ValueError):
        FaultStorm(gust_rate=0.0, intensity=0.5, rng=rng)
    with pytest.raises(ValueError):
        FaultStorm(gust_rate=0.5, intensity=1.5, rng=rng)
    with pytest.raises(ValueError):
        FaultStorm(gust_rate=0.5, intensity=0.5, senders=[], rng=rng)
    with pytest.raises(ValueError):
        FaultStorm(gust_rate=0.5, intensity=0.5, duration_rounds=0, rng=rng)


def test_storm_respects_window_and_senders():
    storm = FaultStorm(gust_rate=1.0, intensity=1.0, senders=[2, 3],
                       start_round=3, duration_rounds=2, rng=_stream("s"))
    for p in range(8):
        hits = sorted(storm.hit_senders(p, TB))
        assert hits == ([2, 3] if p in (3, 4) else []), p


def test_storm_probe_matches_directives_draw_for_draw():
    a = FaultStorm(gust_rate=0.4, intensity=0.6, rng=_stream("s2"))
    b = FaultStorm(gust_rate=0.4, intensity=0.6, rng=_stream("s2"))
    for p in range(15):
        for s in range(1, TB.n_slots + 1):
            probed = not a.is_quiescent(p, s, TB)
            fired = bool(list(b.directives(_ctx(p, s))))
            assert probed == fired, (p, s)


def test_storm_golden_hits():
    """Seed-stability: exact (round -> hit senders) map for seed 7."""
    storm = FaultStorm(gust_rate=0.4, intensity=0.6, rng=_stream("storm"),
                       rng_stream="storm")
    hits = {p: sorted(storm.hit_senders(p, TB))
            for p in range(15) if storm.hit_senders(p, TB)}
    assert hits == {0: [1, 2, 4], 2: [1, 3], 3: [3, 4],
                    11: [1, 2, 3], 12: [1, 2, 3, 4]}


# ----------------------------------------------------------------------
# Adaptive saboteur
# ----------------------------------------------------------------------

def test_saboteur_requires_observer():
    sab = AdaptiveSaboteur(sender=2)
    with pytest.raises(ValueError, match="bind_observer"):
        list(sab.directives(_ctx(0, 2)))


def test_saboteur_validates_margin():
    with pytest.raises(ValueError):
        AdaptiveSaboteur(sender=1, margin=-1)


def test_saboteur_decision_is_memoised_per_round():
    class _FakeService:
        class pr:  # noqa: N801 - mimics the service attribute
            penalties = [0, 0, 0, 0]

    class _FakeFacade:
        from repro.core.config import uniform_config
        config = uniform_config(4, penalty_threshold=3, reward_threshold=5)
        services = {j: _FakeService() for j in range(1, 5)}

    sab = AdaptiveSaboteur(sender=2, margin=0)
    sab.bind_observer(_FakeFacade())
    assert not sab.is_quiescent(0, 2, TB)       # attacks at zero penalty
    _FakeFacade.services[1].pr.penalties[1] = 99
    # The round-0 decision is already memoised; the state change only
    # affects later rounds.
    assert not sab.is_quiescent(0, 2, TB)
    assert sab.is_quiescent(1, 2, TB)           # now over the margin


def test_saboteur_backs_off_below_threshold():
    """End to end: with enough margin the saboteur is never isolated."""
    from repro.spec import ClusterSpec, ProtocolSpec, RunSpec, ScenarioSpec
    from repro.spec.build import build

    protocol = ProtocolSpec(n_nodes=4, penalty_threshold=10,
                            reward_threshold=4, criticalities=(1,) * 4)
    spec = RunSpec(
        protocol=protocol, cluster=ClusterSpec(seed=0),
        scenarios=(ScenarioSpec("AdaptiveSaboteur",
                                {"sender": 2, "margin": 6}),),
        n_rounds=30)
    dc = build(spec)
    dc.run_rounds(spec.n_rounds)
    # It attacked (penalties accrued) ...
    assert max(dc.service(1).pr.penalties) > 0
    # ... but stayed under the isolation threshold throughout.
    assert dc.first_isolation_time(2) is None
    assert dc.active_matrix()[1] == (1, 1, 1, 1)


# ----------------------------------------------------------------------
# Serialization round-trips and the stale-stream guard
# ----------------------------------------------------------------------

@pytest.mark.parametrize("factory", [
    lambda rng: GilbertElliottChannel(p_gb=0.1, p_bg=0.4, error_good=0.05,
                                      error_bad=0.9, rng=rng,
                                      rng_stream="ch"),
    lambda rng: CorrelatedEMI(event_rate=0.3, width=2, rng=rng,
                              rng_stream="ch"),
    lambda rng: DutyCycleIntermittent(sender=2, period_rounds=5,
                                      on_rounds=2, rng=rng,
                                      rng_stream="ch"),
    lambda rng: FaultStorm(gust_rate=0.4, intensity=0.6, senders=[1, 3],
                           start_round=1, duration_rounds=8, rng=rng,
                           rng_stream="ch"),
])
def test_channel_round_trip_preserves_dict_and_repr(factory):
    original = factory(_stream("ch"))
    data = original.to_dict()
    rebuilt = type(original).from_dict(data, streams=RandomStreams(7))
    assert rebuilt.to_dict() == data
    assert repr(rebuilt) == repr(original)


def test_channel_from_dict_rejects_stale_stream():
    """Rebuilding against an advanced stream is refused, not silent."""
    streams = RandomStreams(7)
    original = GilbertElliottChannel(p_gb=0.1, p_bg=0.4,
                                     rng=streams.stream("ch"),
                                     rng_stream="ch")
    original.slot_error(3, 1, TB)  # advances the "ch" stream
    with pytest.raises(ValueError, match="already materialized"):
        GilbertElliottChannel.from_dict(original.to_dict(), streams=streams)


def test_saboteur_round_trip():
    sab = AdaptiveSaboteur(sender=3, margin=2)
    data = sab.to_dict()
    rebuilt = AdaptiveSaboteur.from_dict(data)
    assert rebuilt.to_dict() == data
    assert repr(rebuilt) == repr(sab)
    assert AdaptiveSaboteur.event_only is True
