"""Unit tests for the injection layer's composition rules."""

from repro.faults.injector import InjectionLayer, TransmissionContext
from repro.faults.model import FaultDirective, ReceptionOutcome
from repro.tt.timebase import TimeBase


def make_ctx(sender=2, channel=0):
    tb = TimeBase(4, 2.5e-3)
    return TransmissionContext(time=tb.slot_start(0, sender), round_index=0,
                               slot=sender, sender=sender,
                               receivers=(1, 2, 3, 4), channel=channel,
                               timebase=tb)


class StaticScenario:
    def __init__(self, *directives):
        self._directives = directives

    def directives(self, ctx):
        return iter(self._directives)


def test_empty_layer_is_clean():
    layer = InjectionLayer()
    outcome = layer.apply(make_ctx())
    assert outcome.clean
    assert outcome.malicious_payload is None
    assert outcome.causes == ()


def test_single_benign_directive():
    layer = InjectionLayer()
    layer.add(StaticScenario(FaultDirective.benign(cause="noise")))
    outcome = layer.apply(make_ctx())
    assert all(o is ReceptionOutcome.DETECTABLE
               for o in outcome.outcomes.values())
    assert outcome.causes == ("noise",)


def test_asymmetric_directive_partial():
    layer = InjectionLayer()
    layer.add(StaticScenario(FaultDirective.asymmetric([1, 3])))
    outcome = layer.apply(make_ctx())
    assert outcome.outcomes[1] is ReceptionOutcome.DETECTABLE
    assert outcome.outcomes[3] is ReceptionOutcome.DETECTABLE
    assert outcome.outcomes[2] is ReceptionOutcome.OK
    assert outcome.outcomes[4] is ReceptionOutcome.OK


def test_overlapping_asymmetric_directives_union():
    layer = InjectionLayer()
    layer.add(StaticScenario(FaultDirective.asymmetric([1])))
    layer.add(StaticScenario(FaultDirective.asymmetric([3])))
    outcome = layer.apply(make_ctx())
    detect = {r for r, o in outcome.outcomes.items()
              if o is ReceptionOutcome.DETECTABLE}
    assert detect == {1, 3}


def test_detectable_dominates_malicious_per_receiver():
    layer = InjectionLayer()
    layer.add(StaticScenario(FaultDirective.malicious("bad")))
    layer.add(StaticScenario(FaultDirective.asymmetric([2])))
    outcome = layer.apply(make_ctx())
    assert outcome.outcomes[2] is ReceptionOutcome.DETECTABLE
    assert outcome.outcomes[1] is ReceptionOutcome.MALICIOUS
    # The malicious payload survives because some receiver still
    # accepts the forged frame.
    assert outcome.malicious_payload == "bad"


def test_malicious_payload_dropped_when_fully_masked():
    layer = InjectionLayer()
    layer.add(StaticScenario(FaultDirective.malicious("bad")))
    layer.add(StaticScenario(FaultDirective.benign()))
    outcome = layer.apply(make_ctx())
    assert all(o is ReceptionOutcome.DETECTABLE
               for o in outcome.outcomes.values())
    assert outcome.malicious_payload is None


def test_channel_filtering():
    layer = InjectionLayer()
    layer.add(StaticScenario(FaultDirective.benign(channel=1)))
    assert layer.apply(make_ctx(channel=0)).clean
    assert not layer.apply(make_ctx(channel=1)).clean


def test_remove_scenario():
    layer = InjectionLayer()
    scenario = StaticScenario(FaultDirective.benign())
    layer.add(scenario)
    assert not layer.apply(make_ctx()).clean
    layer.remove(scenario)
    assert layer.apply(make_ctx()).clean
    assert layer.scenarios == ()


def test_causes_deduplicated_in_order_at_bus_level():
    # The layer reports every applied cause; ordering is registration
    # order (the bus deduplicates for the trace).
    layer = InjectionLayer()
    layer.add(StaticScenario(FaultDirective.benign(cause="a")))
    layer.add(StaticScenario(FaultDirective.benign(cause="b")))
    outcome = layer.apply(make_ctx())
    assert outcome.causes == ("a", "b")
