"""Tests for table rendering."""

import pytest

from repro.analysis.reporting import (
    format_cell,
    render_comparison,
    render_series,
    render_table,
)


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_floats_compact(self):
        assert format_cell(0.518) == "0.518"
        assert format_cell(0) == "0"
        assert format_cell(0.0) == "0"
        assert format_cell(1e-9) == "1e-09"
        assert format_cell(123456.0) == "1.23e+05"

    def test_strings_and_ints_passthrough(self):
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_alignment_and_borders(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("+") and lines[0].endswith("+")
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "| a " in lines[1]

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "| a |" in out


def test_render_comparison():
    line = render_comparison("Table 4 auto SC", 0.518, 0.520, unit="s")
    assert "paper = 0.518 s" in line
    assert "measured = 0.52 s" in line


def test_render_series():
    out = render_series("fig", [1, 2], [0.1, 0.2], x_label="R", y_label="p")
    assert "fig" in out
    assert "| R" in out


class TestFormatCellEdgeCases:
    @pytest.mark.parametrize("value,expected", [
        (True, "True"),
        (False, "False"),
        (-0.0, "0"),
        (0.0, "0"),
        (float("nan"), "nan"),
        (None, "-"),
        (9999.0, "9999"),
        (10000.0, "1e+04"),
        (0.001, "0.001"),
        (0.0009999, "0.001"),       # < 1e-3 switches to .3g
        (-123456.0, "-1.23e+05"),
        (42, "42"),
        ("already a string", "already a string"),
    ])
    def test_single_formatting_rule(self, value, expected):
        from repro.analysis.reporting import format_cell
        assert format_cell(value) == expected

    def test_bool_beats_numeric_branch(self):
        # bool is an int subclass; True must never render as "1"
        from repro.analysis.reporting import format_cell
        assert format_cell(True) != "1"


class TestCellEscaping:
    @pytest.mark.parametrize("text,expected", [
        ("plain", "plain"),
        ("a|b", "a\\|b"),
        ("a\\|b", "a\\\\\\|b"),
        ("1.23e+05", "1.23e+05"),   # numbers pass through untouched
    ])
    def test_markdown_escapes_table_breakers(self, text, expected):
        from repro.analysis.reporting import escape_markdown_cell
        assert escape_markdown_cell(text) == expected

    @pytest.mark.parametrize("text,expected", [
        ("plain", "plain"),
        ("a&b", r"a\&b"),
        ("95% CI", r"95\% CI"),
        ("p_gb", r"p\_gb"),
        ("$5 #1 {x}", r"\$5 \#1 \{x\}"),
        ("a~b^c", r"a\textasciitilde{}b\textasciicircum{}c"),
        ("a\\b", r"a\textbackslash{}b"),
        ("1.23e+05", "1.23e+05"),
    ])
    def test_latex_escapes_specials(self, text, expected):
        from repro.analysis.reporting import escape_latex_cell
        assert escape_latex_cell(text) == expected
