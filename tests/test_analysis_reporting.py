"""Tests for table rendering."""

import pytest

from repro.analysis.reporting import (
    format_cell,
    render_comparison,
    render_series,
    render_table,
)


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_floats_compact(self):
        assert format_cell(0.518) == "0.518"
        assert format_cell(0) == "0"
        assert format_cell(0.0) == "0"
        assert format_cell(1e-9) == "1e-09"
        assert format_cell(123456.0) == "1.23e+05"

    def test_strings_and_ints_passthrough(self):
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_alignment_and_borders(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("+") and lines[0].endswith("+")
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "| a " in lines[1]

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "| a |" in out


def test_render_comparison():
    line = render_comparison("Table 4 auto SC", 0.518, 0.520, unit="s")
    assert "paper = 0.518 s" in line
    assert "measured = 0.52 s" in line


def test_render_series():
    out = render_series("fig", [1, 2], [0.1, 0.2], x_label="R", y_label="p")
    assert "fig" in out
    assert "| R" in out
