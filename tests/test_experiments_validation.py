"""Tests for the Sec. 8 validation harness (integration level)."""

import pytest

from repro.experiments.validation import (
    CampaignSummary,
    expected_faulty_slots,
    run_burst_experiment,
    run_clique_experiment,
    run_malicious_experiment,
    run_penalty_reward_experiment,
    run_validation_campaign,
)


class TestExpectedFaultySlots:
    def test_single_slot(self):
        assert expected_faulty_slots(4, 2, 1, fault_round=6) == {6: (2,)}

    def test_two_slots_same_round(self):
        assert expected_faulty_slots(4, 2, 2, fault_round=6) == {6: (2, 3)}

    def test_wraps_rounds(self):
        assert expected_faulty_slots(4, 4, 2, fault_round=6) == \
            {6: (4,), 7: (1,)}

    def test_two_full_rounds(self):
        expected = expected_faulty_slots(4, 1, 8, fault_round=6)
        assert expected == {6: (1, 2, 3, 4), 7: (1, 2, 3, 4)}


class TestBurstClasses:
    @pytest.mark.parametrize("start_slot", [1, 2, 3, 4])
    @pytest.mark.parametrize("n_slots", [1, 2])
    def test_lemma2_regime(self, n_slots, start_slot):
        result = run_burst_experiment(n_slots, start_slot, seed=0)
        assert result.passed, result

    @pytest.mark.parametrize("start_slot", [1, 2, 3, 4])
    def test_blackout_regime(self, start_slot):
        result = run_burst_experiment(8, start_slot, seed=0)
        assert result.passed, result

    def test_repetitions_with_distinct_seeds(self):
        for seed in range(5):
            assert run_burst_experiment(2, 3, seed=seed).passed


class TestPenaltyRewardClass:
    def test_counters_progress_every_round(self):
        result = run_penalty_reward_experiment(seed=0)
        assert result.passed
        # Faults every second round: penalties 1..10 interleaved with
        # reward pulses.
        penalties = [p for _d, p, _r in result.evolution]
        assert penalties[0] == 1
        assert max(penalties) == 10

    def test_alternating_pattern(self):
        result = run_penalty_reward_experiment(seed=1)
        for (d0, p0, r0), (d1, p1, r1) in zip(result.evolution,
                                              result.evolution[1:]):
            assert d1 == d0 + 1
            # Either penalty grew (fault) or reward grew (clean round).
            assert (p1 == p0 + 1 and r1 == 0) or (p1 == p0 and r1 == r0 + 1)


class TestMaliciousClass:
    @pytest.mark.parametrize("byzantine", [1, 2, 3, 4])
    def test_all_positions(self, byzantine):
        assert run_malicious_experiment(byzantine, seed=0).passed


class TestCliqueClass:
    def test_detects_minority_node1(self):
        result = run_clique_experiment(seed=0)
        assert result.passed
        assert result.final_view == (2, 3, 4)
        assert result.view_latency_rounds is not None

    def test_different_disturbed_senders(self):
        for sender in (2, 3, 4):
            assert run_clique_experiment(disturbed_sender=sender,
                                         seed=1).passed


class TestCampaign:
    def test_small_campaign_all_pass(self):
        summary = run_validation_campaign(repetitions=1)
        assert summary.all_passed
        # 12 burst classes + p/r + 4 malicious + clique = 18 classes.
        assert len(summary.results) == 18
        assert summary.total_injections == 18

    def test_summary_bookkeeping(self):
        summary = CampaignSummary()
        summary.add("x", True)
        summary.add("x", False)
        assert summary.total_injections == 2
        assert not summary.all_passed
        assert summary.pass_rates() == {"x": 0.5}
