"""Statistical property tests validating the channel models' sampling
distributions against their closed forms.

Determinism policy (see also ``tests/conftest.py``): every test uses a
fixed ``RandomStreams`` seed, so each one observes a single frozen
sample path — the assertions can never flake.  Tolerances are sized
analytically at roughly four standard deviations of the relevant
estimator (binomial: ``sigma = sqrt(p (1 - p) / n)``; sample mean of
geometric sojourns: ``sigma = sqrt(var / k)``), i.e. wide enough that
only a genuinely wrong sampler fails, tight enough that swapping the
stationary distribution, the draw order, or an off-by-one in the state
update is caught.  The heaviest sample paths are ``@pytest.mark.slow``
so ``make test-fast`` can skip them; all stay well under a second.
"""

from __future__ import annotations

import math

import pytest

from repro.faults.channels import (
    CorrelatedEMI,
    DutyCycleIntermittent,
    FaultStorm,
    GilbertElliottChannel,
)
from repro.sim.rng import RandomStreams
from repro.tt.timebase import TimeBase

TB = TimeBase(n_slots=4, round_length=2.5e-3)

# Registered in pyproject.toml; ``tests/conftest.py`` enforces that
# every test carrying it draws randomness only from explicit seeds.
pytestmark = pytest.mark.statistical


def _stream(name, seed=1234):
    return RandomStreams(seed).stream(name)


def _binomial_band(p, n, z=4.0):
    """Half-width of a z-sigma band around a binomial proportion."""
    return z * math.sqrt(p * (1.0 - p) / n)


# ----------------------------------------------------------------------
# Gilbert-Elliott
# ----------------------------------------------------------------------

@pytest.mark.slow
def test_ge_stationary_error_rate_matches_closed_form():
    """Empirical slot-error frequency vs (1-pi_B) e_g + pi_B e_b.

    20_000 slots; the chain mixes fast (p_gb + p_bg = 0.5) so the
    binomial band is only mildly widened by autocorrelation — the
    4-sigma iid band times 2 comfortably covers it.
    """
    ge = GilbertElliottChannel(p_gb=0.1, p_bg=0.4, error_good=0.05,
                               error_bad=0.9, rng=_stream("ge-rate"))
    n = 20_000
    errors = ge.error_sequence(n, TB)
    expected = ge.stationary_error_rate()  # 0.8*0.05 + 0.2*0.9 = 0.22
    band = 2.0 * _binomial_band(expected, n)  # ~= 0.023
    assert abs(sum(errors) / n - expected) < band


@pytest.mark.slow
def test_ge_mean_burst_length_is_geometric():
    """With e_g=0, e_b=1 error bursts ARE bad sojourns: mean 1/p_bg.

    Sojourn lengths are Geometric(p_bg): mean 1/p_bg, variance
    (1 - p_bg) / p_bg^2.  With ~p_gb/(1+mean) * n ~= 1300 bursts the
    4-sigma band on the sample mean is ~0.4 slots around 3.333.
    """
    p_bg = 0.3
    ge = GilbertElliottChannel(p_gb=0.15, p_bg=p_bg, error_good=0.0,
                               error_bad=1.0, rng=_stream("ge-burst"))
    errors = ge.error_sequence(40_000, TB)
    bursts = []
    run = 0
    for e in errors:
        if e:
            run += 1
        elif run:
            bursts.append(run)
            run = 0
    assert len(bursts) > 500
    mean = sum(bursts) / len(bursts)
    expected = 1.0 / p_bg
    sigma = math.sqrt((1.0 - p_bg) / p_bg**2 / len(bursts))
    assert abs(mean - expected) < 4.0 * sigma
    assert ge.mean_burst_slots() == pytest.approx(expected)


def test_ge_start_bad_biases_early_slots():
    """start_bad flips the slot-0 state, deterministically observable
    with e_g=0 / e_b=1: bad start errs at slot 0, good start cannot."""
    bad = GilbertElliottChannel(p_gb=0.01, p_bg=0.02, error_good=0.0,
                                error_bad=1.0, start_bad=True,
                                rng=_stream("ge-s"))
    good = GilbertElliottChannel(p_gb=0.01, p_bg=0.02, error_good=0.0,
                                 error_bad=1.0, start_bad=False,
                                 rng=_stream("ge-s"))
    assert bad.error_sequence(1, TB) == [True]
    assert good.error_sequence(1, TB) == [False]
    # And the sticky bad chain (mean sojourn 50 slots) errs far more
    # over the first 20 slots than the sticky good chain.
    assert sum(bad.error_sequence(20, TB)) > sum(good.error_sequence(20, TB))


# ----------------------------------------------------------------------
# Duty-cycle occupancy
# ----------------------------------------------------------------------

def test_duty_cycle_occupancy_is_exact():
    """Occupancy over whole periods equals on/period *exactly* — the
    model draws only the window offset, never the window size."""
    duty = DutyCycleIntermittent(sender=1, period_rounds=7, on_rounds=3,
                                 rng=_stream("duty"))
    periods = 200
    faulty = sum(duty.is_faulty_round(p) for p in range(periods * 7))
    assert faulty == periods * 3
    assert duty.duty_cycle() == pytest.approx(3 / 7)


def test_duty_cycle_offsets_are_uniform():
    """The window offset is uniform over the legal placements.

    period=5, on=2 gives 4 offsets; over 2000 periods each lands in a
    4-sigma band of 500 +- 4*sqrt(2000*0.25*0.75) ~= 500 +- 78.
    """
    duty = DutyCycleIntermittent(sender=1, period_rounds=5, on_rounds=2,
                                 rng=_stream("duty-u"))
    counts = [0, 0, 0, 0]
    for period in range(2000):
        first = next(p for p in range(period * 5, (period + 1) * 5)
                     if duty.is_faulty_round(p))
        counts[first % 5] += 1
    band = 4.0 * math.sqrt(2000 * 0.25 * 0.75)
    assert all(abs(c - 500) < band for c in counts), counts


# ----------------------------------------------------------------------
# Correlated EMI
# ----------------------------------------------------------------------

@pytest.mark.slow
def test_emi_marginal_rate_and_pair_correlation():
    """Per-node marginal ~= event_rate*width/n; neighbours co-fail.

    With events hitting a contiguous width-2 neighbourhood on a 4-ring,
    each node's marginal failure rate is 0.3 * 2/4 = 0.15 per round.
    The joint rate for an adjacent pair is the chance one event covers
    both: 0.3 * 1/4 = 0.075 — 3.3x the independent product 0.0225.
    The gap (factor > 2 required below) is what "spatially correlated"
    means and what an independent-per-node model cannot produce.
    """
    emi = CorrelatedEMI(event_rate=0.3, width=2, rng=_stream("emi"))
    rounds = 10_000
    node1 = node2 = joint = 0
    for p in range(rounds):
        affected = emi.affected_receivers(p, TB)
        in1, in2 = 1 in affected, 2 in affected
        node1 += in1
        node2 += in2
        joint += in1 and in2
    m1, m2, j = node1 / rounds, node2 / rounds, joint / rounds
    assert abs(m1 - 0.15) < _binomial_band(0.15, rounds)
    assert abs(m2 - 0.15) < _binomial_band(0.15, rounds)
    assert abs(j - 0.075) < _binomial_band(0.075, rounds)
    assert j > 2.0 * m1 * m2  # correlated, not independent


def test_emi_event_rate_matches_parameter():
    emi = CorrelatedEMI(event_rate=0.2, width=1, rng=_stream("emi-r"))
    rounds = 5_000
    fired = sum(bool(emi.affected_receivers(p, TB)) for p in range(rounds))
    assert abs(fired / rounds - 0.2) < _binomial_band(0.2, rounds)


# ----------------------------------------------------------------------
# Fault storm
# ----------------------------------------------------------------------

@pytest.mark.slow
def test_storm_gust_rate_and_conditional_intensity():
    """Gust-round frequency ~= gust_rate; per-sender hit rate within a
    gust ~= intensity (each candidate is an independent coin)."""
    storm = FaultStorm(gust_rate=0.25, intensity=0.6, rng=_stream("storm"))
    rounds = 8_000
    gusts = 0
    sender_hits = 0
    for p in range(rounds):
        hits = storm.hit_senders(p, TB)
        if hits:
            gusts += 1
            sender_hits += len(hits)
    # A gust with zero hit senders is indistinguishable from no gust,
    # so the observable gust rate is gust_rate * (1 - (1-q)^n).
    observable = 0.25 * (1.0 - 0.4**4)
    assert abs(gusts / rounds - observable) < _binomial_band(
        observable, rounds)
    # Conditional on >=1 hit, mean hits is n*q / (1 - (1-q)^n).
    expected_mean = 4 * 0.6 / (1.0 - 0.4**4)
    assert abs(sender_hits / gusts - expected_mean) < 0.1


def test_storm_hits_only_listed_senders():
    storm = FaultStorm(gust_rate=1.0, intensity=0.5, senders=[1, 4],
                       rng=_stream("storm-s"))
    seen = set()
    for p in range(200):
        seen |= storm.hit_senders(p, TB)
    assert seen == {1, 4}
