"""Integration tests for the membership protocol (Sec. 7, Theorem 2)."""

from repro.analysis.metrics import consistency_violations
from repro.core.config import uniform_config
from repro.core.service import MembershipCluster
from repro.faults.scenarios import SenderFault, SlotBurst, crash

FAULT_ROUND = 6


def permissive():
    return uniform_config(4, penalty_threshold=10 ** 6,
                          reward_threshold=10 ** 6)


def make_membership(scenario=None, seed=0, rounds=20, config=None, **kw):
    mc = MembershipCluster(config or permissive(), seed=seed, **kw)
    if scenario is not None:
        mc.cluster.add_scenario(scenario)
    mc.run_rounds(rounds)
    return mc


class TestFaultFreeOperation:
    def test_initial_view_is_full_and_stable(self):
        mc = make_membership()
        for node in range(1, 5):
            assert mc.services[node].view == frozenset({1, 2, 3, 4})
            assert len(mc.views(node)) == 1

    def test_no_accusations_without_faults(self):
        mc = make_membership()
        assert not mc.trace.select(category="clique")


class TestBenignSenderExclusion:
    def test_benign_faulty_sender_leaves_view(self):
        mc = make_membership(crash(3, from_round=FAULT_ROUND))
        for node in (1, 2, 4):
            assert mc.services[node].view == frozenset({1, 2, 4})

    def test_view_change_round_consistent(self):
        mc = make_membership(crash(3, from_round=FAULT_ROUND))
        rounds = {rec.data["round_index"]
                  for rec in mc.trace.select(category="view")
                  if rec.node in (1, 2, 4)}
        assert len(rounds) == 1

    def test_transient_sender_fault_also_changes_view(self):
        # Membership liveness: ANY locally detectable faulty message
        # produces a new view (even a single transient).
        mc = make_membership(SenderFault(2, kind="benign",
                                         rounds=[FAULT_ROUND]))
        for node in (1, 3, 4):
            assert mc.services[node].view == frozenset({1, 3, 4})


class TestAsymmetricCliqueDetection:
    def make_asymmetric(self, minority, seed=0):
        # Node `disturbed`'s frame in FAULT_ROUND is missed only by the
        # minority receivers.
        return make_membership(
            SenderFault(3, kind="asymmetric", rounds=[FAULT_ROUND],
                        detectable_by=minority),
            seed=seed, rounds=FAULT_ROUND + 14)

    def test_minority_clique_accused_and_excluded(self):
        mc = self.make_asymmetric(minority=[1])
        majority = (2, 3, 4)
        for node in majority:
            assert 1 not in mc.services[node].view
        accused = {a for rec in mc.trace.select(category="clique")
                   for a in rec.data["accused"]}
        assert accused == {1}

    def test_two_node_minority_without_sender_vote(self):
        # Minority {1, 4}: the vote on node 3 (sender) is 1-1 among
        # {1,4} vs {2} plus... with N=4 the column on the sender has 3
        # votes: 1, 4 say faulty, 2 says fine -> majority faulty.  The
        # disagreeing node is then node 2.
        mc = self.make_asymmetric(minority=[1, 4])
        obedient = mc.obedient_node_ids()
        assert not consistency_violations(mc.trace, obedient)
        final_views = {mc.services[n].view for n in (1, 3, 4)}
        assert len(final_views) == 1

    def test_views_agree_across_majority(self):
        mc = self.make_asymmetric(minority=[2])
        views = {mc.services[n].view for n in (1, 3, 4)}
        assert len(views) == 1

    def test_liveness_within_two_protocol_executions(self):
        # Theorem 2: the new view forms within two executions after the
        # fault's analysis.  The fault in round F is analysed at F+3;
        # the minority accusation propagates through one more full
        # pipeline (3 rounds): view change by F+6.
        mc = self.make_asymmetric(minority=[1])
        change_rounds = [rec.data["round_index"]
                         for rec in mc.trace.select(category="view")
                         if rec.node in (2, 3, 4)]
        assert change_rounds
        assert max(change_rounds) <= FAULT_ROUND + 6


class TestViewSynchrony:
    def test_members_of_view_received_same_messages(self):
        # After the view stabilises, every in-view obedient node has
        # identical health history (a proxy for "received the same
        # messages" in this simulation: validity bits drive state).
        mc = make_membership(
            SenderFault(3, kind="asymmetric", rounds=[FAULT_ROUND],
                        detectable_by=[1]),
            rounds=FAULT_ROUND + 14)
        view = mc.services[2].view
        histories = {n: tuple(sorted(mc.health_vectors(n).items()))
                     for n in view}
        assert len(set(histories.values())) == 1


class TestMembershipUnderBursts:
    def test_burst_shrinks_view_but_stays_consistent(self):
        mc = make_membership(
            SlotBurst(MembershipClusterTimebase(), FAULT_ROUND, 2, 2),
            rounds=20)
        obedient = mc.obedient_node_ids()
        assert not consistency_violations(mc.trace, obedient)
        views = {mc.services[n].view for n in (1, 4)}
        assert len(views) == 1
        assert views.pop() == frozenset({1, 4})


def MembershipClusterTimebase():
    from repro.tt.timebase import TimeBase
    return TimeBase(4, 2.5e-3)
