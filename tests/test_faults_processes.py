"""Unit tests for stochastic fault processes."""

import math
import random

import pytest

from repro.faults.injector import TransmissionContext
from repro.faults.processes import (
    IntermittentSender,
    PoissonTransients,
    RandomSlotNoise,
    require_finite_horizon,
)
from repro.tt.timebase import TimeBase

TB = TimeBase(4, 2.5e-3)


def ctx(round_index, slot):
    return TransmissionContext(time=TB.slot_start(round_index, slot),
                               round_index=round_index, slot=slot,
                               sender=slot, receivers=(1, 2, 3, 4),
                               channel=0, timebase=TB)


def hits(scenario, round_index, slot):
    return bool(list(scenario.directives(ctx(round_index, slot))))


class TestPoissonTransients:
    def test_reproducible_for_seed(self):
        a = PoissonTransients(rate=100.0, burst_length=1e-3,
                              rng=random.Random(1))
        b = PoissonTransients(rate=100.0, burst_length=1e-3,
                              rng=random.Random(1))
        pattern_a = [hits(a, k, s) for k in range(50) for s in range(1, 5)]
        pattern_b = [hits(b, k, s) for k in range(50) for s in range(1, 5)]
        assert pattern_a == pattern_b
        assert any(pattern_a)

    def test_rate_scales_hit_count(self):
        low = PoissonTransients(rate=10.0, burst_length=1e-4,
                                rng=random.Random(2))
        high = PoissonTransients(rate=1000.0, burst_length=1e-4,
                                 rng=random.Random(2))
        count = lambda s: sum(hits(s, k, slot)
                              for k in range(200) for slot in range(1, 5))
        assert count(high) > count(low)

    def test_arrivals_oracle_matches_horizon(self):
        p = PoissonTransients(rate=50.0, burst_length=1e-3,
                              rng=random.Random(3))
        arrivals = p.arrivals_until(1.0)
        assert all(t <= 1.0 for t in arrivals)
        assert arrivals == sorted(arrivals)
        # Extending the horizon only appends.
        more = p.arrivals_until(2.0)
        assert more[:len(arrivals)] == arrivals

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonTransients(rate=0.0, burst_length=1e-3,
                              rng=random.Random(0))
        with pytest.raises(ValueError):
            PoissonTransients(rate=1.0, burst_length=0.0,
                              rng=random.Random(0))


class TestIntermittentSender:
    def test_only_affects_its_sender(self):
        s = IntermittentSender(2, mean_reappearance_rounds=5,
                               rng=random.Random(0), first_round=0)
        assert hits(s, 0, 2)
        assert not hits(s, 0, 3)

    def test_burst_rounds_consecutive(self):
        s = IntermittentSender(1, mean_reappearance_rounds=1000,
                               rng=random.Random(0), burst_rounds=3,
                               first_round=5)
        assert not s.is_faulty_round(4)
        assert all(s.is_faulty_round(k) for k in (5, 6, 7))
        assert not s.is_faulty_round(8)

    def test_mean_reappearance_statistics(self):
        s = IntermittentSender(1, mean_reappearance_rounds=20,
                               rng=random.Random(7))
        faulty = [k for k in range(20000) if s.is_faulty_round(k)]
        gaps = [b - a for a, b in zip(faulty, faulty[1:])]
        mean_gap = sum(gaps) / len(gaps)
        # Exponential with mean 20 (+1 burst round, ceil): tolerant band.
        assert 15 < mean_gap < 30

    def test_oracle_consistent_with_directives(self):
        s = IntermittentSender(3, mean_reappearance_rounds=4,
                               rng=random.Random(9))
        for k in range(100):
            assert hits(s, k, 3) == s.is_faulty_round(k)

    def test_validation(self):
        with pytest.raises(ValueError):
            IntermittentSender(1, mean_reappearance_rounds=0,
                               rng=random.Random(0))
        with pytest.raises(ValueError):
            IntermittentSender(1, mean_reappearance_rounds=1,
                               rng=random.Random(0), burst_rounds=0)


class TestRandomSlotNoise:
    def test_memoised_decisions(self):
        noise = RandomSlotNoise(0.5, rng=random.Random(0))
        first = hits(noise, 3, 2)
        assert all(hits(noise, 3, 2) == first for _ in range(5))

    def test_probability_extremes(self):
        always = RandomSlotNoise(1.0, rng=random.Random(0))
        never = RandomSlotNoise(0.0, rng=random.Random(0))
        assert all(hits(always, k, 1) for k in range(20))
        assert not any(hits(never, k, 1) for k in range(20))

    def test_empirical_probability(self):
        noise = RandomSlotNoise(0.3, rng=random.Random(5))
        total = sum(hits(noise, k, s) for k in range(500) for s in range(1, 5))
        assert 0.25 < total / 2000 < 0.35

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomSlotNoise(1.5, rng=random.Random(0))


class TestFiniteHorizonGuard:
    """Non-finite sampling horizons raise instead of looping/no-opping.

    ``_extend_to(inf)`` would loop forever and ``_extend_to(nan)``
    would silently sample *nothing* (every comparison with NaN is
    False) — both now fail fast with a clear ValueError.
    """

    def test_helper_accepts_finite_and_rejects_inf_nan(self):
        require_finite_horizon("test", 1.5)
        require_finite_horizon("test", 0.0)
        with pytest.raises(ValueError, match="must be finite"):
            require_finite_horizon("test", math.inf)
        with pytest.raises(ValueError, match="must be finite"):
            require_finite_horizon("test", math.nan)

    def test_poisson_rejects_non_finite_horizon(self):
        p = PoissonTransients(rate=100.0, burst_length=1e-4,
                              rng=random.Random(0))
        assert p.arrivals_until(0.05)  # finite horizons still work
        with pytest.raises(ValueError, match="finite"):
            p.arrivals_until(math.inf)
        with pytest.raises(ValueError, match="finite"):
            p.arrivals_until(math.nan)

    def test_intermittent_rejects_non_finite_horizon(self):
        s = IntermittentSender(1, mean_reappearance_rounds=5,
                               rng=random.Random(0))
        assert s.is_faulty_round(3) in (True, False)
        with pytest.raises(ValueError, match="finite"):
            s.is_faulty_round(math.inf)
