"""Kill/resume smoke: SIGKILL a campaign mid-flight, resume, same bytes.

Launches ``repro-diag campaign run`` as a real subprocess, SIGKILLs it
while it is (most likely) mid-campaign, resumes with ``--resume`` and
asserts the final ``--out`` document and metrics report are
byte-identical to an uninterrupted reference run.  The assertion holds
on every interleaving: if the kill lands before any chunk committed the
resume simply re-runs everything; if it lands after completion the
resume is pure cache replay — determinism is what's under test, not
the race.
"""

import json
import os
import signal
import subprocess
import sys
import time

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def _run_cli(args, check=True):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=_cli_env(), capture_output=True, text=True)
    if check:
        assert proc.returncode == 0, proc.stderr + proc.stdout
    return proc


def test_sigkill_resume_is_byte_identical(tmp_path):
    store = str(tmp_path / "store")
    killed_out = str(tmp_path / "killed.json")
    killed_metrics = str(tmp_path / "killed_metrics.json")
    ref_out = str(tmp_path / "ref.json")
    ref_metrics = str(tmp_path / "ref_metrics.json")
    campaign = ["campaign", "run", "validate", "--reps", "5"]

    # Uninterrupted reference: no store, serial.
    _run_cli([*campaign, "--no-store", "--out", ref_out,
              "--metrics-out", ref_metrics])

    # Start the same campaign against a store and SIGKILL it mid-flight.
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *campaign,
         "--store", store, "--jobs", "2",
         "--out", killed_out, "--metrics-out", killed_metrics],
        env=_cli_env(), stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)
    time.sleep(0.9)
    if victim.poll() is None:
        victim.send_signal(signal.SIGKILL)
    victim.wait()

    # If the kill landed mid-campaign, a plain re-run must refuse...
    interrupted = victim.returncode != 0
    if interrupted:
        refused = _run_cli([*campaign, "--store", store], check=False)
        assert refused.returncode == 3
        assert "--resume" in refused.stderr

    # ...and --resume must complete it from the checkpoint.
    resumed = _run_cli([*campaign, "--store", store, "--resume",
                        "--jobs", "2", "--out", killed_out,
                        "--metrics-out", killed_metrics])
    assert "all passed: True" in resumed.stdout

    with open(ref_out, "rb") as fh:
        ref_bytes = fh.read()
    with open(killed_out, "rb") as fh:
        resumed_bytes = fh.read()
    assert resumed_bytes == ref_bytes
    with open(ref_metrics, "rb") as fh:
        ref_m = fh.read()
    with open(killed_metrics, "rb") as fh:
        resumed_m = fh.read()
    assert resumed_m == ref_m

    # The checkpoint now reads completed, and a warm re-run is all hits.
    status = _run_cli(["campaign", "status", "--store", store])
    assert "completed" in status.stdout
    warm = _run_cli([*campaign, "--store", store, "--out", killed_out])
    total = json.loads(ref_bytes)["tasks"]
    assert f"{len(total)} task(s): {len(total)} cached" in warm.stdout
