"""Dispatch backend conformance, work-stealing and host fault model.

Every backend behind :func:`repro.campaign.run_campaign` must honour
one contract: results merge in task order, a failing task becomes a
structured :class:`TaskError` in its slot, per-task timeouts hold in
the worker, and the merged snapshot is **byte-identical** to the
serial ``jobs=1`` reference.  The conformance class pins that contract
over all of :data:`DISPATCH_BACKENDS`.

The fault-model tests then go after what distinguishes the remote
stub: a killed host's in-flight work re-enters the queue
(``dispatch.worker_restarts``), a *stopped* host — process alive,
heartbeats silent — is detected through the heartbeat monitor, and an
item that keeps killing hosts dead-letters instead of looping.
"""

import json
import signal
import threading
import time

import pytest

from repro.campaign import run_campaign
from repro.obs import MetricsRegistry
from repro.runner.backends import (
    DISPATCH_BACKENDS,
    WORK_KINDS,
    LocalPoolBackend,
    MultiPoolBackend,
    RemoteStubBackend,
    WorkItem,
    execute_work_item,
    make_backend,
)
from repro.runner.heartbeat import HeartbeatEmitter, HeartbeatMonitor
from repro.runner.pool import TaskError
from repro.spec import ClusterSpec, ProtocolSpec, RunSpec
from repro.vec import NUMPY_AVAILABLE

needs_numpy = pytest.mark.skipif(not NUMPY_AVAILABLE,
                                 reason="numpy not installed")


def _spec(seed=0, n_rounds=8, reducer=None, backend="event"):
    return RunSpec(
        protocol=ProtocolSpec(n_nodes=4, penalty_threshold=3,
                              reward_threshold=50,
                              criticalities=(1, 1, 1, 1)),
        cluster=ClusterSpec(seed=seed),
        n_rounds=n_rounds,
        reducer=reducer,
        backend=backend,
    )


def _failing_spec(seed=0):
    return _spec(seed=seed, reducer="no.such.reducer")


def _labeled(specs):
    return [(f"task-{i}", s) for i, s in enumerate(specs)]


def _blob(result):
    return json.dumps([result.results, result.snapshots],
                      sort_keys=True, default=repr)


# ----------------------------------------------------------------------
# Conformance: one contract, every backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dispatch", DISPATCH_BACKENDS)
class TestBackendConformance:
    def test_matches_serial_reference_bytes(self, dispatch):
        specs = _labeled([_spec(seed=s) for s in range(3)])
        reference = run_campaign(specs, jobs=1, dispatch="pool")
        result = run_campaign(specs, jobs=2, dispatch=dispatch)
        assert _blob(result) == _blob(reference)

    def test_task_error_collected_in_slot(self, dispatch):
        result = run_campaign(
            [("ok", _spec(seed=1)), ("boom", _failing_spec())],
            jobs=2, dispatch=dispatch, retries=0, sleep=lambda _t: None)
        assert not isinstance(result.results[0], TaskError)
        error = result.results[1]
        assert isinstance(error, TaskError)
        assert error.index == 1
        assert error.error_type == "ValueError"
        assert "no.such.reducer" in error.message

    def test_timeout_propagates_into_worker(self, dispatch):
        slow = _spec(seed=3, n_rounds=200000)
        result = run_campaign(
            [("slow", slow), ("ok", _spec(seed=1))],
            jobs=2, dispatch=dispatch, retries=0, task_timeout=0.1,
            sleep=lambda _t: None)
        assert isinstance(result.results[0], TaskError)
        assert result.results[0].timed_out
        assert not isinstance(result.results[1], TaskError)


def test_jobs1_matches_across_backends():
    specs = _labeled([_spec(seed=s) for s in range(2)])
    blobs = {d: _blob(run_campaign(specs, jobs=1, dispatch=d))
             for d in DISPATCH_BACKENDS}
    assert len(set(blobs.values())) == 1


# ----------------------------------------------------------------------
# Factory and lifecycle
# ----------------------------------------------------------------------
class TestFactory:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown dispatch backend"):
            make_backend("mpi")

    def test_names_resolve(self):
        for name, cls in (("pool", LocalPoolBackend),
                          ("multipool", MultiPoolBackend),
                          ("remote-stub", RemoteStubBackend)):
            backend = make_backend(name, jobs=1)
            assert isinstance(backend, cls)
            assert backend.name == name
            backend.close()

    def test_instance_passes_through(self):
        backend = LocalPoolBackend(jobs=1)
        assert make_backend(backend) is backend
        backend.close()

    def test_closed_backend_refuses_work(self):
        backend = LocalPoolBackend(jobs=1)
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            backend.submit(WorkItem(item_id=0, kind="spec",
                                    spec=_spec().to_dict()))

    def test_unknown_work_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown work kind"):
            execute_work_item("gradient", {})


# ----------------------------------------------------------------------
# Work-stealing
# ----------------------------------------------------------------------
def test_multipool_steals_from_deep_backlog():
    metrics = MetricsRegistry()
    backend = MultiPoolBackend(jobs=2, pools=2, metrics=metrics)
    try:
        # Same affinity -> same home pool: the other pool can only eat
        # by stealing.
        for i in range(6):
            backend.submit(WorkItem(item_id=i, kind="spec",
                                    spec=_spec(seed=i).to_dict(),
                                    affinity="same-physics"))
        completions = list(backend.as_completed())
    finally:
        backend.close()
    assert len(completions) == 6
    assert all(c.error is None for c in completions)
    assert metrics.snapshot()["counters"]["dispatch.steals"] >= 1


# ----------------------------------------------------------------------
# Remote stub fault model
# ----------------------------------------------------------------------
def _consume_in_thread(backend):
    """Drive ``as_completed`` from a thread, collecting completions."""
    completions = []

    def run():
        for completion in backend.as_completed():
            completions.append(completion)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, completions


def _wait_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def _busy_host(backend):
    for host in list(backend._hosts):
        if host.inflight is not None and not host.dead:
            return host
    return None


class TestRemoteStubFaults:
    def test_killed_host_work_redispatched(self):
        metrics = MetricsRegistry()
        backend = RemoteStubBackend(hosts=2, metrics=metrics)
        try:
            for i in range(4):
                backend.submit(WorkItem(
                    item_id=i, kind="spec",
                    spec=_spec(seed=i, n_rounds=20000).to_dict()))
            thread, completions = _consume_in_thread(backend)
            assert _wait_until(lambda: _busy_host(backend) is not None)
            _busy_host(backend).proc.kill()
            thread.join(timeout=120)
            assert not thread.is_alive()
        finally:
            backend.close()
        assert len(completions) == 4
        assert all(c.error is None for c in completions)
        assert {c.item.item_id for c in completions} == set(range(4))
        counters = metrics.snapshot()["counters"]
        assert counters["dispatch.worker_restarts"] >= 1

    def test_stopped_host_detected_by_heartbeat_silence(self):
        # SIGSTOP leaves the process *alive* (poll() is None), so only
        # the heartbeat path can notice the host is gone.
        metrics = MetricsRegistry()
        backend = RemoteStubBackend(hosts=1, metrics=metrics,
                                    heartbeat_interval=0.05,
                                    heartbeat_timeout=0.5)
        stopped = []
        try:
            for i in range(2):
                backend.submit(WorkItem(
                    item_id=i, kind="spec",
                    spec=_spec(seed=i, n_rounds=20000).to_dict()))
            thread, completions = _consume_in_thread(backend)
            assert _wait_until(lambda: _busy_host(backend) is not None)
            host = _busy_host(backend)
            assert host.proc.poll() is None
            host.proc.send_signal(signal.SIGSTOP)
            stopped.append(host.proc)
            thread.join(timeout=120)
            assert not thread.is_alive()
        finally:
            for proc in stopped:
                try:
                    proc.send_signal(signal.SIGCONT)
                except OSError:
                    pass
            backend.close()
        assert len(completions) == 2
        assert all(c.error is None for c in completions)
        counters = metrics.snapshot()["counters"]
        assert counters["dispatch.worker_restarts"] >= 1

    def test_host_killer_item_dead_letters(self):
        metrics = MetricsRegistry()
        backend = RemoteStubBackend(hosts=1, metrics=metrics,
                                    max_redispatches=0)
        try:
            backend.submit(WorkItem(
                item_id=0, kind="spec",
                spec=_spec(seed=0, n_rounds=10_000_000).to_dict()))
            thread, completions = _consume_in_thread(backend)
            assert _wait_until(lambda: _busy_host(backend) is not None)
            _busy_host(backend).proc.kill()
            thread.join(timeout=120)
            assert not thread.is_alive()
        finally:
            backend.close()
        assert len(completions) == 1
        error = completions[0].error
        assert error is not None
        assert error.error_type == "WorkerDied"


# ----------------------------------------------------------------------
# Heartbeat primitives
# ----------------------------------------------------------------------
class TestHeartbeat:
    def test_emitter_beats_independently_of_work(self):
        beats = []
        emitter = HeartbeatEmitter(lambda: beats.append(time.monotonic()),
                                   interval=0.02)
        emitter.start()
        assert beats, "first beat is synchronous"
        assert _wait_until(lambda: len(beats) >= 3, timeout=5.0)
        emitter.stop()

    def test_emitter_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="interval"):
            HeartbeatEmitter(lambda: None, interval=0)

    def test_monitor_staleness_is_clock_driven(self):
        now = [0.0]
        monitor = HeartbeatMonitor(timeout=1.0, clock=lambda: now[0])
        monitor.expect("h0")
        assert not monitor.stale("h0")
        now[0] = 1.5
        assert monitor.stale("h0")
        monitor.beat("h0")
        assert not monitor.stale("h0")

    def test_monitor_unknown_and_forgotten_never_stale(self):
        now = [0.0]
        monitor = HeartbeatMonitor(timeout=1.0, clock=lambda: now[0])
        assert not monitor.stale("ghost")
        monitor.expect("h0")
        monitor.forget("h0")
        now[0] = 10.0
        assert not monitor.stale("h0")


# ----------------------------------------------------------------------
# Replicate-batch retry fallback
# ----------------------------------------------------------------------
@needs_numpy
def test_poisoned_batch_falls_back_to_per_task_dispatch(monkeypatch):
    """A seed-targeted fault fails the whole batch once; the engine
    then re-dispatches each replicate individually, so one poisoned
    seed costs one retry round, not the campaign."""
    poison_seed = 2
    original = WORK_KINDS["batch"]
    specs = _labeled([_spec(seed=s, backend="vectorized")
                      for s in range(4)])
    reference = run_campaign(specs, jobs=1)

    def poisoned(spec_dict, seeds, timeout):
        if seeds and poison_seed in seeds:
            raise ValueError(f"injected fault at seed {poison_seed}")
        return original(spec_dict, seeds, timeout)

    monkeypatch.setitem(WORK_KINDS, "batch", poisoned)

    metrics = MetricsRegistry()
    sleeps = []
    result = run_campaign(specs, jobs=1, metrics=metrics,
                          sleep=sleeps.append)
    assert result.ok
    assert _blob(result) == _blob(reference)
    counters = metrics.snapshot()["counters"]
    assert counters["campaign.batches"] == 1
    # one failed batch of 4 -> 4 individual re-dispatches
    assert counters["campaign.dispatched"] == 8
    assert counters["campaign.retries"] == 4
    assert sleeps == [0.25]
