"""Integration tests for the diagnostic protocol (Alg. 1, Theorems)."""

import pytest

from repro.analysis.metrics import (
    completeness_holds,
    consistency_violations,
    correctness_holds,
    detection_latency_rounds,
)
from repro.core.config import IsolationMode, uniform_config
from repro.core.service import DiagnosedCluster
from repro.faults.scenarios import SenderFault, SlotBurst, crash
from repro.tt.controller import SenderStatus

FAULT_ROUND = 6


def permissive(n=4, **kw):
    return uniform_config(n, penalty_threshold=10 ** 6,
                          reward_threshold=10 ** 6, **kw)


def run_with_burst(config, *, exec_after=None, dynamic=False, seed=0,
                   slot=2, n_slots=1, rounds=16, **cluster_kw):
    dc = DiagnosedCluster(config, seed=seed, exec_after=exec_after,
                          dynamic_schedules=dynamic, **cluster_kw)
    dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, FAULT_ROUND,
                                      slot, n_slots))
    dc.run_rounds(rounds)
    return dc


class TestDetectionAcrossSchedules:
    @pytest.mark.parametrize("exec_after", [0, 1, 2, 3])
    def test_uniform_static_schedules(self, exec_after):
        dc = run_with_burst(permissive(), exec_after=exec_after)
        obedient = dc.obedient_node_ids()
        assert completeness_holds(dc.trace, FAULT_ROUND, 2, obedient)
        assert correctness_holds(dc.trace, FAULT_ROUND, [1, 3, 4], obedient)
        assert not consistency_violations(dc.trace, obedient)

    def test_mixed_static_schedules(self):
        dc = run_with_burst(permissive(), exec_after=[0, 3, 1, 2])
        obedient = dc.obedient_node_ids()
        assert completeness_holds(dc.trace, FAULT_ROUND, 2, obedient)
        assert not consistency_violations(dc.trace, obedient)

    def test_footnote_schedules(self):
        dc = run_with_burst(permissive(), exec_after=4)
        assert completeness_holds(dc.trace, FAULT_ROUND, 2,
                                  dc.obedient_node_ids())

    def test_dynamic_schedules(self):
        dc = run_with_burst(permissive(), dynamic=True, seed=5)
        obedient = dc.obedient_node_ids()
        assert completeness_holds(dc.trace, FAULT_ROUND, 2, obedient)
        assert correctness_holds(dc.trace, FAULT_ROUND, [1, 3, 4], obedient)
        assert not consistency_violations(dc.trace, obedient)

    def test_fast_path_all_send_curr(self):
        cfg = permissive(all_send_curr_round=True)
        dc = run_with_burst(cfg, exec_after=4)
        assert completeness_holds(dc.trace, FAULT_ROUND, 2,
                                  dc.obedient_node_ids())
        assert detection_latency_rounds(dc.trace, FAULT_ROUND, 2) == 2

    def test_fast_path_requires_compatible_schedules(self):
        with pytest.raises(ValueError):
            DiagnosedCluster(permissive(all_send_curr_round=True),
                             exec_after=0)


class TestLatency:
    def test_send_aligned_latency_is_three_rounds(self):
        dc = run_with_burst(permissive(), exec_after=0)
        assert detection_latency_rounds(dc.trace, FAULT_ROUND, 2) == 3

    def test_every_diagnosed_round_covered_exactly_once(self):
        dc = run_with_burst(permissive(), exec_after=0, rounds=20)
        for node in range(1, 5):
            rounds = sorted(dc.health_vectors(node))
            assert rounds == list(range(rounds[0], rounds[-1] + 1))


class TestFaultClasses:
    def test_two_slot_burst_same_round(self):
        dc = run_with_burst(permissive(), slot=2, n_slots=2)
        obedient = dc.obedient_node_ids()
        assert completeness_holds(dc.trace, FAULT_ROUND, 2, obedient)
        assert completeness_holds(dc.trace, FAULT_ROUND, 3, obedient)
        assert correctness_holds(dc.trace, FAULT_ROUND, [1, 4], obedient)

    def test_burst_across_round_boundary(self):
        dc = run_with_burst(permissive(), slot=4, n_slots=2)
        obedient = dc.obedient_node_ids()
        assert completeness_holds(dc.trace, FAULT_ROUND, 4, obedient)
        assert completeness_holds(dc.trace, FAULT_ROUND + 1, 1, obedient)
        assert correctness_holds(dc.trace, FAULT_ROUND, [1, 2, 3], obedient)
        assert correctness_holds(dc.trace, FAULT_ROUND + 1, [2, 3, 4],
                                 obedient)

    def test_blackout_two_rounds_lemma3(self):
        dc = run_with_burst(permissive(), slot=1, n_slots=8, rounds=18)
        obedient = dc.obedient_node_ids()
        for d_round in (FAULT_ROUND, FAULT_ROUND + 1):
            for j in range(1, 5):
                assert completeness_holds(dc.trace, d_round, j, obedient)
        # Clean rounds around the blackout stay clean.
        assert correctness_holds(dc.trace, FAULT_ROUND - 1, [1, 2, 3, 4],
                                 obedient)
        assert correctness_holds(dc.trace, FAULT_ROUND + 2, [1, 2, 3, 4],
                                 obedient)
        assert not consistency_violations(dc.trace, obedient)

    def test_blackout_self_diagnosis_uses_collision_detector(self):
        # During a blackout a node cannot receive any syndrome, yet each
        # node correctly diagnoses ITSELF via its collision detector.
        dc = run_with_burst(permissive(), slot=1, n_slots=8, rounds=18)
        for node in range(1, 5):
            hv = dc.health_vectors(node)
            assert hv[FAULT_ROUND][node - 1] == 0

    def test_malicious_syndromes_do_not_poison_diagnosis(self):
        cfg = permissive()
        dc = DiagnosedCluster(cfg, seed=2, byzantine_nodes=[3])
        dc.run_rounds(25)
        obedient = dc.obedient_node_ids()
        assert obedient == (1, 2, 4)
        assert not consistency_violations(dc.trace, obedient)
        for node in obedient:
            for hv in dc.health_vectors(node).values():
                assert hv[0] == 1 and hv[1] == 1 and hv[3] == 1

    def test_asymmetric_fault_is_consistent(self):
        # Theorem 1: for an asymmetric sender the decision may be any
        # value but must be consistent across obedient nodes.
        cfg = permissive()
        dc = DiagnosedCluster(cfg, seed=3)
        dc.cluster.add_scenario(SenderFault(
            2, kind="asymmetric", rounds=[FAULT_ROUND], detectable_by=[4]))
        dc.run_rounds(16)
        assert not consistency_violations(dc.trace, dc.obedient_node_ids())

    def test_faulty_sender_diagnoses_itself(self):
        # Obedient nodes with omission faults still self-diagnose.
        cfg = permissive()
        dc = DiagnosedCluster(cfg, seed=4)
        dc.cluster.add_scenario(SenderFault(3, kind="benign",
                                            rounds=[FAULT_ROUND]))
        dc.run_rounds(16)
        assert dc.health_vectors(3)[FAULT_ROUND][2] == 0


class TestIsolation:
    def test_crash_isolated_consistently(self):
        cfg = uniform_config(4, penalty_threshold=3, reward_threshold=10)
        dc = DiagnosedCluster(cfg, seed=0)
        dc.cluster.add_scenario(crash(2, from_round=FAULT_ROUND))
        dc.run_rounds(20)
        assert dc.agreed_active_vector() == (1, 0, 1, 1)
        # All four isolation decisions in the same protocol round.
        rounds = {r.data["round_index"]
                  for r in dc.isolation_records(isolated=2)}
        assert len(rounds) == 1

    def test_isolation_round_matches_pr_budget(self):
        cfg = uniform_config(4, penalty_threshold=3, reward_threshold=10)
        dc = DiagnosedCluster(cfg, seed=0)
        dc.cluster.add_scenario(crash(2, from_round=FAULT_ROUND))
        dc.run_rounds(20)
        [round_] = {r.data["round_index"]
                    for r in dc.isolation_records(isolated=2)}
        # 4 faulty rounds (P=3, s=1) + 3-round pipeline.
        assert round_ == FAULT_ROUND + 3 + 3

    def test_controllers_ignore_isolated_sender(self):
        cfg = uniform_config(4, penalty_threshold=3, reward_threshold=10)
        dc = DiagnosedCluster(cfg, seed=0)
        dc.cluster.add_scenario(crash(2, from_round=FAULT_ROUND))
        dc.run_rounds(20)
        for node in (1, 3, 4):
            ctrl = dc.cluster.node(node).controller
            assert ctrl.sender_status(2) is SenderStatus.IGNORED

    def test_self_isolated_node_halts_transmission(self):
        cfg = uniform_config(4, penalty_threshold=3, reward_threshold=10)
        dc = DiagnosedCluster(cfg, seed=0)
        dc.cluster.add_scenario(SenderFault(
            2, kind="benign",
            rounds=lambda k: FAULT_ROUND <= k < FAULT_ROUND + 4))
        dc.run_rounds(20)
        assert not dc.cluster.node(2).controller.tx_enabled

    def test_observe_mode_keeps_diagnosing(self):
        cfg = uniform_config(4, penalty_threshold=3, reward_threshold=10,
                             isolation_mode=IsolationMode.OBSERVE,
                             halt_on_self_isolation=False)
        dc = DiagnosedCluster(cfg, seed=0)
        dc.cluster.add_scenario(SenderFault(
            2, kind="benign",
            rounds=lambda k: FAULT_ROUND <= k < FAULT_ROUND + 4))
        dc.run_rounds(24)
        assert dc.agreed_active_vector() == (1, 0, 1, 1)
        # With OBSERVE, later healthy rounds are correctly diagnosed.
        hv = dc.health_vectors(1)
        last = max(hv)
        assert hv[last][1] == 1

    def test_transient_not_isolated(self):
        cfg = uniform_config(4, penalty_threshold=3, reward_threshold=10)
        dc = run_with_burst(cfg)
        assert dc.agreed_active_vector() == (1, 1, 1, 1)


class TestStartup:
    def test_no_diagnosis_before_pipeline_fills(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.run_rounds(12)
        for node in range(1, 5):
            assert min(dc.health_vectors(node)) >= 1

    def test_fault_free_run_all_healthy(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.run_rounds(12)
        for node in range(1, 5):
            for hv in dc.health_vectors(node).values():
                assert hv == (1, 1, 1, 1)

    def test_larger_cluster(self):
        cfg = permissive(n=7)
        dc = DiagnosedCluster(cfg, seed=1)
        dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, FAULT_ROUND,
                                          5, 1))
        dc.run_rounds(16)
        obedient = dc.obedient_node_ids()
        assert completeness_holds(dc.trace, FAULT_ROUND, 5, obedient)
        assert correctness_holds(dc.trace, FAULT_ROUND,
                                 [1, 2, 3, 4, 6, 7], obedient)


class TestTraceLevels:
    def test_level_zero_suppresses_bulk_records(self):
        dc = run_with_burst(permissive(), trace_level=0)
        assert not dc.trace.select(category="cons_hv")
        assert not dc.trace.select(category="syndrome")

    def test_level_one_records_faulty_vectors_only(self):
        dc = run_with_burst(permissive(), trace_level=1)
        vectors = dc.trace.select(category="cons_hv")
        assert vectors
        assert all(0 in rec.data["cons_hv"] for rec in vectors)
