"""The HTTP surface end to end: real sockets, real SSE streams.

Every test drives the stdlib asyncio server over loopback with
urllib — no HTTP client dependency — and pins the wire-level
contracts: response codes, dedup semantics, SSE replay determinism,
and byte-identity between ``GET .../result`` and the documents
``repro-diag campaign run --out`` writes.
"""

import contextlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro.service.jobs as jobs_module
from repro.campaign import result_document, run_campaign
from repro.obs.export import render_json
from repro.service import JobManager, ServiceThread, create_app
from repro.spec import ClusterSpec, ProtocolSpec, RunSpec
from repro.store import ResultStore


def _spec(seed=0, n_rounds=8):
    return RunSpec(
        protocol=ProtocolSpec(n_nodes=4, penalty_threshold=3,
                              reward_threshold=50,
                              criticalities=(1, 1, 1, 1)),
        cluster=ClusterSpec(seed=seed),
        n_rounds=n_rounds,
    )


@contextlib.contextmanager
def _serve(tmp_path, **kwargs):
    kwargs.setdefault("store_root", str(tmp_path / "store"))
    manager = JobManager(**kwargs)
    server = ServiceThread(create_app(manager))
    server.start()
    try:
        yield server.url, manager
    finally:
        server.stop()
        manager.shutdown()


def _request(url, data=None, headers=None):
    """(status, headers, body-bytes) for one request; errors included."""
    req = urllib.request.Request(url, data=data, headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _post_job(url, body_dict):
    status, headers, body = _request(
        url + "/v1/jobs", data=json.dumps(body_dict).encode("utf-8"))
    return status, json.loads(body)


def _wait_done(url, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while True:
        status, _h, body = _request(f"{url}/v1/jobs/{job_id}")
        assert status == 200
        detail = json.loads(body)
        if detail["state"] in ("done", "failed"):
            return detail
        assert time.monotonic() < deadline, "job never finished"
        time.sleep(0.02)


class TestHappyPath:
    def test_submit_poll_fetch(self, tmp_path):
        with _serve(tmp_path) as (url, _manager):
            status, created = _post_job(url, _spec().to_dict())
            assert status == 201
            assert created["outcome"] == "created"
            assert created["cached"] is False
            job_id = created["job_id"]
            detail = _wait_done(url, job_id)
            assert detail["state"] == "done"
            assert (detail["hits"], detail["misses"]) == (0, 1)
            status, headers, body = _request(
                f"{url}/v1/jobs/{job_id}/result")
            assert status == 200
            assert headers["content-type"] == "application/json"
            doc = json.loads(body)
            assert doc["schema"].startswith("repro-campaign-result/")
            listing = json.loads(_request(url + "/v1/jobs")[2])
            assert [j["job_id"] for j in listing["jobs"]] == [job_id]

    def test_result_bytes_match_campaign_run_out(self, tmp_path):
        # The acceptance bar: the service serves the exact bytes
        # `repro-diag campaign run --out` writes for the same inputs.
        from repro.service.serialization import parse_job_request

        body_dict = {"specs": [_spec().to_dict(),
                               _spec(seed=1).to_dict()]}
        request = parse_job_request(body_dict)
        with ResultStore(str(tmp_path / "cli-store")) as store:
            result = run_campaign(request.definition.labeled_specs,
                                  name=request.definition.name,
                                  store=store)
            expected = render_json(
                result_document(request.definition, result))
        with _serve(tmp_path) as (url, _manager):
            _status, created = _post_job(url, body_dict)
            _wait_done(url, created["job_id"])
            _s, _h, served = _request(
                f"{url}/v1/jobs/{created['job_id']}/result?format=json")
            assert served == expected.encode("utf-8")

    def test_second_post_is_cached(self, tmp_path):
        with _serve(tmp_path) as (url, _manager):
            _status, created = _post_job(url, _spec().to_dict())
            _wait_done(url, created["job_id"])
            status, again = _post_job(url, _spec().to_dict())
            assert status == 200
            assert again["cached"] is True
            assert again["deduped"] is True
            assert again["job_id"] == created["job_id"]

    def test_warm_store_post_returns_done_immediately(self, tmp_path):
        body = _spec().to_dict()
        with _serve(tmp_path) as (url, _manager):
            _status, created = _post_job(url, body)
            _wait_done(url, created["job_id"])
        # New manager, same store root: answered from the index.
        with _serve(tmp_path) as (url, manager):
            status, warm = _post_job(url, body)
            assert status == 200
            assert warm["state"] == "done"
            assert warm["cached"] is True
            assert warm["outcome"] == "cached"
            assert (warm["hits"], warm["misses"]) == (1, 0)
            counters = manager.metrics_snapshot()["service"]["counters"]
            assert counters.get("service.executed_tasks", 0) == 0

    def test_rendered_formats(self, tmp_path):
        with _serve(tmp_path) as (url, _manager):
            _status, created = _post_job(
                url, {"campaign": "rare-events", "reps": 1, "nodes": 4})
            job_id = created["job_id"]
            assert _wait_done(url, job_id)["state"] == "done"
            for fmt, content_type, needle in [
                    ("html", "text/html; charset=utf-8",
                     b'<table class="repro-results">'),
                    ("md", "text/markdown; charset=utf-8", b"| --- |"),
                    ("csv", "text/csv; charset=utf-8", b"p_gb"),
                    ("ascii", "text/plain; charset=utf-8", b"p_gb"),
            ]:
                status, headers, body = _request(
                    f"{url}/v1/jobs/{job_id}/result?format={fmt}")
                assert status == 200, fmt
                assert headers["content-type"] == content_type
                assert needle in body, fmt


class TestDedupOverHTTP:
    def test_concurrent_posts_execute_one_simulation(self, tmp_path,
                                                     monkeypatch):
        gate = threading.Event()
        real = jobs_module.run_campaign
        executions = []

        def gated(*args, **kwargs):
            executions.append(1)
            assert gate.wait(timeout=30)
            return real(*args, **kwargs)

        monkeypatch.setattr(jobs_module, "run_campaign", gated)
        with _serve(tmp_path, workers=4) as (url, manager):
            body = _spec().to_dict()
            responses = []

            def post():
                responses.append(_post_job(url, body))

            threads = [threading.Thread(target=post) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            gate.set()
            assert sorted(status for status, _ in responses) == \
                [200, 200, 201]
            ids = {payload["job_id"] for _s, payload in responses}
            assert len(ids) == 1
            _wait_done(url, ids.pop())
            assert len(executions) == 1
            counters = manager.metrics_snapshot()["service"]["counters"]
            assert counters["service.created"] == 1
            assert counters["service.attached"] == 2
            assert counters["service.executed_tasks"] == 1


class TestBackpressure:
    def test_full_queue_is_429(self, tmp_path, monkeypatch):
        gate = threading.Event()
        real = jobs_module.run_campaign

        def gated(*args, **kwargs):
            assert gate.wait(timeout=30)
            return real(*args, **kwargs)

        monkeypatch.setattr(jobs_module, "run_campaign", gated)
        with _serve(tmp_path, workers=1, queue_limit=1) as (url, _m):
            status, first = _post_job(url, _spec().to_dict())
            assert status == 201
            status, rejected = _post_job(url, _spec(seed=1).to_dict())
            assert status == 429
            assert rejected["queue_limit"] == 1
            assert "retry" in rejected["error"]
            # Dedup onto the in-flight job still succeeds at 200.
            status, attached = _post_job(url, _spec().to_dict())
            assert status == 200
            assert attached["outcome"] == "attached"
            gate.set()
            _wait_done(url, first["job_id"])
            status, _ok = _post_job(url, _spec(seed=1).to_dict())
            assert status == 201


class TestSSE:
    def _read_stream(self, url, timeout=30):
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            assert resp.headers["content-type"] == \
                "text/event-stream; charset=utf-8"
            return resp.read()

    def test_late_subscriber_replays_identical_bytes(self, tmp_path,
                                                     monkeypatch):
        gate = threading.Event()
        real = jobs_module.run_campaign

        def gated(*args, **kwargs):
            assert gate.wait(timeout=30)
            return real(*args, **kwargs)

        monkeypatch.setattr(jobs_module, "run_campaign", gated)
        with _serve(tmp_path) as (url, _manager):
            _status, created = _post_job(url, _spec().to_dict())
            events_url = f"{url}/v1/jobs/{created['job_id']}/events"
            # Early subscriber connects while the job is gated, so it
            # observes events arriving live...
            live = {}

            def subscribe_live():
                live["bytes"] = self._read_stream(events_url)

            watcher = threading.Thread(target=subscribe_live)
            watcher.start()
            time.sleep(0.1)
            gate.set()
            watcher.join(timeout=30)
            assert not watcher.is_alive()
            _wait_done(url, created["job_id"])
            # ...and a late subscriber replaying after completion gets
            # byte-for-byte the same stream.
            replay = self._read_stream(events_url)
            assert replay == live["bytes"]
            assert b"event: done\n" in replay

    def test_event_sequence_is_ordered_and_complete(self, tmp_path):
        with _serve(tmp_path) as (url, _manager):
            _status, created = _post_job(url, _spec().to_dict())
            _wait_done(url, created["job_id"])
            raw = self._read_stream(
                f"{url}/v1/jobs/{created['job_id']}/events")
            frames = [f for f in raw.decode().split("\n\n") if f]
            ids = [int(f.splitlines()[0].split(": ")[1]) for f in frames]
            kinds = [f.splitlines()[1].split(": ")[1] for f in frames]
            assert ids == list(range(len(frames)))
            assert kinds[0] == "state"
            assert "plan" in kinds and "task" in kinds
            assert kinds[-1] == "done"

    def test_after_query_resumes_mid_log(self, tmp_path):
        with _serve(tmp_path) as (url, _manager):
            _status, created = _post_job(url, _spec().to_dict())
            _wait_done(url, created["job_id"])
            full = self._read_stream(
                f"{url}/v1/jobs/{created['job_id']}/events")
            partial = self._read_stream(
                f"{url}/v1/jobs/{created['job_id']}/events?after=1")
            assert partial in full
            assert partial.startswith(b"id: 2\n")


class TestErrorsAndIntrospection:
    def test_client_errors(self, tmp_path):
        with _serve(tmp_path) as (url, _manager):
            status, _h, body = _request(url + "/v1/jobs",
                                        data=b"{not json")
            assert status == 400
            assert b"not valid JSON" in body
            status, payload = _post_job(url, {"campaign": "nope"})
            assert status == 400
            assert "unknown campaign" in payload["error"]
            status, _h, _b = _request(url + "/v1/jobs/deadbeef")
            assert status == 404
            status, _h, _b = _request(url + "/v1/nothing")
            assert status == 404
            status, _h, _b = _request(url + "/v1/jobs/deadbeef/events",
                                      data=b"{}")  # POST to a GET route
            assert status == 405

    def test_result_before_completion_is_409(self, tmp_path,
                                             monkeypatch):
        gate = threading.Event()
        real = jobs_module.run_campaign

        def gated(*args, **kwargs):
            assert gate.wait(timeout=30)
            return real(*args, **kwargs)

        monkeypatch.setattr(jobs_module, "run_campaign", gated)
        with _serve(tmp_path) as (url, _manager):
            _status, created = _post_job(url, _spec().to_dict())
            status, _h, body = _request(
                f"{url}/v1/jobs/{created['job_id']}/result")
            assert status == 409
            assert json.loads(body)["state"] in ("queued", "running")
            gate.set()
            _wait_done(url, created["job_id"])
            status, _h, _b = _request(
                f"{url}/v1/jobs/{created['job_id']}/result")
            assert status == 200

    def test_unknown_format_is_400(self, tmp_path):
        with _serve(tmp_path) as (url, _manager):
            _status, created = _post_job(url, _spec().to_dict())
            _wait_done(url, created["job_id"])
            status, _h, body = _request(
                f"{url}/v1/jobs/{created['job_id']}/result?format=pdf")
            assert status == 400
            assert b"unknown format" in body

    def test_healthz_and_stats(self, tmp_path):
        from repro import __version__

        with _serve(tmp_path) as (url, _manager):
            status, _h, body = _request(url + "/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["version"] == __version__
            assert set(health["jobs"]) == \
                {"queued", "running", "done", "failed"}
            _status, created = _post_job(url, _spec().to_dict())
            _wait_done(url, created["job_id"])
            stats = json.loads(_request(url + "/v1/store/stats")[2])
            assert stats["entries"] == 1
            metrics = json.loads(_request(url + "/v1/metrics")[2])
            assert metrics["service"]["counters"]["service.created"] == 1
            assert "store" in metrics and "engine" in metrics
