"""Membership protocol under dynamic node scheduling.

The membership variant composes the tagged dynamic mode with minority
accusations; these tests pin the composition: clique detection and view
agreement must survive per-round random schedules.
"""

import pytest

from repro.analysis.metrics import consistency_violations
from repro.core.config import uniform_config
from repro.core.service import MembershipCluster
from repro.faults.scenarios import SenderFault, crash

FAULT_ROUND = 8


def permissive():
    return uniform_config(4, penalty_threshold=10 ** 6,
                          reward_threshold=10 ** 6)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_benign_exclusion_with_dynamic_schedules(seed):
    mc = MembershipCluster(permissive(), seed=seed, dynamic_schedules=True)
    mc.cluster.add_scenario(crash(3, from_round=FAULT_ROUND))
    mc.run_rounds(FAULT_ROUND + 14)
    for node in (1, 2, 4):
        assert mc.services[node].view == frozenset({1, 2, 4})
    assert not consistency_violations(mc.trace, mc.obedient_node_ids())


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_clique_detection_with_dynamic_schedules(seed):
    mc = MembershipCluster(permissive(), seed=seed, dynamic_schedules=True)
    mc.cluster.add_scenario(SenderFault(
        3, kind="asymmetric", rounds=[FAULT_ROUND], detectable_by=[1]))
    mc.run_rounds(FAULT_ROUND + 16)
    majority_views = {mc.services[n].view for n in (2, 3, 4)}
    assert len(majority_views) == 1
    assert 1 not in majority_views.pop()


def test_fault_free_dynamic_views_stable():
    mc = MembershipCluster(permissive(), seed=5, dynamic_schedules=True)
    mc.run_rounds(25)
    for node in range(1, 5):
        assert mc.services[node].view == frozenset({1, 2, 3, 4})
    assert not mc.trace.select(category="clique")
