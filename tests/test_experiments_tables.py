"""Tests for the Table 2 / Table 4 / Fig. 3 experiment harnesses.

These assert the *reproduction bands*: Table 2 must match the paper
exactly (it is determined by protocol arithmetic); Table 4 must match
the paper's ordering and be within a small tolerance (the paper's
physical injection timing differs slightly from our idealised bursts).
"""

import pytest

from repro.core.config import CriticalityClass
from repro.experiments.adverse import (
    PAPER_TABLE4,
    aerospace_adverse,
    automotive_adverse,
    immediate_isolation_ablation,
)
from repro.experiments.figure3 import (
    figure3_series,
    paper_choice_summary,
    pr_counter_replay_check,
    simulate_point,
)
from repro.experiments.table2 import (
    analytic_cross_check,
    measure_penalty_budget,
    table2,
)

C = CriticalityClass


class TestTable2Measurement:
    def test_measured_budgets_match_paper(self):
        rows = {(r.domain, r.criticality_class): r for r in table2()}
        auto_sc = rows[("Automotive", C.SC)]
        assert auto_sc.measured_budget == 5
        assert auto_sc.criticality == 40
        assert auto_sc.penalty_threshold == 197
        assert rows[("Automotive", C.SR)].criticality == 6
        assert rows[("Automotive", C.NSR)].criticality == 1
        assert rows[("Aerospace", C.SC)].penalty_threshold == 17

    def test_measurement_agrees_with_closed_form(self):
        auto, aero = analytic_cross_check()
        rows = {(r.domain, r.criticality_class): r for r in table2()}
        for cls, budget in auto.penalty_budgets.items():
            assert rows[("Automotive", cls)].measured_budget == budget
        for cls, budget in aero.penalty_budgets.items():
            assert rows[("Aerospace", cls)].measured_budget == budget

    def test_budget_measurement_deterministic(self):
        assert measure_penalty_budget(50e-3, seed=1) == \
            measure_penalty_budget(50e-3, seed=2) == 17


@pytest.mark.slow
class TestTable4:
    def test_automotive_ordering_and_values(self):
        result = automotive_adverse(seed=0)
        t_sc = result.times[C.SC]
        t_sr = result.times[C.SR]
        t_nsr = result.times[C.NSR]
        assert t_sc < t_sr < t_nsr
        # Paper: 0.518 / 4.595 / 24.475 s.  Our idealised bursts land
        # within ~12% (see EXPERIMENTS.md for the per-value discussion).
        assert t_sc == pytest.approx(PAPER_TABLE4[("automotive", C.SC)],
                                     rel=0.02)
        assert t_sr == pytest.approx(PAPER_TABLE4[("automotive", C.SR)],
                                     rel=0.15)
        assert t_nsr == pytest.approx(PAPER_TABLE4[("automotive", C.NSR)],
                                      rel=0.05)

    def test_aerospace_value(self):
        result = aerospace_adverse(seed=0)
        assert result.times[C.SC] == pytest.approx(
            PAPER_TABLE4[("aerospace", C.SC)], rel=0.05)

    def test_immediate_isolation_ablation(self):
        ablation = immediate_isolation_ablation(seed=0)
        # Immediate isolation: whole system down within the first burst
        # (plus pipeline) — under 50 ms.
        assert ablation.immediate_all_down is not None
        assert ablation.immediate_all_down < 0.05
        # p/r keeps even the most critical node up ~10x longer.
        assert ablation.pr_times[C.SC] > 10 * ablation.immediate_all_down


class TestFigure3:
    def test_series_structure(self):
        series = figure3_series()
        assert len(series) == 4
        for s in series:
            rs = [p.reward_threshold for p in s.points]
            assert rs == sorted(rs)
            ps = [p.p_correlate_transient for p in s.points]
            assert ps == sorted(ps)

    def test_higher_rate_higher_correlation(self):
        series = figure3_series()
        at_r6 = [next(p for p in s.points if p.reward_threshold == 10 ** 6)
                 for s in series]
        ps = [p.p_correlate_transient for p in at_r6]
        assert ps == sorted(ps)

    def test_paper_choice_headline(self):
        summary = paper_choice_summary()
        assert summary["window_minutes"] == pytest.approx(41.67, abs=0.01)
        assert summary["p_correlate_at_0.01_per_hour"] < 0.01

    def test_monte_carlo_matches_closed_form(self):
        from repro.analysis.reliability import p_correlate_transient
        rate_h = 1.0
        estimate = simulate_point(rate_h, 10 ** 6, trials=4000, seed=1)
        exact = p_correlate_transient(rate_h / 3600.0, 10 ** 6)
        assert estimate == pytest.approx(exact, abs=0.03)

    def test_pr_replay_check(self):
        assert pr_counter_replay_check(reward_threshold=100, gap_rounds=40)
        assert pr_counter_replay_check(reward_threshold=100, gap_rounds=150)
        assert pr_counter_replay_check(reward_threshold=10, gap_rounds=9)
        assert pr_counter_replay_check(reward_threshold=10, gap_rounds=10)
