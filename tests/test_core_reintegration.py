"""Integration tests for the reintegration extension (Sec. 9)."""

import pytest

from repro.core.config import IsolationMode, uniform_config
from repro.core.reintegration import ReintegrationPolicy, attach_reintegration
from repro.core.service import DiagnosedCluster, attach_reintegration_everywhere
from repro.faults.scenarios import SenderFault
from repro.tt.controller import SenderStatus

FAULT_ROUND = 6


def observe_config(reint_threshold=8):
    return uniform_config(
        4, penalty_threshold=2, reward_threshold=100,
        isolation_mode=IsolationMode.OBSERVE,
        halt_on_self_isolation=False,
        reintegration_reward_threshold=reint_threshold)


def run_with_burst(config, burst_rounds=4, total_rounds=40, seed=0,
                   attach=True):
    dc = DiagnosedCluster(config, seed=seed)
    if attach:
        attach_reintegration_everywhere(dc)
    dc.cluster.add_scenario(SenderFault(
        2, kind="benign",
        rounds=lambda k: FAULT_ROUND <= k < FAULT_ROUND + burst_rounds))
    dc.run_rounds(total_rounds)
    return dc


class TestReintegration:
    def test_node_isolated_then_readmitted(self):
        dc = run_with_burst(observe_config())
        reint = dc.trace.select(category="reintegration")
        assert reint
        assert dc.agreed_active_vector() == (1, 1, 1, 1)

    def test_reintegration_consistent_across_nodes(self):
        dc = run_with_burst(observe_config())
        rounds = {rec.data["round_index"]
                  for rec in dc.trace.select(category="reintegration")}
        assert len(rounds) == 1

    def test_reintegration_after_exact_threshold(self):
        threshold = 8
        dc = run_with_burst(observe_config(threshold))
        iso_round = max(rec.data["round_index"]
                        for rec in dc.trace.select(category="isolation"))
        [reint_round] = {rec.data["round_index"]
                         for rec in dc.trace.select(category="reintegration")}
        # After isolation, the node needs `threshold` consecutive clean
        # diagnosed rounds.  The burst's final faulty round is still in
        # the analysis pipeline when isolation is decided, so the count
        # starts one analysis round later.
        assert reint_round > iso_round
        assert reint_round == iso_round + 1 + threshold

    def test_counters_cleared_on_reintegration(self):
        dc = run_with_burst(observe_config())
        for node in range(1, 5):
            service = dc.service(node)
            assert service.pr.counters_of(2) == (0, 0)

    def test_controller_status_restored(self):
        dc = run_with_burst(observe_config())
        for node in range(1, 5):
            ctrl = dc.cluster.node(node).controller
            assert ctrl.sender_status(2) is SenderStatus.ACTIVE

    def test_new_fault_during_observation_resets_progress(self):
        config = observe_config(reint_threshold=6)
        dc = DiagnosedCluster(config, seed=0)
        attach_reintegration_everywhere(dc)
        # Isolation burst, then another fault 3 rounds into observation.
        dc.cluster.add_scenario(SenderFault(
            2, kind="benign",
            rounds=lambda k: (FAULT_ROUND <= k < FAULT_ROUND + 3
                              or k == FAULT_ROUND + 6)))
        dc.run_rounds(30)
        reint = dc.trace.select(category="reintegration")
        assert reint
        [reint_round] = {rec.data["round_index"] for rec in reint}
        # The second fault (diagnosed round F+6) restarted the count:
        # readmission cannot happen before F+6+threshold+pipeline.
        assert reint_round >= FAULT_ROUND + 6 + 6

    def test_without_observation_no_reintegration(self):
        config = uniform_config(4, penalty_threshold=2, reward_threshold=100)
        dc = run_with_burst(config, attach=False)
        assert not dc.trace.select(category="reintegration")
        assert dc.agreed_active_vector() == (1, 0, 1, 1)


class TestPolicyUnit:
    def test_attach_requires_config_threshold(self):
        config = uniform_config(4, penalty_threshold=2, reward_threshold=10)
        dc = DiagnosedCluster(config, seed=0)
        with pytest.raises(ValueError):
            attach_reintegration(dc.service(1))

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            ReintegrationPolicy(0)

    def test_observation_reward_counting(self):
        policy = ReintegrationPolicy(3)

        class StubService:
            class config:
                n_nodes = 2
            active = [1, 0]
            reintegrated = []

            def reintegrate(self, j, k):
                self.reintegrated.append((j, k))

        svc = StubService()
        policy(svc, [1, 1], 10)
        policy(svc, [1, 0], 11)   # fault: reset
        policy(svc, [1, 1], 12)
        assert policy.observation_reward(2) == 1
        policy(svc, [1, 1], 13)
        policy(svc, [1, 1], 14)
        assert svc.reintegrated == [(2, 14)]
