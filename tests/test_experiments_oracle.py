"""Tests for the ground-truth oracle, plus randomized end-to-end checks."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster
from repro.experiments.oracle import (
    check_against_oracle,
    ground_truth_from_trace,
    lemma_conditions_hold,
)
from repro.faults.model import FaultClass
from repro.faults.scenarios import SenderFault, SlotBurst


def permissive():
    return uniform_config(4, penalty_threshold=10 ** 6,
                          reward_threshold=10 ** 6)


class TestGroundTruthExtraction:
    def test_classes_rebuilt_from_trace(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.cluster.add_scenario(SenderFault(2, kind="benign", rounds=[5]))
        dc.cluster.add_scenario(SenderFault(
            3, kind="asymmetric", rounds=[6], detectable_by=[1]))
        dc.run_rounds(10)
        gt = ground_truth_from_trace(dc.trace, 4)
        assert gt[5].classes[2] is FaultClass.SYMMETRIC_BENIGN
        assert gt[5].classes[1] is FaultClass.NONE
        assert gt[6].classes[3] is FaultClass.ASYMMETRIC

    def test_expected_verdicts(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.cluster.add_scenario(SenderFault(2, kind="benign", rounds=[5]))
        dc.run_rounds(10)
        gt = ground_truth_from_trace(dc.trace, 4)
        assert gt[5].expected_verdict(2) == 0
        assert gt[5].expected_verdict(1) == 1


class TestLemmaConditions:
    def test_clean_rounds_hold(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.run_rounds(12)
        gt = ground_truth_from_trace(dc.trace, 4)
        assert lemma_conditions_hold(gt, 5, 4, byzantine=0)

    def test_three_benign_in_lemma_gap_fails(self):
        # b = 3 at N = 4 is outside both Lemma 2 (4 > 3+1 false) and
        # Lemma 3 (requires b >= N-1 = 3 ... b=3 qualifies!).  So use
        # an asymmetric + benign mix instead.
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.cluster.add_scenario(SenderFault(2, kind="benign", rounds=[6]))
        dc.cluster.add_scenario(SenderFault(
            3, kind="asymmetric", rounds=[6], detectable_by=[1]))
        dc.run_rounds(12)
        gt = ground_truth_from_trace(dc.trace, 4)
        # a=1, b=1: 4 > 2+1+1 false -> conditions do not hold.
        assert not lemma_conditions_hold(gt, 6, 4, byzantine=0)

    def test_blackout_is_lemma3_regime(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, 6, 1, 8))
        dc.run_rounds(14)
        gt = ground_truth_from_trace(dc.trace, 4)
        assert lemma_conditions_hold(gt, 6, 4, byzantine=0)


class TestOracleScoring:
    def test_clean_run_passes(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.run_rounds(12)
        report = check_against_oracle(dc)
        assert report.ok
        assert report.rounds_checked > 0

    def test_burst_run_passes(self):
        dc = DiagnosedCluster(permissive(), seed=1)
        dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, 6, 2, 2))
        dc.run_rounds(16)
        report = check_against_oracle(dc)
        assert report.ok, report.violations

    def test_oracle_detects_forged_inconsistency(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.run_rounds(12)
        dc.trace.record(99.0, "cons_hv", node=2, round_index=8,
                        diagnosed_round=5, cons_hv=(0, 1, 1, 1))
        report = check_against_oracle(dc)
        assert not report.ok
        kinds = {v.kind for v in report.violations}
        assert "consistency" in kinds

    def test_byzantine_run_scored_on_obedient_only(self):
        dc = DiagnosedCluster(permissive(), seed=2, byzantine_nodes=[4])
        dc.run_rounds(20)
        report = check_against_oracle(dc)
        assert report.ok, report.violations


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    bursts=st.lists(
        st.tuples(st.integers(min_value=4, max_value=12),   # round
                  st.integers(min_value=1, max_value=4),    # slot
                  st.integers(min_value=1, max_value=9)),   # length
        min_size=0, max_size=3),
    sender_faults=st.lists(
        st.tuples(st.integers(min_value=1, max_value=4),    # node
                  st.integers(min_value=4, max_value=12),   # round
                  st.sampled_from(["benign", "asymmetric"])),
        min_size=0, max_size=2),
    dynamic=st.booleans(),
)
def test_random_scenarios_never_violate_theorem1(seed, bursts, sender_faults,
                                                 dynamic):
    """End-to-end property: whatever we inject, wherever the Lemma
    conditions hold, the protocol's output matches the oracle."""
    dc = DiagnosedCluster(permissive(), seed=seed, dynamic_schedules=dynamic)
    tb = dc.cluster.timebase
    for round_index, slot, length in bursts:
        dc.cluster.add_scenario(SlotBurst(tb, round_index, slot, length))
    for node, round_index, kind in sender_faults:
        detectable = [((node) % 4) + 1] if kind == "asymmetric" else None
        dc.cluster.add_scenario(SenderFault(node, kind=kind,
                                            rounds=[round_index],
                                            detectable_by=detectable))
    dc.run_rounds(22)
    report = check_against_oracle(dc)
    assert report.ok, report.violations
