"""Unit tests for frames and the syndrome wire encoding."""

import pytest

from repro.tt.frames import (
    Frame,
    decode_syndrome,
    encode_syndrome,
    round_bandwidth_bits,
    syndrome_size_bits,
)


def test_frame_slot_equals_sender():
    frame = Frame(sender=3, round_index=7, payload=(1, 1, 0, 1))
    assert frame.slot == 3


def test_encode_decode_roundtrip_small():
    syndrome = (1, 0, 1, 1)
    data = encode_syndrome(syndrome)
    assert len(data) == 1  # 4 bits fit one byte
    assert decode_syndrome(data, 4) == syndrome


def test_encode_decode_roundtrip_multibyte():
    syndrome = tuple((i * 7 + 3) % 2 for i in range(21))
    data = encode_syndrome(syndrome)
    assert len(data) == 3  # ceil(21/8)
    assert decode_syndrome(data, 21) == syndrome


def test_encode_all_zeros_and_ones():
    assert decode_syndrome(encode_syndrome((0,) * 9), 9) == (0,) * 9
    assert decode_syndrome(encode_syndrome((1,) * 9), 9) == (1,) * 9


def test_encode_rejects_non_binary():
    with pytest.raises(ValueError):
        encode_syndrome((1, 2, 0))


def test_decode_rejects_wrong_length():
    with pytest.raises(ValueError):
        decode_syndrome(b"\x00", 9)


def test_bandwidth_matches_paper():
    # "The bandwidth required for each diagnostic message is N = 4 bits"
    assert syndrome_size_bits(4) == 4
    # O(N^2) bits per round.
    assert round_bandwidth_bits(4) == 16
    assert round_bandwidth_bits(10) == 100


def test_msb_first_bit_order():
    # First syndrome element occupies the MSB of the first byte.
    assert encode_syndrome((1, 0, 0, 0, 0, 0, 0, 0)) == b"\x80"
    assert encode_syndrome((1, 0, 0, 0)) == b"\x80"
