"""Unit tests for the fault model primitives."""

from repro.faults.model import (
    FaultClass,
    FaultDirective,
    NodeGroundTruth,
    NodeHealth,
    ReceptionOutcome,
    classify_broadcast,
    worst_outcome,
)


class TestWorstOutcome:
    def test_detectable_dominates_all(self):
        assert worst_outcome(ReceptionOutcome.DETECTABLE,
                             ReceptionOutcome.MALICIOUS) is ReceptionOutcome.DETECTABLE
        assert worst_outcome(ReceptionOutcome.OK,
                             ReceptionOutcome.DETECTABLE) is ReceptionOutcome.DETECTABLE

    def test_malicious_dominates_ok(self):
        assert worst_outcome(ReceptionOutcome.OK,
                             ReceptionOutcome.MALICIOUS) is ReceptionOutcome.MALICIOUS

    def test_identity(self):
        for outcome in ReceptionOutcome:
            assert worst_outcome(outcome, outcome) is outcome


class TestClassifyBroadcast:
    def test_all_ok_is_none(self):
        outcomes = {i: ReceptionOutcome.OK for i in range(1, 5)}
        assert classify_broadcast(outcomes) is FaultClass.NONE

    def test_all_detectable_is_benign(self):
        outcomes = {i: ReceptionOutcome.DETECTABLE for i in range(1, 5)}
        assert classify_broadcast(outcomes) is FaultClass.SYMMETRIC_BENIGN

    def test_all_malicious_is_symmetric_malicious(self):
        outcomes = {i: ReceptionOutcome.MALICIOUS for i in range(1, 5)}
        assert classify_broadcast(outcomes) is FaultClass.SYMMETRIC_MALICIOUS

    def test_mixed_is_asymmetric(self):
        outcomes = {1: ReceptionOutcome.OK, 2: ReceptionOutcome.DETECTABLE,
                    3: ReceptionOutcome.OK, 4: ReceptionOutcome.OK}
        assert classify_broadcast(outcomes) is FaultClass.ASYMMETRIC
        outcomes[2] = ReceptionOutcome.MALICIOUS
        assert classify_broadcast(outcomes) is FaultClass.ASYMMETRIC


class TestFaultDirective:
    def test_benign_detectable_by_everyone(self):
        d = FaultDirective.benign()
        for receiver in (1, 2, 99):
            assert d.outcome_for(receiver) is ReceptionOutcome.DETECTABLE

    def test_asymmetric_only_listed_receivers(self):
        d = FaultDirective.asymmetric([2, 3])
        assert d.outcome_for(2) is ReceptionOutcome.DETECTABLE
        assert d.outcome_for(3) is ReceptionOutcome.DETECTABLE
        assert d.outcome_for(1) is ReceptionOutcome.OK

    def test_malicious_everyone_gets_payload(self):
        d = FaultDirective.malicious(payload="bad")
        assert d.outcome_for(1) is ReceptionOutcome.MALICIOUS
        assert d.malicious_payload == "bad"

    def test_causes_are_tagged(self):
        assert FaultDirective.benign(cause="spike").cause == "spike"
        assert FaultDirective.asymmetric([1], cause="sos").cause == "sos"


def test_ground_truth_defaults():
    gt = NodeGroundTruth(node_id=2)
    assert gt.health is NodeHealth.HEALTHY
    assert gt.obedient is True
    assert gt.notes == {}
