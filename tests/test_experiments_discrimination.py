"""Tests for the discrimination study and resilience sweep harnesses."""

import pytest

from repro.experiments.discrimination import (
    UNHEALTHY_NODE,
    discrimination_study,
    generate_health_stream,
    replay_filters,
)
from repro.experiments.resilience import (
    capacity_frontier,
    max_benign_within_bound,
    run_allocation,
)


class TestHealthStream:
    def test_stream_reflects_both_fault_sources(self):
        stream = generate_health_stream(400, seed=0)
        assert len(stream) > 350
        unhealthy_faults = sum(1 for hv in stream
                               if hv[UNHEALTHY_NODE - 1] == 0)
        healthy_faults = sum(1 for hv in stream
                             for j in range(4)
                             if j != UNHEALTHY_NODE - 1 and hv[j] == 0)
        # The intermittent dominates; transients appear but are rarer.
        assert unhealthy_faults > 10
        assert unhealthy_faults > healthy_faults

    def test_stream_deterministic_per_seed(self):
        assert generate_health_stream(120, seed=3) == \
            generate_health_stream(120, seed=3)


class TestReplay:
    def test_pr_detects_without_false_positives(self):
        stream = generate_health_stream(800, seed=0)
        outcomes = {o.filter_name: o for o in replay_filters(stream)}
        pr = outcomes["penalty/reward"]
        assert pr.detected
        assert pr.false_positive_count == 0

    def test_immediate_isolates_on_first_fault(self):
        stream = generate_health_stream(800, seed=0)
        outcomes = {o.filter_name: o for o in replay_filters(stream)}
        imm = outcomes["immediate"]
        first_fault = next(i for i, hv in enumerate(stream)
                           if hv[UNHEALTHY_NODE - 1] == 0)
        assert imm.unhealthy_isolated_at == first_fault

    def test_study_shape(self):
        summaries = discrimination_study(repetitions=3, n_rounds=600)
        names = {s.filter_name for s in summaries}
        assert names == {"penalty/reward", "alpha-count", "immediate"}
        by_name = {s.filter_name: s for s in summaries}
        assert by_name["penalty/reward"].false_positive_rate == 0.0
        assert by_name["immediate"].false_positive_rate > 0.0


class TestResilienceHarness:
    def test_bound_formula(self):
        assert max_benign_within_bound(4, 0) == 2
        assert max_benign_within_bound(4, 1) == 0
        assert max_benign_within_bound(8, 2) == 2
        assert max_benign_within_bound(3, 1) == 0

    def test_single_allocation_within_bound(self):
        point = run_allocation(5, s=1, b=1, seed=0)
        assert point.within_bound
        assert point.properties_hold

    def test_benign_only_max_allocation(self):
        point = run_allocation(6, s=0, b=4, seed=0)
        assert point.within_bound and point.properties_hold

    def test_allocation_validation(self):
        with pytest.raises(ValueError):
            run_allocation(4, s=2, b=2)

    def test_capacity_frontier_shape(self):
        frontier = capacity_frontier(n_range=(4, 6))
        assert frontier[4] == {0: 2, 1: 0}
        assert frontier[6] == {0: 4, 1: 2, 2: 0}
