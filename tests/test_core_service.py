"""Tests for the DiagnosedCluster facade."""

import pytest

from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster, MembershipCluster
from repro.faults.scenarios import SlotBurst, crash


def permissive():
    return uniform_config(4, penalty_threshold=10 ** 6,
                          reward_threshold=10 ** 6)


class TestConstruction:
    def test_exec_after_scalar_applies_to_all(self):
        dc = DiagnosedCluster(permissive(), exec_after=2)
        for node in range(1, 5):
            assert dc.cluster.schedule.node_schedule(node).params(0).l == 2

    def test_exec_after_per_node(self):
        dc = DiagnosedCluster(permissive(), exec_after=[0, 1, 2, 3])
        ls = [dc.cluster.schedule.node_schedule(n).params(0).l
              for n in range(1, 5)]
        assert ls == [0, 1, 2, 3]

    def test_exec_after_wrong_length(self):
        with pytest.raises(ValueError):
            DiagnosedCluster(permissive(), exec_after=[0, 1])

    def test_byzantine_marks_ground_truth(self):
        dc = DiagnosedCluster(permissive(), byzantine_nodes=[2])
        assert not dc.cluster.node(2).ground_truth.obedient
        assert dc.obedient_node_ids() == (1, 3, 4)

    def test_config_size_must_match(self):
        from repro.core.diagnostic import DiagnosticService
        from repro.tt.cluster import Cluster
        cluster = Cluster(4)
        with pytest.raises(ValueError):
            DiagnosticService(uniform_config(5, 1, 1), cluster.node(1),
                              cluster.trace)


class TestQueries:
    def test_health_vectors_accumulate(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.run_rounds(10)
        hv = dc.health_vectors(1)
        assert hv
        assert all(v == (1, 1, 1, 1) for v in hv.values())

    def test_consistent_health_history_detects_divergence(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.run_rounds(8)
        assert dc.consistent_health_history()
        # Forge a conflicting record.
        dc.trace.record(99.0, "cons_hv", node=2, round_index=5,
                        diagnosed_round=2, cons_hv=(0, 0, 0, 0))
        assert not dc.consistent_health_history()

    def test_agreed_active_vector_raises_on_disagreement(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.run_rounds(8)
        dc.service(2).active[3] = 0
        with pytest.raises(AssertionError):
            dc.agreed_active_vector()

    def test_isolation_queries(self):
        config = uniform_config(4, penalty_threshold=2, reward_threshold=10)
        dc = DiagnosedCluster(config, seed=0)
        dc.cluster.add_scenario(crash(3, from_round=6))
        dc.run_rounds(18)
        assert dc.first_isolation_time(3) is not None
        assert dc.first_isolation_time(1) is None
        assert len(dc.isolation_records(isolated=3)) == 4  # one per node

    def test_active_matrix(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.run_rounds(8)
        matrix = dc.active_matrix()
        assert set(matrix) == {1, 2, 3, 4}
        assert all(v == (1, 1, 1, 1) for v in matrix.values())


class TestMembershipCluster:
    def test_agreed_view(self):
        mc = MembershipCluster(permissive(), seed=0)
        mc.cluster.add_scenario(crash(2, from_round=6))
        mc.run_rounds(16)
        assert mc.agreed_view() == frozenset({1, 3, 4})

    def test_views_history_exposed(self):
        mc = MembershipCluster(permissive(), seed=0)
        mc.run_rounds(8)
        assert mc.views(1) == [(None, frozenset({1, 2, 3, 4}))]


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        def run(seed):
            dc = DiagnosedCluster(permissive(), seed=seed,
                                  dynamic_schedules=True)
            dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, 6, 2, 1))
            dc.run_rounds(14)
            return sorted(dc.health_vectors(1).items())

        assert run(3) == run(3)
