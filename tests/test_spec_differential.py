"""Differential proof: the spec layer changes nothing about the physics.

Each test re-implements the *pre-refactor* hand-wired experiment
assembly inline (cluster construction, scenario attachment, probing,
scoring — exactly as ``repro.experiments`` built runs before the
RunSpec layer existed) and asserts the spec-built entry points produce
identical results, identical metrics snapshots (modulo the new
``spec.run.*`` provenance counters), and that the parallel sweep at
``jobs=4`` is byte-identical to ``jobs=1`` and to serial assembly.
"""

from typing import Dict, List, Tuple

import pytest

from repro.analysis.metrics import (
    completeness_holds,
    consistency_violations,
    correctness_holds,
    diagnoses_for_round,
)
from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster, MembershipCluster
from repro.experiments.validation import (
    FAULT_ROUND,
    BurstResult,
    CliqueResult,
    MaliciousResult,
    PenaltyRewardResult,
    expected_faulty_slots,
    run_burst_experiment,
    run_clique_experiment,
    run_malicious_experiment,
    run_penalty_reward_experiment,
)
from repro.experiments.table2 import measure_penalty_budget
from repro.faults.scenarios import BusBurst, SenderFault, SlotBurst, every_nth_round
from repro.obs import MetricsRegistry, render_json
from repro.runner.sweep import run_validation_sweep, validation_tasks
from repro.runner.pool import run_tasks
from repro.spec import strip_provenance
from repro.tt.cluster import PAPER_ROUND_LENGTH

N = 4


def _config():
    return uniform_config(N, penalty_threshold=10 ** 6,
                          reward_threshold=10 ** 6)


# ---------------------------------------------------------------------------
# Pre-refactor assemblies, verbatim from the old experiment functions.
# ---------------------------------------------------------------------------

def _direct_burst(n_slots: int, start_slot: int, seed: int,
                  metrics=None) -> BurstResult:
    dc = DiagnosedCluster(_config(), seed=seed,
                          round_length=PAPER_ROUND_LENGTH, metrics=metrics)
    dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, FAULT_ROUND,
                                      start_slot, n_slots))
    expected = expected_faulty_slots(N, start_slot, n_slots)
    dc.run_rounds(max(expected) + 6)

    obedient = dc.obedient_node_ids()
    diagnosed: Dict[int, Dict[int, Tuple[int, ...]]] = {}
    complete = True
    correct = True
    for d_round, faulty in expected.items():
        diagnosed[d_round] = diagnoses_for_round(dc.trace, d_round, obedient)
        for f in faulty:
            if not completeness_holds(dc.trace, d_round, f, obedient):
                complete = False
        correct_nodes = [j for j in range(1, N + 1) if j not in faulty]
        if not correctness_holds(dc.trace, d_round, correct_nodes, obedient):
            correct = False
    consistent = not consistency_violations(dc.trace, obedient)
    return BurstResult(n_slots=n_slots, start_slot=start_slot,
                       expected=expected, diagnosed=diagnosed,
                       consistent=consistent, complete=complete,
                       correct=correct)


def _direct_penalty_reward(target: int, seed: int) -> PenaltyRewardResult:
    config = _config()
    dc = DiagnosedCluster(config, seed=seed)
    dc.cluster.add_scenario(every_nth_round(target, period=2,
                                            start_round=FAULT_ROUND,
                                            occurrences=10))
    observer = dc.service(1)
    evolution: List[Tuple[int, int, int]] = []

    def probe(service, cons_hv, k):
        d_round = k - config.detection_pipeline_rounds()
        p, r = service.pr.counters_of(target)
        evolution.append((d_round, p, r))

    observer.post_update_hooks.append(probe)
    dc.run_rounds(FAULT_ROUND + 20 + 6)

    window = [(d, p, r) for d, p, r in evolution
              if FAULT_ROUND <= d < FAULT_ROUND + 20]
    progress = True
    for (_d0, p0, r0), (_d1, p1, r1) in zip(window, window[1:]):
        if (p1, r1) == (p0, r0):
            progress = False
    if not window or window[0][1] == 0:
        progress = False
    consistent = not consistency_violations(dc.trace, dc.obedient_node_ids())
    return PenaltyRewardResult(target=target, evolution=window,
                               counters_progress=progress,
                               consistent=consistent)


def _direct_malicious(byzantine: int, seed: int,
                      n_rounds: int = 30) -> MaliciousResult:
    dc = DiagnosedCluster(_config(), seed=seed, byzantine_nodes=[byzantine])
    dc.run_rounds(n_rounds)
    obedient = dc.obedient_node_ids()
    consistent = not consistency_violations(dc.trace, obedient)
    no_false = True
    for node in obedient:
        for _d_round, hv in dc.health_vectors(node).items():
            for j in range(1, N + 1):
                if j != byzantine and hv[j - 1] == 0:
                    no_false = False
    return MaliciousResult(byzantine=byzantine, consistent=consistent,
                           no_false_accusation=no_false)


def _direct_clique(disturbed_sender: int, seed: int) -> CliqueResult:
    mc = MembershipCluster(_config(), seed=seed)
    mc.cluster.add_scenario(SenderFault(
        disturbed_sender, kind="asymmetric", rounds=[FAULT_ROUND],
        detectable_by=[1], cause="disturbance-node"))
    mc.run_rounds(FAULT_ROUND + 12)

    majority = [i for i in range(2, N + 1)]
    views = [mc.services[i].view for i in majority]
    consistent_views = len(set(views)) == 1
    final_view = tuple(sorted(views[0])) if consistent_views else None
    detected = all(1 not in v for v in views)
    latency = None
    changes = [rec for rec in mc.trace.select(category="view")
               if rec.node in majority]
    if changes:
        latency = min(rec.data["round_index"] for rec in changes) - FAULT_ROUND
    return CliqueResult(minority=1, view_latency_rounds=latency,
                        final_view=final_view, detected=detected,
                        consistent_views=consistent_views)


def _direct_budget(tolerated_outage: float, seed: int = 0) -> int:
    config = uniform_config(N, penalty_threshold=10 ** 9,
                            reward_threshold=10 ** 9)
    dc = DiagnosedCluster(config, seed=seed,
                          round_length=PAPER_ROUND_LENGTH, trace_level=0)
    start_round = 6
    fault_start = dc.cluster.timebase.round_start(start_round)
    dc.cluster.add_scenario(BusBurst(
        fault_start, tolerated_outage + 10 * PAPER_ROUND_LENGTH,
        cause="continuous-burst"))
    deadline_round = start_round + int(
        round(tolerated_outage / PAPER_ROUND_LENGTH))
    dc.run_rounds(deadline_round)
    budgets = {dc.service(i).pr.penalties[0] for i in range(1, N + 1)}
    assert len(budgets) == 1
    return budgets.pop()


# ---------------------------------------------------------------------------
# Experiment-level equivalence.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n_slots,start_slot,seed",
                         [(1, 1, 0), (1, 3, 7), (2, 4, 1), (8, 2, 3)])
def test_burst_matches_direct_assembly(n_slots, start_slot, seed):
    assert (run_burst_experiment(n_slots, start_slot, seed=seed)
            == _direct_burst(n_slots, start_slot, seed))


@pytest.mark.parametrize("target,seed", [(2, 0), (3, 5)])
def test_penalty_reward_matches_direct_assembly(target, seed):
    assert (run_penalty_reward_experiment(target=target, seed=seed)
            == _direct_penalty_reward(target, seed))


@pytest.mark.parametrize("byzantine,seed", [(1, 0), (4, 2)])
def test_malicious_matches_direct_assembly(byzantine, seed):
    assert (run_malicious_experiment(byzantine, seed=seed)
            == _direct_malicious(byzantine, seed))


@pytest.mark.parametrize("seed", [0, 3])
def test_clique_matches_direct_assembly(seed):
    assert run_clique_experiment(seed=seed) == _direct_clique(3, seed)


@pytest.mark.parametrize("outage", [0.05, 0.1])
def test_table2_budget_matches_direct_assembly(outage):
    assert measure_penalty_budget(outage) == _direct_budget(outage)


def test_metered_run_matches_direct_modulo_provenance():
    direct_registry = MetricsRegistry()
    spec_registry = MetricsRegistry()
    direct = _direct_burst(2, 1, seed=4, metrics=direct_registry)
    via_spec = run_burst_experiment(2, 1, seed=4, metrics=spec_registry)
    assert via_spec == direct
    assert (strip_provenance(spec_registry.snapshot())
            == direct_registry.snapshot())
    # ... and the provenance namespace is the *only* difference.
    assert spec_registry.snapshot() != direct_registry.snapshot()


# ---------------------------------------------------------------------------
# Sweep-level equivalence: serial assembly == jobs=1 == jobs=4.
# ---------------------------------------------------------------------------

def _direct_campaign_passes(repetitions: int) -> List[Tuple[str, bool]]:
    passes: List[Tuple[str, bool]] = []
    for n_slots in (1, 2, 2 * N):
        for start_slot in range(1, N + 1):
            cls = f"burst-{n_slots}-slot{start_slot}"
            for rep in range(repetitions):
                passes.append(
                    (cls, _direct_burst(n_slots, start_slot, rep).passed))
    for rep in range(repetitions):
        passes.append(("penalty-reward",
                       _direct_penalty_reward(2, rep).passed))
    for byzantine in range(1, N + 1):
        for rep in range(repetitions):
            passes.append((f"malicious-node{byzantine}",
                           _direct_malicious(byzantine, rep).passed))
    for rep in range(repetitions):
        passes.append(("clique-detection", _direct_clique(3, rep).passed))
    return passes


def test_sweep_matches_direct_assembly_at_jobs_1_and_4():
    direct = _direct_campaign_passes(repetitions=1)

    def flatten(summary):
        return [(cls, passed) for cls, outcomes in summary.results.items()
                for passed in outcomes]

    serial = run_validation_sweep(repetitions=1, jobs=1)
    parallel = run_validation_sweep(repetitions=1, jobs=4)
    assert flatten(serial) == direct
    assert flatten(parallel) == direct


def test_sweep_metrics_byte_identical_across_jobs():
    from repro.obs import merge_snapshots

    def merged(jobs: int):
        tasks = validation_tasks(repetitions=1, collect_metrics=True)
        outcomes = run_tasks([task for _cls, task in tasks], jobs=jobs)
        results = [result for result, _snap in outcomes]
        snapshot = merge_snapshots([snap for _result, snap in outcomes])
        return results, snapshot

    serial_results, serial_snapshot = merged(jobs=1)
    parallel_results, parallel_snapshot = merged(jobs=4)
    assert parallel_results == serial_results
    assert render_json(parallel_snapshot) == render_json(serial_snapshot)
