"""Tests for the reintegration-threshold tuning harness."""

import pytest

from repro.experiments.reintegration_tuning import (
    run_threshold,
    threshold_sweep,
)


class TestRunThreshold:
    @pytest.mark.slow
    def test_small_threshold_flaps(self):
        point = run_threshold(50, seed=0)
        assert point.flapping_cycles >= 3
        assert point.reintegrations >= point.isolations - 1

    @pytest.mark.slow
    def test_safe_threshold_single_cycle(self):
        point = run_threshold(250, seed=0)
        assert point.isolations == 1
        assert point.reintegrations == 1
        assert point.flapping_cycles == 0
        # Availability: up before the strike, down through it, up after.
        assert 0.3 < point.availability_fraction < 0.8

    @pytest.mark.slow
    def test_availability_monotone_beyond_knee(self):
        safe = run_threshold(250, seed=0)
        oversized = run_threshold(1500, seed=0)
        assert oversized.availability_fraction < safe.availability_fraction
        assert oversized.flapping_cycles == 0

    @pytest.mark.slow
    def test_sweep_returns_requested_points(self):
        points = threshold_sweep(thresholds=(100, 300))
        assert [p.threshold_rounds for p in points] == [100, 300]
