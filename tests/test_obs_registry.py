"""Unit tests for the metrics registry and report export.

The registry's contract is determinism first: snapshots are pure
functions of observed behaviour, histograms store only integer bucket
counts over fixed declared bounds, merging is commutative integer
addition, and wall-clock timings never leak into the deterministic
snapshot.  These tests pin each clause plus the zero-overhead plumbing
(null instruments, ``NULL_REGISTRY``).
"""

import json

import pytest

from repro.obs import (
    NULL_REGISTRY,
    REPORT_SCHEMA,
    MetricsRegistry,
    empty_snapshot,
    load_report,
    merge_snapshots,
    render_json,
    render_text,
    render_timings,
    run_report,
    write_report,
)
from repro.obs.registry import _NULL_INSTRUMENT, _NULL_TIMER


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------
class TestInstruments:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc()
        c.inc(4)
        assert reg.snapshot()["counters"] == {"a": 5}

    def test_counter_identity_per_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a") is not reg.counter("b")

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(7)
        g.inc(-2)
        assert reg.snapshot()["gauges"] == {"g": 5}

    def test_histogram_bucketing(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(0, 2, 4))
        # v <= 0 | 0 < v <= 2 | 2 < v <= 4 | v > 4
        for v in (0, 0, 1, 2, 3, 5, 100):
            h.observe(v)
        snap = reg.snapshot()["histograms"]["h"]
        assert snap == {"bounds": [0, 2, 4], "buckets": [2, 2, 1, 2],
                        "count": 7}

    def test_histogram_rejects_unsorted_or_empty_bounds(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", bounds=(3, 1))
        with pytest.raises(ValueError):
            reg.histogram("empty", bounds=())

    def test_histogram_reregistration_same_bounds_ok(self):
        reg = MetricsRegistry()
        h1 = reg.histogram("h", bounds=(1, 2))
        h2 = reg.histogram("h", bounds=(1, 2))
        assert h1 is h2

    def test_histogram_reregistration_different_bounds_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1, 2))
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("h", bounds=(1, 3))


# ---------------------------------------------------------------------------
# Disabled registry / null instruments
# ---------------------------------------------------------------------------
class TestDisabled:
    def test_disabled_registry_hands_out_shared_null(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("x") is _NULL_INSTRUMENT
        assert reg.gauge("y") is _NULL_INSTRUMENT
        assert reg.histogram("z", bounds=(1,)) is _NULL_INSTRUMENT
        assert reg.timer("t") is _NULL_TIMER

    def test_null_instrument_is_inert(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x")
        c.inc()
        c.set(9)
        c.observe(3.0)
        with reg.timer("t"):
            pass
        assert reg.snapshot() == empty_snapshot()
        assert reg.timings_snapshot() == {}

    def test_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled
        assert not NULL_REGISTRY.timing
        assert NULL_REGISTRY.snapshot() == empty_snapshot()

    def test_timing_requires_enabled(self):
        assert not MetricsRegistry(enabled=False, timing=True).timing
        assert MetricsRegistry(timing=True).timing
        assert not MetricsRegistry().timing


# ---------------------------------------------------------------------------
# Timings stay out of the deterministic snapshot
# ---------------------------------------------------------------------------
class TestTimings:
    def test_timer_accumulates(self):
        reg = MetricsRegistry(timing=True)
        for _ in range(3):
            with reg.timer("phase"):
                pass
        timings = reg.timings_snapshot()
        assert timings["phase"]["count"] == 3
        assert timings["phase"]["seconds"] >= 0.0

    def test_timings_excluded_from_snapshot(self):
        reg = MetricsRegistry(timing=True)
        with reg.timer("phase"):
            reg.counter("c").inc()
        snap = reg.snapshot()
        assert "timings" not in snap
        assert snap == {"counters": {"c": 1}, "gauges": {},
                        "histograms": {}}

    def test_timer_noop_when_timing_off(self):
        reg = MetricsRegistry()  # enabled, timing off
        with reg.timer("phase"):
            pass
        assert reg.timings_snapshot() == {}


# ---------------------------------------------------------------------------
# Snapshot merging
# ---------------------------------------------------------------------------
def _snap(counters=None, gauges=None, histograms=None):
    return {"counters": counters or {}, "gauges": gauges or {},
            "histograms": histograms or {}}


class TestMerge:
    def test_merge_sums_counters_and_gauges(self):
        merged = merge_snapshots([
            _snap(counters={"a": 1, "b": 2}, gauges={"g": 5}),
            _snap(counters={"a": 10}, gauges={"g": 1, "h": 3}),
        ])
        assert merged["counters"] == {"a": 11, "b": 2}
        assert merged["gauges"] == {"g": 6, "h": 3}

    def test_merge_sums_histogram_buckets(self):
        h1 = {"bounds": [1, 2], "buckets": [1, 0, 2], "count": 3}
        h2 = {"bounds": [1, 2], "buckets": [0, 4, 1], "count": 5}
        merged = merge_snapshots([_snap(histograms={"h": h1}),
                                  _snap(histograms={"h": h2})])
        assert merged["histograms"]["h"] == {
            "bounds": [1, 2], "buckets": [1, 4, 3], "count": 8}

    def test_merge_rejects_mismatched_bounds(self):
        h1 = {"bounds": [1, 2], "buckets": [0, 0, 0], "count": 0}
        h2 = {"bounds": [1, 3], "buckets": [0, 0, 0], "count": 0}
        with pytest.raises(ValueError, match="mismatched bounds"):
            merge_snapshots([_snap(histograms={"h": h1}),
                             _snap(histograms={"h": h2})])

    def test_merge_order_independent(self):
        snaps = [
            _snap(counters={"a": i, "b": 2 * i}, gauges={"g": i},
                  histograms={"h": {"bounds": [1], "buckets": [i, i + 1],
                                    "count": 2 * i + 1}})
            for i in range(5)
        ]
        forward = merge_snapshots(snaps)
        backward = merge_snapshots(reversed(snaps))
        assert forward == backward
        assert (json.dumps(forward, sort_keys=True) ==
                json.dumps(backward, sort_keys=True))

    def test_merge_does_not_mutate_inputs(self):
        h = {"bounds": [1], "buckets": [1, 2], "count": 3}
        snap = _snap(counters={"a": 1}, histograms={"h": h})
        merge_snapshots([snap, snap])
        assert snap["counters"] == {"a": 1}
        assert h["buckets"] == [1, 2] and h["count"] == 3

    def test_merge_empty_iterable(self):
        assert merge_snapshots([]) == empty_snapshot()

    def test_merge_sorts_keys(self):
        merged = merge_snapshots([_snap(counters={"z": 1}),
                                  _snap(counters={"a": 1})])
        assert list(merged["counters"]) == ["a", "z"]


# ---------------------------------------------------------------------------
# Snapshot determinism from identical observation sequences
# ---------------------------------------------------------------------------
def test_snapshot_keys_sorted_regardless_of_registration_order():
    reg1 = MetricsRegistry()
    reg1.counter("b").inc()
    reg1.counter("a").inc()
    reg2 = MetricsRegistry()
    reg2.counter("a").inc()
    reg2.counter("b").inc()
    assert (json.dumps(reg1.snapshot(), sort_keys=False) ==
            json.dumps(reg2.snapshot(), sort_keys=False))
    assert list(reg1.snapshot()["counters"]) == ["a", "b"]


# ---------------------------------------------------------------------------
# Run reports
# ---------------------------------------------------------------------------
class TestReports:
    def test_report_shape_and_schema(self):
        report = run_report("validate", {"reps": 2},
                            _snap(counters={"a": 1}))
        assert report["schema"] == REPORT_SCHEMA
        assert report["command"] == "validate"
        assert report["params"] == {"reps": 2}
        assert "timings" not in report

    def test_report_timings_optional(self):
        report = run_report("stats", {}, empty_snapshot(),
                            timings={"p": {"count": 1, "seconds": 0.5}})
        assert report["timings"]["p"]["count"] == 1

    def test_render_json_stable_format(self):
        report = run_report("x", {"b": 1, "a": 2}, empty_snapshot())
        text = render_json(report)
        assert text.endswith("\n")
        assert text == json.dumps(report, sort_keys=True, indent=2) + "\n"
        # Key order in the source dict must not matter.
        shuffled = dict(reversed(list(report.items())))
        assert render_json(shuffled) == text

    def test_write_load_roundtrip(self, tmp_path):
        report = run_report("x", {"seed": 3}, _snap(counters={"c": 9}))
        path = tmp_path / "report.json"
        write_report(str(path), report)
        assert load_report(str(path)) == report
        # Two writes of the same report are byte-identical.
        path2 = tmp_path / "report2.json"
        write_report(str(path2), report)
        assert path.read_bytes() == path2.read_bytes()

    def test_render_text_mentions_every_instrument(self):
        snap = _snap(counters={"bus.slots_total": 48},
                     gauges={"g": 2},
                     histograms={"h": {"bounds": [0, 2],
                                       "buckets": [3, 0, 1], "count": 4}})
        text = render_text(snap, title="run metrics")
        assert "bus.slots_total" in text and "48" in text
        assert "g" in text
        assert "h" in text and "<=0:3" in text and ">2:1" in text
        assert "run metrics" in text

    def test_render_text_empty(self):
        assert "no metrics" in render_text(empty_snapshot())
        assert "t: no metrics" in render_text(empty_snapshot(), title="t")

    def test_render_timings(self):
        text = render_timings({"bus.transmit": {"count": 4,
                                                "seconds": 0.002}})
        assert "bus.transmit" in text and "4" in text
        assert "no phase timings" in render_timings({})
