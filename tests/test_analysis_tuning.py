"""Tests for the Sec. 9 tuning derivation — must reproduce Table 2 exactly."""

import pytest

from repro.analysis.tuning import (
    ADDON_PIPELINE_ROUNDS,
    penalty_budget_for_outage,
    tune,
    tune_aerospace,
    tune_automotive,
)
from repro.core.config import (
    AUTOMOTIVE_TOLERATED_OUTAGE,
    CriticalityClass,
)

C = CriticalityClass


class TestPenaltyBudget:
    def test_counts_rounds_minus_pipeline(self):
        # 20 ms at 2.5 ms rounds = 8 rounds; minus the 3-round pipeline.
        assert penalty_budget_for_outage(20e-3, 2.5e-3) == 5
        assert penalty_budget_for_outage(100e-3, 2.5e-3) == 37
        assert penalty_budget_for_outage(500e-3, 2.5e-3) == 197
        assert penalty_budget_for_outage(50e-3, 2.5e-3) == 17

    def test_pipeline_override(self):
        assert penalty_budget_for_outage(20e-3, 2.5e-3, pipeline_rounds=2) == 6

    def test_outage_below_minimum_latency_rejected(self):
        with pytest.raises(ValueError):
            penalty_budget_for_outage(7.5e-3, 2.5e-3)
        with pytest.raises(ValueError):
            penalty_budget_for_outage(-1.0, 2.5e-3)


class TestTable2:
    def test_automotive_matches_paper_exactly(self):
        result = tune_automotive()
        assert result.penalty_threshold == 197
        assert result.criticalities == {C.SC: 40, C.SR: 6, C.NSR: 1}
        assert result.penalty_budgets == {C.SC: 5, C.SR: 37, C.NSR: 197}

    def test_aerospace_matches_paper_exactly(self):
        result = tune_aerospace()
        assert result.penalty_threshold == 17
        assert result.criticalities == {C.SC: 1}

    def test_latencies_satisfy_tolerated_outage(self):
        result = tune_automotive()
        # SC and SR latencies must fit their class budget; NSR's range
        # is 500-1000 ms, satisfied by 502.5 ms.
        assert result.isolation_latency(C.SC) <= \
            AUTOMOTIVE_TOLERATED_OUTAGE[C.SC] + 1e-9
        assert result.isolation_latency(C.SR) <= \
            AUTOMOTIVE_TOLERATED_OUTAGE[C.SR] + 1e-9
        assert result.isolation_latency(C.NSR) <= 1.0

    def test_round_length_scales_results(self):
        # Halving the round doubles the budgets.
        result = tune(AUTOMOTIVE_TOLERATED_OUTAGE, 1.25e-3)
        assert result.penalty_budgets[C.NSR] == 397  # 400 - 3

    def test_single_class_always_criticality_one(self):
        result = tune({C.SC: 50e-3}, 2.5e-3)
        assert result.criticalities == {C.SC: 1}
        assert result.penalty_threshold == result.penalty_budgets[C.SC]


def test_pipeline_constant_matches_protocol():
    from repro.core.config import uniform_config
    assert ADDON_PIPELINE_ROUNDS == \
        uniform_config(4).detection_pipeline_rounds()
