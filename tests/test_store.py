"""The content-addressed result store: keys, codec, durability, GC.

The store's contract is boring on the happy path (a persistent dict)
and interesting at the edges: keys must be collision-resistant content
addresses, payloads must round-trip arbitrary reducer results exactly,
and any damaged record must read as a *miss* — never a crash — so a
campaign simply re-runs the task.
"""

import json
import os

import pytest

from repro import __version__
from repro.obs import MetricsRegistry
from repro.spec import ClusterSpec, ProtocolSpec, RunSpec
from repro.store import (
    ResultStore,
    decode_value,
    default_cache_dir,
    encode_value,
    store_key,
)


def _spec(seed=0, n_rounds=8, reducer=None):
    return RunSpec(
        protocol=ProtocolSpec(n_nodes=4, penalty_threshold=3,
                              reward_threshold=50,
                              criticalities=(1, 1, 1, 1)),
        cluster=ClusterSpec(seed=seed),
        n_rounds=n_rounds,
        reducer=reducer,
    )


class TestStoreKey:
    def test_key_is_full_digest_reducer_version(self):
        spec = _spec()
        assert store_key(spec) == \
            f"{spec.full_digest()}:summary:{__version__}"
        assert store_key(spec, reducer="validation.burst").endswith(
            f":validation.burst:{__version__}")

    def test_named_reducer_comes_from_spec(self):
        spec = _spec(reducer="validation.burst")
        assert ":validation.burst:" in store_key(spec)

    def test_version_pins_the_key(self):
        spec = _spec()
        assert store_key(spec, version="0.0.1") != store_key(spec)

    def test_distinct_specs_distinct_keys(self):
        assert store_key(_spec(seed=0)) != store_key(_spec(seed=1))


class TestCodec:
    @pytest.mark.parametrize("value", [
        {"a": 1, "b": [1, 2, 3], "c": None},
        "plain string",
        [True, False, 0.5],
    ])
    def test_json_native_values_stored_as_json(self, value):
        enc, payload = encode_value(value)
        assert enc == "json"
        assert decode_value(enc, payload) == value

    def test_non_json_values_fall_back_to_pickle(self):
        value = {1: (2, 3), 4: (5,)}  # int keys don't survive JSON
        enc, payload = encode_value(value)
        assert enc == "pickle"
        assert decode_value(enc, payload) == value

    def test_large_payloads_compressed(self):
        value = {"rows": list(range(5000))}
        enc, payload = encode_value(value)
        assert enc == "json+zlib"
        assert decode_value(enc, payload) == value
        assert len(payload) < len(json.dumps(value))

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError, match="unknown payload encoding"):
            decode_value("msgpack", "x")


class TestDefaultCacheDir:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/custom-cache")
        assert default_cache_dir() == "/tmp/custom-cache"

    def test_falls_back_to_user_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert default_cache_dir().endswith(
            os.path.join(".cache", "repro-diag"))


class TestResultStore:
    def test_get_put_has_roundtrip(self, tmp_path):
        metrics = MetricsRegistry()
        with ResultStore(str(tmp_path), metrics=metrics) as store:
            key = store_key(_spec())
            assert store.get(key) is None
            assert not store.has(key)
            store.put(key, {"result": {"passed": True}, "snapshot": {}})
            assert store.has(key)
            assert store.get(key) == {"result": {"passed": True},
                                      "snapshot": {}}
        counters = metrics.snapshot()["counters"]
        assert counters == {"store.hit": 1, "store.miss": 1, "store.put": 1}

    def test_last_write_wins(self, tmp_path):
        with ResultStore(str(tmp_path)) as store:
            store.put("k" * 64, 1)
            store.put("k" * 64, 2)
            assert store.get("k" * 64) == 2
            assert len(store) == 1

    def test_survives_reopen(self, tmp_path):
        with ResultStore(str(tmp_path)) as store:
            store.put("a" * 64, {"v": 41})
        with ResultStore(str(tmp_path)) as store:
            assert store.get("a" * 64) == {"v": 41}

    def test_truncated_shard_reads_as_miss(self, tmp_path):
        metrics = MetricsRegistry()
        with ResultStore(str(tmp_path), metrics=metrics) as store:
            key = "b" * 64
            store.put(key, {"big": "x" * 200})
            shard = os.path.join(store.shard_dir, store._shard_for(key))
            with open(shard, "r+b") as fh:
                fh.truncate(os.path.getsize(shard) // 2)
            assert store.get(key) is None        # skipped, not a crash
            assert not store.has(key)            # evicted from the index
            store.put(key, {"big": "y"})         # re-run fills it back in
            assert store.get(key) == {"big": "y"}
        counters = metrics.snapshot()["counters"]
        assert counters["store.corrupt"] == 1

    def test_bitflip_detected_by_checksum(self, tmp_path):
        with ResultStore(str(tmp_path)) as store:
            key = "c" * 64
            store.put(key, {"value": 12345})
            shard = os.path.join(store.shard_dir, store._shard_for(key))
            blob = bytearray(open(shard, "rb").read())
            blob[len(blob) // 2] ^= 0xFF
            open(shard, "wb").write(bytes(blob))
            assert store.get(key) is None

    def test_get_many_matches_get_semantics(self, tmp_path):
        metrics = MetricsRegistry()
        with ResultStore(str(tmp_path), metrics=metrics) as store:
            keys = [f"{i:02d}" + "a" * 62 for i in range(5)]
            for i, key in enumerate(keys[:3]):
                store.put(key, {"i": i})
            found = store.get_many(keys)
            assert found == {keys[0]: {"i": 0}, keys[1]: {"i": 1},
                             keys[2]: {"i": 2}}
        counters = metrics.snapshot()["counters"]
        assert counters["store.hit"] == 3
        assert counters["store.miss"] == 2

    def test_get_many_chunks_past_sqlite_variable_limit(self, tmp_path):
        with ResultStore(str(tmp_path)) as store:
            keys = [f"{i:04d}" + "b" * 60
                    for i in range(ResultStore._IN_CHUNK * 2 + 7)]
            store.put_many((key, i) for i, key in enumerate(keys))
            found = store.get_many(keys)
            assert len(found) == len(keys)
            assert found[keys[-1]] == len(keys) - 1

    def test_get_many_evicts_corrupt_records(self, tmp_path):
        metrics = MetricsRegistry()
        with ResultStore(str(tmp_path), metrics=metrics) as store:
            good, bad = "1a" + "g" * 62, "1b" + "g" * 62  # same shard
            store.put(good, {"v": 1})
            store.put(bad, {"big": "x" * 200})
            shard = os.path.join(store.shard_dir, store._shard_for(bad))
            with open(shard, "r+b") as fh:
                fh.truncate(os.path.getsize(shard) - 20)
            found = store.get_many([good, bad])
            assert found == {good: {"v": 1}}
            assert not store.has(bad)  # evicted, like get()
        counters = metrics.snapshot()["counters"]
        assert counters["store.corrupt"] == 1
        assert counters["store.miss"] == 1
        assert counters["store.hit"] == 1

    def test_put_many_roundtrips_and_counts(self, tmp_path):
        metrics = MetricsRegistry()
        with ResultStore(str(tmp_path), metrics=metrics) as store:
            items = [("2a" + "h" * 62, {"v": 1}),
                     ("3b" + "h" * 62, [1, 2, 3]),
                     ("2c" + "h" * 62, "text")]
            store.put_many(items)
            for key, value in items:
                assert store.get(key) == value
            store.put_many([])  # no-op, no crash
        assert metrics.snapshot()["counters"]["store.put"] == 3

    def test_put_many_last_write_wins_vs_put(self, tmp_path):
        with ResultStore(str(tmp_path)) as store:
            key = "4d" + "j" * 62
            store.put(key, 1)
            store.put_many([(key, 2)])
            assert store.get(key) == 2
            assert len(store) == 1

    def test_gc_evicts_lru_and_compacts(self, tmp_path):
        with ResultStore(str(tmp_path)) as store:
            for i in range(10):
                store.put(f"{i:02d}" + "e" * 62, {"i": i})
            before = store.stats()["shard_bytes"]
            stats = store.gc(max_entries=4)
            assert stats.evicted == 6
            assert stats.kept == 4
            assert len(store) == 4
            assert store.stats()["shard_bytes"] < before
            # survivors still readable after shard rewrite
            for key in list(store.keys()):
                assert store.get(key) is not None

    def test_gc_by_age(self, tmp_path):
        with ResultStore(str(tmp_path)) as store:
            store.put("f" * 64, 1)
            assert store.gc(max_age_seconds=0).evicted == 1
            assert len(store) == 0

    def test_gc_drops_superseded_records(self, tmp_path):
        with ResultStore(str(tmp_path)) as store:
            key = "d" * 64
            store.put(key, 1)
            store.put(key, 2)
            stats = store.gc()
            assert stats.orphans_dropped == 1
            assert store.get(key) == 2


class TestStatsAndIndexQueries:
    def test_stats_breaks_down_per_shard(self, tmp_path):
        with ResultStore(str(tmp_path)) as store:
            store.put("aa" + "x" * 62, {"v": 1})
            store.put("aa" + "y" * 62, {"v": 2})
            store.put("bb" + "x" * 62, {"v": 3})
            stats = store.stats()
            assert stats["entries"] == 3
            shards = stats["shards"]
            assert shards["aa.jsonl"]["entries"] == 2
            assert shards["bb.jsonl"]["entries"] == 1
            assert all(s["bytes"] > 0 for s in shards.values())
            assert stats["shard_bytes"] == sum(
                s["bytes"] for s in shards.values())

    def test_stats_counts_orphaned_bytes_in_shard_size(self, tmp_path):
        # a superseded record stays on disk until gc: the shard's bytes
        # outgrow what its single live entry needs
        with ResultStore(str(tmp_path)) as store:
            key = "cc" + "z" * 62
            store.put(key, {"v": "x" * 100})
            once = store.stats()["shards"]["cc.jsonl"]["bytes"]
            store.put(key, {"v": "y" * 100})
            stats = store.stats()
            assert stats["entries"] == 1
            assert stats["shards"]["cc.jsonl"]["entries"] == 1
            assert stats["shards"]["cc.jsonl"]["bytes"] > once

    def test_keys_for_prefix_selects_by_digest(self, tmp_path):
        with ResultStore(str(tmp_path)) as store:
            spec_a, spec_b = _spec(seed=0), _spec(seed=1)
            key_a, key_b = store_key(spec_a), store_key(spec_b)
            store.put(key_a, 1)
            store.put(key_b, 2)
            digest = spec_a.full_digest()
            assert store.keys_for_prefix(digest) == [key_a]
            assert store.keys_for_prefix(spec_b.full_digest()) == [key_b]
            assert store.keys_for_prefix("0" * 64) == []

    def test_keys_for_prefix_is_sorted_and_literal(self, tmp_path):
        with ResultStore(str(tmp_path)) as store:
            store.put("ab2" + "x" * 61, 1)
            store.put("ab1" + "x" * 61, 2)
            store.put("zz" + "x" * 62, 3)
            assert store.keys_for_prefix("ab") == [
                "ab1" + "x" * 61, "ab2" + "x" * 61]
            # LIKE wildcards in the prefix must not act as wildcards
            assert store.keys_for_prefix("a_") == []
            assert store.keys_for_prefix("%") == []


class TestConcurrentAccess:
    """Many store handles, one root: the service's thread model.

    Each thread opens its own :class:`ResultStore` (sqlite connections
    are per-thread); the busy-timeout/retry hardening plus the
    in-process append lock must keep shard offsets and index rows
    consistent under write/write and read/write contention.
    """

    THREADS = 8
    KEYS_PER_THREAD = 25

    def _key(self, thread, i):
        body = f"{thread:02d}{i:04d}"
        return body + "k" * (64 - len(body))

    def test_parallel_writers_and_readers_stay_consistent(self, tmp_path):
        import threading

        root = str(tmp_path / "store")
        failures = []
        barrier = threading.Barrier(self.THREADS)

        def worker(thread_id):
            try:
                with ResultStore(root) as store:
                    barrier.wait(timeout=30)
                    for i in range(self.KEYS_PER_THREAD):
                        # Private keys: every write must land...
                        store.put(self._key(thread_id, i),
                                  {"thread": thread_id, "i": i,
                                   "pad": "x" * 200})
                        # ...and one contended key all threads fight
                        # over must always read back as a valid record.
                        shared = "ff" + "s" * 62
                        store.put(shared, {"winner": thread_id, "i": i})
                        value = store.get(shared)
                        assert value is not None and "winner" in value
            except Exception as exc:  # surfaces in the main thread
                failures.append((thread_id, exc))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not failures, failures
        # Every private write is durable and intact; no shard offset
        # corruption (a bad offset would decode as a miss/crash here).
        with ResultStore(root) as store:
            for thread_id in range(self.THREADS):
                for i in range(self.KEYS_PER_THREAD):
                    value = store.get(self._key(thread_id, i))
                    assert value == {"thread": thread_id, "i": i,
                                     "pad": "x" * 200}
            stats = store.stats()
            assert stats["entries"] == \
                self.THREADS * self.KEYS_PER_THREAD + 1

    def test_get_many_under_concurrent_puts(self, tmp_path):
        import threading

        root = str(tmp_path / "store")
        keys = [self._key(99, i) for i in range(50)]
        with ResultStore(root) as store:
            for key in keys[:25]:
                store.put(key, {"seed": key[:6]})
        stop = threading.Event()

        def writer():
            with ResultStore(root) as store:
                i = 0
                while not stop.is_set():
                    store.put(keys[25 + (i % 25)], {"w": i})
                    i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            with ResultStore(root) as store:
                for _round in range(50):
                    found = store.get_many(keys)
                    # The 25 pre-seeded records are always intact.
                    for key in keys[:25]:
                        assert found[key] == {"seed": key[:6]}
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not thread.is_alive()
