"""Integration tests for the cluster driver."""

import pytest

from repro.tt.cluster import Cluster
from repro.tt.node import JobContext


class RecordingJob:
    """Records every execution context it receives."""

    def __init__(self):
        self.calls = []

    def execute(self, ctx: JobContext) -> None:
        self.calls.append((ctx.round_index, ctx.physical_round,
                           ctx.params.l, ctx.time))


def test_jobs_execute_once_per_round():
    cluster = Cluster(4, seed=0)
    job = RecordingJob()
    cluster.install_job(2, job)
    cluster.run_rounds(5)
    assert [c[0] for c in job.calls] == [0, 1, 2, 3, 4]


def test_job_time_matches_schedule_offset():
    cluster = Cluster(4, seed=0)
    cluster.set_static_schedule(3, exec_after=2)
    job = RecordingJob()
    cluster.install_job(3, job)
    cluster.run_rounds(2)
    tb = cluster.timebase
    expected_offset = cluster.schedule.node_schedule(3).params(0).offset
    assert job.calls[0][3] == pytest.approx(expected_offset)
    assert job.calls[1][3] == pytest.approx(tb.round_length + expected_offset)
    assert all(c[2] == 2 for c in job.calls)


def test_footnote_schedule_shifts_effective_round():
    cluster = Cluster(4, seed=0)
    cluster.set_static_schedule(1, exec_after=4)
    job = RecordingJob()
    cluster.install_job(1, job)
    cluster.run_rounds(3)
    # Physical rounds 0..2, effective rounds 1..3.
    assert [(c[0], c[1]) for c in job.calls] == [(1, 0), (2, 1), (3, 2)]


def test_every_slot_transmits_every_round():
    cluster = Cluster(4, seed=0)
    cluster.run_rounds(3)
    tx = cluster.trace.select(category="tx")
    assert len(tx) == 12
    slots = [(r.data["round_index"], r.data["slot"]) for r in tx]
    assert slots == [(k, s) for k in range(3) for s in range(1, 5)]


def test_run_rounds_excludes_next_round_events():
    cluster = Cluster(4, seed=0)
    cluster.run_rounds(1)
    assert cluster.rounds_completed == 1
    tx = cluster.trace.select(category="tx")
    assert all(r.data["round_index"] == 0 for r in tx)


def test_run_rounds_is_resumable_and_equivalent():
    # Driving 1+1 rounds equals driving 2 rounds in one call.
    split = Cluster(4, seed=3)
    split.run_rounds(1)
    split.run_rounds(1)
    whole = Cluster(4, seed=3)
    whole.run_rounds(2)
    assert split.trace.to_dicts() == whole.trace.to_dicts()


def test_determinism_same_seed_identical_traces():
    def run(seed):
        cluster = Cluster(4, seed=seed)
        jobs = {}
        for n in range(1, 5):
            cluster.set_dynamic_schedule(n)
            jobs[n] = RecordingJob()
            cluster.install_job(n, jobs[n])
        cluster.run_rounds(10)
        times = {n: [c[3] for c in job.calls] for n, job in jobs.items()}
        return cluster.trace.to_dicts(), times

    trace_a, times_a = run(7)
    trace_b, times_b = run(7)
    trace_c, times_c = run(8)
    assert trace_a == trace_b
    assert times_a == times_b
    # Different seeds draw different dynamic offsets.
    assert times_a != times_c


def test_run_until_advances_clock():
    cluster = Cluster(4, seed=0)
    cluster.run_until(10e-3)
    assert cluster.now == pytest.approx(10e-3)
    assert cluster.rounds_completed >= 3


def test_install_job_after_start_rejected():
    cluster = Cluster(4, seed=0)
    cluster.run_rounds(1)
    with pytest.raises(RuntimeError):
        cluster.install_job(1, RecordingJob())
    with pytest.raises(RuntimeError):
        cluster.set_static_schedule(1, exec_after=2)


def test_negative_rounds_rejected():
    cluster = Cluster(4, seed=0)
    with pytest.raises(ValueError):
        cluster.run_rounds(-1)


def test_disabled_transmission_produces_silent_slot():
    cluster = Cluster(4, seed=0)
    cluster.node(2).controller.disable_transmission()
    cluster.run_rounds(1)
    rec = cluster.trace.first("tx", slot=2)
    assert rec.data["sent"] is False


def test_scenarios_can_be_added_mid_run():
    from repro.faults.scenarios import SenderFault
    cluster = Cluster(4, seed=0)
    cluster.run_rounds(2)
    cluster.add_scenario(SenderFault(1, kind="benign", rounds=[3]))
    cluster.run_rounds(3)
    rec = cluster.trace.first("tx", slot=1, round_index=3)
    assert rec.data["fault_class"] == "symmetric_benign"
    rec_before = cluster.trace.first("tx", slot=1, round_index=2)
    assert rec_before.data["fault_class"] == "none"
