"""Unit tests for the bitset diagnostic core (repro.core.bitmatrix).

The contract under test: :class:`BitDiagnosticMatrix` is observably
indistinguishable from :class:`DiagnosticMatrix` (same accessors, same
analysis decisions, same renderings), and :class:`AnalysisCache`
memoises per distinct matrix per diagnosed round without changing a
single decision.  The cluster-level byte-identity of the two data
planes is pinned separately by the differential fuzz in
``test_fastpath_equivalence.py``.
"""

import random

import pytest

from repro.core.bitmatrix import (
    AnalysisCache,
    BitDiagnosticMatrix,
    pack_syndrome,
    pack_syndrome_cached,
    unpack_syndrome,
)
from repro.core.syndrome import EPSILON, DiagnosticMatrix
from repro.core.voting import BOTTOM, h_maj_explain
from repro.obs import MetricsRegistry


def random_rows(rng, n, eps_p=0.25):
    """A random row set mixing syndromes and ε."""
    rows = []
    for _ in range(n):
        if rng.random() < eps_p:
            rows.append(EPSILON)
        else:
            rows.append(tuple(rng.randrange(2) for _ in range(n)))
    return rows


class TestPacking:
    def test_roundtrip(self):
        rng = random.Random(0)
        for n in (1, 4, 7, 16, 64):
            for _ in range(20):
                syndrome = tuple(rng.randrange(2) for _ in range(n))
                assert unpack_syndrome(pack_syndrome(syndrome), n) == syndrome

    def test_bit_convention(self):
        # Bit j-1 is the opinion about node j.
        assert pack_syndrome((1, 0, 0)) == 0b001
        assert pack_syndrome((0, 0, 1)) == 0b100

    def test_cached_matches_uncached(self):
        s = (1, 0, 1, 1)
        assert pack_syndrome_cached(s) == pack_syndrome(s)
        assert pack_syndrome_cached(s) == pack_syndrome_cached(tuple(s))


class TestApiParity:
    @pytest.mark.parametrize("seed", range(10))
    def test_accessors_match_tuple_matrix(self, seed):
        rng = random.Random(seed)
        n = rng.choice((3, 4, 8, 16))
        rows = random_rows(rng, n)
        ref = DiagnosticMatrix.from_rows(rows)
        bit = BitDiagnosticMatrix.from_rows(rows)
        assert bit.epsilon_rows() == ref.epsilon_rows()
        assert bit.render() == ref.render()
        for j in range(1, n + 1):
            assert bit.row(j) == ref.row(j)
            assert bit.column(j) == ref.column(j)
        hv = [rng.randrange(2) for _ in range(n)]
        assert bit.disagree_mask(hv) == ref.disagree_mask(hv)

    def test_uniform_constructor_parity(self):
        row = (1, 0, 1, 1)
        ref = DiagnosticMatrix.uniform(4, row)
        bit = BitDiagnosticMatrix.uniform(4, row)
        assert bit.uniform_row() == ref.uniform_row() == row
        assert [bit.row(j) for j in range(1, 5)] == \
               [ref.row(j) for j in range(1, 5)]

    def test_set_row_clears_uniform_marker(self):
        bit = BitDiagnosticMatrix.uniform(4, (1, 1, 1, 1))
        bit.set_row(2, EPSILON)
        assert bit.uniform_row() is None
        assert bit.row(2) is EPSILON

    def test_validation_parity(self):
        bit = BitDiagnosticMatrix(4)
        with pytest.raises(ValueError):
            bit.set_row(1, (1, 0))          # wrong length
        with pytest.raises(ValueError):
            bit.set_row(1, (1, 0, 2, 0))    # non-binary
        with pytest.raises(ValueError):
            bit.set_row(5, (1, 0, 1, 0))    # bad node id
        with pytest.raises(ValueError):
            bit.column(0)

    def test_epsilon_key_is_canonical(self):
        # Installing then erasing a row restores the exact key, so the
        # analysis memo cannot be split by dead row bits.
        a = BitDiagnosticMatrix(4)
        b = BitDiagnosticMatrix(4)
        b.set_row(2, (1, 1, 1, 1))
        b.set_row(2, EPSILON)
        assert a.key() == b.key()


class TestConverters:
    @pytest.mark.parametrize("seed", range(5))
    def test_roundtrip_is_lossless(self, seed):
        rng = random.Random(seed)
        n = rng.choice((4, 8, 16))
        ref = DiagnosticMatrix.from_rows(random_rows(rng, n))
        bit = BitDiagnosticMatrix.from_tuple_matrix(ref)
        back = bit.to_tuple_matrix()
        for j in range(1, n + 1):
            assert back.row(j) == ref.row(j)
        assert BitDiagnosticMatrix.from_tuple_matrix(back).key() == bit.key()

    def test_uniform_marker_survives_conversion(self):
        ref = DiagnosticMatrix.uniform(4, (1, 1, 0, 1))
        bit = BitDiagnosticMatrix.from_tuple_matrix(ref)
        assert bit.uniform_row() == (1, 1, 0, 1)
        assert bit.to_tuple_matrix().uniform_row() == (1, 1, 0, 1)


class TestAnalyse:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_per_column_h_maj(self, seed):
        rng = random.Random(100 + seed)
        n = rng.choice((3, 4, 8, 16))
        rows = random_rows(rng, n, eps_p=rng.choice((0.0, 0.3, 1.0)))
        bit = BitDiagnosticMatrix.from_rows(rows)
        decisions, reasons, n_bottom, n_majority, n_default = bit.analyse()
        expected = [h_maj_explain(bit.column(j)) for j in range(1, n + 1)]
        assert list(decisions) == [d for d, _r in expected]
        assert list(reasons) == [r for _d, r in expected]
        assert n_bottom == sum(1 for _d, r in expected if r == "bottom")
        assert n_majority == sum(1 for _d, r in expected if r == "majority")
        assert n_default == sum(1 for _d, r in expected if r == "default")

    def test_all_epsilon_is_all_bottom(self):
        decisions, reasons, n_bottom, _m, _d = BitDiagnosticMatrix(4).analyse()
        assert set(decisions) == {BOTTOM}
        assert set(reasons) == {"bottom"}
        assert n_bottom == 4


class TestAnalysisCache:
    def test_hit_after_store_within_round(self):
        registry = MetricsRegistry()
        cache = AnalysisCache(registry)
        matrix = BitDiagnosticMatrix.uniform(4, (1, 1, 1, 1))
        key = matrix.key()
        assert cache.lookup(5, key) is None
        entry = matrix.analyse()
        cache.store(key, entry)
        assert cache.lookup(5, key) is entry
        counters = registry.snapshot()["counters"]
        assert counters["vote.cache_miss"] == 1
        assert counters["vote.cache_hit"] == 1

    def test_round_rollover_clears(self):
        cache = AnalysisCache()
        matrix = BitDiagnosticMatrix.uniform(4, (1, 1, 1, 1))
        key = matrix.key()
        cache.lookup(5, key)
        cache.store(key, matrix.analyse())
        assert cache.lookup(5, key) is not None
        assert cache.lookup(6, key) is None  # new round, cold cache

    def test_distinct_matrices_miss(self):
        cache = AnalysisCache()
        a = BitDiagnosticMatrix.uniform(4, (1, 1, 1, 1))
        b = BitDiagnosticMatrix.uniform(4, (1, 0, 1, 1))
        cache.lookup(1, a.key())
        cache.store(a.key(), a.analyse())
        assert cache.lookup(1, b.key()) is None
        assert cache.lookup(1, a.key()) is not None

    def test_null_registry_default(self):
        # No metrics attached: still functions, just uncounted.
        cache = AnalysisCache()
        matrix = BitDiagnosticMatrix(3)
        assert cache.lookup(0, matrix.key()) is None


class TestEscapeHatch:
    def test_bitset_false_uses_tuple_matrices(self):
        from repro import DiagnosedCluster, uniform_config

        dc = DiagnosedCluster(uniform_config(4, penalty_threshold=3,
                                             reward_threshold=50),
                              seed=0, bitset=False)
        dc.run_rounds(8)
        assert dc.consistent_health_history()
        service = dc.service(1)
        assert isinstance(service._last_matrix, DiagnosticMatrix)
        assert service._analysis_cache is None

    def test_bitset_default_uses_bit_matrices(self):
        from repro import DiagnosedCluster, uniform_config

        dc = DiagnosedCluster(uniform_config(4, penalty_threshold=3,
                                             reward_threshold=50),
                              seed=0)
        dc.run_rounds(8)
        assert dc.consistent_health_history()
        assert isinstance(dc.service(1)._last_matrix, BitDiagnosticMatrix)
        # All services share one cluster-wide cache.
        caches = {id(s._analysis_cache) for s in dc.services.values()}
        assert len(caches) == 1

    def test_shared_cache_hits_across_nodes(self):
        from repro import DiagnosedCluster, uniform_config

        registry = MetricsRegistry()
        dc = DiagnosedCluster(uniform_config(4, penalty_threshold=3,
                                             reward_threshold=50),
                              seed=0, metrics=registry)
        from repro.faults import SlotBurst
        dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, 5, 2, 1))
        dc.run_rounds(12)
        counters = registry.snapshot()["counters"]
        # Fault rounds defeat the uniform shortcut, and then N-1 nodes
        # reuse the first node's analysis.
        assert counters["vote.cache_hit"] > 0
        assert counters["vote.cache_hit"] > counters["vote.cache_miss"]
