"""Unit tests for trace recording and querying."""

from repro.sim.trace import Trace


def make_trace() -> Trace:
    trace = Trace()
    trace.record(0.0, "tx", node=1, slot=1, ok=True)
    trace.record(0.1, "tx", node=2, slot=2, ok=False)
    trace.record(0.2, "isolation", node=1, isolated=2)
    trace.record(0.3, "tx", node=1, slot=1, ok=True)
    return trace


def test_record_and_len():
    trace = make_trace()
    assert len(trace) == 4


def test_select_by_category():
    trace = make_trace()
    assert len(trace.select(category="tx")) == 3
    assert len(trace.select(category="isolation")) == 1


def test_select_by_node():
    trace = make_trace()
    assert len(trace.select(category="tx", node=1)) == 2


def test_select_time_window():
    trace = make_trace()
    assert len(trace.select(since=0.1, until=0.2)) == 2
    assert len(trace.select(since=0.15)) == 2
    assert len(trace.select(until=0.05)) == 1


def test_select_with_predicate():
    trace = make_trace()
    recs = trace.select(category="tx", predicate=lambda r: r.data["ok"])
    assert len(recs) == 2


def test_first_and_last_with_filters():
    trace = make_trace()
    first = trace.first("tx", node=1)
    last = trace.last("tx", node=1)
    assert first is not None and first.time == 0.0
    assert last is not None and last.time == 0.3
    # Filters match on data keys.
    assert trace.first("tx", ok=False).node == 2
    assert trace.first("tx", ok="missing-value") is None


def test_count_with_filters():
    trace = make_trace()
    assert trace.count("tx") == 3
    assert trace.count("tx", ok=True) == 2
    assert trace.count("nonexistent") == 0


def test_records_kept_in_insertion_order():
    trace = make_trace()
    times = [r.time for r in trace]
    assert times == sorted(times)


def test_to_dicts_roundtrip():
    trace = make_trace()
    dicts = trace.to_dicts()
    assert dicts[0] == {"time": 0.0, "category": "tx", "node": 1,
                        "slot": 1, "ok": True}
    assert len(dicts) == 4
