"""Property-based tests (hypothesis) for the core invariants.

These encode the paper's theorems and the substrate's contracts as
properties over randomly generated inputs:

* H-maj agreement/correctness under arbitrary fault allocations within
  the Lemma 2 bound, with adversarially chosen malicious votes;
* read alignment reconstructs the previous round for every split point;
* p/r counter algebra: isolation iff the penalty budget is exceeded
  without an R-long clean gap; counters never go negative; update and
  update_single agree on arbitrary health-vector streams;
* syndrome wire encoding round-trips;
* schedule parameter derivation is total and consistent over the whole
  offset domain;
* end-to-end: a randomly placed single-slot burst is always detected,
  consistently, for random static schedules.
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.alignment import read_align
from repro.core.config import uniform_config
from repro.core.penalty_reward import (
    PenaltyRewardState,
    faulty_rounds_to_isolation,
)
from repro.core.syndrome import EPSILON
from repro.core.voting import BOTTOM, h_maj, vote_bound_holds
from repro.tt.frames import decode_syndrome, encode_syndrome
from repro.tt.schedule import params_from_offset
from repro.tt.timebase import TimeBase

# ---------------------------------------------------------------------------
# Voting properties
# ---------------------------------------------------------------------------


@st.composite
def lemma2_vote_sets(draw):
    """A (truth, votes) pair within the Lemma 2 resilience bound.

    Honest voters report `truth`; benign voters are ε; malicious voters
    report adversarial values chosen by hypothesis.
    """
    n = draw(st.integers(min_value=4, max_value=12))
    truth = draw(st.integers(min_value=0, max_value=1))
    b = draw(st.integers(min_value=0, max_value=n - 2))
    max_ms = (n - b - 2) // 2
    ms = draw(st.integers(min_value=0, max_value=max(0, max_ms)))
    assume(vote_bound_holds(n, a=0, s=ms, b=b))
    honest = n - 1 - b - ms
    assume(honest >= 0)
    malicious_votes = draw(st.lists(st.integers(min_value=0, max_value=1),
                                    min_size=ms, max_size=ms))
    votes = [truth] * honest + [EPSILON] * b + list(malicious_votes)
    votes = draw(st.permutations(votes))
    return truth, votes


@given(lemma2_vote_sets())
def test_hmaj_agrees_with_truth_within_bound(pair):
    truth, votes = pair
    assert h_maj(votes) == truth


@given(st.lists(st.sampled_from([0, 1, EPSILON]), min_size=0, max_size=15))
def test_hmaj_total_and_in_range(votes):
    result = h_maj(votes)
    surviving = [v for v in votes if v is not EPSILON]
    if not surviving:
        assert result is BOTTOM
    else:
        assert result in (0, 1)


@given(st.lists(st.sampled_from([0, 1, EPSILON]), min_size=1, max_size=15))
def test_hmaj_permutation_invariant(votes):
    from itertools import islice, permutations
    baseline = h_maj(votes)
    for perm in islice(permutations(votes), 10):
        assert h_maj(list(perm)) == baseline


@given(st.lists(st.sampled_from([0, 1, EPSILON]), min_size=1, max_size=12),
       st.integers(min_value=0, max_value=1))
def test_hmaj_adding_epsilon_never_changes_outcome(votes, _):
    assert h_maj(votes + [EPSILON]) == h_maj(votes)


# ---------------------------------------------------------------------------
# Alignment properties
# ---------------------------------------------------------------------------


@given(st.integers(min_value=2, max_value=16), st.data())
def test_read_align_reconstructs_previous_round(n, data):
    l = data.draw(st.integers(min_value=0, max_value=n))
    truth = [("prev-round", j) for j in range(n)]
    prev = truth[:l] + [("older", j) for j in range(l, n)]
    curr = [("newer", j) for j in range(l)] + truth[l:]
    assert read_align(prev, curr, l) == truth


# ---------------------------------------------------------------------------
# Penalty/reward properties
# ---------------------------------------------------------------------------


@given(st.lists(st.lists(st.integers(min_value=0, max_value=1),
                         min_size=3, max_size=3),
                min_size=1, max_size=60),
       st.integers(min_value=0, max_value=6),
       st.integers(min_value=1, max_value=8))
def test_pr_counters_nonnegative_and_bounded(stream, P, R):
    config = uniform_config(3, penalty_threshold=P, reward_threshold=R)
    pr = PenaltyRewardState(config)
    for hv in stream:
        pr.update(hv)
        assert all(p >= 0 for p in pr.penalties)
        assert all(0 <= r < R for r in pr.rewards)


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                max_size=80),
       st.integers(min_value=0, max_value=5),
       st.integers(min_value=1, max_value=6))
def test_pr_isolation_iff_budget_exceeded_without_reset(bits, P, R):
    """Replay Alg. 2 against an independent specification.

    Specification: scanning the health stream of one node, the penalty
    is the count of faults since the last reset; a reset happens after
    R consecutive clean rounds (only while penalties are pending);
    isolation is signalled on the fault that pushes the count above P.
    """
    config = uniform_config(2, penalty_threshold=P, reward_threshold=R)
    pr = PenaltyRewardState(config)
    penalty_spec = 0
    clean_streak = 0
    isolated_spec = False
    isolated_impl = False
    for bit in bits:
        act = pr.update([bit, 1])
        if act[0] == 0:
            isolated_impl = True
        if bit == 0:
            penalty_spec += 1
            clean_streak = 0
            if penalty_spec > P:
                isolated_spec = True
        elif penalty_spec > 0:
            clean_streak += 1
            if clean_streak >= R:
                penalty_spec = 0
                clean_streak = 0
        assert pr.penalties[0] == penalty_spec
        assert isolated_impl == isolated_spec


@given(st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=1, max_value=1000))
def test_faulty_rounds_budget_formula(P, s):
    rounds = faulty_rounds_to_isolation(P, s)
    assert (rounds - 1) * s <= P < rounds * s


# ---------------------------------------------------------------------------
# Wire encoding properties
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                max_size=64))
def test_syndrome_encoding_roundtrip(bits):
    data = encode_syndrome(bits)
    assert len(data) == (len(bits) + 7) // 8
    assert decode_syndrome(data, len(bits)) == tuple(bits)


# ---------------------------------------------------------------------------
# Schedule derivation properties
# ---------------------------------------------------------------------------


@given(st.integers(min_value=2, max_value=10),
       st.integers(min_value=1, max_value=10),
       st.floats(min_value=0.0, max_value=0.999999, allow_nan=False))
def test_schedule_params_total_and_consistent(n, node_pos, frac):
    node_id = (node_pos - 1) % n + 1
    tb = TimeBase(n, 2.5e-3)
    offset = frac * tb.round_length
    params = params_from_offset(tb, node_id, offset)
    assert 0 <= params.l <= n - 1
    assert params.round_shift in (0, 1)
    if params.round_shift == 1:
        assert params.l == 0
        assert params.send_curr_round
    else:
        # l equals the number of delivery instants at or before offset.
        deliveries = sum(1 for i in range(1, n + 1)
                         if tb.delivery_time(0, i) <= offset + 1e-12)
        assert params.l == deliveries
    if params.send_curr_round and params.round_shift == 0:
        assert offset < tb.slot_start(0, node_id)


# ---------------------------------------------------------------------------
# TTP/C baseline properties
# ---------------------------------------------------------------------------


@given(st.integers(min_value=4, max_value=8),
       st.integers(min_value=1, max_value=3),
       st.data())
def test_ttpc_single_fault_resolution(n, fault_round, data):
    """Under the single-fault assumption the baseline always resolves:
    the faulty sender is removed everywhere (including by itself) and
    the survivors hold one consistent membership."""
    from repro.baselines.ttpc_membership import (
        TTPCMembershipCluster,
        benign_sender_fault,
    )
    slot = data.draw(st.integers(min_value=1, max_value=n))
    cluster = TTPCMembershipCluster(n)
    cluster.run_rounds(fault_round + 4,
                       benign_sender_fault(fault_round, slot, n))
    assert cluster.consistent_membership()
    alive = set(cluster.alive_nodes())
    assert alive == set(range(1, n + 1)) - {slot}
    for node in alive:
        assert cluster.membership_of(node) == frozenset(alive)


# ---------------------------------------------------------------------------
# End-to-end detection property
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=9999),
       st.integers(min_value=1, max_value=4),
       st.lists(st.integers(min_value=0, max_value=4), min_size=4,
                max_size=4))
def test_single_burst_always_detected(seed, slot, exec_afters):
    from repro.analysis.metrics import (
        completeness_holds,
        consistency_violations,
        correctness_holds,
    )
    from repro.core.service import DiagnosedCluster
    from repro.faults.scenarios import SlotBurst

    config = uniform_config(4, penalty_threshold=10 ** 6,
                            reward_threshold=10 ** 6)
    dc = DiagnosedCluster(config, seed=seed, exec_after=exec_afters)
    dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, 6, slot, 1))
    dc.run_rounds(14)
    obedient = dc.obedient_node_ids()
    assert completeness_holds(dc.trace, 6, slot, obedient)
    correct = [j for j in range(1, 5) if j != slot]
    assert correctness_holds(dc.trace, 6, correct, obedient)
    assert not consistency_violations(dc.trace, obedient)
