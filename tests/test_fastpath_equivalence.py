"""Fast-path vs slow-path bit-exactness.

The batched slot delivery fast path (``Bus.transmit_quiescent`` gated
by ``InjectionLayer.is_quiescent``) is an optimisation, not a semantic
variant: for every seed and every scenario mix the cluster must produce
byte-identical traces and identical health vectors whether the fast
path is enabled or forced off.  These tests pin that contract on
fault-free runs and on runs with deterministic and stochastic
injections (the stochastic ones also exercise the "same RNG draws"
requirement — a single skipped or extra draw would desynchronise every
subsequent verdict).
"""

import json

import pytest

from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster
from repro.faults.processes import (
    IntermittentSender,
    PoissonTransients,
    RandomSlotNoise,
)
from repro.faults.scenarios import SenderFault, SlotBurst

FAULT_ROUND = 5
ROUNDS = 20


def _no_scenarios(dc):
    return ()


def _slot_burst(dc):
    return (SlotBurst(dc.cluster.timebase, FAULT_ROUND, 2, 1),)


def _long_burst(dc):
    return (SlotBurst(dc.cluster.timebase, FAULT_ROUND, 1,
                      2 * dc.config.n_nodes),)


def _sender_fault(dc):
    return (SenderFault(1, kind="benign",
                        rounds=[FAULT_ROUND, FAULT_ROUND + 2]),)


def _stochastic_mix(dc):
    streams = dc.cluster.streams
    return (
        PoissonTransients(rate=200.0, burst_length=0.5e-3,
                          rng=streams.stream("transients")),
        IntermittentSender(2, mean_reappearance_rounds=4,
                           rng=streams.stream("intermittent")),
        RandomSlotNoise(0.05, rng=streams.stream("noise")),
    )


SCENARIO_BUILDERS = [
    _no_scenarios,
    _slot_burst,
    _long_burst,
    _sender_fault,
    _stochastic_mix,
]


def run_cluster(n_nodes, fast_path, builder, seed=0, trace_level=2):
    config = uniform_config(n_nodes, penalty_threshold=3,
                            reward_threshold=50)
    dc = DiagnosedCluster(config, seed=seed, trace_level=trace_level,
                          fast_path=fast_path)
    for scenario in builder(dc):
        dc.cluster.add_scenario(scenario)
    dc.run_rounds(ROUNDS)
    return dc


@pytest.mark.parametrize("n_nodes", [4, 8])
@pytest.mark.parametrize("builder", SCENARIO_BUILDERS,
                         ids=lambda b: b.__name__.lstrip("_"))
class TestFastSlowEquivalence:
    def test_traces_byte_identical(self, n_nodes, builder):
        fast = run_cluster(n_nodes, True, builder)
        slow = run_cluster(n_nodes, False, builder)
        fast_dicts = fast.trace.to_dicts()
        slow_dicts = slow.trace.to_dicts()
        assert fast_dicts == slow_dicts
        assert (json.dumps(fast_dicts, sort_keys=True) ==
                json.dumps(slow_dicts, sort_keys=True))

    def test_health_vectors_identical(self, n_nodes, builder):
        fast = run_cluster(n_nodes, True, builder)
        slow = run_cluster(n_nodes, False, builder)
        for node in range(1, n_nodes + 1):
            assert fast.health_vectors(node) == slow.health_vectors(node)
        assert (fast.consistent_health_history() ==
                slow.consistent_health_history())


@pytest.mark.parametrize("n_nodes", [4, 8])
def test_traceless_runs_match_rounds_and_counters(n_nodes):
    """At trace_level=0 the paths still agree on all protocol state."""
    fast = run_cluster(n_nodes, True, _stochastic_mix, trace_level=0)
    slow = run_cluster(n_nodes, False, _stochastic_mix, trace_level=0)
    assert fast.cluster.rounds_completed == slow.cluster.rounds_completed
    for node in range(1, n_nodes + 1):
        assert (str(fast.service(node).pr.snapshot()) ==
                str(slow.service(node).pr.snapshot()))
        assert fast.service(node).active == slow.service(node).active


def test_fast_path_skips_injection_machinery():
    """Sanity: quiescent slots never reach ``InjectionLayer.apply``."""
    calls = {True: 0, False: 0}

    def counting(dc, key):
        layer = dc.cluster.bus.injection
        original = layer.apply

        def apply(ctx):
            calls[key] += 1
            return original(ctx)

        layer.apply = apply

    config = uniform_config(4, penalty_threshold=3, reward_threshold=50)
    for fast_path in (True, False):
        dc = DiagnosedCluster(config, seed=0, fast_path=fast_path)
        counting(dc, fast_path)
        dc.run_rounds(ROUNDS)
    assert calls[True] == 0
    assert calls[False] > 0


# ---------------------------------------------------------------------------
# Differential fuzz: random scenario mixes, fast vs slow, serial vs pool
# ---------------------------------------------------------------------------
#
# Each case seed deterministically derives a cluster size, a mix of
# 1-3 fault scenarios (deterministic and stochastic) and their
# parameters.  For every case the fast and slow paths must produce
# byte-identical traces and — because metering is purely observational
# — identical metrics snapshots, except for the two counters that
# *describe the execution strategy itself* (``bus.slots_fast_path`` /
# ``bus.slots_slow_path``), which are expected to differ and are
# excluded from the comparison.  A subset of cases is additionally run
# through the process pool to pin ``jobs=1 == jobs=4``.

import random as _random

from repro.core.service import LowLatencyCluster, MembershipCluster
from repro.faults.scenarios import crash
from repro.obs import MetricsRegistry
from repro.runner.pool import Task, run_tasks

FUZZ_CASES = 50
FUZZ_NODES = (4, 8, 16)
FUZZ_ROUNDS = 10
#: Counters describing *how* the run executed rather than *what* the
#: protocol did; legitimately different between fast and slow runs.
EXECUTION_COUNTERS = frozenset(
    {"bus.slots_fast_path", "bus.slots_slow_path"})
#: Superset also covering the bitset-analysis strategy counters, which
#: legitimately differ between ``bitset=True`` and ``bitset=False``.
STRATEGY_COUNTERS = EXECUTION_COUNTERS | frozenset(
    {"vote.cache_hit", "vote.cache_miss", "vote.popcount_votes",
     "syndrome.intern_evictions"})


def _fuzz_scenarios(dc, case_seed):
    """Deterministic random scenario mix for one fuzz case."""
    rng = _random.Random(case_seed)
    n = dc.config.n_nodes
    tb = dc.cluster.timebase
    streams = dc.cluster.streams
    scenarios = []
    for i in range(rng.randint(1, 3)):
        kind = rng.choice(("slot-burst", "long-burst", "sender", "crash",
                           "poisson", "intermittent", "noise"))
        if kind == "slot-burst":
            scenarios.append(SlotBurst(tb, rng.randint(2, 6),
                                       rng.randint(1, n), rng.randint(1, n)))
        elif kind == "long-burst":
            scenarios.append(SlotBurst(tb, rng.randint(2, 5), 1,
                                       rng.randint(n, 2 * n)))
        elif kind == "sender":
            first = rng.randint(2, 6)
            scenarios.append(SenderFault(
                rng.randint(1, n), kind="benign",
                rounds=[first, first + rng.randint(1, 3)]))
        elif kind == "crash":
            scenarios.append(crash(rng.randint(1, n),
                                   from_round=rng.randint(3, 7)))
        elif kind == "poisson":
            scenarios.append(PoissonTransients(
                rate=rng.choice((50.0, 200.0)), burst_length=0.5e-3,
                rng=streams.stream(f"fuzz-poisson-{i}")))
        elif kind == "intermittent":
            scenarios.append(IntermittentSender(
                rng.randint(1, n),
                mean_reappearance_rounds=rng.randint(2, 6),
                rng=streams.stream(f"fuzz-intermittent-{i}")))
        else:
            scenarios.append(RandomSlotNoise(
                rng.choice((0.02, 0.08)),
                rng=streams.stream(f"fuzz-noise-{i}")))
    return scenarios


def _run_fuzz_case(case_seed, fast_path):
    n_nodes = FUZZ_NODES[case_seed % len(FUZZ_NODES)]
    config = uniform_config(n_nodes, penalty_threshold=3,
                            reward_threshold=50)
    registry = MetricsRegistry()
    dc = DiagnosedCluster(config, seed=case_seed, trace_level=2,
                          fast_path=fast_path, metrics=registry)
    for scenario in _fuzz_scenarios(dc, case_seed):
        dc.cluster.add_scenario(scenario)
    dc.run_rounds(FUZZ_ROUNDS)
    return (json.dumps(dc.trace.to_dicts(), sort_keys=True),
            registry.snapshot())


def _semantic(snapshot):
    """A snapshot with all strategy counters dropped."""
    return {**snapshot,
            "counters": {name: value
                         for name, value in snapshot["counters"].items()
                         if name not in STRATEGY_COUNTERS}}


def _fuzz_worker(case_seed):
    """Picklable pool worker: one fast-path metered fuzz case."""
    return _run_fuzz_case(case_seed, True)


VARIANT_KINDS = ("base", "membership", "lowlatency")


def _run_variant_case(case_seed, kind, bitset, fast_path=True):
    """One metered fuzz case on a chosen cluster kind and data plane."""
    n_nodes = FUZZ_NODES[case_seed % len(FUZZ_NODES)]
    config = uniform_config(n_nodes, penalty_threshold=3,
                            reward_threshold=50)
    registry = MetricsRegistry()
    if kind == "base":
        dc = DiagnosedCluster(config, seed=case_seed, trace_level=2,
                              fast_path=fast_path, metrics=registry,
                              bitset=bitset)
    elif kind == "membership":
        dc = MembershipCluster(config, seed=case_seed, trace_level=2,
                               fast_path=fast_path, metrics=registry,
                               bitset=bitset)
    else:
        dc = LowLatencyCluster(config, seed=case_seed, trace_level=2,
                               fast_path=fast_path, metrics=registry,
                               membership=True, bitset=bitset)
    for scenario in _fuzz_scenarios(dc, case_seed):
        dc.cluster.add_scenario(scenario)
    dc.run_rounds(FUZZ_ROUNDS)
    return (json.dumps(dc.trace.to_dicts(), sort_keys=True),
            registry.snapshot())


def _variant_worker(case_seed, kind):
    """Picklable pool worker: one bitset variant fuzz case."""
    return _run_variant_case(case_seed, kind, True)


@pytest.mark.parametrize("case_seed", range(FUZZ_CASES))
def test_fuzz_fast_slow_differential(case_seed):
    fast_trace, fast_snap = _run_fuzz_case(case_seed, True)
    slow_trace, slow_snap = _run_fuzz_case(case_seed, False)
    assert fast_trace == slow_trace
    assert _semantic(fast_snap) == _semantic(slow_snap)
    # The strategy counters must still partition the same slot total.
    fast_c, slow_c = fast_snap["counters"], slow_snap["counters"]
    assert fast_c["bus.slots_total"] == slow_c["bus.slots_total"]
    assert (fast_c.get("bus.slots_fast_path", 0)
            + fast_c.get("bus.slots_slow_path", 0)
            == slow_c.get("bus.slots_fast_path", 0)
            + slow_c.get("bus.slots_slow_path", 0))
    assert slow_c.get("bus.slots_fast_path", 0) == 0


def test_fuzz_jobs_invariant():
    """The first ten fuzz cases through the pool: jobs=1 == jobs=4."""
    seeds = list(range(10))
    serial = run_tasks([Task(_fuzz_worker, (s,)) for s in seeds], jobs=1)
    parallel = run_tasks([Task(_fuzz_worker, (s,)) for s in seeds], jobs=4)
    assert serial == parallel


# ---------------------------------------------------------------------------
# Differential fuzz: bitset vs tuple data plane, per cluster kind
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", VARIANT_KINDS)
@pytest.mark.parametrize("case_seed", range(0, FUZZ_CASES, 2))
def test_fuzz_bitset_tuple_differential(case_seed, kind):
    """bitset=True and bitset=False agree byte-for-byte on every kind."""
    bit_trace, bit_snap = _run_variant_case(case_seed, kind, True)
    tup_trace, tup_snap = _run_variant_case(case_seed, kind, False)
    assert bit_trace == tup_trace
    assert _semantic(bit_snap) == _semantic(tup_snap)
    # The tuple plane must not touch the bitset strategy counters.
    tup_c = tup_snap["counters"]
    assert tup_c.get("vote.cache_hit", 0) == 0
    assert tup_c.get("vote.popcount_votes", 0) == 0


@pytest.mark.parametrize("case_seed", (1, 6, 11))
def test_fuzz_bitset_fastpath_matrix(case_seed):
    """All four bitset × fast-path combinations agree semantically."""
    results = {
        (bitset, fast_path): _run_variant_case(case_seed, "base", bitset,
                                               fast_path=fast_path)
        for bitset in (True, False) for fast_path in (True, False)}
    reference_trace, reference_snap = results[(True, True)]
    for combo, (trace, snap) in results.items():
        assert trace == reference_trace, combo
        assert _semantic(snap) == _semantic(reference_snap), combo


def test_fuzz_variants_jobs_invariant():
    """Variant fuzz cases through the pool: jobs=1 == jobs=4."""
    tasks = [Task(_variant_worker, (s, kind))
             for s in (0, 1, 2) for kind in VARIANT_KINDS]
    assert (run_tasks(tasks, jobs=1) == run_tasks(tasks, jobs=4))
