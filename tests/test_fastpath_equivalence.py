"""Fast-path vs slow-path bit-exactness.

The batched slot delivery fast path (``Bus.transmit_quiescent`` gated
by ``InjectionLayer.is_quiescent``) is an optimisation, not a semantic
variant: for every seed and every scenario mix the cluster must produce
byte-identical traces and identical health vectors whether the fast
path is enabled or forced off.  These tests pin that contract on
fault-free runs and on runs with deterministic and stochastic
injections (the stochastic ones also exercise the "same RNG draws"
requirement — a single skipped or extra draw would desynchronise every
subsequent verdict).
"""

import json

import pytest

from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster
from repro.faults.processes import (
    IntermittentSender,
    PoissonTransients,
    RandomSlotNoise,
)
from repro.faults.scenarios import SenderFault, SlotBurst

FAULT_ROUND = 5
ROUNDS = 20


def _no_scenarios(dc):
    return ()


def _slot_burst(dc):
    return (SlotBurst(dc.cluster.timebase, FAULT_ROUND, 2, 1),)


def _long_burst(dc):
    return (SlotBurst(dc.cluster.timebase, FAULT_ROUND, 1,
                      2 * dc.config.n_nodes),)


def _sender_fault(dc):
    return (SenderFault(1, kind="benign",
                        rounds=[FAULT_ROUND, FAULT_ROUND + 2]),)


def _stochastic_mix(dc):
    streams = dc.cluster.streams
    return (
        PoissonTransients(rate=200.0, burst_length=0.5e-3,
                          rng=streams.stream("transients")),
        IntermittentSender(2, mean_reappearance_rounds=4,
                           rng=streams.stream("intermittent")),
        RandomSlotNoise(0.05, rng=streams.stream("noise")),
    )


SCENARIO_BUILDERS = [
    _no_scenarios,
    _slot_burst,
    _long_burst,
    _sender_fault,
    _stochastic_mix,
]


def run_cluster(n_nodes, fast_path, builder, seed=0, trace_level=2):
    config = uniform_config(n_nodes, penalty_threshold=3,
                            reward_threshold=50)
    dc = DiagnosedCluster(config, seed=seed, trace_level=trace_level,
                          fast_path=fast_path)
    for scenario in builder(dc):
        dc.cluster.add_scenario(scenario)
    dc.run_rounds(ROUNDS)
    return dc


@pytest.mark.parametrize("n_nodes", [4, 8])
@pytest.mark.parametrize("builder", SCENARIO_BUILDERS,
                         ids=lambda b: b.__name__.lstrip("_"))
class TestFastSlowEquivalence:
    def test_traces_byte_identical(self, n_nodes, builder):
        fast = run_cluster(n_nodes, True, builder)
        slow = run_cluster(n_nodes, False, builder)
        fast_dicts = fast.trace.to_dicts()
        slow_dicts = slow.trace.to_dicts()
        assert fast_dicts == slow_dicts
        assert (json.dumps(fast_dicts, sort_keys=True) ==
                json.dumps(slow_dicts, sort_keys=True))

    def test_health_vectors_identical(self, n_nodes, builder):
        fast = run_cluster(n_nodes, True, builder)
        slow = run_cluster(n_nodes, False, builder)
        for node in range(1, n_nodes + 1):
            assert fast.health_vectors(node) == slow.health_vectors(node)
        assert (fast.consistent_health_history() ==
                slow.consistent_health_history())


@pytest.mark.parametrize("n_nodes", [4, 8])
def test_traceless_runs_match_rounds_and_counters(n_nodes):
    """At trace_level=0 the paths still agree on all protocol state."""
    fast = run_cluster(n_nodes, True, _stochastic_mix, trace_level=0)
    slow = run_cluster(n_nodes, False, _stochastic_mix, trace_level=0)
    assert fast.cluster.rounds_completed == slow.cluster.rounds_completed
    for node in range(1, n_nodes + 1):
        assert (str(fast.service(node).pr.snapshot()) ==
                str(slow.service(node).pr.snapshot()))
        assert fast.service(node).active == slow.service(node).active


def test_fast_path_skips_injection_machinery():
    """Sanity: quiescent slots never reach ``InjectionLayer.apply``."""
    calls = {True: 0, False: 0}

    def counting(dc, key):
        layer = dc.cluster.bus.injection
        original = layer.apply

        def apply(ctx):
            calls[key] += 1
            return original(ctx)

        layer.apply = apply

    config = uniform_config(4, penalty_threshold=3, reward_threshold=50)
    for fast_path in (True, False):
        dc = DiagnosedCluster(config, seed=0, fast_path=fast_path)
        counting(dc, fast_path)
        dc.run_rounds(ROUNDS)
    assert calls[True] == 0
    assert calls[False] > 0
