"""The service layer below HTTP: parsing, event logs, the job manager.

The acceptance contract mirrors the store's: the job id is a pure
content address (equal submissions collide by construction), an event
log replays byte-identically for any subscriber arriving at any time,
and the manager never executes the same work twice — concurrent
identical submissions attach to one run, warm-store submissions run
nothing at all, and a full queue pushes back instead of piling up.
"""

import json
import threading
import time

import pytest

import repro.service.jobs as jobs_module
from repro.campaign import result_document, run_campaign
from repro.obs.export import render_json
from repro.service import (
    BadRequestError,
    JobEventLog,
    JobManager,
    QueueFullError,
    ServiceClosedError,
    parse_job_request,
    sse_frame,
)
from repro.spec import ClusterSpec, ProtocolSpec, RunSpec
from repro.store import ResultStore


def _spec(seed=0, n_rounds=8):
    return RunSpec(
        protocol=ProtocolSpec(n_nodes=4, penalty_threshold=3,
                              reward_threshold=50,
                              criticalities=(1, 1, 1, 1)),
        cluster=ClusterSpec(seed=seed),
        n_rounds=n_rounds,
    )


def _manager(tmp_path, **kwargs):
    kwargs.setdefault("store_root", str(tmp_path / "store"))
    return JobManager(**kwargs)


def _wait(job, timeout=30.0):
    deadline = time.monotonic() + timeout
    while job.state not in ("done", "failed"):
        assert time.monotonic() < deadline, f"job stuck in {job.state}"
        time.sleep(0.01)
    return job


class TestParseJobRequest:
    def test_equivalent_shapes_share_one_job_id(self):
        spec_dict = _spec().to_dict()
        shapes = [
            spec_dict,                    # bare RunSpec
            {"spec": spec_dict},          # wrapped single
            {"specs": [spec_dict]},       # campaign wrapper
            [spec_dict],                  # bare array
        ]
        ids = {parse_job_request(shape).job_id for shape in shapes}
        assert len(ids) == 1

    def test_job_id_is_a_content_address(self):
        a = parse_job_request(_spec(seed=1).to_dict())
        b = parse_job_request(_spec(seed=2).to_dict())
        assert a.job_id != b.job_id
        again = parse_job_request(_spec(seed=1).to_dict())
        assert again.job_id == a.job_id

    def test_backend_override_keeps_the_job_id(self):
        # full_digest() excludes the backend (both engines compute the
        # same observables), so a vectorized request dedups onto a
        # stored event-engine result — same contract as the store.
        plain = parse_job_request(_spec().to_dict())
        overridden = parse_job_request(
            dict(_spec().to_dict(), backend="event"))
        assert overridden.job_id == plain.job_id
        assert overridden.request["backend"] == "event"

    def test_named_campaign_matches_build_campaign(self):
        from repro.campaign import build_campaign
        from repro.store import store_key

        request = parse_job_request(
            {"campaign": "validate", "reps": 1, "nodes": 4})
        definition = build_campaign("validate", reps=1, nodes=4)
        assert request.definition.name == "validate"
        assert request.keys == [store_key(spec) for _label, spec
                                in definition.labeled_specs]

    @pytest.mark.parametrize("body,needle", [
        ({"campaign": "nope"}, "unknown campaign"),
        ({"campaign": "validate", "reps": "three"}, "must be an integer"),
        ({"campaign": "validate", "reps": True}, "must be an integer"),
        ({"campaign": "validate", "bogus": 1}, "unknown field"),
        ({"specs": "not-a-list"}, "must be an array"),
        ([], "no specs"),
        (["not-an-object"], "must be a JSON object"),
        ("just a string", "JSON object or an array"),
        ({"spec": {"schema": "bad"}}, "spec #0"),
        (dict(_spec().to_dict(), backend="quantum"), "unknown backend"),
    ])
    def test_bad_requests_are_client_errors(self, body, needle):
        with pytest.raises(BadRequestError, match=needle):
            parse_job_request(body)


class TestJobEventLog:
    def test_replay_is_the_log(self):
        log = JobEventLog()
        for i in range(5):
            log.append("tick", {"i": i})
        log.close()
        assert [e[0] for e in log.events()] == [0, 1, 2, 3, 4]
        assert log.events(after=2) == log.events()[3:]
        assert len(log) == 5

    def test_subscribers_see_identical_byte_sequences(self):
        import asyncio

        log = JobEventLog()

        async def drive():
            # An early subscriber tails the log while a worker thread
            # appends; a late subscriber replays after close.  Both
            # must produce identical SSE bytes.
            async def collect():
                frames = b""
                async for seq, kind, data in log.subscribe():
                    frames += sse_frame(seq, kind, data)
                return frames

            early = asyncio.ensure_future(collect())
            await asyncio.sleep(0)

            def producer():
                for i in range(20):
                    log.append("tick", {"i": i})
                log.close()

            thread = threading.Thread(target=producer)
            thread.start()
            early_bytes = await early
            thread.join()
            late_bytes = await collect()
            return early_bytes, late_bytes

        early_bytes, late_bytes = asyncio.run(drive())
        assert early_bytes == late_bytes
        assert early_bytes.count(b"\n\n") == 20

    def test_resume_from_last_event_id(self):
        import asyncio

        log = JobEventLog()
        for i in range(4):
            log.append("tick", {"i": i})
        log.close()

        async def tail(after):
            return [seq async for seq, _k, _d in log.subscribe(after)]

        assert asyncio.run(tail(1)) == [2, 3]
        assert asyncio.run(tail(99)) == []

    def test_overflow_drops_oldest(self):
        log = JobEventLog(max_events=3)
        for i in range(10):
            log.append("tick", {"i": i})
        assert [e[0] for e in log.events()] == [7, 8, 9]
        assert len(log) == 10  # sequence numbers keep counting

    def test_append_after_close_is_an_error(self):
        log = JobEventLog()
        log.close()
        with pytest.raises(RuntimeError):
            log.append("tick", {})

    def test_sse_frame_shape(self):
        frame = sse_frame(7, "task", {"b": 2, "a": 1})
        assert frame == b'id: 7\nevent: task\ndata: {"a":1,"b":2}\n\n'


class TestJobManager:
    def test_cold_submission_runs_and_documents(self, tmp_path):
        manager = _manager(tmp_path)
        try:
            outcome = manager.submit(parse_job_request(_spec().to_dict()))
            assert outcome.outcome == "created"
            job = _wait(outcome.job)
            assert job.state == "done"
            assert (job.hits, job.misses) == (0, 1)
            assert job.document["schema"].startswith(
                "repro-campaign-result/")
            assert job.log.closed
            kinds = [kind for _s, kind, _d in job.log.events()]
            assert kinds[0] == "state" and kinds[-1] == "done"
        finally:
            manager.shutdown()

    def test_document_bytes_match_campaign_run(self, tmp_path):
        # The acceptance bar: the service's document is byte-identical
        # to what `repro-diag campaign run --out` writes for the same
        # submission (documents are cache-state independent).
        request = parse_job_request({"specs": [_spec().to_dict(),
                                               _spec(seed=1).to_dict()]})
        with ResultStore(str(tmp_path / "cli-store")) as store:
            result = run_campaign(request.definition.labeled_specs,
                                  name=request.definition.name,
                                  store=store)
            expected = render_json(
                result_document(request.definition, result))
        manager = _manager(tmp_path)
        try:
            job = _wait(manager.submit(request).job)
            assert render_json(job.document) == expected
        finally:
            manager.shutdown()

    def test_concurrent_identical_submissions_execute_once(self, tmp_path,
                                                           monkeypatch):
        gate = threading.Event()
        real = jobs_module.run_campaign
        executions = []

        def gated(*args, **kwargs):
            executions.append(threading.get_ident())
            assert gate.wait(timeout=30)
            return real(*args, **kwargs)

        monkeypatch.setattr(jobs_module, "run_campaign", gated)
        manager = _manager(tmp_path, workers=4)
        try:
            request = parse_job_request(_spec().to_dict())
            outcomes = []

            def post():
                outcomes.append(manager.submit(request))

            threads = [threading.Thread(target=post) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            gate.set()
            jobs = {o.job.job_id for o in outcomes}
            assert len(jobs) == 1
            assert sorted(o.outcome for o in outcomes) == \
                ["attached", "attached", "attached", "created"]
            job = _wait(outcomes[0].job)
            assert job.state == "done"
            # Exactly one simulation execution, by every counter.
            assert len(executions) == 1
            snapshot = manager.metrics_snapshot()
            counters = snapshot["service"]["counters"]
            assert counters["service.submitted"] == 4
            assert counters["service.created"] == 1
            assert counters["service.attached"] == 3
            assert counters["service.executed_tasks"] == 1
        finally:
            gate.set()
            manager.shutdown()

    def test_attach_after_completion_is_cached(self, tmp_path):
        manager = _manager(tmp_path)
        try:
            request = parse_job_request(_spec().to_dict())
            _wait(manager.submit(request).job)
            again = manager.submit(request)
            assert again.outcome == "attached"
            assert again.cached  # no second execution
        finally:
            manager.shutdown()

    def test_warm_store_submission_executes_nothing(self, tmp_path):
        request = parse_job_request(_spec().to_dict())
        first = _manager(tmp_path)
        try:
            _wait(first.submit(request).job)
        finally:
            first.shutdown()
        # A fresh manager over the same store: the POST is answered
        # inline from the index, done before submit() returns.
        second = _manager(tmp_path)
        try:
            outcome = second.submit(request)
            assert outcome.outcome == "cached"
            assert outcome.job.state == "done"
            assert outcome.job.cached
            assert (outcome.job.hits, outcome.job.misses) == (1, 0)
            counters = second.metrics_snapshot()["service"]["counters"]
            assert counters["service.cached"] == 1
            assert counters.get("service.executed_tasks", 0) == 0
        finally:
            second.shutdown()

    def test_full_queue_rejects_with_429_payload(self, tmp_path,
                                                 monkeypatch):
        gate = threading.Event()
        real = jobs_module.run_campaign

        def gated(*args, **kwargs):
            assert gate.wait(timeout=30)
            return real(*args, **kwargs)

        monkeypatch.setattr(jobs_module, "run_campaign", gated)
        manager = _manager(tmp_path, workers=1, queue_limit=1)
        try:
            first = manager.submit(parse_job_request(_spec().to_dict()))
            with pytest.raises(QueueFullError) as excinfo:
                manager.submit(parse_job_request(_spec(seed=1).to_dict()))
            assert excinfo.value.limit == 1
            counters = manager.metrics_snapshot()["service"]["counters"]
            assert counters["service.rejected"] == 1
            # Attaching to the in-flight job is NOT back-pressure...
            attach = manager.submit(parse_job_request(_spec().to_dict()))
            assert attach.outcome == "attached"
            gate.set()
            _wait(first.job)
            # ...and capacity frees once the job retires.
            ok = manager.submit(parse_job_request(_spec(seed=1).to_dict()))
            assert ok.outcome == "created"
            _wait(ok.job)
        finally:
            gate.set()
            manager.shutdown()

    def test_failed_tasks_surface_structured_errors(self, tmp_path):
        bad = _spec().with_updates(reducer="no.such.reducer")
        manager = _manager(tmp_path, retries=0)
        try:
            job = _wait(manager.submit(
                parse_job_request(bad.to_dict())).job)
            assert job.state == "failed"
            (error,) = job.errors
            assert error["type"] and error["message"]
            assert error["timed_out"] is False
            kinds = [kind for _s, kind, _d in job.log.events()]
            assert "task_failed" in kinds and kinds[-1] == "failed"
        finally:
            manager.shutdown()

    def test_shutdown_drains_and_leaves_store_resumable(self, tmp_path,
                                                        monkeypatch):
        gate = threading.Event()
        real = jobs_module.run_campaign

        def gated(*args, **kwargs):
            assert gate.wait(timeout=30)
            return real(*args, **kwargs)

        monkeypatch.setattr(jobs_module, "run_campaign", gated)
        manager = _manager(tmp_path, workers=1)
        request = parse_job_request(_spec().to_dict())
        outcome = manager.submit(request)
        releaser = threading.Timer(0.1, gate.set)
        releaser.start()
        try:
            manager.shutdown()  # drains: returns only once the job ran
        finally:
            releaser.cancel()
            gate.set()
        assert outcome.job.state == "done"
        with pytest.raises(ServiceClosedError):
            manager.submit(request)
        # The drained job's commits are durable: a new manager answers
        # the same submission warm, executing nothing.
        monkeypatch.setattr(jobs_module, "run_campaign", real)
        second = _manager(tmp_path)
        try:
            assert second.submit(request).outcome == "cached"
        finally:
            second.shutdown()

    def test_shutdown_without_drain_fails_queued_jobs(self, tmp_path,
                                                      monkeypatch):
        gate = threading.Event()
        real = jobs_module.run_campaign

        def gated(*args, **kwargs):
            assert gate.wait(timeout=30)
            return real(*args, **kwargs)

        monkeypatch.setattr(jobs_module, "run_campaign", gated)
        manager = _manager(tmp_path, workers=1, queue_limit=4)
        running = manager.submit(parse_job_request(_spec().to_dict()))
        queued = manager.submit(parse_job_request(_spec(seed=1).to_dict()))
        releaser = threading.Timer(0.1, gate.set)
        releaser.start()
        try:
            manager.shutdown(drain=False)
        finally:
            releaser.cancel()
            gate.set()
        assert running.job.state == "done"
        assert queued.job.state == "failed"
        assert queued.job.errors[0]["type"] == "ServiceShutdown"
        assert queued.job.log.closed
