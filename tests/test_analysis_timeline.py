"""Tests for the ASCII timeline renderer."""

from repro.analysis.timeline import isolation_marks, render_timeline
from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster
from repro.faults.scenarios import SenderFault, SlotBurst, crash
from repro.sim.trace import Trace


def run_cluster(scenario=None, config=None, rounds=14):
    config = config or uniform_config(4, penalty_threshold=10 ** 6,
                                      reward_threshold=10 ** 6)
    dc = DiagnosedCluster(config, seed=0)
    if scenario is not None:
        dc.cluster.add_scenario(scenario)
    dc.run_rounds(rounds)
    return dc


def test_empty_trace():
    assert render_timeline(Trace(), 4) == "(empty trace)"


def test_clean_round_renders_dots():
    dc = run_cluster()
    text = render_timeline(dc.trace, 4, first_round=5, last_round=5)
    assert "    5 | . . . ." in text


def test_benign_fault_marked():
    dc = run_cluster(SlotBurst(None or run_cluster().cluster.timebase, 6, 2, 1))
    text = render_timeline(dc.trace, 4, first_round=6, last_round=9)
    assert "    6 | . B . ." in text
    assert "fault: noise @ slot 2" in text
    assert "cons_hv 1011 (diagnoses 6)" in text


def test_asymmetric_and_silent_markers():
    dc = run_cluster(SenderFault(3, kind="asymmetric", rounds=[6],
                                 detectable_by=[1]))
    text = render_timeline(dc.trace, 4, first_round=6, last_round=6,
                           observer=None)
    assert "    6 | . . A ." in text

    dc2 = DiagnosedCluster(uniform_config(4, penalty_threshold=10 ** 6,
                                          reward_threshold=10 ** 6), seed=0)
    dc2.cluster.node(2).controller.disable_transmission()
    dc2.run_rounds(2)
    text2 = render_timeline(dc2.trace, 4, first_round=0, last_round=1)
    assert "    0 | . - . ." in text2


def test_isolation_annotated_and_marks():
    config = uniform_config(4, penalty_threshold=2, reward_threshold=10)
    dc = run_cluster(crash(2, from_round=6), config=config, rounds=16)
    text = render_timeline(dc.trace, 4)
    assert "isolate node 2" in text
    marks = isolation_marks(dc.trace)
    assert marks == [(11, 2)]


def test_observer_filtering():
    config = uniform_config(4, penalty_threshold=2, reward_threshold=10)
    dc = run_cluster(crash(2, from_round=6), config=config, rounds=16)
    # observer=None aggregates all nodes' identical decisions into one
    # annotation line (deduplicated).
    text = render_timeline(dc.trace, 4, observer=None)
    assert text.count("isolate node 2") == 1
