"""Tests for trace-derived metrics."""

import pytest

from repro.analysis.metrics import (
    InsufficientTraceError,
    availability_seconds,
    completeness_holds,
    consistency_violations,
    correctness_holds,
    detection_latency_rounds,
    first_isolation_time,
    diagnoses_for_round,
    health_vectors_by_node,
    isolation_round,
    view_changes,
)
from repro.sim.trace import Trace


def trace_with_vectors():
    trace = Trace()
    for node in (1, 2, 3):
        trace.record(0.1 * node, "cons_hv", node=node, round_index=9,
                     diagnosed_round=6, cons_hv=(1, 0, 1, 1))
        trace.record(0.2 * node, "cons_hv", node=node, round_index=10,
                     diagnosed_round=7, cons_hv=(1, 1, 1, 1))
    return trace


class TestHealthVectors:
    def test_grouping(self):
        by_node = health_vectors_by_node(trace_with_vectors())
        assert by_node[1] == {6: (1, 0, 1, 1), 7: (1, 1, 1, 1)}
        assert set(by_node) == {1, 2, 3}

    def test_consistency_clean(self):
        assert consistency_violations(trace_with_vectors(), [1, 2, 3]) == []

    def test_consistency_violation_detected(self):
        trace = trace_with_vectors()
        trace.record(0.9, "cons_hv", node=4, round_index=9,
                     diagnosed_round=6, cons_hv=(1, 1, 1, 1))
        violations = consistency_violations(trace, [1, 2, 3, 4])
        assert len(violations) == 1
        assert violations[0][0] == 6

    def test_violations_ignore_non_obedient(self):
        trace = trace_with_vectors()
        trace.record(0.9, "cons_hv", node=4, round_index=9,
                     diagnosed_round=6, cons_hv=(0, 0, 0, 0))
        assert consistency_violations(trace, [1, 2, 3]) == []


class TestOracles:
    def test_completeness(self):
        trace = trace_with_vectors()
        assert completeness_holds(trace, 6, 2, [1, 2, 3])
        assert not completeness_holds(trace, 7, 2, [1, 2, 3])
        # No data for that round -> not complete.
        assert not completeness_holds(trace, 99, 2, [1, 2, 3])

    def test_correctness(self):
        trace = trace_with_vectors()
        assert correctness_holds(trace, 6, [1, 3, 4], [1, 2, 3])
        assert not correctness_holds(trace, 6, [2], [1, 2, 3])
        assert not correctness_holds(trace, 99, [1], [1, 2, 3])

    def test_detection_latency(self):
        trace = trace_with_vectors()
        assert detection_latency_rounds(trace, 6, 2) == 3
        assert detection_latency_rounds(trace, 7, 2) is None


class TestIsolationQueries:
    def make_trace(self):
        trace = Trace()
        trace.record(1.0, "isolation", node=1, round_index=400, isolated=2)
        trace.record(1.0, "isolation", node=3, round_index=400, isolated=2)
        trace.record(2.0, "isolation", node=1, round_index=800, isolated=4)
        return trace

    def test_first_isolation_time(self):
        trace = self.make_trace()
        assert first_isolation_time(trace, 2) == 1.0
        assert first_isolation_time(trace, 4) == 2.0
        assert first_isolation_time(trace, 1) is None

    def test_isolation_round(self):
        assert isolation_round(self.make_trace(), 2) == 400


class TestAvailability:
    def test_always_up(self):
        assert availability_seconds(Trace(), 1, horizon=10.0) == 10.0

    def test_down_from_isolation(self):
        trace = Trace()
        trace.record(4.0, "isolation", node=2, isolated=1)
        assert availability_seconds(trace, 1, horizon=10.0) == 4.0

    def test_reintegration_restores(self):
        trace = Trace()
        trace.record(2.0, "isolation", node=2, isolated=1)
        trace.record(5.0, "reintegration", node=2, reintegrated=1)
        assert availability_seconds(trace, 1, horizon=10.0) == \
            pytest.approx(2.0 + 5.0)

    def test_multiple_cycles(self):
        trace = Trace()
        trace.record(1.0, "isolation", node=2, isolated=1)
        trace.record(2.0, "reintegration", node=2, reintegrated=1)
        trace.record(3.0, "isolation", node=2, isolated=1)
        assert availability_seconds(trace, 1, horizon=4.0) == \
            pytest.approx(2.0)

    def test_duplicate_observers_do_not_double_count(self):
        trace = Trace()
        trace.record(1.0, "isolation", node=2, isolated=1)
        trace.record(1.0, "isolation", node=3, isolated=1)
        assert availability_seconds(trace, 1, horizon=2.0) == \
            pytest.approx(1.0)

    def test_events_beyond_horizon_ignored(self):
        trace = Trace()
        trace.record(15.0, "isolation", node=2, isolated=1)
        assert availability_seconds(trace, 1, horizon=10.0) == 10.0


class TestTraceLevelGuards:
    """Queries that need vectors the trace did not record must raise.

    The alternative — returning an empty mapping or ``None`` — reads as
    "no violations / not detected", which is exactly the wrong answer
    on a sparse trace.  See :class:`InsufficientTraceError`.
    """

    def run_cluster(self, trace_level):
        from repro.core.config import uniform_config
        from repro.core.service import DiagnosedCluster
        from repro.faults.scenarios import SlotBurst

        config = uniform_config(4, penalty_threshold=10 ** 6,
                                reward_threshold=10 ** 6)
        dc = DiagnosedCluster(config, seed=0, trace_level=trace_level)
        dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, 6, 2, 1))
        dc.run_rounds(14)
        return dc

    @pytest.mark.parametrize("level", [0, 1])
    def test_full_vector_queries_raise_below_level_2(self, level):
        dc = self.run_cluster(level)
        with pytest.raises(InsufficientTraceError, match="level >= 2"):
            health_vectors_by_node(dc.trace)
        with pytest.raises(InsufficientTraceError):
            consistency_violations(dc.trace, dc.obedient_node_ids())
        with pytest.raises(InsufficientTraceError):
            diagnoses_for_round(dc.trace, 6, dc.obedient_node_ids())
        # Oracles delegate to diagnoses_for_round and inherit the guard.
        with pytest.raises(InsufficientTraceError):
            completeness_holds(dc.trace, 6, 2, dc.obedient_node_ids())
        with pytest.raises(InsufficientTraceError):
            correctness_holds(dc.trace, 6, [1, 3, 4],
                              dc.obedient_node_ids())

    def test_detection_latency_needs_level_1(self):
        dc0 = self.run_cluster(0)
        with pytest.raises(InsufficientTraceError, match="level >= 1"):
            detection_latency_rounds(dc0.trace, 6, 2)
        # Level 1 records fault-containing vectors: the query works.
        dc1 = self.run_cluster(1)
        assert detection_latency_rounds(dc1.trace, 6, 2) is not None

    def test_level_2_trace_satisfies_every_guard(self):
        dc = self.run_cluster(2)
        obedient = dc.obedient_node_ids()
        assert health_vectors_by_node(dc.trace)
        assert consistency_violations(dc.trace, obedient) == []
        assert completeness_holds(dc.trace, 6, 2, obedient)
        assert detection_latency_rounds(dc.trace, 6, 2) is not None

    def test_decision_queries_never_guarded(self):
        # Decision categories (isolation, reintegration, view) are
        # recorded at every level, so these stay usable on level 0.
        dc = self.run_cluster(0)
        assert first_isolation_time(dc.trace, 1) is None
        assert isolation_round(dc.trace, 1) is None
        assert availability_seconds(dc.trace, 1, horizon=0.05) == 0.05
        assert view_changes(dc.trace) == []

    def test_error_message_points_at_obs_registry(self):
        dc = self.run_cluster(0)
        with pytest.raises(InsufficientTraceError, match="repro.obs"):
            health_vectors_by_node(dc.trace)

    def test_manual_trace_without_level_attribute_passes(self):
        # Duck-typed traces (no ``level``) are trusted as fully
        # recorded — the guard only fires on an explicit low level.
        class Bare:
            def select(self, category=None, node=None):
                return []

        assert health_vectors_by_node(Bare()) == {}
