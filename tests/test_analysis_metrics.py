"""Tests for trace-derived metrics."""

import pytest

from repro.analysis.metrics import (
    availability_seconds,
    completeness_holds,
    consistency_violations,
    correctness_holds,
    detection_latency_rounds,
    first_isolation_time,
    health_vectors_by_node,
    isolation_round,
)
from repro.sim.trace import Trace


def trace_with_vectors():
    trace = Trace()
    for node in (1, 2, 3):
        trace.record(0.1 * node, "cons_hv", node=node, round_index=9,
                     diagnosed_round=6, cons_hv=(1, 0, 1, 1))
        trace.record(0.2 * node, "cons_hv", node=node, round_index=10,
                     diagnosed_round=7, cons_hv=(1, 1, 1, 1))
    return trace


class TestHealthVectors:
    def test_grouping(self):
        by_node = health_vectors_by_node(trace_with_vectors())
        assert by_node[1] == {6: (1, 0, 1, 1), 7: (1, 1, 1, 1)}
        assert set(by_node) == {1, 2, 3}

    def test_consistency_clean(self):
        assert consistency_violations(trace_with_vectors(), [1, 2, 3]) == []

    def test_consistency_violation_detected(self):
        trace = trace_with_vectors()
        trace.record(0.9, "cons_hv", node=4, round_index=9,
                     diagnosed_round=6, cons_hv=(1, 1, 1, 1))
        violations = consistency_violations(trace, [1, 2, 3, 4])
        assert len(violations) == 1
        assert violations[0][0] == 6

    def test_violations_ignore_non_obedient(self):
        trace = trace_with_vectors()
        trace.record(0.9, "cons_hv", node=4, round_index=9,
                     diagnosed_round=6, cons_hv=(0, 0, 0, 0))
        assert consistency_violations(trace, [1, 2, 3]) == []


class TestOracles:
    def test_completeness(self):
        trace = trace_with_vectors()
        assert completeness_holds(trace, 6, 2, [1, 2, 3])
        assert not completeness_holds(trace, 7, 2, [1, 2, 3])
        # No data for that round -> not complete.
        assert not completeness_holds(trace, 99, 2, [1, 2, 3])

    def test_correctness(self):
        trace = trace_with_vectors()
        assert correctness_holds(trace, 6, [1, 3, 4], [1, 2, 3])
        assert not correctness_holds(trace, 6, [2], [1, 2, 3])
        assert not correctness_holds(trace, 99, [1], [1, 2, 3])

    def test_detection_latency(self):
        trace = trace_with_vectors()
        assert detection_latency_rounds(trace, 6, 2) == 3
        assert detection_latency_rounds(trace, 7, 2) is None


class TestIsolationQueries:
    def make_trace(self):
        trace = Trace()
        trace.record(1.0, "isolation", node=1, round_index=400, isolated=2)
        trace.record(1.0, "isolation", node=3, round_index=400, isolated=2)
        trace.record(2.0, "isolation", node=1, round_index=800, isolated=4)
        return trace

    def test_first_isolation_time(self):
        trace = self.make_trace()
        assert first_isolation_time(trace, 2) == 1.0
        assert first_isolation_time(trace, 4) == 2.0
        assert first_isolation_time(trace, 1) is None

    def test_isolation_round(self):
        assert isolation_round(self.make_trace(), 2) == 400


class TestAvailability:
    def test_always_up(self):
        assert availability_seconds(Trace(), 1, horizon=10.0) == 10.0

    def test_down_from_isolation(self):
        trace = Trace()
        trace.record(4.0, "isolation", node=2, isolated=1)
        assert availability_seconds(trace, 1, horizon=10.0) == 4.0

    def test_reintegration_restores(self):
        trace = Trace()
        trace.record(2.0, "isolation", node=2, isolated=1)
        trace.record(5.0, "reintegration", node=2, reintegrated=1)
        assert availability_seconds(trace, 1, horizon=10.0) == \
            pytest.approx(2.0 + 5.0)

    def test_multiple_cycles(self):
        trace = Trace()
        trace.record(1.0, "isolation", node=2, isolated=1)
        trace.record(2.0, "reintegration", node=2, reintegrated=1)
        trace.record(3.0, "isolation", node=2, isolated=1)
        assert availability_seconds(trace, 1, horizon=4.0) == \
            pytest.approx(2.0)

    def test_duplicate_observers_do_not_double_count(self):
        trace = Trace()
        trace.record(1.0, "isolation", node=2, isolated=1)
        trace.record(1.0, "isolation", node=3, isolated=1)
        assert availability_seconds(trace, 1, horizon=2.0) == \
            pytest.approx(1.0)

    def test_events_beyond_horizon_ignored(self):
        trace = Trace()
        trace.record(15.0, "isolation", node=2, isolated=1)
        assert availability_seconds(trace, 1, horizon=10.0) == 10.0
