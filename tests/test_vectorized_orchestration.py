"""Vectorized backend through the orchestration layers.

Three contracts beyond kernel-level equivalence (which
``test_backend_equivalence_fuzz.py`` pins):

* **Cross-backend store dedupe** — ``backend`` names an execution
  strategy, not physics, so it stays out of the content address: a
  result store warmed by an event-backend campaign satisfies the same
  physics requested as ``backend="vectorized"`` with 100% hits, and
  vice versa.
* **Replicate batching** — seed-shifted vectorized specs that miss the
  cache dispatch as ONE kernel batch per group (``campaign.batches``)
  while producing exactly the per-task event-backend results.
* **Clean degradation** — requesting the vectorized backend where
  numpy is missing exits the CLI with status 2 and an actionable
  message, before any dispatch.
"""

import json
from dataclasses import replace

import pytest

import repro.vec
from repro.campaign import run_campaign
from repro.cli import main
from repro.obs import MetricsRegistry
from repro.runner.sweep import monte_carlo_specs, run_monte_carlo_sweep
from repro.spec import ClusterSpec, ProtocolSpec, RunSpec, ScenarioSpec
from repro.store import ResultStore
from repro.vec import NUMPY_AVAILABLE

needs_numpy = pytest.mark.skipif(not NUMPY_AVAILABLE,
                                 reason="numpy not installed")


def _spec(seed=0, backend="event"):
    return RunSpec(
        protocol=ProtocolSpec(n_nodes=4, penalty_threshold=2,
                              reward_threshold=50,
                              criticalities=(1, 1, 1, 1)),
        cluster=ClusterSpec(seed=seed),
        scenarios=(ScenarioSpec("SenderFault",
                                {"sender": 2, "kind": "benign",
                                 "rounds": [2, 3]}),),
        n_rounds=8,
        backend=backend,
    )


def _labeled(specs):
    return [(f"replicate-{i}", s) for i, s in enumerate(specs)]


def test_backend_stays_out_of_content_address():
    event, vec = _spec(), _spec(backend="vectorized")
    assert event.digest() == vec.digest()
    assert event.full_digest() == vec.full_digest()
    # ...but round-trips through serialization all the same.
    assert RunSpec.from_dict(vec.to_dict()).backend == "vectorized"
    assert "backend" not in event.to_dict()


@needs_numpy
class TestCrossBackendDedupe:
    def test_event_warmed_store_serves_vectorized_requests(self, tmp_path):
        event_specs = _labeled(monte_carlo_specs(_spec(), 3))
        vec_specs = _labeled(monte_carlo_specs(_spec(backend="vectorized"),
                                               3))
        with ResultStore(str(tmp_path / "store")) as store:
            cold = run_campaign(event_specs, store=store)
            warm = run_campaign(vec_specs, store=store)
        assert (cold.hits, cold.misses) == (0, 3)
        assert (warm.hits, warm.misses) == (3, 0)
        assert warm.results == cold.results

    def test_vectorized_warmed_store_serves_event_requests(self, tmp_path):
        vec_specs = _labeled(monte_carlo_specs(_spec(backend="vectorized"),
                                               3))
        event_specs = _labeled(monte_carlo_specs(_spec(), 3))
        with ResultStore(str(tmp_path / "store")) as store:
            cold = run_campaign(vec_specs, store=store)
            warm = run_campaign(event_specs, store=store)
        assert (cold.hits, cold.misses) == (0, 3)
        assert (warm.hits, warm.misses) == (3, 0)
        assert warm.results == cold.results


@needs_numpy
class TestReplicateBatching:
    def test_replicate_group_dispatches_as_one_batch(self):
        metrics = MetricsRegistry()
        specs = _labeled(monte_carlo_specs(_spec(backend="vectorized"), 4))
        result = run_campaign(specs, metrics=metrics)
        counters = metrics.snapshot()["counters"]
        assert counters["campaign.batches"] == 1
        assert counters["campaign.dispatched"] == 4
        reference = run_campaign(_labeled(monte_carlo_specs(_spec(), 4)))
        assert result.results == reference.results

    def test_event_specs_never_batch(self):
        metrics = MetricsRegistry()
        run_campaign(_labeled(monte_carlo_specs(_spec(), 3)),
                     metrics=metrics)
        assert "campaign.batches" not in metrics.snapshot()["counters"]

    def test_mixed_physics_groups_independently(self):
        # Two distinct physics x 2 replicates: two batches, no
        # cross-contamination of results.
        metrics = MetricsRegistry()
        base = _spec(backend="vectorized")
        other = replace(base, n_rounds=12)
        specs = (_labeled(monte_carlo_specs(base, 2))
                 + [(f"alt-{i}", s)
                    for i, s in enumerate(monte_carlo_specs(other, 2))])
        result = run_campaign(specs, metrics=metrics)
        assert metrics.snapshot()["counters"]["campaign.batches"] == 2
        rounds = [r["rounds"] for r in result.results]
        assert rounds == [8, 8, 12, 12]

    def test_store_bytes_identical_across_dispatch_paths(self, tmp_path):
        # A batched replicate group fills the store with entries a
        # later per-task run replays verbatim (100% hits, equal
        # results) — the batch writes exactly what singles would.
        specs = _labeled(monte_carlo_specs(_spec(backend="vectorized"), 3))
        with ResultStore(str(tmp_path / "store")) as store:
            cold = run_campaign(specs, store=store)
            warm = run_campaign(specs, store=store)
        assert (cold.hits, cold.misses) == (0, 3)
        assert (warm.hits, warm.misses) == (3, 0)
        assert warm.results == cold.results
        assert warm.merged_snapshot() == cold.merged_snapshot()


@needs_numpy
class TestMonteCarloSweep:
    def test_seed_shifted_replicates(self):
        specs = monte_carlo_specs(_spec(seed=7), 3)
        assert [s.cluster.seed for s in specs] == [7, 8, 9]

    def test_backends_agree_through_the_sweep(self):
        vec = run_monte_carlo_sweep(_spec(backend="vectorized"), 4)
        event = run_monte_carlo_sweep(_spec(), 4)
        assert vec == event
        assert len(vec) == 4

    def test_sweep_replays_from_store(self, tmp_path):
        spec = _spec(backend="vectorized")
        with ResultStore(str(tmp_path / "store")) as store:
            first = run_monte_carlo_sweep(spec, 3, store=store)
            second = run_monte_carlo_sweep(spec, 3, store=store)
        assert first == second


class TestBackendUnavailable:
    def _break_numpy(self, monkeypatch):
        monkeypatch.setattr(repro.vec, "_NUMPY_ERROR",
                            ImportError("No module named 'numpy'"))

    def _spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_spec().to_dict()))
        return str(path)

    def test_require_numpy_raises_actionable_error(self, monkeypatch):
        self._break_numpy(monkeypatch)
        with pytest.raises(repro.vec.BackendUnavailableError,
                           match="requires numpy"):
            repro.vec.require_numpy()

    def test_run_cli_exits_2_with_message(self, monkeypatch, tmp_path,
                                          capsys):
        self._break_numpy(monkeypatch)
        path = self._spec_file(tmp_path)
        assert main(["run", path, "--backend", "vectorized"]) == 2
        err = capsys.readouterr().err
        assert "requires numpy" in err and "backend='event'" in err

    def test_campaign_cli_exits_2_with_message(self, monkeypatch, tmp_path,
                                               capsys):
        self._break_numpy(monkeypatch)
        path = self._spec_file(tmp_path)
        assert main(["campaign", "run", path, "--no-store",
                     "--backend", "vectorized"]) == 2
        assert "requires numpy" in capsys.readouterr().err

    def test_event_backend_unaffected(self, monkeypatch, tmp_path, capsys):
        self._break_numpy(monkeypatch)
        path = self._spec_file(tmp_path)
        assert main(["run", path, "--backend", "event"]) == 0


@needs_numpy
def test_run_cli_backends_print_identical_results(tmp_path, capsys):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps([_spec(seed=s).to_dict() for s in (0, 1)]))
    assert main(["run", str(path), "--backend", "event"]) == 0
    event_out = capsys.readouterr().out
    assert main(["run", str(path), "--backend", "vectorized"]) == 0
    assert capsys.readouterr().out == event_out


@needs_numpy
def test_run_cli_unsupported_spec_exits_2(tmp_path, capsys):
    bad = _spec().to_dict()
    bad["cluster"]["n_channels"] = 2
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(bad))
    assert main(["run", str(path), "--backend", "vectorized"]) == 2
    assert "single-channel" in capsys.readouterr().err
