"""Coverage for callbacks, mixed driving modes and smaller behaviours."""

import pytest

from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster, MembershipCluster
from repro.faults.scenarios import SenderFault, crash
from repro.sim.engine import Engine
from repro.sim.events import EventPriority


def permissive():
    return uniform_config(4, penalty_threshold=10 ** 6,
                          reward_threshold=10 ** 6)


class TestCallbacks:
    def test_on_isolation_callback_fired_per_observer(self):
        config = uniform_config(4, penalty_threshold=2, reward_threshold=10)
        calls = []
        dc = DiagnosedCluster(config, seed=0)
        for node_id, service in dc.services.items():
            service.on_isolation = (
                lambda observer, isolated, k: calls.append(
                    (observer, isolated, k)))
        dc.cluster.add_scenario(crash(3, from_round=6))
        dc.run_rounds(16)
        assert len(calls) == 4
        assert {c[1] for c in calls} == {3}
        assert len({c[2] for c in calls}) == 1  # same round everywhere

    def test_on_view_change_callback(self):
        from repro.core.membership import MembershipService
        calls = []

        class Recorder(MembershipService):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, on_view_change=(
                    lambda node, k, view: calls.append((node, k,
                                                        tuple(sorted(view))))),
                    **kwargs)

        mc = MembershipCluster(permissive(), seed=0, service_cls=Recorder)
        mc.cluster.add_scenario(crash(2, from_round=6))
        mc.run_rounds(16)
        assert calls
        assert all(view == (1, 3, 4) for _n, _k, view in calls)


class TestMixedDriving:
    def test_run_until_then_run_rounds(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.run_until(7.3e-3)  # mid round 2
        dc.run_rounds(5)
        assert dc.cluster.rounds_completed >= 7
        assert dc.consistent_health_history()

    def test_zero_rounds_noop(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.run_rounds(0)
        assert dc.cluster.now == pytest.approx(0.0, abs=1e-6)


class TestEngineExtras:
    def test_schedule_after_relative(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, EventPriority.JOB,
                        lambda: engine.schedule_after(
                            0.5, EventPriority.JOB,
                            lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [1.5]


class TestServiceGuards:
    def test_byzantine_flag_sets_notes(self):
        dc = DiagnosedCluster(permissive(), seed=0, byzantine_nodes=[2])
        assert dc.cluster.node(2).ground_truth.notes.get("byzantine")

    def test_active_nodes_tuple(self):
        config = uniform_config(4, penalty_threshold=2, reward_threshold=10)
        dc = DiagnosedCluster(config, seed=0)
        dc.cluster.add_scenario(crash(4, from_round=6))
        dc.run_rounds(16)
        assert dc.service(1).active_nodes() == (1, 2, 3)
        assert not dc.service(1).is_active(4)

    def test_counters_of_accessor(self):
        dc = DiagnosedCluster(permissive(), seed=0)
        dc.cluster.add_scenario(SenderFault(2, kind="benign", rounds=[6]))
        dc.run_rounds(12)
        penalty, reward = dc.service(3).counters_of(2)
        assert penalty == 1
        assert reward >= 1


class TestIsolatedVotesExcluded:
    def test_isolated_node_cannot_outvote(self):
        # After node 4 is isolated, its (ignored) frames contribute ε to
        # every vote; a later fault on node 2 is still detected 2:0.
        config = uniform_config(4, penalty_threshold=1, reward_threshold=10)
        dc = DiagnosedCluster(config, seed=0)
        dc.cluster.add_scenario(SenderFault(
            4, kind="benign", rounds=lambda k: 5 <= k <= 8))
        dc.cluster.add_scenario(SenderFault(2, kind="benign", rounds=[14]))
        dc.run_rounds(20)
        assert dc.service(1).active[3] == 0
        hv = dc.health_vectors(1)
        assert hv[14][1] == 0
        assert dc.consistent_health_history()
