"""Tests for the Fig. 3 analytics."""

import math

import pytest

from repro.analysis.reliability import (
    PAPER_R,
    PAPER_T,
    correlation_window_seconds,
    max_reward_for_transient_bound,
    min_reward_for_intermittent_bound,
    p_correlate_intermittent,
    p_correlate_transient,
    reward_tradeoff_curve,
)


class TestWindow:
    def test_paper_choice_is_about_42_minutes(self):
        window = correlation_window_seconds(PAPER_R, PAPER_T)
        assert window == pytest.approx(2500.0)
        assert window / 60 == pytest.approx(41.67, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            correlation_window_seconds(0)


class TestTransientCorrelation:
    def test_closed_form(self):
        rate = 1.0 / 3600.0  # one per hour
        p = p_correlate_transient(rate, PAPER_R, PAPER_T)
        assert p == pytest.approx(1 - math.exp(-2500 / 3600))

    def test_below_one_percent_at_low_rates(self):
        # The paper: "the resulting probability of correlating a second
        # transient fault is less than 1%" at the considered rates.
        rate = 0.01 / 3600.0
        assert p_correlate_transient(rate, PAPER_R, PAPER_T) < 0.01

    def test_monotone_in_r(self):
        rate = 1.0 / 3600.0
        ps = [p_correlate_transient(rate, r, PAPER_T)
              for r in (10 ** 3, 10 ** 5, 10 ** 7)]
        assert ps[0] < ps[1] < ps[2]

    def test_zero_rate(self):
        assert p_correlate_transient(0.0, PAPER_R, PAPER_T) == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            p_correlate_transient(-1.0, 10, PAPER_T)


class TestIntermittentCorrelation:
    def test_fast_reappearance_almost_surely_correlated(self):
        # Internal fault reappearing every ~60 s; window 2500 s.
        p = p_correlate_intermittent(60.0, PAPER_R, PAPER_T)
        assert p > 0.999999

    def test_slow_reappearance_often_missed_with_small_r(self):
        p = p_correlate_intermittent(60.0, 1000, PAPER_T)  # 2.5 s window
        assert p < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            p_correlate_intermittent(0.0, 10, PAPER_T)


class TestInverses:
    def test_max_reward_respects_bound(self):
        rate = 1.0 / 3600.0
        r = max_reward_for_transient_bound(rate, 0.01, PAPER_T)
        assert p_correlate_transient(rate, r, PAPER_T) <= 0.01
        assert p_correlate_transient(rate, r + r // 10 + 2, PAPER_T) > 0.01

    def test_min_reward_respects_bound(self):
        r = min_reward_for_intermittent_bound(60.0, 0.99, PAPER_T)
        assert p_correlate_intermittent(60.0, r, PAPER_T) >= 0.99

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            max_reward_for_transient_bound(1.0, 1.5)
        with pytest.raises(ValueError):
            max_reward_for_transient_bound(0.0, 0.5)
        with pytest.raises(ValueError):
            min_reward_for_intermittent_bound(60.0, 0.0)


class TestCurve:
    def test_tradeoff_curve_shape(self):
        points = reward_tradeoff_curve([10 ** 3, 10 ** 6, 10 ** 8],
                                       external_rate=1.0 / 3600.0,
                                       intermittent_mean_reappearance=60.0)
        assert len(points) == 3
        # Both probabilities increase with R — that is the tradeoff.
        trans = [p.p_correlate_transient for p in points]
        inter = [p.p_correlate_intermittent for p in points]
        assert trans == sorted(trans)
        assert inter == sorted(inter)
        # Intermittents correlate earlier than independent transients.
        assert inter[1] > trans[1]
