"""Unit tests for schedule parameter derivation (l_i, send_curr_round_i)."""

import random

import pytest

from repro.tt.schedule import (
    DynamicNodeSchedule,
    GlobalSchedule,
    StaticNodeSchedule,
    offset_for_exec_after,
    params_from_offset,
)
from repro.tt.timebase import TimeBase


@pytest.fixture
def tb() -> TimeBase:
    return TimeBase(n_slots=4, round_length=2.5e-3, tx_fraction=0.8)


class TestParamsFromOffset:
    def test_offset_before_first_delivery_gives_l0(self, tb):
        params = params_from_offset(tb, node_id=2, offset=0.0)
        assert params.l == 0
        assert params.round_shift == 0

    def test_l_counts_completed_deliveries(self, tb):
        s = tb.slot_length
        # Right after delivery of slot 2 (inside slot 2's gap).
        offset = (1 + 0.9) * s
        params = params_from_offset(tb, 3, offset)
        assert params.l == 2

    def test_offset_in_tx_window_does_not_count_pending_delivery(self, tb):
        s = tb.slot_length
        # Mid-transmission of slot 3: only slots 1-2 delivered.
        offset = (2 + 0.4) * s
        assert params_from_offset(tb, 1, offset).l == 2

    def test_footnote1_after_last_delivery(self, tb):
        s = tb.slot_length
        offset = (3 + 0.95) * s  # after slot 4's delivery
        params = params_from_offset(tb, 1, offset)
        assert params.round_shift == 1
        assert params.l == 0
        assert params.send_curr_round is True

    def test_send_curr_round_before_own_slot(self, tb):
        s = tb.slot_length
        # Node 3's slot starts at 2s; a job at 1.5s precedes it.
        params = params_from_offset(tb, 3, 1.5 * s)
        assert params.send_curr_round is True

    def test_send_curr_round_false_during_own_slot(self, tb):
        s = tb.slot_length
        params = params_from_offset(tb, 3, 2.4 * s)
        assert params.send_curr_round is False

    def test_node1_never_send_curr_without_footnote(self, tb):
        # Node 1's slot starts the round; no in-round offset precedes it.
        for frac in (0.0, 0.3, 1.7, 2.9):
            params = params_from_offset(tb, 1, frac * tb.slot_length)
            assert params.send_curr_round is False

    def test_offset_out_of_range(self, tb):
        with pytest.raises(ValueError):
            params_from_offset(tb, 1, -0.1)
        with pytest.raises(ValueError):
            params_from_offset(tb, 1, tb.round_length)

    def test_effective_round(self, tb):
        normal = params_from_offset(tb, 1, 0.0)
        assert normal.effective_round(7) == 7
        shifted = params_from_offset(tb, 1, (3 + 0.95) * tb.slot_length)
        assert shifted.effective_round(7) == 8


class TestOffsetForExecAfter:
    @pytest.mark.parametrize("exec_after", range(4))
    def test_roundtrip_l(self, tb, exec_after):
        offset = offset_for_exec_after(tb, exec_after)
        params = params_from_offset(tb, 1, offset)
        assert params.l == exec_after
        assert params.round_shift == 0

    def test_exec_after_n_is_footnote_case(self, tb):
        offset = offset_for_exec_after(tb, 4)
        params = params_from_offset(tb, 1, offset)
        assert params.round_shift == 1
        assert params.send_curr_round is True

    def test_out_of_range(self, tb):
        with pytest.raises(ValueError):
            offset_for_exec_after(tb, -1)
        with pytest.raises(ValueError):
            offset_for_exec_after(tb, 5)


class TestStaticNodeSchedule:
    def test_constant_across_rounds(self, tb):
        sched = StaticNodeSchedule(tb, 2, exec_after=1)
        assert sched.params(0) == sched.params(100)
        assert sched.is_static

    def test_requires_exactly_one_spec(self, tb):
        with pytest.raises(ValueError):
            StaticNodeSchedule(tb, 1)
        with pytest.raises(ValueError):
            StaticNodeSchedule(tb, 1, offset=0.0, exec_after=0)


class TestDynamicNodeSchedule:
    def test_memoised_per_round(self, tb):
        sched = DynamicNodeSchedule(tb, 2, random.Random(0))
        assert sched.params(5) is sched.params(5)
        assert not sched.is_static

    def test_never_enters_footnote_gap(self, tb):
        sched = DynamicNodeSchedule(tb, 1, random.Random(1))
        for k in range(500):
            assert sched.params(k).round_shift == 0

    def test_l_covers_full_range(self, tb):
        sched = DynamicNodeSchedule(tb, 1, random.Random(2))
        ls = {sched.params(k).l for k in range(500)}
        assert ls == {0, 1, 2, 3}

    def test_deterministic_for_seed(self, tb):
        a = DynamicNodeSchedule(tb, 3, random.Random(9))
        b = DynamicNodeSchedule(tb, 3, random.Random(9))
        assert [a.params(k).offset for k in range(20)] == \
               [b.params(k).offset for k in range(20)]


class TestGlobalSchedule:
    def test_default_schedules_are_static_l0(self, tb):
        gs = GlobalSchedule(tb)
        for node in range(1, 5):
            params = gs.node_schedule(node).params(0)
            assert params.l == 0

    def test_sender_of_slot_identity(self, tb):
        gs = GlobalSchedule(tb)
        assert [gs.sender_of_slot(s) for s in range(1, 5)] == [1, 2, 3, 4]
        with pytest.raises(ValueError):
            gs.sender_of_slot(0)

    def test_all_send_curr_round_default_false(self, tb):
        # Default l=0 schedules: node 1 cannot send in the current round.
        assert GlobalSchedule(tb).all_send_curr_round() is False

    def test_all_send_curr_round_with_footnote_schedules(self, tb):
        gs = GlobalSchedule(tb)
        for node in range(1, 5):
            gs.set_node_schedule(node, StaticNodeSchedule(tb, node, exec_after=4))
        assert gs.all_send_curr_round() is True

    def test_all_send_curr_round_false_with_any_dynamic(self, tb):
        gs = GlobalSchedule(tb)
        for node in range(1, 5):
            gs.set_node_schedule(node, StaticNodeSchedule(tb, node, exec_after=4))
        gs.set_node_schedule(2, DynamicNodeSchedule(tb, 2, random.Random(0)))
        assert gs.all_send_curr_round() is False

    def test_node_validation(self, tb):
        gs = GlobalSchedule(tb)
        with pytest.raises(ValueError):
            gs.node_schedule(0)
        with pytest.raises(ValueError):
            gs.set_node_schedule(5, StaticNodeSchedule(tb, 1, exec_after=0))
