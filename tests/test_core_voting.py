"""Unit tests for the hybrid majority voting function (Eqn. 1)."""

import pytest

from repro.core.syndrome import EPSILON
from repro.core.voting import (
    BOTTOM,
    benign_only_bound_holds,
    excl,
    h_maj,
    maj,
    vote_bound_holds,
)

E = EPSILON


class TestExcl:
    def test_removes_epsilon_only(self):
        assert excl([0, E, 1, E, 1]) == [0, 1, 1]

    def test_empty(self):
        assert excl([]) == []
        assert excl([E, E]) == []


class TestMaj:
    def test_strict_majority(self):
        assert maj([0, 0, 1]) == 0
        assert maj([1, 1, 0]) == 1
        assert maj([1]) == 1

    def test_tie_has_no_majority(self):
        assert maj([0, 1]) is None
        assert maj([0, 0, 1, 1]) is None

    def test_empty_has_no_majority(self):
        assert maj([]) is None


class TestHMaj:
    def test_all_epsilon_is_bottom(self):
        assert h_maj([E, E, E]) is BOTTOM

    def test_majority_of_surviving_votes(self):
        assert h_maj([0, 0, 1]) == 0
        assert h_maj([E, 0, 0, 1]) == 0
        assert h_maj([E, E, 1]) == 1
        assert h_maj([E, E, 0]) == 0

    def test_single_surviving_vote_decides(self):
        # |excl(V, eps)| = 1 still yields its majority.
        assert h_maj([E, E, E, 0]) == 0

    def test_tie_defaults_to_not_faulty(self):
        assert h_maj([0, 1]) == 1
        assert h_maj([E, 0, 1]) == 1
        assert h_maj([0, 0, 1, 1]) == 1

    def test_rejects_garbage_votes(self):
        with pytest.raises(ValueError):
            h_maj([0, 2, 1])

    def test_paper_table1_example(self):
        # Table 1: nodes 3, 4 benign faulty (rows eps); vote on each
        # column as in the paper, yielding cons_hv = 1 1 0 0.
        rows = {
            1: (None, 1, 0, 0),   # '-' stands for the self opinion
            2: (1, None, 0, 0),
            3: E,
            4: E,
        }

        def column(j):
            votes = []
            for i in (1, 2, 3, 4):
                if i == j:
                    continue
                votes.append(E if rows[i] is E else rows[i][j - 1])
            return votes

        assert [h_maj(column(j)) for j in (1, 2, 3, 4)] == [1, 1, 0, 0]


class TestBounds:
    def test_lemma2_condition(self):
        # N=4: one benign fault tolerated (4 > 0+0+1+1).
        assert vote_bound_holds(4, a=0, s=0, b=1)
        assert vote_bound_holds(4, a=0, s=0, b=2)
        assert not vote_bound_holds(4, a=0, s=0, b=3)
        # One asymmetric fault needs N > 3.
        assert vote_bound_holds(4, a=1, s=0, b=0)
        assert not vote_bound_holds(3, a=1, s=0, b=0)
        # A malicious fault consumes two votes of margin.
        assert vote_bound_holds(4, a=0, s=1, b=0)
        assert not vote_bound_holds(4, a=0, s=1, b=1)
        # At most one asymmetric fault per execution.
        assert not vote_bound_holds(100, a=2, s=0, b=0)

    def test_lemma3_condition(self):
        assert benign_only_bound_holds(4, b=3)
        assert benign_only_bound_holds(4, b=4)
        assert not benign_only_bound_holds(4, b=2)


class TestLemma2Semantics:
    """H-maj reaches the correct decision whenever Lemma 2's bound holds.

    Exhaustive check for N=4..7 over all fault allocations within the
    bound: correct votes say `truth`, benign voters contribute eps,
    malicious/asymmetric voters contribute the adversarial opposite.
    """

    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_adversarial_minority_outvoted(self, n):
        for truth in (0, 1):
            for b in range(n):
                for ms in range(n - b):
                    if not vote_bound_holds(n, a=0, s=ms, b=b):
                        continue
                    honest = n - 1 - b - ms
                    votes = ([truth] * honest + [E] * b
                             + [1 - truth] * ms)
                    assert h_maj(votes) == truth, (n, truth, b, ms)


class TestHMajCounts:
    def test_matches_h_maj_explain_exhaustively(self):
        from itertools import product

        from repro.core.voting import h_maj_counts, h_maj_explain

        for votes in product((0, 1, E), repeat=5):
            ones = sum(1 for v in votes if v == 1 and v is not E)
            zeros = sum(1 for v in votes if v == 0)
            assert h_maj_counts(ones, zeros) == h_maj_explain(votes)

    def test_rejects_negative_tallies(self):
        from repro.core.voting import h_maj_counts

        with pytest.raises(ValueError):
            h_maj_counts(-1, 2)
        with pytest.raises(ValueError):
            h_maj_counts(2, -1)

    def test_branches(self):
        from repro.core.voting import h_maj_counts

        assert h_maj_counts(0, 0) == (BOTTOM, "bottom")
        assert h_maj_counts(3, 1) == (1, "majority")
        assert h_maj_counts(1, 3) == (0, "majority")
        assert h_maj_counts(2, 2) == (1, "default")
