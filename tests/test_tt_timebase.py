"""Unit tests for TDMA timing arithmetic."""

import pytest

from repro.tt.timebase import SlotRef, TimeBase


@pytest.fixture
def tb() -> TimeBase:
    return TimeBase(n_slots=4, round_length=2.5e-3, tx_fraction=0.8)


def test_slot_length(tb):
    assert tb.slot_length == pytest.approx(0.625e-3)


def test_round_of_boundaries(tb):
    assert tb.round_of(0.0) == 0
    assert tb.round_of(2.4999e-3) == 0
    assert tb.round_of(2.5e-3) == 1
    assert tb.round_of(5.0e-3) == 2


def test_slot_of(tb):
    assert tb.slot_of(0.0) == SlotRef(0, 1)
    assert tb.slot_of(0.7e-3) == SlotRef(0, 2)
    assert tb.slot_of(2.5e-3) == SlotRef(1, 1)
    assert tb.slot_of(2.5e-3 + 3 * 0.625e-3) == SlotRef(1, 4)


def test_slot_start_end_delivery(tb):
    assert tb.slot_start(0, 1) == 0.0
    assert tb.slot_start(1, 2) == pytest.approx(2.5e-3 + 0.625e-3)
    assert tb.slot_end(0, 4) == pytest.approx(2.5e-3)
    assert tb.delivery_time(0, 1) == pytest.approx(0.8 * 0.625e-3)
    # Delivery strictly inside the slot.
    assert tb.slot_start(0, 2) < tb.delivery_time(0, 2) < tb.slot_end(0, 2)


def test_last_delivery_before_round_end(tb):
    # The inter-frame gap after slot N is where footnote-1 jobs run.
    assert tb.delivery_time(0, 4) < tb.round_start(1)


def test_slot_validation(tb):
    with pytest.raises(ValueError):
        tb.slot_start(0, 0)
    with pytest.raises(ValueError):
        tb.slot_end(0, 5)


def test_constructor_validation():
    with pytest.raises(ValueError):
        TimeBase(1, 1.0)
    with pytest.raises(ValueError):
        TimeBase(4, 0.0)
    with pytest.raises(ValueError):
        TimeBase(4, 1.0, tx_fraction=1.0)
    with pytest.raises(ValueError):
        TimeBase(4, 1.0, tx_fraction=0.0)


def test_transmissions_between_single_slot(tb):
    refs = list(tb.transmissions_between(0.0, tb.slot_length))
    assert refs == [SlotRef(0, 1)]


def test_transmissions_between_covers_burst(tb):
    # A burst spanning slots 2-3 of round 0.
    t0 = tb.slot_start(0, 2)
    t1 = tb.slot_end(0, 3)
    refs = list(tb.transmissions_between(t0, t1))
    assert refs == [SlotRef(0, 2), SlotRef(0, 3)]


def test_transmissions_between_gap_only_hits_nothing(tb):
    # An interval entirely inside the inter-frame gap of slot 1.
    t0 = tb.delivery_time(0, 1) + 1e-9
    t1 = tb.slot_start(0, 2) - 1e-9
    assert list(tb.transmissions_between(t0, t1)) == []


def test_transmissions_between_two_rounds(tb):
    refs = list(tb.transmissions_between(0.0, 2 * tb.round_length))
    assert len(refs) == 8
    assert refs[0] == SlotRef(0, 1)
    assert refs[-1] == SlotRef(1, 4)


def test_transmissions_between_empty_interval(tb):
    assert list(tb.transmissions_between(1.0, 1.0)) == []
    assert list(tb.transmissions_between(2.0, 1.0)) == []


def test_transmissions_between_partial_overlap(tb):
    # Interval starting mid-transmission of slot 2 still corrupts it.
    mid = tb.slot_start(0, 2) + 0.4 * tb.slot_length
    refs = list(tb.transmissions_between(mid, mid + 1e-6))
    assert refs == [SlotRef(0, 2)]


def test_duration_in_rounds(tb):
    assert tb.duration_in_rounds(2.5e-3) == 1
    assert tb.duration_in_rounds(2.6e-3) == 2
    assert tb.duration_in_rounds(10e-3) == 4


def test_slotref_global_index():
    assert SlotRef(0, 1).global_index(4) == 0
    assert SlotRef(2, 3).global_index(4) == 10
