"""Unit tests for the clock model and SOS fault generation."""

import pytest

from repro.faults.injector import TransmissionContext
from repro.tt.clock import ClockModel, SOSClockScenario
from repro.tt.timebase import TimeBase


def ctx_for(sender: int, time: float = 0.0) -> TransmissionContext:
    tb = TimeBase(4, 2.5e-3)
    return TransmissionContext(time=time, round_index=0, slot=sender,
                               sender=sender, receivers=(1, 2, 3, 4),
                               channel=0, timebase=tb)


def test_clock_deviation_linear():
    clock = ClockModel(offset=10e-6, drift=1e-3)
    assert clock.deviation(0.0) == pytest.approx(10e-6)
    assert clock.deviation(1.0) == pytest.approx(10e-6 + 1e-3)


def test_synchronised_clocks_produce_no_faults():
    scenario = SOSClockScenario({}, acceptance_window=50e-6)
    assert list(scenario.directives(ctx_for(1))) == []


def test_within_window_no_fault():
    clocks = {1: ClockModel(offset=30e-6), 2: ClockModel(offset=-10e-6)}
    scenario = SOSClockScenario(clocks, acceptance_window=50e-6)
    assert list(scenario.directives(ctx_for(1))) == []


def test_sos_asymmetry_from_offsets():
    # Sender 1 deviates +80us; receivers at -30us reject (110 > 100),
    # receivers at +20us accept (60 < 100).
    clocks = {
        1: ClockModel(offset=80e-6),
        2: ClockModel(offset=-30e-6),
        3: ClockModel(offset=20e-6),
    }
    scenario = SOSClockScenario(clocks, acceptance_window=100e-6)
    directives = list(scenario.directives(ctx_for(1)))
    assert len(directives) == 1
    assert directives[0].detectable_by == frozenset({2})
    assert directives[0].cause == "sos"


def test_sender_never_rejects_itself():
    clocks = {1: ClockModel(offset=500e-6)}
    scenario = SOSClockScenario(clocks, acceptance_window=50e-6)
    directives = list(scenario.directives(ctx_for(1)))
    # Nodes 2-4 (perfectly synchronised) all reject; node 1 does not.
    assert directives[0].detectable_by == frozenset({2, 3, 4})


def test_drift_crosses_window_over_time():
    clocks = {3: ClockModel(offset=0.0, drift=1e-3)}  # 1 ms/s
    scenario = SOSClockScenario(clocks, acceptance_window=100e-6)
    # At t=0.05s deviation is 50us: fine.  At t=0.2s it is 200us: SOS.
    assert list(scenario.directives(ctx_for(3, time=0.05))) == []
    directives = list(scenario.directives(ctx_for(3, time=0.2)))
    assert directives and directives[0].detectable_by == frozenset({1, 2, 4})


def test_receiver_fault_direction():
    # A drifting *receiver* rejects everyone else's frames.
    clocks = {4: ClockModel(offset=300e-6)}
    scenario = SOSClockScenario(clocks, acceptance_window=100e-6)
    directives = list(scenario.directives(ctx_for(1)))
    assert directives[0].detectable_by == frozenset({4})


def test_acceptance_window_validation():
    with pytest.raises(ValueError):
        SOSClockScenario({}, acceptance_window=0.0)
