"""Cross-variant equivalence and boundary-size tests.

The three protocol variants (add-on static, add-on dynamic/tagged,
system-level per-slot) implement the same diagnosis semantics; these
tests pin that down:

* identical verdicts for identical fault scenarios across variants;
* the dynamic machinery degenerates to the static behaviour when the
  schedule happens to be constant;
* boundary cluster sizes (N = 2, 3) behave sanely (the voting column
  shrinks to 1-2 votes).
"""

import pytest

from repro.analysis.metrics import health_vectors_by_node
from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster, LowLatencyCluster
from repro.faults.scenarios import SenderFault, SlotBurst
from repro.tt.schedule import NodeSchedule, params_from_offset

FAULT_ROUND = 6


def permissive(n=4):
    return uniform_config(n, penalty_threshold=10 ** 6,
                          reward_threshold=10 ** 6)


class ConstantPseudoDynamicSchedule(NodeSchedule):
    """A schedule that reports is_static=False but never moves.

    Forces the dynamic-mode machinery (history alignment + tagged
    syndromes) onto a workload whose behaviour the static mode defines,
    so the two implementations can be compared verdict-for-verdict.
    """

    def __init__(self, timebase, node_id, offset):
        self._params = params_from_offset(timebase, node_id, offset)

    def params(self, round_index):
        return self._params

    @property
    def is_static(self):
        return False


class TestStaticDynamicEquivalence:
    @pytest.mark.parametrize("scenario_builder", [
        lambda tb: SlotBurst(tb, FAULT_ROUND, 2, 1),
        lambda tb: SlotBurst(tb, FAULT_ROUND, 3, 2),
        lambda tb: SenderFault(1, kind="benign",
                               rounds=[FAULT_ROUND, FAULT_ROUND + 2]),
    ])
    def test_same_offsets_same_verdicts(self, scenario_builder):
        def run(pseudo_dynamic):
            dc = DiagnosedCluster(permissive(), seed=0, exec_after=1)
            if pseudo_dynamic:
                tb = dc.cluster.timebase
                for node_id in range(1, 5):
                    offset = dc.cluster.schedule.node_schedule(
                        node_id).params(0).offset
                    sched = ConstantPseudoDynamicSchedule(tb, node_id, offset)
                    dc.cluster.schedule.set_node_schedule(node_id, sched)
                    dc.cluster.nodes[node_id].schedule = sched
            dc.cluster.add_scenario(scenario_builder(dc.cluster.timebase))
            dc.run_rounds(FAULT_ROUND + 10)
            return health_vectors_by_node(dc.trace)

        static = run(False)
        dynamic = run(True)
        # Same verdict for every diagnosed round covered by both.
        for node in static:
            common = set(static[node]) & set(dynamic[node])
            assert common
            for d in common:
                assert static[node][d] == dynamic[node][d], (node, d)


class TestAddonLowLatencyEquivalence:
    @pytest.mark.parametrize("slot,n_slots", [(1, 1), (2, 1), (4, 2), (1, 8)])
    def test_per_round_verdicts_agree(self, slot, n_slots):
        dc = DiagnosedCluster(permissive(), seed=0)
        llc = LowLatencyCluster(permissive(), seed=0)
        for target in (dc, llc):
            target.cluster.add_scenario(
                SlotBurst(target.cluster.timebase, FAULT_ROUND, slot,
                          n_slots))
        dc.run_rounds(FAULT_ROUND + 10)
        llc.run_rounds(FAULT_ROUND + 10)

        addon = dc.health_vectors(1)
        for d_round, hv in addon.items():
            for s in range(1, 5):
                ll_verdict = llc.service(1).verdicts.get((d_round, s))
                if ll_verdict is not None:
                    assert hv[s - 1] == ll_verdict, (d_round, s)


class TestBoundarySizes:
    def test_n2_detects_benign_fault(self):
        # N=2: each column holds a single external vote.  The bound
        # N > b+1 fails for any fault, but benign faults still resolve
        # through the surviving vote / collision detector (Lemma 3
        # covers b >= N-1 = 1).
        dc = DiagnosedCluster(permissive(2), seed=0)
        dc.cluster.add_scenario(SenderFault(2, kind="benign",
                                            rounds=[FAULT_ROUND]))
        dc.run_rounds(FAULT_ROUND + 8)
        for node in (1, 2):
            assert dc.health_vectors(node)[FAULT_ROUND] == (1, 0)

    def test_n3_single_fault(self):
        dc = DiagnosedCluster(permissive(3), seed=0)
        dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, FAULT_ROUND,
                                          2, 1))
        dc.run_rounds(FAULT_ROUND + 8)
        for node in (1, 2, 3):
            assert dc.health_vectors(node)[FAULT_ROUND] == (1, 0, 1)

    def test_n3_blackout(self):
        dc = DiagnosedCluster(permissive(3), seed=0)
        dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, FAULT_ROUND,
                                          1, 6))
        dc.run_rounds(FAULT_ROUND + 8)
        for node in (1, 2, 3):
            assert dc.health_vectors(node)[FAULT_ROUND] == (0, 0, 0)


class TestTxFractionRobustness:
    @pytest.mark.parametrize("tx_fraction", [0.1, 0.5, 0.95])
    def test_detection_across_frame_widths(self, tx_fraction):
        dc = DiagnosedCluster(permissive(), seed=0,
                              tx_fraction=tx_fraction)
        dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, FAULT_ROUND,
                                          2, 1))
        dc.run_rounds(FAULT_ROUND + 8)
        assert dc.health_vectors(1)[FAULT_ROUND] == (1, 0, 1, 1)
        assert dc.consistent_health_history()
