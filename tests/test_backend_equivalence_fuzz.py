"""Differential fuzz: event engine vs vectorized round kernel.

The vectorized backend (:mod:`repro.vec`) is an optimisation, not a
semantic variant: for every supported spec the numpy round kernel must
produce **bit-identical observables** to the discrete-event engine —
health vectors, penalty/reward counters, activity matrices, isolation
times and metrics snapshots.  These tests pin that contract with a
three-way comparison per randomized case:

* event engine, bitset data plane (the default),
* event engine, tuple data plane (``bitset=False``),
* vectorized kernel (one-replicate batch).

Cases randomize cluster size, protocol knobs (thresholds,
criticalities, isolation mode, startup, halt-on-self-isolation),
schedules (default, uniform and per-node ``exec_after`` mixes including
the footnote-1 shift and the all-send-curr-round pipeline) and 1-3
fault scenarios covering benign, asymmetric and malicious sender
faults, slot bursts and all three stochastic processes.

The event engine's *strategy* counters (fast-path/cache/popcount/event
tallies) describe how it executes rather than what the protocol did;
they are the one deliberate difference and are stripped before
snapshot comparison — exactly like the fast/slow fuzz in
``test_fastpath_equivalence.py``.
"""

import random
from dataclasses import replace

import pytest

from repro.obs import MetricsRegistry
from repro.spec import (
    ClusterSpec,
    ProtocolSpec,
    RunSpec,
    ScenarioSpec,
    ScheduleSpec,
    VariantSpec,
)
from repro.spec.build import build
from repro.vec import NUMPY_AVAILABLE, UnsupportedSpecError, run_batch

pytestmark = pytest.mark.skipif(not NUMPY_AVAILABLE,
                                reason="numpy not installed")

FUZZ_CASES = 60
FUZZ_NODES = (4, 8, 16)
FUZZ_ROUNDS = 14

#: Counters describing the event engine's execution strategy; the
#: vectorized kernel has no equivalent machinery and never emits them.
STRATEGY_COUNTERS = frozenset({
    "bus.slots_fast_path", "bus.slots_slow_path",
    "vote.cache_hit", "vote.cache_miss", "vote.popcount_votes",
    "syndrome.intern_evictions", "engine.events_executed",
})


def _semantic(snapshot):
    """A snapshot reduced to protocol-semantic instruments only."""
    return {**snapshot,
            "counters": {name: value
                         for name, value in snapshot["counters"].items()
                         if name not in STRATEGY_COUNTERS
                         and not name.startswith("spec.run.")}}


def _channel_scenario(kind, i, n, rng):
    """One randomized channel-model ScenarioSpec (PR 7 fault library)."""
    if kind == "gilbert":
        return ScenarioSpec("GilbertElliottChannel", {
            "p_gb": rng.choice((0.05, 0.15)),
            "p_bg": rng.choice((0.3, 0.6)),
            "error_good": rng.choice((0.0, 0.02)),
            "error_bad": rng.choice((1.0, 0.8)),
            "start_bad": rng.random() < 0.2,
            "rng_stream": f"fz-ge-{i}"})
    if kind == "emi":
        return ScenarioSpec("CorrelatedEMI", {
            "event_rate": rng.choice((0.1, 0.25)),
            "width": rng.randint(1, max(2, n // 2)),
            "rng_stream": f"fz-emi-{i}"})
    if kind == "duty":
        period = rng.randint(3, 6)
        return ScenarioSpec("DutyCycleIntermittent", {
            "sender": rng.randint(1, n),
            "period_rounds": period,
            "on_rounds": rng.randint(1, period),
            "first_round": rng.choice((0, 2)),
            "rng_stream": f"fz-duty-{i}"})
    assert kind == "storm"
    senders = (None if rng.random() < 0.5 else
               sorted(rng.sample(range(1, n + 1), rng.randint(1, n))))
    return ScenarioSpec("FaultStorm", {
        "gust_rate": rng.choice((0.2, 0.4)),
        "intensity": rng.choice((0.3, 0.7)),
        "senders": senders,
        "start_round": rng.choice((0, 3)),
        "duration_rounds": rng.choice((None, 6)),
        "rng_stream": f"fz-storm-{i}"})


def _fuzz_scenarios(rng, n):
    """1-3 randomized ScenarioSpecs for an n-node cluster."""
    scenarios = []
    for i in range(rng.randint(1, 3)):
        kind = rng.choice((
            "slot-burst", "long-burst", "benign", "asymmetric",
            "malicious", "crash", "poisson", "intermittent", "noise",
            "gilbert", "emi", "duty", "storm"))
        if kind in ("gilbert", "emi", "duty", "storm"):
            scenarios.append(_channel_scenario(kind, i, n, rng))
            continue
        if kind == "slot-burst":
            scenarios.append(ScenarioSpec("SlotBurst", {
                "round_index": rng.randint(2, 7),
                "slot": rng.randint(1, n),
                "n_slots": rng.randint(1, n)}))
        elif kind == "long-burst":
            scenarios.append(ScenarioSpec("SlotBurst", {
                "round_index": rng.randint(2, 6), "slot": 1,
                "n_slots": rng.randint(n, 2 * n)}))
        elif kind == "benign":
            first = rng.randint(2, 6)
            scenarios.append(ScenarioSpec("SenderFault", {
                "sender": rng.randint(1, n), "kind": "benign",
                "rounds": [first, first + rng.randint(1, 3)]}))
        elif kind == "asymmetric":
            receivers = rng.sample(range(1, n + 1),
                                   rng.randint(1, max(1, n // 2)))
            first = rng.randint(2, 6)
            scenarios.append(ScenarioSpec("SenderFault", {
                "sender": rng.randint(1, n), "kind": "asymmetric",
                "detectable_by": sorted(receivers),
                "rounds": list(range(first, first + rng.randint(1, 4)))}))
        elif kind == "malicious":
            payload = rng.choice((
                [rng.randint(0, 1) for _ in range(n)],   # forged syndrome
                [2] * n,                                 # malformed bits
                "garbage",                               # not a syndrome
            ))
            scenarios.append(ScenarioSpec("SenderFault", {
                "sender": rng.randint(1, n), "kind": "malicious",
                "payload": payload,
                "from_round": rng.randint(2, 6)}))
        elif kind == "crash":
            scenarios.append(ScenarioSpec("SenderFault", {
                "sender": rng.randint(1, n), "kind": "benign",
                "from_round": rng.randint(3, 7)}))
        elif kind == "poisson":
            scenarios.append(ScenarioSpec("PoissonTransients", {
                "rate": rng.choice((50.0, 200.0)),
                "burst_length": 0.5e-3,
                "rng_stream": f"fz-poisson-{i}"}))
        elif kind == "intermittent":
            scenarios.append(ScenarioSpec("IntermittentSender", {
                "sender": rng.randint(1, n),
                "mean_reappearance_rounds": rng.randint(2, 6),
                "rng_stream": f"fz-intermittent-{i}"}))
        else:
            scenarios.append(ScenarioSpec("RandomSlotNoise", {
                "probability": rng.choice((0.02, 0.08)),
                "rng_stream": f"fz-noise-{i}"}))
    return tuple(scenarios)


def _fuzz_spec(case_seed):
    """One deterministic randomized RunSpec per case seed."""
    rng = random.Random(7000 + case_seed)
    n = FUZZ_NODES[case_seed % len(FUZZ_NODES)]

    all_send_curr = rng.random() < 0.2
    if all_send_curr:
        schedule = ScheduleSpec(kind="static", exec_after=n)
    else:
        roll = rng.random()
        if roll < 0.35:
            schedule = ScheduleSpec()          # default: exec_after=0
        elif roll < 0.65:
            schedule = ScheduleSpec(kind="static",
                                    exec_after=rng.choice((0, n // 2, n)))
        else:
            schedule = ScheduleSpec(
                kind="static",
                exec_after=tuple(rng.choice((0, 1, n // 2, n - 1, n))
                                 for _ in range(n)))

    protocol = ProtocolSpec(
        n_nodes=n,
        penalty_threshold=rng.choice((1, 2, 3)),
        reward_threshold=rng.choice((3, 50)),
        criticalities=tuple(rng.choice((1, 1, 2, 3)) for _ in range(n)),
        all_send_curr_round=all_send_curr,
        startup_rounds=rng.choice((1, 2)),
        isolation_mode=rng.choice(("ignore", "observe")),
        halt_on_self_isolation=rng.choice((None, True, False)),
    )
    return RunSpec(
        protocol=protocol,
        cluster=ClusterSpec(seed=case_seed,
                            trace_level=rng.choice((2, 2, 2, 1, 0))),
        schedule=schedule,
        scenarios=_fuzz_scenarios(rng, n),
        n_rounds=FUZZ_ROUNDS,
    )


def _event_run(spec, bitset):
    """Drive a spec on the event engine; return (cluster, snapshot)."""
    registry = MetricsRegistry()
    dc = build(replace(spec, variant=replace(spec.variant, bitset=bitset)),
               metrics=registry)
    dc.run_rounds(spec.n_rounds)
    return dc, registry.snapshot()


def _assert_observables_match(dc, view, n):
    """Every facade observable agrees between event and vectorized."""
    for node in range(1, n + 1):
        assert dc.health_vectors(node) == view.health_vectors(node), node
        assert (dc.service(node).pr.snapshot()
                == view.pr_snapshot(node)), node
    assert dc.active_matrix() == view.active_matrix()
    assert (dc.consistent_health_history()
            == view.consistent_health_history())
    for j in range(1, n + 1):
        assert dc.first_isolation_time(j) == view.first_isolation_time(j), j


@pytest.mark.parametrize("case_seed", range(FUZZ_CASES))
def test_fuzz_three_way_backend_differential(case_seed):
    """event/bitset == event/tuple == vectorized, per randomized case."""
    spec = _fuzz_spec(case_seed)
    n = spec.protocol.n_nodes

    dc_bit, snap_bit = _event_run(spec, bitset=True)
    dc_tup, snap_tup = _event_run(spec, bitset=False)
    view = run_batch(spec).view(0)
    snap_vec = view.metrics_snapshot()

    _assert_observables_match(dc_bit, view, n)
    _assert_observables_match(dc_tup, view, n)
    assert _semantic(snap_bit) == _semantic(snap_vec)
    assert _semantic(snap_tup) == _semantic(snap_vec)


def test_batch_replicates_match_per_seed_event_runs():
    """A replicate batch equals one event run per shifted seed."""
    spec = _fuzz_spec(3)
    n = spec.protocol.n_nodes
    batch = run_batch(spec, replicates=4)
    for i, seed in enumerate(batch.seeds):
        spec_r = replace(spec, cluster=replace(spec.cluster, seed=seed))
        dc, snap = _event_run(spec_r, bitset=True)
        view = batch.view(i)
        _assert_observables_match(dc, view, n)
        assert _semantic(snap) == _semantic(view.metrics_snapshot())


def test_reintegration_differential():
    """Reintegrating clusters agree between the backends."""
    from repro.core.service import attach_reintegration_everywhere

    for case_seed in (0, 1, 2, 5, 8):
        rng = random.Random(9000 + case_seed)
        n = FUZZ_NODES[case_seed % len(FUZZ_NODES)]
        protocol = ProtocolSpec(
            n_nodes=n, penalty_threshold=rng.choice((1, 2)),
            reward_threshold=50,
            criticalities=(1,) * n,
            isolation_mode="observe",
            halt_on_self_isolation=rng.choice((None, True)),
            reintegration_reward_threshold=rng.choice((2, 3)))
        spec = RunSpec(
            protocol=protocol,
            cluster=ClusterSpec(seed=case_seed),
            scenarios=_fuzz_scenarios(rng, n),
            n_rounds=18,
        )
        registry = MetricsRegistry()
        dc = build(spec, metrics=registry)
        attach_reintegration_everywhere(dc)
        dc.run_rounds(spec.n_rounds)
        view = run_batch(spec, reintegration=True).view(0)
        _assert_observables_match(dc, view, n)
        assert (_semantic(registry.snapshot())
                == _semantic(view.metrics_snapshot()))


def test_unsupported_specs_fail_fast():
    """Out-of-scope specs raise UnsupportedSpecError, a ValueError."""
    base = _fuzz_spec(0)
    bad = [
        replace(base, schedule=ScheduleSpec(kind="dynamic")),
        replace(base, variant=replace(base.variant, service="membership")),
        replace(base, variant=replace(base.variant, byzantine_nodes=(1,))),
        replace(base, cluster=replace(base.cluster, n_channels=2)),
    ]
    for spec in bad:
        with pytest.raises(UnsupportedSpecError):
            run_batch(spec)
        assert issubclass(UnsupportedSpecError, ValueError)


# ----------------------------------------------------------------------
# Channel-model library (PR 7): dedicated three-way differential matrix
# over every lowerable model × seeds × fast-path, plus the jobs axis
# and the event-only adaptive model.
# ----------------------------------------------------------------------

CHANNEL_MODELS = ("gilbert", "emi", "duty", "storm")


def _channel_spec(model, seed, n=None, fast_path=True, rounds=FUZZ_ROUNDS):
    """A deterministic single-channel-model RunSpec for one seed."""
    rng = random.Random(31000 + 97 * seed + CHANNEL_MODELS.index(model))
    if n is None:
        n = FUZZ_NODES[seed % len(FUZZ_NODES)]
    protocol = ProtocolSpec(
        n_nodes=n,
        penalty_threshold=rng.choice((1, 2, 3)),
        reward_threshold=rng.choice((3, 50)),
        criticalities=tuple(rng.choice((1, 1, 2)) for _ in range(n)),
        isolation_mode=rng.choice(("ignore", "observe")),
    )
    return RunSpec(
        protocol=protocol,
        cluster=ClusterSpec(seed=seed),
        variant=VariantSpec(fast_path=fast_path),
        scenarios=(_channel_scenario(model, 0, n, rng),),
        n_rounds=rounds,
    )


@pytest.mark.parametrize("model", CHANNEL_MODELS)
@pytest.mark.parametrize("seed", (0, 1, 2))
@pytest.mark.parametrize("fast_path", (True, False))
def test_channel_model_three_way_differential(model, seed, fast_path):
    """event/bitset == event/tuple == vectorized per channel model.

    Health vectors, p/r counters, activity matrices, isolation times
    and semantic metrics must be bit-identical across all three
    execution paths for every new channel model, on both bus paths.
    """
    spec = _channel_spec(model, seed, fast_path=fast_path)
    n = spec.protocol.n_nodes

    dc_bit, snap_bit = _event_run(spec, bitset=True)
    dc_tup, snap_tup = _event_run(spec, bitset=False)
    view = run_batch(spec).view(0)

    _assert_observables_match(dc_bit, view, n)
    _assert_observables_match(dc_tup, view, n)
    assert _semantic(snap_bit) == _semantic(view.metrics_snapshot())
    assert _semantic(snap_tup) == _semantic(view.metrics_snapshot())


@pytest.mark.parametrize("model", CHANNEL_MODELS)
def test_channel_model_replicate_batch(model):
    """A replicate batch equals per-seed event runs for each model."""
    spec = _channel_spec(model, 1)
    n = spec.protocol.n_nodes
    batch = run_batch(spec, replicates=3)
    for i, seed in enumerate(batch.seeds):
        spec_r = replace(spec, cluster=replace(spec.cluster, seed=seed))
        dc, snap = _event_run(spec_r, bitset=True)
        view = batch.view(i)
        _assert_observables_match(dc, view, n)
        assert _semantic(snap) == _semantic(view.metrics_snapshot())


@pytest.mark.slow
def test_channel_models_across_jobs():
    """jobs=2 pool dispatch reproduces jobs=1 for every channel model."""
    from repro.runner.sweep import run_monte_carlo_sweep

    for model in CHANNEL_MODELS:
        spec = _channel_spec(model, 0, n=4, rounds=10)
        serial = run_monte_carlo_sweep(spec, replicates=4, jobs=1)
        fanned = run_monte_carlo_sweep(spec, replicates=4, jobs=2)
        assert serial == fanned, model


def test_adaptive_saboteur_event_paths_agree():
    """The adaptive model is deterministic across event-engine variants.

    Its decisions read live protocol state, so bitset/tuple data planes
    and fast/slow bus paths must all see the identical memoised choice
    sequence — pinned here by comparing every observable.
    """
    for n, seed in ((4, 0), (8, 1)):
        protocol = ProtocolSpec(
            n_nodes=n, penalty_threshold=3, reward_threshold=4,
            criticalities=(1,) * n)
        base = RunSpec(
            protocol=protocol,
            cluster=ClusterSpec(seed=seed),
            scenarios=(ScenarioSpec("AdaptiveSaboteur",
                                    {"sender": 2, "margin": 1}),),
            n_rounds=16,
        )
        reference = None
        for bitset in (True, False):
            for fast_path in (True, False):
                spec = replace(base, variant=VariantSpec(
                    bitset=bitset, fast_path=fast_path))
                dc = build(spec)
                dc.run_rounds(spec.n_rounds)
                observed = (
                    {j: dc.health_vectors(j) for j in range(1, n + 1)},
                    {j: dc.service(j).pr.snapshot() for j in range(1, n + 1)},
                    dc.active_matrix(),
                    {j: dc.first_isolation_time(j) for j in range(1, n + 1)},
                )
                if reference is None:
                    reference = observed
                else:
                    assert observed == reference, (n, seed, bitset, fast_path)


def test_adaptive_saboteur_is_event_only_on_vectorized():
    """The adaptive model cannot lower; the kernel must reject it."""
    protocol = ProtocolSpec(n_nodes=4, penalty_threshold=2,
                            reward_threshold=5, criticalities=(1,) * 4)
    spec = RunSpec(
        protocol=protocol, cluster=ClusterSpec(seed=0),
        scenarios=(ScenarioSpec("AdaptiveSaboteur", {"sender": 3}),),
        n_rounds=10)
    with pytest.raises(UnsupportedSpecError, match="event-only"):
        run_batch(spec)
