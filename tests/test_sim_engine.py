"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import EventPriority


def test_runs_events_in_time_order():
    engine = Engine()
    log = []
    engine.schedule(2.0, EventPriority.JOB, lambda: log.append("c"))
    engine.schedule(1.0, EventPriority.JOB, lambda: log.append("a"))
    engine.schedule(1.5, EventPriority.JOB, lambda: log.append("b"))
    engine.run()
    assert log == ["a", "b", "c"]


def test_priority_breaks_ties_at_same_time():
    engine = Engine()
    log = []
    engine.schedule(1.0, EventPriority.JOB, lambda: log.append("job"))
    engine.schedule(1.0, EventPriority.SLOT_TRANSMIT, lambda: log.append("tx"))
    engine.schedule(1.0, EventPriority.SLOT_DELIVER, lambda: log.append("rx"))
    engine.schedule(1.0, EventPriority.INJECTOR, lambda: log.append("inj"))
    engine.run()
    assert log == ["inj", "tx", "rx", "job"]


def test_insertion_order_breaks_full_ties():
    engine = Engine()
    log = []
    for i in range(10):
        engine.schedule(1.0, EventPriority.JOB, lambda i=i: log.append(i))
    engine.run()
    assert log == list(range(10))


def test_now_advances_to_event_times():
    engine = Engine()
    seen = []
    engine.schedule(0.5, EventPriority.JOB, lambda: seen.append(engine.now))
    engine.schedule(2.5, EventPriority.JOB, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [0.5, 2.5]
    assert engine.now == 2.5


def test_until_is_inclusive_and_advances_clock():
    engine = Engine()
    log = []
    engine.schedule(1.0, EventPriority.JOB, lambda: log.append(1))
    engine.schedule(2.0, EventPriority.JOB, lambda: log.append(2))
    engine.run(until=1.0)
    assert log == [1]
    assert engine.now == 1.0
    engine.run(until=5.0)
    assert log == [1, 2]
    # The clock advances to the horizon even with an empty queue.
    assert engine.now == 5.0


def test_schedule_in_past_rejected():
    engine = Engine()
    engine.schedule(1.0, EventPriority.JOB, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule(0.5, EventPriority.JOB, lambda: None)


def test_schedule_at_now_is_allowed():
    engine = Engine()
    log = []

    def chain():
        engine.schedule(engine.now, EventPriority.OBSERVER,
                        lambda: log.append("later"))
        log.append("first")

    engine.schedule(1.0, EventPriority.JOB, chain)
    engine.run()
    assert log == ["first", "later"]


def test_schedule_after_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule_after(-1.0, EventPriority.JOB, lambda: None)


def test_cancelled_events_are_skipped():
    engine = Engine()
    log = []
    event = engine.schedule(1.0, EventPriority.JOB, lambda: log.append("x"))
    engine.schedule(2.0, EventPriority.JOB, lambda: log.append("y"))
    event.cancel()
    executed = engine.run()
    assert log == ["y"]
    assert executed == 1


def test_stop_halts_run():
    engine = Engine()
    log = []
    engine.schedule(1.0, EventPriority.JOB, lambda: (log.append(1), engine.stop()))
    engine.schedule(2.0, EventPriority.JOB, lambda: log.append(2))
    engine.run()
    assert log == [1]
    assert engine.pending_events == 1


def test_max_events_bound():
    engine = Engine()
    log = []
    for i in range(5):
        engine.schedule(float(i), EventPriority.JOB, lambda i=i: log.append(i))
    executed = engine.run(max_events=3)
    assert executed == 3
    assert log == [0, 1, 2]


def test_executed_events_counter_accumulates():
    engine = Engine()
    engine.schedule(1.0, EventPriority.JOB, lambda: None)
    engine.run()
    engine.schedule(2.0, EventPriority.JOB, lambda: None)
    engine.run()
    assert engine.executed_events == 2


def test_peek_time_skips_cancelled():
    engine = Engine()
    e1 = engine.schedule(1.0, EventPriority.JOB, lambda: None)
    engine.schedule(2.0, EventPriority.JOB, lambda: None)
    e1.cancel()
    assert engine.peek_time() == 2.0


def test_not_reentrant():
    engine = Engine()

    def reenter():
        engine.run()

    engine.schedule(1.0, EventPriority.JOB, reenter)
    with pytest.raises(SimulationError):
        engine.run()
