"""Golden-file and CLI-level tests for the observability reports.

``tests/data/golden_validate_metrics.json`` is the checked-in report
for ``repro-diag validate --reps 2 --metrics-out``.  Regenerating it
must be a conscious act: any protocol change that moves a counter
shows up here as a byte-level diff, which is the point — the merged
metrics of the validation campaign are part of the repo's behavioural
contract, like the trace goldens.  To regenerate after an intended
change::

    PYTHONPATH=src python -c "
    from repro.runner.sweep import run_validation_sweep
    from repro.obs import run_report, render_json
    _s, snap = run_validation_sweep(repetitions=2, jobs=1, with_metrics=True)
    open('tests/data/golden_validate_metrics.json', 'w').write(
        render_json(run_report('validate', {'reps': 2}, snap)))"
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import REPORT_SCHEMA, load_report, render_json, run_report
from repro.runner.sweep import run_validation_sweep

GOLDEN = Path(__file__).parent / "data" / "golden_validate_metrics.json"


def fresh_report_text(jobs=1):
    _summary, snapshot = run_validation_sweep(repetitions=2, jobs=jobs,
                                              with_metrics=True)
    return render_json(run_report("validate", {"reps": 2}, snapshot))


class TestGoldenReport:
    def test_fresh_run_matches_golden_byte_for_byte(self):
        assert fresh_report_text() == GOLDEN.read_text(encoding="utf-8")

    def test_parallel_run_matches_golden_too(self):
        assert fresh_report_text(jobs=4) == GOLDEN.read_text(encoding="utf-8")

    def test_golden_is_schema_tagged_and_normalised(self):
        report = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert report["schema"] == REPORT_SCHEMA
        assert report["params"] == {"reps": 2}
        # The file itself is in the canonical rendering (so a manual
        # edit that reorders keys fails here, not in CI's diff).
        assert GOLDEN.read_text(encoding="utf-8") == render_json(report)
        # Sanity: the campaign actually produced protocol activity.
        counters = report["metrics"]["counters"]
        assert counters["diag.analysis_rounds"] > 0
        assert counters["vote.hmaj_calls"] > 0


class TestCliReports:
    def test_validate_metrics_out_matches_golden(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main(["validate", "--reps", "2",
                     "--metrics-out", str(out)]) == 0
        assert f"metrics report written to {out}" in capsys.readouterr().out
        assert out.read_text(encoding="utf-8") == \
            GOLDEN.read_text(encoding="utf-8")

    def test_validate_jobs_do_not_change_report(self, tmp_path, capsys):
        paths = []
        for jobs in ("1", "2"):
            path = tmp_path / f"metrics-{jobs}.json"
            assert main(["validate", "--reps", "1", "--jobs", jobs,
                         "--metrics-out", str(path)]) == 0
            paths.append(path)
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_stats_subcommand_renders_and_writes(self, tmp_path, capsys):
        out = tmp_path / "stats.json"
        assert main(["stats", "--nodes", "4", "--rounds", "20",
                     "--scenario", "burst", "--timing",
                     "--metrics-out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "bus.slots_total" in text
        assert "diag.matrix_epsilon_rows" in text
        assert "wall-clock phase timings" in text
        report = load_report(str(out))
        assert report["schema"] == REPORT_SCHEMA
        assert report["params"]["scenario"] == "burst"
        # Timings stay out of the written report: it must be diffable.
        assert "timings" not in report

    @pytest.mark.parametrize("scenario",
                             ["fault-free", "burst", "crash", "noise"])
    def test_stats_scenarios_all_run(self, scenario, capsys):
        assert main(["stats", "--rounds", "10",
                     "--scenario", scenario]) == 0
        assert "scenario=" + scenario in capsys.readouterr().out

    def test_stats_deterministic_across_runs(self, tmp_path, capsys):
        paths = []
        for i in range(2):
            path = tmp_path / f"stats-{i}.json"
            assert main(["stats", "--rounds", "15", "--scenario", "noise",
                         "--seed", "3", "--metrics-out", str(path)]) == 0
            paths.append(path)
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_table2_metrics_out(self, tmp_path, capsys):
        out = tmp_path / "table2.json"
        assert main(["table2", "--metrics-out", str(out)]) == 0
        capsys.readouterr()
        report = load_report(str(out))
        assert report["command"] == "table2"
        assert report["params"] == {"seed": 0}
        assert report["metrics"]["counters"]["diag.analysis_rounds"] > 0
