"""Single-source-of-truth check for the package version.

The version lives in exactly two places that must agree —
``pyproject.toml`` and ``repro.__version__`` — and nowhere else
(``setup.py`` is a metadata-free shim).
"""

import re
from pathlib import Path

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


def _pyproject_version() -> str:
    text = (REPO_ROOT / "pyproject.toml").read_text()
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
    assert match, "pyproject.toml has no version field"
    return match.group(1)


def test_pyproject_and_package_versions_agree():
    assert repro.__version__ == _pyproject_version()


def test_version_is_pep440_like():
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)


def test_setup_py_carries_no_version_literal():
    text = (REPO_ROOT / "setup.py").read_text()
    assert "version" not in text, (
        "setup.py must stay a bare shim; version belongs in pyproject.toml")
