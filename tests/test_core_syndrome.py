"""Unit tests for syndromes and the diagnostic matrix."""

import copy

import pytest

from repro.core.syndrome import (
    EPSILON,
    DiagnosticMatrix,
    is_valid_syndrome,
    make_syndrome,
    opinion_about,
)


class TestEpsilon:
    def test_singleton(self):
        from repro.core.syndrome import _Epsilon
        assert _Epsilon() is EPSILON

    def test_deepcopy_preserves_identity(self):
        assert copy.deepcopy(EPSILON) is EPSILON

    def test_repr(self):
        assert repr(EPSILON) == "ε"


class TestMakeSyndrome:
    def test_freezes_to_tuple(self):
        assert make_syndrome([1, 0, 1]) == (1, 0, 1)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            make_syndrome([1, 2])

    def test_opinion_about_is_one_based(self):
        s = make_syndrome([1, 0, 1, 1])
        assert opinion_about(s, 2) == 0
        assert opinion_about(s, 1) == 1


class TestIsValidSyndrome:
    def test_accepts_tuples_and_lists(self):
        assert is_valid_syndrome((1, 0, 1, 1), 4)
        assert is_valid_syndrome([0, 0, 0, 0], 4)

    def test_rejects_wrong_length(self):
        assert not is_valid_syndrome((1, 0, 1), 4)

    def test_rejects_garbage(self):
        assert not is_valid_syndrome(None, 4)
        assert not is_valid_syndrome("1011", 4)
        assert not is_valid_syndrome((1, 0, 2, 1), 4)
        assert not is_valid_syndrome(42, 4)


class TestDiagnosticMatrix:
    def test_rows_default_to_epsilon(self):
        m = DiagnosticMatrix(4)
        assert m.row(1) is EPSILON

    def test_set_and_get_row(self):
        m = DiagnosticMatrix(4)
        m.set_row(2, (1, 1, 0, 1))
        assert m.row(2) == (1, 1, 0, 1)

    def test_row_length_checked(self):
        m = DiagnosticMatrix(4)
        with pytest.raises(ValueError):
            m.set_row(1, (1, 0))

    def test_column_excludes_self_opinion(self):
        m = DiagnosticMatrix.from_rows([
            (1, 1, 0, 0),
            (1, 0, 0, 0),   # node 2 thinks badly of itself: ignored
            EPSILON,
            (1, 1, 1, 1),
        ])
        # Column 2: opinions of nodes 1, 3, 4 about node 2.
        assert m.column(2) == [1, EPSILON, 1]

    def test_column_order_is_by_sender(self):
        m = DiagnosticMatrix.from_rows([
            (1, 0, 1, 1),
            (1, 1, 1, 1),
            (0, 1, 1, 1),
            (1, 1, 1, 0),
        ])
        assert m.column(1) == [1, 0, 1]
        assert m.column(4) == [1, 1, 1]

    def test_node_bounds_checked(self):
        m = DiagnosticMatrix(4)
        with pytest.raises(ValueError):
            m.column(0)
        with pytest.raises(ValueError):
            m.set_row(5, (1, 1, 1, 1))

    def test_render_paper_table1(self):
        m = DiagnosticMatrix.from_rows([
            (1, 1, 0, 0),
            (1, 1, 0, 0),
            EPSILON,
            EPSILON,
        ])
        text = m.render()
        assert "ε" in text
        lines = text.splitlines()
        assert len(lines) == 2 + 4  # header, separator, four rows
        # The self-opinion is rendered as '-'.
        assert " -" in lines[2]
