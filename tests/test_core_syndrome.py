"""Unit tests for syndromes and the diagnostic matrix."""

import copy

import pytest

from repro.core.syndrome import (
    EPSILON,
    DiagnosticMatrix,
    is_valid_syndrome,
    make_syndrome,
    opinion_about,
)


class TestEpsilon:
    def test_singleton(self):
        from repro.core.syndrome import _Epsilon
        assert _Epsilon() is EPSILON

    def test_deepcopy_preserves_identity(self):
        assert copy.deepcopy(EPSILON) is EPSILON

    def test_repr(self):
        assert repr(EPSILON) == "ε"


class TestMakeSyndrome:
    def test_freezes_to_tuple(self):
        assert make_syndrome([1, 0, 1]) == (1, 0, 1)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            make_syndrome([1, 2])

    def test_opinion_about_is_one_based(self):
        s = make_syndrome([1, 0, 1, 1])
        assert opinion_about(s, 2) == 0
        assert opinion_about(s, 1) == 1


class TestIsValidSyndrome:
    def test_accepts_tuples_and_lists(self):
        assert is_valid_syndrome((1, 0, 1, 1), 4)
        assert is_valid_syndrome([0, 0, 0, 0], 4)

    def test_rejects_wrong_length(self):
        assert not is_valid_syndrome((1, 0, 1), 4)

    def test_rejects_garbage(self):
        assert not is_valid_syndrome(None, 4)
        assert not is_valid_syndrome("1011", 4)
        assert not is_valid_syndrome((1, 0, 2, 1), 4)
        assert not is_valid_syndrome(42, 4)


class TestDiagnosticMatrix:
    def test_rows_default_to_epsilon(self):
        m = DiagnosticMatrix(4)
        assert m.row(1) is EPSILON

    def test_set_and_get_row(self):
        m = DiagnosticMatrix(4)
        m.set_row(2, (1, 1, 0, 1))
        assert m.row(2) == (1, 1, 0, 1)

    def test_row_length_checked(self):
        m = DiagnosticMatrix(4)
        with pytest.raises(ValueError):
            m.set_row(1, (1, 0))

    def test_column_excludes_self_opinion(self):
        m = DiagnosticMatrix.from_rows([
            (1, 1, 0, 0),
            (1, 0, 0, 0),   # node 2 thinks badly of itself: ignored
            EPSILON,
            (1, 1, 1, 1),
        ])
        # Column 2: opinions of nodes 1, 3, 4 about node 2.
        assert m.column(2) == [1, EPSILON, 1]

    def test_column_order_is_by_sender(self):
        m = DiagnosticMatrix.from_rows([
            (1, 0, 1, 1),
            (1, 1, 1, 1),
            (0, 1, 1, 1),
            (1, 1, 1, 0),
        ])
        assert m.column(1) == [1, 0, 1]
        assert m.column(4) == [1, 1, 1]

    def test_node_bounds_checked(self):
        m = DiagnosticMatrix(4)
        with pytest.raises(ValueError):
            m.column(0)
        with pytest.raises(ValueError):
            m.set_row(5, (1, 1, 1, 1))

    def test_render_paper_table1(self):
        m = DiagnosticMatrix.from_rows([
            (1, 1, 0, 0),
            (1, 1, 0, 0),
            EPSILON,
            EPSILON,
        ])
        text = m.render()
        assert "ε" in text
        lines = text.splitlines()
        assert len(lines) == 2 + 4  # header, separator, four rows
        # The self-opinion is rendered as '-'.
        assert " -" in lines[2]


class TestMakeSyndromeNormalisation:
    def test_bools_normalise_to_ints(self):
        s = make_syndrome([True, False, 1, 0])
        assert s == (1, 0, 1, 0)
        assert all(type(bit) is int for bit in s)

    def test_floats_normalise_to_ints(self):
        s = make_syndrome([1.0, 0.0])
        assert s == (1, 0)
        assert all(type(bit) is int for bit in s)

    def test_json_serialises_as_numbers(self):
        import json
        assert json.dumps(make_syndrome([True, False])) == "[1, 0]"

    def test_validation_precedes_normalisation(self):
        # [True, 2] must raise, not silently coerce the 2.
        with pytest.raises(ValueError):
            make_syndrome([True, 2])

    def test_all_int_input_is_returned_unchanged(self):
        bits = (1, 0, 1)
        assert make_syndrome(bits) is bits


class TestInternCache:
    def setup_method(self):
        from repro.core.syndrome import clear_intern_cache
        clear_intern_cache()

    def teardown_method(self):
        from repro.core.syndrome import clear_intern_cache
        clear_intern_cache()

    def test_interns_to_one_object(self):
        from repro.core.syndrome import intern_syndrome
        a = intern_syndrome(tuple([1, 0, 1, 1]))
        b = intern_syndrome(tuple([1, 0, 1, 1]))
        assert a is b

    def test_scoped_per_length(self):
        from repro.core.syndrome import intern_cache_stats, intern_syndrome
        intern_syndrome((1, 0))
        intern_syndrome((1, 0, 1))
        stats = intern_cache_stats()
        assert stats["lengths"] == 2
        assert stats["entries"] == 2

    def test_clear_single_length(self):
        from repro.core.syndrome import (clear_intern_cache,
                                         intern_cache_stats, intern_syndrome)
        intern_syndrome((1, 0))
        intern_syndrome((1, 0, 1))
        clear_intern_cache(2)
        stats = intern_cache_stats()
        assert stats["lengths"] == 1
        assert stats["entries"] == 1

    def test_saturation_evicts_only_that_length(self):
        import itertools

        import repro.core.syndrome as syn

        class Counter:
            calls = 0

            def inc(self, n=1):
                Counter.calls += n

        counter = Counter()
        syn.intern_syndrome((1, 0, 1), counter)  # other length, untouched
        before = syn.intern_cache_stats()["evictions"]
        limit = syn._INTERN_LIMIT
        for bits in itertools.islice(itertools.product((0, 1), repeat=13),
                                     limit + 1):
            syn.intern_syndrome(bits, counter)
        stats = syn.intern_cache_stats()
        assert stats["evictions"] == before + 1
        assert Counter.calls == 1
        # The length-3 cache survived the length-13 eviction.
        assert syn.intern_syndrome((1, 0, 1)) is not None
        assert stats["lengths"] == 2


class TestColumnCache:
    def test_column_is_cached(self):
        m = DiagnosticMatrix.from_rows([
            (1, 0, 1, 1),
            (1, 1, 1, 1),
            (0, 1, 1, 1),
            (1, 1, 1, 0),
        ])
        assert m.column(2) is m.column(2)

    def test_set_row_invalidates(self):
        m = DiagnosticMatrix.from_rows([
            (1, 0, 1, 1),
            (1, 1, 1, 1),
            (0, 1, 1, 1),
            (1, 1, 1, 0),
        ])
        assert m.column(2) == [0, 1, 1]
        m.set_row(3, (1, 0, 1, 1))
        assert m.column(2) == [0, 0, 1]


class TestDisagreeMask:
    def test_matches_naive_predicate(self):
        m = DiagnosticMatrix.from_rows([
            (1, 1, 0, 0),
            (1, 1, 0, 0),
            EPSILON,
            (1, 1, 1, 1),   # disagrees with cons_hv at columns 3/4
        ])
        cons_hv = [1, 1, 0, 0]
        assert m.disagree_mask(cons_hv) == 0b1000

    def test_self_opinion_ignored(self):
        m = DiagnosticMatrix.from_rows([
            (0, 1, 1),      # only deviates in its own column
            (1, 1, 1),
            (1, 1, 1),
        ])
        assert m.disagree_mask([1, 1, 1]) == 0
