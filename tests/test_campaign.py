"""The campaign engine: store-first execution, resume, fault tolerance.

The acceptance contract: a campaign run twice hits the store 100% on
the second pass with byte-identical results and merged metrics to an
uncached ``jobs=1`` run; a killed campaign resumes into the same
bytes; an always-failing task is retried with backoff and surfaced as
a structured error without aborting the rest of the sweep.
"""

import json
import os

import pytest

from repro.campaign import (
    CampaignState,
    InterruptedCampaignError,
    build_campaign,
    campaign_id,
    campaign_tasks,
    load_all_states,
    result_document,
    run_campaign,
    table2_campaign,
    validation_campaign,
)
from repro.experiments.table2 import table2
from repro.experiments.validation import run_validation_campaign
from repro.obs import MetricsRegistry
from repro.runner.pool import TaskError
from repro.runner.sweep import run_table2_sweep, run_validation_sweep
from repro.spec import ClusterSpec, ProtocolSpec, RunSpec
from repro.store import ResultStore

REPS = 1


def _spec(seed=0, n_rounds=8, reducer=None):
    return RunSpec(
        protocol=ProtocolSpec(n_nodes=4, penalty_threshold=3,
                              reward_threshold=50,
                              criticalities=(1, 1, 1, 1)),
        cluster=ClusterSpec(seed=seed),
        n_rounds=n_rounds,
        reducer=reducer,
    )


def _failing_spec(seed=0):
    # An unknown reducer passes spec validation but raises in the
    # worker at reduce time: a deterministic always-failing task.
    return _spec(seed=seed, reducer="no.such.reducer")


@pytest.fixture
def store(tmp_path):
    with ResultStore(str(tmp_path / "store")) as s:
        yield s


class TestStoreFirstExecution:
    def test_second_pass_hits_100_percent(self, tmp_path):
        defn = validation_campaign(repetitions=REPS)
        metrics = MetricsRegistry()
        with ResultStore(str(tmp_path), metrics=metrics) as store:
            cold = run_campaign(defn.labeled_specs, store=store)
            warm = run_campaign(defn.labeled_specs, store=store)
        total = len(defn.labeled_specs)
        assert (cold.hits, cold.misses) == (0, total)
        assert (warm.hits, warm.misses) == (total, 0)
        counters = metrics.snapshot()["counters"]
        assert counters["store.miss"] == total
        assert counters["store.hit"] == total

    def test_warm_run_byte_identical_to_uncached_jobs1(self, store):
        defn = validation_campaign(repetitions=REPS)
        uncached = run_campaign(defn.labeled_specs, jobs=1)
        run_campaign(defn.labeled_specs, store=store)
        warm = run_campaign(defn.labeled_specs, store=store)
        assert warm.results == uncached.results
        assert warm.merged_snapshot() == uncached.merged_snapshot()
        doc_warm = result_document(defn, warm)
        doc_ref = result_document(defn, uncached)
        assert json.dumps(doc_warm, sort_keys=True) == \
            json.dumps(doc_ref, sort_keys=True)

    def test_jobs_equivalence_through_engine(self, store):
        defn = validation_campaign(repetitions=REPS)
        serial = run_campaign(defn.labeled_specs, jobs=1)
        parallel = run_campaign(defn.labeled_specs, jobs=4)
        assert parallel.results == serial.results
        assert parallel.merged_snapshot() == serial.merged_snapshot()

    def test_aggregates_match_serial_campaigns(self, store):
        summary = run_validation_sweep(repetitions=REPS, store=store)
        serial = run_validation_campaign(repetitions=REPS)
        assert summary.results == serial.results
        # second pass: pure cache replay, same aggregate
        warm = run_validation_sweep(repetitions=REPS, store=store)
        assert warm.results == serial.results

    def test_table2_through_store(self, store):
        assert run_table2_sweep(seed=0, store=store) == table2(seed=0)
        assert run_table2_sweep(seed=0, store=store) == table2(seed=0)


class TestCheckpointResume:
    def test_partial_store_resumes_without_rerunning(self, store):
        defn = validation_campaign(repetitions=REPS)
        tasks = campaign_tasks(defn.labeled_specs)
        # Simulate a killed campaign: only the first half committed.
        half = len(tasks) // 2
        reference = run_campaign(defn.labeled_specs, jobs=1)
        for task, result, snapshot in zip(tasks[:half], reference.results,
                                          reference.snapshots):
            store.put(task.key, {"result": result, "snapshot": snapshot})
        resumed = run_campaign(defn.labeled_specs, store=store)
        assert resumed.hits == half
        assert resumed.misses == len(tasks) - half
        assert resumed.results == reference.results
        assert resumed.merged_snapshot() == reference.merged_snapshot()

    def test_unfinished_state_requires_resume_flag(self, store):
        defn = validation_campaign(repetitions=REPS)
        tasks = campaign_tasks(defn.labeled_specs)
        cid = campaign_id(t.key for t in tasks)
        path = os.path.join(store.campaign_dir, cid + ".json")
        CampaignState(campaign_id=cid, name="validate",
                      total=len(tasks), completed=3).save(path)
        with pytest.raises(InterruptedCampaignError, match="--resume"):
            run_campaign(defn.labeled_specs, store=store)
        # resume=True proceeds and completes the state
        result = run_campaign(defn.labeled_specs, store=store, resume=True)
        assert result.ok
        assert CampaignState.load(path).status == "completed"

    def test_state_file_tracks_progress(self, store):
        defn = validation_campaign(repetitions=REPS)
        run_campaign(defn.labeled_specs, store=store, name="validate")
        tasks = campaign_tasks(defn.labeled_specs)
        state = CampaignState.load(os.path.join(
            store.campaign_dir,
            campaign_id(t.key for t in tasks) + ".json"))
        assert state.status == "completed"
        assert state.completed == state.total == len(tasks)
        assert state.failed == 0

    def test_corrupt_state_file_treated_as_absent(self, tmp_path):
        path = str(tmp_path / "state.json")
        with open(path, "w") as fh:
            fh.write("{not json")
        assert CampaignState.load(path) is None


class TestFaultTolerance:
    def test_empty_campaign_returns_empty_result(self, store):
        # An empty spec list is a valid degenerate campaign: it must
        # return an empty (and ok) result without touching the store's
        # checkpoint machinery or spinning up any backend.
        result = run_campaign([], store=store)
        assert result.tasks == []
        assert result.results == []
        assert result.snapshots == []
        assert result.ok
        assert load_all_states(store.campaign_dir) == []

    def test_failing_task_does_not_abort_siblings(self):
        sleeps = []
        metrics = MetricsRegistry()
        result = run_campaign(
            [("ok", _spec(seed=1)), ("boom", _failing_spec())],
            retries=2, metrics=metrics, sleep=sleeps.append)
        assert not isinstance(result.results[0], TaskError)
        assert isinstance(result.results[1], TaskError)
        error = result.results[1]
        assert error.index == 1
        assert error.error_type == "ValueError"
        assert "no.such.reducer" in error.message
        # bounded exponential backoff: one sleep per retry round
        assert sleeps == [0.25, 0.5]
        counters = metrics.snapshot()["counters"]
        assert counters["campaign.retries"] == 2
        assert counters["campaign.failed"] == 1

    def test_backoff_is_capped(self):
        sleeps = []
        run_campaign([("boom", _failing_spec())], retries=5,
                     backoff=1.0, max_backoff=2.0, sleep=sleeps.append)
        assert sleeps == [1.0, 2.0, 2.0, 2.0, 2.0]

    def test_timeout_surfaces_as_structured_error(self):
        slow = _spec(seed=3, n_rounds=200000)
        result = run_campaign([("slow", slow)], retries=0,
                              task_timeout=0.05, sleep=lambda _t: None)
        assert isinstance(result.results[0], TaskError)
        assert result.results[0].timed_out

    def test_timeout_in_pool_keeps_siblings(self):
        slow = _spec(seed=3, n_rounds=200000)
        result = run_campaign([("slow", slow), ("ok", _spec(seed=1))],
                              jobs=2, retries=0, task_timeout=0.1,
                              sleep=lambda _t: None)
        assert isinstance(result.results[0], TaskError)
        assert not isinstance(result.results[1], TaskError)

    def test_failed_tasks_recorded_in_state(self, store):
        result = run_campaign([("boom", _failing_spec())], store=store,
                              retries=0, sleep=lambda _t: None)
        assert not result.ok
        states = load_all_states(store.campaign_dir)
        assert states and states[0].status == "failed"
        assert states[0].failed == 1

    def test_failures_excluded_from_result_document(self):
        defn = build_campaign("validate", reps=REPS)
        result = run_campaign(
            [("boom", _failing_spec())], retries=0, sleep=lambda _t: None)
        doc = result_document(defn, result)
        assert doc["tasks"][0]["error"]["type"] == "ValueError"
        assert "result" not in doc["tasks"][0]


class TestDefinitions:
    def test_table2_definition_matches_reference(self):
        defn = table2_campaign(seed=0)
        result = run_campaign(defn.labeled_specs)
        assert defn.aggregate(result.results) == table2(seed=0)

    def test_render_produces_tables(self):
        defn = validation_campaign(repetitions=REPS)
        result = run_campaign(defn.labeled_specs)
        text = defn.render(defn.aggregate(result.results))
        assert "all passed: True" in text

    def test_build_campaign_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown campaign"):
            build_campaign("figure9")
