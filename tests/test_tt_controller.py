"""Unit tests for the communication controller."""

import pytest

from repro.sim.trace import Trace
from repro.tt.controller import CommunicationController, SenderStatus


@pytest.fixture
def ctrl() -> CommunicationController:
    return CommunicationController(node_id=1, n_nodes=4, trace=Trace())


def test_initial_state_all_invalid(ctrl):
    assert ctrl.read_validity()[1:] == [0, 0, 0, 0]
    assert ctrl.read_interface()[1:] == [None] * 4


def test_valid_delivery_updates_value_and_bit(ctrl):
    ctrl.deliver(sender=2, round_index=0, slot=2, valid=True, payload="p")
    assert ctrl.read_validity()[2] == 1
    assert ctrl.read_interface()[2] == "p"


def test_invalid_delivery_keeps_stale_value(ctrl):
    # Sec. 3: the validity bit is cleared but the interface variable
    # keeps its previous (stale) content.
    ctrl.deliver(sender=2, round_index=0, slot=2, valid=True, payload="old")
    ctrl.deliver(sender=2, round_index=1, slot=2, valid=False, payload=None)
    assert ctrl.read_validity()[2] == 0
    assert ctrl.read_interface()[2] == "old"


def test_validity_updated_every_round(ctrl):
    ctrl.deliver(sender=3, round_index=0, slot=3, valid=False, payload=None)
    assert ctrl.read_validity()[3] == 0
    ctrl.deliver(sender=3, round_index=1, slot=3, valid=True, payload="x")
    assert ctrl.read_validity()[3] == 1


def test_collision_detector_tracks_own_slot(ctrl):
    ctrl.deliver(sender=1, round_index=4, slot=1, valid=True, payload="mine")
    ctrl.deliver(sender=1, round_index=5, slot=1, valid=False, payload=None)
    assert ctrl.collision_ok(4) is True
    assert ctrl.collision_ok(5) is False
    # Unknown rounds default to "not readable".
    assert ctrl.collision_ok(99) is False


def test_other_senders_do_not_touch_collision(ctrl):
    ctrl.deliver(sender=2, round_index=4, slot=2, valid=True, payload="x")
    assert ctrl.collision_ok(4) is False


def test_ignored_sender_forced_invalid(ctrl):
    ctrl.set_sender_status(2, SenderStatus.IGNORED)
    ctrl.deliver(sender=2, round_index=0, slot=2, valid=True, payload="p")
    assert ctrl.read_validity()[2] == 0
    assert ctrl.read_interface()[2] is None


def test_observed_sender_still_delivers(ctrl):
    ctrl.set_sender_status(2, SenderStatus.OBSERVED)
    ctrl.deliver(sender=2, round_index=0, slot=2, valid=True, payload="p")
    assert ctrl.read_validity()[2] == 1
    assert ctrl.sender_status(2) is SenderStatus.OBSERVED


def test_reactivated_sender_delivers_again(ctrl):
    ctrl.set_sender_status(2, SenderStatus.IGNORED)
    ctrl.deliver(sender=2, round_index=0, slot=2, valid=True, payload="a")
    ctrl.set_sender_status(2, SenderStatus.ACTIVE)
    ctrl.deliver(sender=2, round_index=1, slot=2, valid=True, payload="b")
    assert ctrl.read_validity()[2] == 1
    assert ctrl.read_interface()[2] == "b"


def test_sender_status_validation(ctrl):
    with pytest.raises(ValueError):
        ctrl.set_sender_status(0, SenderStatus.IGNORED)
    with pytest.raises(ValueError):
        ctrl.set_sender_status(5, SenderStatus.IGNORED)


def test_out_buffer_roundtrip(ctrl):
    assert ctrl.build_payload() is None
    ctrl.write_interface((1, 0, 1, 1))
    assert ctrl.build_payload() == {"diag": (1, 0, 1, 1)}


def test_channel_multiplexing(ctrl):
    ctrl.write_interface((1, 1, 1, 1))            # diagnostic middleware
    ctrl.write_interface({"speed": 88}, channel="app")  # application job
    payload = ctrl.build_payload()
    assert payload == {"diag": (1, 1, 1, 1), "app": {"speed": 88}}
    # Receivers extract per channel.
    ctrl.deliver(sender=2, round_index=0, slot=2, valid=True,
                 payload=payload)
    assert ctrl.read_interface(channel="diag")[2] == (1, 1, 1, 1)
    assert ctrl.read_interface(channel="app")[2] == {"speed": 88}
    assert ctrl.read_interface(channel="missing")[2] is None


def test_channel_of_tolerates_forged_payloads(ctrl):
    # A malicious fault can replace the whole frame payload; channel
    # extraction hands the garbage through for the consumer to reject.
    assert ctrl.channel_of("garbage", "diag") == "garbage"
    assert ctrl.channel_of({"diag": 1}, "diag") == 1


def test_transmission_toggle(ctrl):
    assert ctrl.tx_enabled
    ctrl.disable_transmission()
    assert not ctrl.tx_enabled
    ctrl.enable_transmission()
    assert ctrl.tx_enabled


def test_delivery_listener_invoked_with_masked_payload(ctrl):
    seen = []
    ctrl.add_delivery_listener(
        lambda **kw: seen.append((kw["sender"], kw["valid"], kw["payload"])))
    ctrl.deliver(sender=2, round_index=0, slot=2, valid=True, payload="p")
    ctrl.deliver(sender=3, round_index=0, slot=3, valid=False, payload="junk")
    assert seen == [(2, True, "p"), (3, False, None)]


def test_listener_sees_ignored_sender_as_invalid(ctrl):
    seen = []
    ctrl.add_delivery_listener(lambda **kw: seen.append(kw["valid"]))
    ctrl.set_sender_status(2, SenderStatus.IGNORED)
    ctrl.deliver(sender=2, round_index=0, slot=2, valid=True, payload="p")
    assert seen == [False]


def test_snapshots_are_copies(ctrl):
    ctrl.deliver(sender=2, round_index=0, slot=2, valid=True, payload="p")
    snap = ctrl.read_validity()
    snap[2] = 0
    assert ctrl.read_validity()[2] == 1
