"""Online metrics vs trace ground truth, plus end-to-end determinism.

The observability layer is only trustworthy if the counters it
accumulates *online* agree with what the (independently recorded)
trace says happened.  These tests run metered clusters and check the
exact arithmetic relationships between the two, then pin the
determinism contract: same seed means byte-identical reports, across
repeat runs, across ``jobs`` values and across snapshot merge orders.
"""

import json

from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster, LowLatencyCluster
from repro.faults.scenarios import SlotBurst
from repro.obs import (
    MetricsRegistry,
    merge_snapshots,
    render_json,
    run_report,
)
from repro.runner.sweep import run_table2_sweep, run_validation_sweep

N_NODES = 4
ROUNDS = 20
FAULT_ROUND = 5


def run_metered(n_nodes=N_NODES, seed=0, trace_level=2, burst_slots=1,
                penalty_threshold=10 ** 6, timing=False, rounds=ROUNDS):
    registry = MetricsRegistry(timing=timing)
    config = uniform_config(n_nodes, penalty_threshold=penalty_threshold,
                            reward_threshold=50)
    dc = DiagnosedCluster(config, seed=seed, trace_level=trace_level,
                          metrics=registry)
    if burst_slots:
        dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, FAULT_ROUND,
                                          1, burst_slots))
    dc.run_rounds(rounds)
    return dc, registry


# ---------------------------------------------------------------------------
# Counters vs trace-derived ground truth
# ---------------------------------------------------------------------------
class TestGroundTruth:
    def test_bus_slot_counters_match_tx_records(self):
        dc, registry = run_metered()
        counters = registry.snapshot()["counters"]
        tx = dc.trace.select(category="tx")
        assert counters["bus.slots_total"] == len(tx)
        assert counters["bus.slots_total"] == (
            counters.get("bus.slots_fast_path", 0)
            + counters.get("bus.slots_slow_path", 0))
        # Every scheduled slot of every completed round hit the bus.
        assert counters["bus.slots_total"] == N_NODES * ROUNDS

    def test_isolation_counter_matches_isolation_records(self):
        from repro.faults.scenarios import SenderFault

        # Enough consecutive faulty rounds to exceed the small budget.
        registry = MetricsRegistry()
        config = uniform_config(N_NODES, penalty_threshold=3,
                                reward_threshold=50)
        dc = DiagnosedCluster(config, seed=0, metrics=registry)
        dc.cluster.add_scenario(SenderFault(
            1, kind="benign",
            rounds=lambda k: FAULT_ROUND <= k < FAULT_ROUND + 6))
        dc.run_rounds(ROUNDS)
        counters = registry.snapshot()["counters"]
        isolations = dc.trace.select(category="isolation")
        assert counters["diag.isolations"] == len(isolations) > 0
        assert counters["pr.isolation_verdicts"] > 0

    def test_hmaj_call_arithmetic(self):
        dc, registry = run_metered()
        counters = registry.snapshot()["counters"]
        calls = counters["vote.hmaj_calls"]
        # Non-uniform analyses vote one column per node; uniform rounds
        # take the pointer-equality shortcut and never call h_maj.
        analyses = counters["diag.analysis_rounds"]
        uniform = counters["diag.uniform_shortcut_rounds"]
        assert calls == N_NODES * (analyses - uniform)
        # Every call is attributed to exactly one outcome.
        assert calls == (counters.get("vote.hmaj_majority", 0)
                         + counters.get("vote.hmaj_default_healthy", 0)
                         + counters.get("vote.hmaj_bottom", 0))
        # The burst produced at least one genuinely voted analysis.
        assert uniform < analyses
        assert counters["vote.hmaj_majority"] > 0

    def test_analysis_rounds_match_cons_hv_records(self):
        dc, registry = run_metered(trace_level=2)
        counters = registry.snapshot()["counters"]
        cons = dc.trace.select(category="cons_hv")
        assert counters["diag.analysis_rounds"] == len(cons)

    def test_epsilon_histogram_covers_every_analysis(self):
        _dc, registry = run_metered()
        snap = registry.snapshot()
        hist = snap["histograms"]["diag.matrix_epsilon_rows"]
        assert hist["count"] == snap["counters"]["diag.analysis_rounds"]
        # Fault-free rounds dominate: bucket 0 (<= 0 epsilon rows) is
        # the most populated one.
        assert hist["buckets"][0] == max(hist["buckets"])

    def test_penalty_increments_match_cons_hv_zeros(self):
        dc, registry = run_metered(trace_level=2)
        counters = registry.snapshot()["counters"]
        zeros = sum(rec.data["cons_hv"].count(0)
                    for rec in dc.trace.select(category="cons_hv"))
        assert counters["pr.penalty_increments"] == zeros > 0

    def test_hv_transitions_match_trace_transitions(self):
        dc, registry = run_metered(trace_level=2)
        counters = registry.snapshot()["counters"]
        transitions = 0
        for node in range(1, N_NODES + 1):
            vectors = [rec.data["cons_hv"] for rec in
                       dc.trace.select(category="cons_hv", node=node)]
            transitions += sum(1 for a, b in zip(vectors, vectors[1:])
                               if a != b)
        assert counters["diag.hv_transitions"] == transitions > 0

    def test_blackout_round_drives_bottom_fallback(self):
        # A burst spanning 2N slots silences two full rounds: every
        # column of the diagnostic matrix is epsilon, so each vote
        # falls back through BOTTOM (Lemma 3).
        _dc, registry = run_metered(burst_slots=2 * N_NODES)
        counters = registry.snapshot()["counters"]
        assert counters["vote.hmaj_bottom"] > 0
        hist = registry.snapshot()["histograms"]["diag.matrix_epsilon_rows"]
        # The overflow buckets saw the all-epsilon matrices.
        assert sum(hist["buckets"][1:]) > 0

    def test_fault_free_run_is_all_uniform(self):
        _dc, registry = run_metered(burst_slots=0)
        counters = registry.snapshot()["counters"]
        assert (counters["diag.uniform_shortcut_rounds"]
                == counters["diag.analysis_rounds"] > 0)
        assert counters.get("vote.hmaj_calls", 0) == 0
        assert counters["bus.slots_fast_path"] == counters["bus.slots_total"]

    def test_engine_and_cluster_counters(self):
        _dc, registry = run_metered()
        counters = registry.snapshot()["counters"]
        assert counters["cluster.rounds_driven"] == ROUNDS
        assert counters["engine.events_executed"] > 0

    def test_reintegration_counter(self):
        from repro.core.config import IsolationMode
        from repro.core.service import attach_reintegration_everywhere
        from repro.faults.scenarios import SenderFault

        registry = MetricsRegistry()
        config = uniform_config(
            N_NODES, penalty_threshold=2, reward_threshold=100,
            isolation_mode=IsolationMode.OBSERVE,
            halt_on_self_isolation=False,
            reintegration_reward_threshold=8)
        dc = DiagnosedCluster(config, seed=0, metrics=registry)
        attach_reintegration_everywhere(dc)
        dc.cluster.add_scenario(SenderFault(
            2, kind="benign",
            rounds=lambda k: FAULT_ROUND <= k < FAULT_ROUND + 4))
        dc.run_rounds(40)
        counters = registry.snapshot()["counters"]
        reintegrations = dc.trace.select(category="reintegration")
        assert (counters.get("diag.reintegrations", 0)
                == len(reintegrations) > 0)

    def test_membership_counters_match_view_records(self):
        from repro.core.service import MembershipCluster

        registry = MetricsRegistry()
        config = uniform_config(N_NODES, penalty_threshold=3,
                                reward_threshold=50)
        mc = MembershipCluster(config, seed=0, metrics=registry)
        mc.cluster.add_scenario(SlotBurst(mc.cluster.timebase, FAULT_ROUND,
                                          1, 2))
        mc.run_rounds(ROUNDS)
        counters = registry.snapshot()["counters"]
        views = mc.trace.select(category="view")
        assert counters.get("membership.view_changes", 0) == len(views) > 0

    def test_lowlatency_slot_analyses(self):
        registry = MetricsRegistry()
        config = uniform_config(N_NODES, penalty_threshold=3,
                                reward_threshold=50)
        llc = LowLatencyCluster(config, seed=0, metrics=registry)
        llc.run_rounds(10)
        counters = registry.snapshot()["counters"]
        assert counters["lowlat.slot_analyses"] > 0


# ---------------------------------------------------------------------------
# Timing side channel
# ---------------------------------------------------------------------------
class TestTimingSideChannel:
    def test_phase_timers_populated_when_enabled(self):
        _dc, registry = run_metered(timing=True)
        timings = registry.timings_snapshot()
        for phase in ("engine.run", "bus.transmit", "diag.analysis",
                      "diag.pr_update"):
            assert timings[phase]["count"] > 0, phase
            assert timings[phase]["seconds"] >= 0.0

    def test_timing_never_pollutes_snapshot(self):
        _dc, timed = run_metered(timing=True)
        _dc2, untimed = run_metered(timing=False)
        assert timed.snapshot() == untimed.snapshot()


# ---------------------------------------------------------------------------
# Determinism: runs, merge orders, worker counts
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_same_seed_byte_identical_report(self):
        snaps = []
        for _ in range(2):
            _dc, registry = run_metered(seed=7)
            snaps.append(registry.snapshot())
        reports = [render_json(run_report("test", {"seed": 7}, s))
                   for s in snaps]
        assert reports[0] == reports[1]

    def test_different_seeds_still_structurally_equal(self):
        # Counter *names* are seed-independent; only values may move.
        _dc1, r1 = run_metered(seed=1)
        _dc2, r2 = run_metered(seed=2)
        assert (sorted(r1.snapshot()["counters"])
                == sorted(r2.snapshot()["counters"]))

    def test_validation_sweep_jobs_invariant(self):
        serial = run_validation_sweep(repetitions=1, jobs=1,
                                      with_metrics=True)
        parallel = run_validation_sweep(repetitions=1, jobs=4,
                                        with_metrics=True)
        assert serial[0].results == parallel[0].results
        assert (render_json(run_report("validate", {"reps": 1}, serial[1]))
                == render_json(run_report("validate", {"reps": 1},
                                          parallel[1])))

    def test_validation_sweep_metrics_match_unmetered_verdicts(self):
        summary_plain = run_validation_sweep(repetitions=1, jobs=1)
        summary_metered, merged = run_validation_sweep(repetitions=1, jobs=1,
                                                       with_metrics=True)
        assert summary_plain.results == summary_metered.results
        assert merged["counters"]["diag.analysis_rounds"] > 0

    def test_table2_sweep_with_metrics_matches_plain(self):
        plain = run_table2_sweep(jobs=1)
        rows, merged = run_table2_sweep(jobs=2, with_metrics=True)
        assert rows == plain
        # Budget runs execute at trace_level=0; the metrics registry is
        # their only online observability and must still be populated.
        assert merged["counters"]["diag.analysis_rounds"] > 0
        assert merged["counters"]["pr.penalty_increments"] > 0

    def test_merged_sweep_equals_manual_merge_any_order(self):
        _summary, merged = run_validation_sweep(repetitions=1, jobs=1,
                                                with_metrics=True)
        # Re-merge the per-task snapshots in reverse order by rerunning
        # the tasks serially ourselves.
        from repro.runner.pool import run_tasks
        from repro.runner.sweep import validation_tasks

        tasks = validation_tasks(1, collect_metrics=True)
        results = run_tasks([t for _cls, t in tasks], jobs=1)
        snaps = [snap for _passed, snap in results]
        assert merge_snapshots(snaps) == merged
        assert merge_snapshots(reversed(snaps)) == merged


# ---------------------------------------------------------------------------
# Snapshot helpers on the cluster facades
# ---------------------------------------------------------------------------
def test_metrics_snapshot_helper_with_and_without_registry():
    from repro.obs.registry import empty_snapshot

    config = uniform_config(N_NODES, penalty_threshold=10 ** 6,
                            reward_threshold=50)
    bare = DiagnosedCluster(config, seed=0)
    assert bare.metrics_snapshot() == empty_snapshot()
    registry = MetricsRegistry()
    metered = DiagnosedCluster(config, seed=0, metrics=registry)
    metered.run_rounds(3)
    assert metered.metrics_snapshot() == registry.snapshot()
    assert metered.metrics_snapshot()["counters"]["bus.slots_total"] > 0


def test_metered_run_trace_identical_to_unmetered():
    """Metering must be purely observational: same seed, same trace."""
    dc_metered, _registry = run_metered(burst_slots=2)
    config = uniform_config(N_NODES, penalty_threshold=10 ** 6,
                            reward_threshold=50)
    bare = DiagnosedCluster(config, seed=0, trace_level=2)
    bare.cluster.add_scenario(SlotBurst(bare.cluster.timebase, FAULT_ROUND,
                                        1, 2))
    bare.run_rounds(ROUNDS)
    assert (json.dumps(bare.trace.to_dicts(), sort_keys=True)
            == json.dumps(dc_metered.trace.to_dicts(), sort_keys=True))
