"""Unit tests for the deterministic fault scenarios."""

import pytest

from repro.faults.injector import TransmissionContext
from repro.faults.scenarios import (
    BurstSequence,
    BusBurst,
    PeriodicBurst,
    SenderFault,
    SlotBurst,
    blinking_light,
    crash,
    every_nth_round,
)
from repro.tt.timebase import TimeBase

TB = TimeBase(4, 2.5e-3)


def ctx(round_index, slot, channel=0):
    return TransmissionContext(time=TB.slot_start(round_index, slot),
                               round_index=round_index, slot=slot,
                               sender=slot, receivers=(1, 2, 3, 4),
                               channel=channel, timebase=TB)


def hits(scenario, round_index, slot):
    return bool(list(scenario.directives(ctx(round_index, slot))))


class TestBusBurst:
    def test_covers_overlapping_transmissions_only(self):
        burst = BusBurst(TB.slot_start(0, 2), TB.slot_length)
        assert not hits(burst, 0, 1)
        assert hits(burst, 0, 2)
        assert not hits(burst, 0, 3)

    def test_partial_overlap_still_corrupts(self):
        # Burst that only clips the start of slot 3's transmission.
        start = TB.slot_start(0, 3) - 1e-6
        burst = BusBurst(start, 2e-6)
        assert hits(burst, 0, 3)

    def test_burst_inside_interframe_gap_hits_nothing(self):
        start = TB.delivery_time(0, 1) + 1e-6
        burst = BusBurst(start, (TB.slot_start(0, 2) - start) - 1e-6)
        assert not any(hits(burst, 0, s) for s in range(1, 5))

    def test_positive_duration_required(self):
        with pytest.raises(ValueError):
            BusBurst(0.0, 0.0)


class TestSlotBurst:
    @pytest.mark.parametrize("start_slot", [1, 2, 3, 4])
    def test_single_slot(self, start_slot):
        burst = SlotBurst(TB, 5, start_slot, 1)
        for s in range(1, 5):
            assert hits(burst, 5, s) == (s == start_slot)
        assert not any(hits(burst, 4, s) or hits(burst, 6, s)
                       for s in range(1, 5))

    def test_two_slots_wrap_round_boundary(self):
        burst = SlotBurst(TB, 5, 4, 2)
        assert hits(burst, 5, 4)
        assert hits(burst, 6, 1)
        assert not hits(burst, 6, 2)

    def test_two_full_rounds_blackout(self):
        burst = SlotBurst(TB, 5, 1, 8)
        assert all(hits(burst, 5, s) for s in range(1, 5))
        assert all(hits(burst, 6, s) for s in range(1, 5))
        assert not hits(burst, 7, 1)


class TestPeriodicBurst:
    def test_blinking_light_parameters(self):
        scenario = blinking_light()
        windows = scenario.burst_windows
        assert len(windows) == 50
        start0, end0 = windows[0]
        start1, _ = windows[1]
        assert end0 - start0 == pytest.approx(10e-3)
        # Time to reappearance is end-to-start: 500 ms.
        assert start1 - end0 == pytest.approx(500e-3)

    def test_hits_during_burst_not_during_gap(self):
        scenario = PeriodicBurst(start=0.0, burst_length=10e-3,
                                 time_to_reappearance=500e-3, count=2)
        assert hits(scenario, 0, 1)           # inside burst 1
        assert not hits(scenario, 50, 1)      # inside the gap (t=125 ms)
        burst2_round = TB.round_of(510e-3)
        assert hits(scenario, burst2_round, 1)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            PeriodicBurst(0.0, 1e-3, 1e-3, 0)


class TestBurstSequence:
    def test_lightning_bolt_shape(self):
        scenario = BurstSequence.lightning_bolt(start=0.0)
        windows = scenario.burst_windows
        assert len(windows) == 12  # 1 initial + 160ms + 290ms + 9x500ms
        lengths = [end - start for start, end in windows]
        assert all(l == pytest.approx(40e-3) for l in lengths)
        gaps = [windows[i + 1][0] - windows[i][1] for i in range(11)]
        assert gaps[0] == pytest.approx(160e-3)
        assert gaps[1] == pytest.approx(290e-3)
        assert all(g == pytest.approx(500e-3) for g in gaps[2:])

    def test_explicit_pattern(self):
        seq = BurstSequence(1.0, [(0.0, 0.01), (0.05, 0.02)])
        assert seq.burst_windows == [
            (1.0, pytest.approx(1.01)),
            (pytest.approx(1.06), pytest.approx(1.08))]


class TestSenderFault:
    def test_benign_only_matches_sender(self):
        fault = SenderFault(2, kind="benign")
        assert hits(fault, 0, 2)
        assert not hits(fault, 0, 3)

    def test_round_list_restriction(self):
        fault = SenderFault(2, kind="benign", rounds=[3, 5])
        assert hits(fault, 3, 2) and hits(fault, 5, 2)
        assert not hits(fault, 4, 2)

    def test_round_predicate(self):
        fault = SenderFault(2, kind="benign", rounds=lambda k: k % 2 == 0)
        assert hits(fault, 0, 2) and hits(fault, 4, 2)
        assert not hits(fault, 3, 2)

    def test_asymmetric_requires_receivers(self):
        with pytest.raises(ValueError):
            SenderFault(1, kind="asymmetric")

    def test_malicious_payload_carried(self):
        fault = SenderFault(2, kind="malicious", payload=(0, 0, 0, 0))
        [directive] = list(fault.directives(ctx(0, 2)))
        assert directive.is_malicious
        assert directive.malicious_payload == (0, 0, 0, 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SenderFault(1, kind="weird")


def test_crash_is_permanent_from_round():
    fault = crash(3, from_round=10)
    assert not hits(fault, 9, 3)
    assert hits(fault, 10, 3)
    assert hits(fault, 1000, 3)


def test_every_nth_round_pattern():
    fault = every_nth_round(2, period=2, start_round=6, occurrences=10)
    expected = {6 + 2 * i for i in range(10)}
    for k in range(0, 30):
        assert hits(fault, k, 2) == (k in expected)


def test_every_nth_round_validation():
    with pytest.raises(ValueError):
        every_nth_round(1, period=0, start_round=0, occurrences=1)
