"""Paper-scale validation campaign (marked slow).

Sec. 8 repeats every experiment class 100 times; the default test suite
runs reduced repetitions for speed.  This slow test raises the count to
a statistically meaningful level (20 seeds per class ≈ 360 injections)
and also exercises the campaign across dynamic schedules, where the
seed actually changes the protocol's execution.
"""

import pytest

from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster
from repro.experiments.oracle import check_against_oracle
from repro.experiments.validation import run_validation_campaign
from repro.faults.scenarios import SlotBurst


@pytest.mark.slow
def test_campaign_20_reps_all_pass():
    summary = run_validation_campaign(repetitions=20)
    assert summary.total_injections == 18 * 20
    failing = {cls: rate for cls, rate in summary.pass_rates().items()
               if rate < 1.0}
    assert not failing, failing


@pytest.mark.slow
def test_burst_matrix_with_dynamic_schedules_oracle():
    # Every (burst length, start slot) class under dynamic schedules,
    # scored with the full Theorem 1 oracle.
    for n_slots in (1, 2, 8):
        for start_slot in range(1, 5):
            for seed in range(3):
                config = uniform_config(4, penalty_threshold=10 ** 6,
                                        reward_threshold=10 ** 6)
                dc = DiagnosedCluster(config, seed=seed,
                                      dynamic_schedules=True)
                dc.cluster.add_scenario(SlotBurst(
                    dc.cluster.timebase, 6, start_slot, n_slots))
                dc.run_rounds(20)
                report = check_against_oracle(dc)
                assert report.ok, (n_slots, start_slot, seed,
                                   report.violations[:2])
