"""Unit tests for the broadcast bus (injection composition, channels)."""

import pytest

from repro.faults.injector import InjectionLayer
from repro.faults.scenarios import ChannelBurst, SenderFault
from repro.sim.engine import Engine
from repro.sim.trace import Trace
from repro.tt.bus import Bus
from repro.tt.controller import CommunicationController
from repro.tt.frames import Frame
from repro.tt.timebase import TimeBase


def build_bus(n_nodes=4, n_channels=1):
    engine = Engine()
    tb = TimeBase(n_nodes, 2.5e-3)
    trace = Trace()
    injection = InjectionLayer()
    bus = Bus(engine, tb, injection, trace, n_channels=n_channels)
    controllers = {}
    for i in range(1, n_nodes + 1):
        controllers[i] = CommunicationController(i, n_nodes, trace)
        bus.attach(i, controllers[i])
    return engine, tb, injection, bus, controllers, trace


def run_slot(engine, bus, round_index, slot, payload="data"):
    frame = Frame(sender=slot, round_index=round_index, payload=payload)
    engine.schedule(bus.timebase.slot_start(round_index, slot), 10,
                    lambda: bus.transmit(round_index, slot, frame))
    engine.run()


def test_clean_transmission_reaches_everyone():
    engine, tb, injection, bus, ctrls, trace = build_bus()
    run_slot(engine, bus, 0, 2)
    for i, ctrl in ctrls.items():
        assert ctrl.read_validity()[2] == 1
        assert ctrl.read_interface()[2] == "data"


def test_sender_receives_own_frame_as_collision_check():
    engine, tb, injection, bus, ctrls, trace = build_bus()
    run_slot(engine, bus, 3, 2)
    assert ctrls[2].collision_ok(3) is True


def test_silent_sender_invalid_everywhere():
    engine, tb, injection, bus, ctrls, trace = build_bus()
    engine.schedule(tb.slot_start(0, 3), 10,
                    lambda: bus.transmit(0, 3, None))
    engine.run()
    for ctrl in ctrls.values():
        assert ctrl.read_validity()[3] == 0
    assert ctrls[3].collision_ok(0) is False
    rec = trace.first("tx", slot=3)
    assert rec.data["sent"] is False
    assert rec.data["fault_class"] == "symmetric_benign"


def test_benign_fault_detected_by_all():
    engine, tb, injection, bus, ctrls, trace = build_bus()
    injection.add(SenderFault(2, kind="benign"))
    run_slot(engine, bus, 0, 2)
    for ctrl in ctrls.values():
        assert ctrl.read_validity()[2] == 0
    assert ctrls[2].collision_ok(0) is False
    assert trace.first("tx", slot=2).data["fault_class"] == "symmetric_benign"


def test_asymmetric_fault_affects_only_subset():
    engine, tb, injection, bus, ctrls, trace = build_bus()
    injection.add(SenderFault(2, kind="asymmetric", detectable_by=[3]))
    run_slot(engine, bus, 0, 2)
    assert ctrls[3].read_validity()[2] == 0
    for i in (1, 2, 4):
        assert ctrls[i].read_validity()[2] == 1
    # Sender's collision detector passes: the frame was on the bus.
    assert ctrls[2].collision_ok(0) is True
    assert trace.first("tx", slot=2).data["fault_class"] == "asymmetric"


def test_malicious_fault_delivers_forged_payload_as_valid():
    engine, tb, injection, bus, ctrls, trace = build_bus()
    injection.add(SenderFault(2, kind="malicious", payload="forged"))
    run_slot(engine, bus, 0, 2, payload="real")
    for ctrl in ctrls.values():
        assert ctrl.read_validity()[2] == 1
        assert ctrl.read_interface()[2] == "forged"
    assert trace.first("tx", slot=2).data["fault_class"] == "symmetric_malicious"


def test_replicated_bus_masks_single_channel_fault():
    engine, tb, injection, bus, ctrls, trace = build_bus(n_channels=2)
    # Channel 0 disturbed for the whole first round.
    injection.add(ChannelBurst(channel=0, start=0.0, duration=tb.round_length))
    run_slot(engine, bus, 0, 2)
    for ctrl in ctrls.values():
        assert ctrl.read_validity()[2] == 1  # channel 1 delivered


def test_replicated_bus_fails_when_all_channels_hit():
    engine, tb, injection, bus, ctrls, trace = build_bus(n_channels=2)
    injection.add(ChannelBurst(channel=0, start=0.0, duration=tb.round_length))
    injection.add(ChannelBurst(channel=1, start=0.0, duration=tb.round_length))
    run_slot(engine, bus, 0, 2)
    for ctrl in ctrls.values():
        assert ctrl.read_validity()[2] == 0


def test_malicious_channel_beats_correct_later_channel():
    # Documented composition rule: the receiver takes the first channel
    # passing local detection; a malicious frame passes.
    engine, tb, injection, bus, ctrls, trace = build_bus(n_channels=2)
    injection.add(SenderFault(2, kind="malicious", payload="forged",
                              cause="mal"))

    # Restrict the malicious effect to channel 0 by wrapping directives.
    class Channel0Only:
        def __init__(self, inner):
            self.inner = inner

        def directives(self, ctx):
            if ctx.channel == 0:
                yield from self.inner.directives(ctx)

    injection._scenarios[0] = Channel0Only(injection._scenarios[0])
    run_slot(engine, bus, 0, 2, payload="real")
    for ctrl in ctrls.values():
        assert ctrl.read_interface()[2] == "forged"


def test_detectable_dominates_malicious_composition():
    engine, tb, injection, bus, ctrls, trace = build_bus()
    injection.add(SenderFault(2, kind="malicious", payload="forged"))
    injection.add(SenderFault(2, kind="benign"))
    run_slot(engine, bus, 0, 2, payload="real")
    for ctrl in ctrls.values():
        assert ctrl.read_validity()[2] == 0


def test_delivery_happens_at_tx_window_end():
    engine, tb, injection, bus, ctrls, trace = build_bus()
    times = []
    ctrls[1].add_delivery_listener(lambda **kw: times.append(kw["time"]))
    run_slot(engine, bus, 0, 2)
    assert times == [pytest.approx(tb.delivery_time(0, 2))]


def test_bus_requires_positive_channels():
    engine = Engine()
    tb = TimeBase(4, 2.5e-3)
    with pytest.raises(ValueError):
        Bus(engine, tb, InjectionLayer(), Trace(), n_channels=0)
