"""Tests for the burst-overlap model and the Table 4 sensitivity harness."""

import pytest

from repro.core.config import CriticalityClass as C
from repro.experiments.sensitivity import band, phase_sweep, run_phase
from repro.faults.injector import TransmissionContext
from repro.faults.scenarios import BusBurst
from repro.tt.timebase import TimeBase

TB = TimeBase(4, 2.5e-3)


def ctx(round_index, slot):
    return TransmissionContext(time=TB.slot_start(round_index, slot),
                               round_index=round_index, slot=slot,
                               sender=slot, receivers=(1, 2, 3, 4),
                               channel=0, timebase=TB)


def hits(scenario, round_index, slot):
    return bool(list(scenario.directives(ctx(round_index, slot))))


class TestMinOverlap:
    def test_default_any_overlap_corrupts(self):
        start = TB.slot_start(0, 2) + 0.3 * TB.slot_length
        burst = BusBurst(start, 1e-6)
        assert hits(burst, 0, 2)

    def test_marginal_clip_survives_with_threshold(self):
        # The burst covers only the last 10% of slot 2's tx window.
        tx_start, tx_end = TB.tx_window(0, 2)
        start = tx_end - 0.1 * (tx_end - tx_start)
        burst = BusBurst(start, 1e-3, min_overlap=0.5)
        assert not hits(burst, 0, 2)
        # But a fully covered later slot is corrupted.
        assert hits(burst, 0, 3)

    def test_threshold_boundary(self):
        tx_start, tx_end = TB.tx_window(0, 2)
        width = tx_end - tx_start
        # Cover exactly 60% of the window with threshold 50%.
        burst = BusBurst(tx_start, 0.6 * width, min_overlap=0.5)
        assert hits(burst, 0, 2)
        burst2 = BusBurst(tx_start, 0.4 * width, min_overlap=0.5)
        assert not hits(burst2, 0, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            BusBurst(0.0, 1e-3, min_overlap=1.0)


class TestSensitivityHarness:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            run_phase(1.0)

    @pytest.mark.slow
    def test_aligned_zero_overlap_matches_table4(self):
        point = run_phase(0.0, min_overlap=0.0, horizon=27.0)
        assert point.times[C.SC] == pytest.approx(0.520, abs=0.01)

    @pytest.mark.slow
    def test_band_spans_phases(self):
        points = phase_sweep(phases=(0.0, 0.3), overlaps=(0.0, 0.9))
        b = band(points, C.SR)
        assert b["min"] < b["max"]
        # The paper's SR value lies inside the (phase x overlap) band.
        assert b["min"] <= 4.595 <= b["max"] + 0.05
