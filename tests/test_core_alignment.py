"""Unit tests for read and send alignment."""

import pytest

from repro.core.alignment import diagnosed_round, read_align, select_dissemination


class TestReadAlign:
    def test_l_zero_takes_all_current(self):
        assert read_align(["p1", "p2"], ["c1", "c2"], 0) == ["c1", "c2"]

    def test_l_n_takes_all_previous(self):
        assert read_align(["p1", "p2"], ["c1", "c2"], 2) == ["p1", "p2"]

    def test_mixed_split(self):
        prev = ["p1", "p2", "p3", "p4"]
        curr = ["c1", "c2", "c3", "c4"]
        assert read_align(prev, curr, 2) == ["p1", "p2", "c3", "c4"]

    def test_paper_figure2_example(self):
        # Fig. 2: l_i = 2 at round k -> dm_1, dm_2 from round k (so the
        # previous-round values come from the buffer), dm_3, dm_4 from
        # the current snapshot (they were sent in round k-1).
        prev = ["dm1(k-1)", "dm2(k-1)", "dm3(k-2)", "dm4(k-2)"]
        curr = ["dm1(k)", "dm2(k)", "dm3(k-1)", "dm4(k-1)"]
        aligned = read_align(prev, curr, 2)
        assert aligned == ["dm1(k-1)", "dm2(k-1)", "dm3(k-1)", "dm4(k-1)"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            read_align([1], [1, 2], 0)

    def test_l_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            read_align([1, 2], [1, 2], 3)
        with pytest.raises(ValueError):
            read_align([1, 2], [1, 2], -1)

    def test_reconstruction_property(self):
        # For any split point, alignment reconstructs exactly the
        # previous-round vector when prev holds rounds k-1 values for
        # the first l entries and curr holds them for the rest.
        n = 6
        truth = [f"sent(k-1)[{j}]" for j in range(n)]
        for l in range(n + 1):
            prev = truth[:l] + [f"sent(k-2)[{j}]" for j in range(l, n)]
            curr = [f"sent(k)[{j}]" for j in range(l)] + truth[l:]
            assert read_align(prev, curr, l) == truth


class TestSelectDissemination:
    AL = ["al"]
    PREV = ["prev"]

    def test_global_fast_path_sends_fresh(self):
        assert select_dissemination(self.AL, self.PREV, True, True) == ["al"]
        # Line 7 applies regardless of the local predicate.
        assert select_dissemination(self.AL, self.PREV, False, True) == ["al"]

    def test_send_curr_defers_to_previous(self):
        assert select_dissemination(self.AL, self.PREV, True, False) == ["prev"]

    def test_late_job_sends_fresh(self):
        assert select_dissemination(self.AL, self.PREV, False, False) == ["al"]

    def test_returns_copies(self):
        out = select_dissemination(self.AL, self.PREV, False, False)
        out[0] = "mutated"
        assert self.AL == ["al"]


class TestDiagnosedRound:
    def test_lemma1_offsets(self):
        assert diagnosed_round(10, all_send_curr_round=True) == 8
        assert diagnosed_round(10, all_send_curr_round=False) == 7
