"""Byte-for-byte CLI output contracts.

The experiment verbs were refactored onto declarative TableSpecs; the
goldens in tests/data/golden_cli/ were captured from the pre-refactor
CLI, so these tests pin the acceptance criterion: routing a verb
through the results pipeline changed nothing about its stdout, down to
the byte.  The results verb family is exercised over the checked-in
fixture document with the same golden discipline.
"""

import json
import os

import pytest

from repro.cli import main
from repro.results.plots import MATPLOTLIB_AVAILABLE

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "data", "golden_cli")
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "data", "results")
FIXTURE = os.path.join(RESULTS_DIR, "rare_events_reps2.doc.json")


def golden(name):
    with open(os.path.join(GOLDEN_DIR, name), "r", encoding="utf-8") as fh:
        return fh.read()


class TestExperimentVerbGoldens:
    @pytest.mark.parametrize("argv,name", [
        (["demo", "--seed", "1"], "demo.txt"),
        (["table2"], "table2.txt"),
        (["table4"], "table4.txt"),
        (["figure3"], "figure3.txt"),
        (["portability"], "portability.txt"),
        (["resilience"], "resilience.txt"),
        (["discrimination", "--reps", "2"], "discrimination.txt"),
        (["validate", "--reps", "1"], "validate.txt"),
    ], ids=lambda v: v if isinstance(v, str) else " ".join(v))
    def test_stdout_is_byte_identical_to_pre_refactor(self, capsys,
                                                      argv, name):
        assert main(argv) == 0
        assert capsys.readouterr().out == golden(name)


class TestResultsRenderCli:
    @pytest.mark.parametrize("fmt,name", [
        ("ascii", "golden.txt"),
        ("md", "golden.md"),
        ("markdown", "golden.md"),
        ("latex", "golden.tex"),
        ("tex", "golden.tex"),
        ("csv", "golden.csv"),
        ("json", "golden.json"),
    ])
    def test_render_document_matches_golden(self, capsys, fmt, name):
        assert main(["results", "render", FIXTURE, "--format", fmt]) == 0
        out = capsys.readouterr().out
        with open(os.path.join(RESULTS_DIR, name), "r",
                  encoding="utf-8") as fh:
            assert out == fh.read()

    def test_render_to_file(self, capsys, tmp_path):
        out_path = str(tmp_path / "tables.md")
        assert main(["results", "render", FIXTURE, "--format", "md",
                     "--out", out_path]) == 0
        assert "written to" in capsys.readouterr().out
        with open(os.path.join(RESULTS_DIR, "golden.md"),
                  encoding="utf-8") as fh:
            assert open(out_path, encoding="utf-8").read() == fh.read()

    def test_render_with_store_cache_is_stable(self, capsys, tmp_path):
        argv = ["results", "render", FIXTURE, "--format", "csv",
                "--store", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0          # warm: served from DerivedCache
        assert capsys.readouterr().out == cold

    def test_render_named_campaign_from_store(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["campaign", "run", "rare-events", "--reps", "2",
                     "--store", store]) == 0
        capsys.readouterr()
        assert main(["results", "render", "rare-events", "--reps", "2",
                     "--store", store]) == 0
        out = capsys.readouterr().out
        assert out == golden_results("golden.txt")

    def test_render_named_campaign_missing_results(self, capsys, tmp_path):
        assert main(["results", "render", "validate",
                     "--store", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "store is missing" in err and "campaign run validate" in err

    def test_unknown_table_filter(self, capsys):
        assert main(["results", "render", FIXTURE,
                     "--table", "nonexistent"]) == 2
        assert "no table named" in capsys.readouterr().err

    def test_unreadable_document(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["results", "render", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err


def golden_results(name):
    with open(os.path.join(RESULTS_DIR, name), "r",
              encoding="utf-8") as fh:
        return fh.read().rstrip("\n") + "\n"


class TestResultsDiffCli:
    def test_identical_documents_exit_zero(self, capsys):
        assert main(["results", "diff", FIXTURE, FIXTURE]) == 0
        assert "documents identical" in capsys.readouterr().out

    def test_diverging_documents_exit_one(self, capsys, tmp_path):
        with open(FIXTURE, encoding="utf-8") as fh:
            data = json.load(fh)
        data["params"]["seed"] = 7
        other = tmp_path / "other.json"
        other.write_text(json.dumps(data))
        assert main(["results", "diff", FIXTURE, str(other)]) == 1
        assert "param seed: 0 -> 7" in capsys.readouterr().out

    def test_missing_file_exits_two(self, capsys, tmp_path):
        assert main(["results", "diff", FIXTURE,
                     str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestResultsPlotCli:
    @pytest.mark.skipif(MATPLOTLIB_AVAILABLE,
                        reason="matplotlib installed")
    def test_missing_matplotlib_exits_two(self, capsys, tmp_path):
        assert main(["results", "plot", FIXTURE,
                     "--out-dir", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "requires matplotlib" in err
        assert "results render" in err       # actionable alternative
        assert list(tmp_path.iterdir()) == []

    @pytest.mark.skipif(not MATPLOTLIB_AVAILABLE,
                        reason="matplotlib not installed")
    def test_plot_document_series(self, capsys, tmp_path):  # pragma: no cover
        assert main(["results", "plot", FIXTURE,
                     "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "plot written to" in out
        assert any(p.suffix == ".png" for p in tmp_path.iterdir())
