"""Unit tests for the declarative spec layer (model, build, reducers).

The spec layer's contract: every scenario class is in the registry,
every RunSpec round-trips losslessly through JSON, the digest is a
stable content address, and ``build``/``execute`` assemble exactly the
cluster a hand-wired experiment would.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import channels as channels_module
from repro.faults import processes as processes_module
from repro.faults import scenarios as scenarios_module
from repro.faults.scenarios import SerializableScenario
from repro.spec import (
    PROVENANCE_PREFIX,
    RUNSPEC_SCHEMA,
    SCENARIO_REGISTRY,
    ClusterSpec,
    ProtocolSpec,
    RunSpec,
    ScenarioSpec,
    ScheduleSpec,
    SummaryReducer,
    VariantSpec,
    build,
    execute,
    registered_reducers,
    resolve_reducer,
    run_spec_dict,
    strip_provenance,
)
from repro.core.service import (
    DiagnosedCluster,
    LowLatencyCluster,
    MembershipCluster,
)
from repro.obs import MetricsRegistry


def _protocol(n_nodes=4):
    return ProtocolSpec(n_nodes=n_nodes, penalty_threshold=3,
                        reward_threshold=50,
                        criticalities=(1,) * n_nodes)


class TestScenarioRegistry:
    def test_covers_every_serializable_scenario_class(self):
        expected = set()
        for module in (scenarios_module, processes_module, channels_module):
            for name, obj in vars(module).items():
                if (isinstance(obj, type)
                        and issubclass(obj, SerializableScenario)
                        and obj.__module__ == module.__name__
                        and hasattr(obj, "directives")):
                    expected.add(name)
        assert set(SCENARIO_REGISTRY) == expected
        assert expected  # the registry is not trivially empty

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario type"):
            ScenarioSpec("NoSuchScenario", {})


class TestSpecValidation:
    def test_protocol_spec_round_trips_config(self):
        from repro.core.config import CriticalityClass, automotive_config

        config = automotive_config([CriticalityClass.SC] * 4)
        spec = ProtocolSpec.from_config(config)
        assert spec.to_config() == config

    def test_bad_isolation_mode_rejected(self):
        with pytest.raises(ValueError):
            ProtocolSpec(n_nodes=4, penalty_threshold=3, reward_threshold=50,
                         criticalities=(1, 1, 1, 1), isolation_mode="bogus")

    def test_cluster_spec_range_checks(self):
        with pytest.raises(ValueError):
            ClusterSpec(round_length=0)
        with pytest.raises(ValueError):
            ClusterSpec(tx_fraction=1.0)
        with pytest.raises(ValueError):
            ClusterSpec(n_channels=0)

    def test_schedule_spec_static_requires_exec_after(self):
        with pytest.raises(ValueError):
            ScheduleSpec(kind="static")
        with pytest.raises(ValueError):
            ScheduleSpec(kind="default", exec_after=2)
        assert ScheduleSpec(kind="static", exec_after=[1, 2, 3, 0]
                            ).exec_after == (1, 2, 3, 0)

    def test_variant_spec_constraints(self):
        with pytest.raises(ValueError):
            VariantSpec(service="nope")
        with pytest.raises(ValueError):
            VariantSpec(service="diagnostic", lowlatency_membership=True)
        with pytest.raises(ValueError):
            VariantSpec(service="lowlatency", byzantine_nodes=(2,))

    def test_lowlatency_rejects_non_default_schedule(self):
        with pytest.raises(ValueError):
            RunSpec(protocol=_protocol(),
                    schedule=ScheduleSpec(kind="dynamic"),
                    variant=VariantSpec(service="lowlatency"))

    def test_unknown_field_rejected(self):
        data = RunSpec(protocol=_protocol()).to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown RunSpec fields"):
            RunSpec.from_dict(data)

    def test_unknown_schema_rejected(self):
        data = RunSpec(protocol=_protocol()).to_dict()
        data["spec"] = "repro-runspec/99"
        with pytest.raises(ValueError, match="unsupported spec schema"):
            RunSpec.from_dict(data)


def _variant_matrix():
    variants = []
    for service in ("diagnostic", "membership"):
        for bitset in (True, False):
            for fast_path in (True, False):
                variants.append(VariantSpec(service=service, bitset=bitset,
                                            fast_path=fast_path))
    variants.append(VariantSpec(service="lowlatency"))
    variants.append(VariantSpec(service="lowlatency",
                                lowlatency_membership=True))
    variants.append(VariantSpec(service="diagnostic",
                                byzantine_nodes=(2, 4)))
    return variants


def _scenario_matrix():
    return [
        (),
        (ScenarioSpec("SlotBurst", {"round_index": 6, "slot": 2,
                                    "n_slots": 2}),),
        (ScenarioSpec("BusBurst", {"start": 0.015, "duration": 0.005,
                                   "cause": "noise", "min_overlap": 0.1}),
         ScenarioSpec("SenderFault", {"sender": 3, "kind": "benign",
                                      "rounds": [4, 6, 8]})),
        (ScenarioSpec("SenderFault", {"sender": 1, "kind": "benign",
                                      "from_round": 5}),),
        (ScenarioSpec("RandomSlotNoise", {"probability": 0.05,
                                          "rng_stream": "noise"}),),
        (ScenarioSpec("PoissonTransients", {"rate": 2.0,
                                            "burst_length": 0.002,
                                            "rng_stream": "transients"}),),
        (ScenarioSpec("IntermittentSender",
                      {"sender": 2, "mean_reappearance_rounds": 8.0,
                       "rng_stream": "intermittent"}),),
        (ScenarioSpec("PeriodicBurst", {"start": 0.01, "burst_length": 0.01,
                                        "time_to_reappearance": 0.5,
                                        "count": 3}),),
        (ScenarioSpec("BurstSequence",
                      {"start": 0.0,
                       "pattern": [[0.0, 0.04], [0.16, 0.04]]}),),
        (ScenarioSpec("ChannelBurst", {"channel": 0, "start": 0.01,
                                       "duration": 0.004}),),
    ]


class TestRunSpecRoundTrip:
    @pytest.mark.parametrize("variant", _variant_matrix())
    def test_variant_matrix_round_trips(self, variant):
        spec = RunSpec(protocol=_protocol(), variant=variant, n_rounds=10)
        assert RunSpec.from_json(spec.to_json()) == spec
        assert RunSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("scenarios", _scenario_matrix())
    def test_scenario_matrix_round_trips(self, scenarios):
        spec = RunSpec(protocol=_protocol(), scenarios=scenarios,
                       n_rounds=12, reducer="summary")
        rebuilt = RunSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.digest() == spec.digest()

    @pytest.mark.parametrize("schedule", [
        ScheduleSpec(),
        ScheduleSpec(kind="static", exec_after=2),
        ScheduleSpec(kind="static", exec_after=(1, 2, 3, 0)),
        ScheduleSpec(kind="dynamic"),
    ])
    def test_schedule_round_trips(self, schedule):
        spec = RunSpec(protocol=_protocol(), schedule=schedule, n_rounds=5)
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_to_dict_is_json_native(self):
        spec = RunSpec(protocol=_protocol(),
                       scenarios=(ScenarioSpec("SlotBurst",
                                               {"round_index": 6, "slot": 1,
                                                "n_slots": 1}),),
                       n_rounds=10)
        data = spec.to_dict()
        assert data == json.loads(json.dumps(data))
        assert data["spec"] == RUNSPEC_SCHEMA

    @settings(max_examples=30, deadline=None)
    @given(n_nodes=st.integers(2, 6), seed=st.integers(0, 2 ** 31),
           penalty=st.integers(1, 10 ** 6), reward=st.integers(1, 10 ** 6),
           rounds=st.integers(0, 200), channels=st.integers(1, 3),
           trace_level=st.integers(0, 2))
    def test_random_specs_round_trip(self, n_nodes, seed, penalty, reward,
                                     rounds, channels, trace_level):
        spec = RunSpec(
            protocol=ProtocolSpec(n_nodes=n_nodes, penalty_threshold=penalty,
                                  reward_threshold=reward,
                                  criticalities=(1,) * n_nodes),
            cluster=ClusterSpec(seed=seed, n_channels=channels,
                                trace_level=trace_level),
            n_rounds=rounds,
        )
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_digest_stable_and_content_addressed(self):
        a = RunSpec(protocol=_protocol(), n_rounds=10)
        b = RunSpec(protocol=_protocol(), n_rounds=10)
        c = a.with_updates(n_rounds=11)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()
        assert len(a.digest()) == 12

    def test_full_digest_is_untruncated_sha256(self):
        spec = RunSpec(protocol=_protocol(), n_rounds=10)
        full = spec.full_digest()
        assert len(full) == 64
        assert all(ch in "0123456789abcdef" for ch in full)
        assert spec.digest() == full[:12]

    def test_full_digest_separates_near_collisions(self):
        # A sweep of near-identical specs must map to distinct full
        # digests: the store keys on full_digest(), so any collision
        # would silently replay the wrong cached result.
        specs = [RunSpec(protocol=_protocol(),
                         cluster=ClusterSpec(seed=seed),
                         n_rounds=rounds)
                 for seed in range(20) for rounds in (8, 9)]
        digests = {spec.full_digest() for spec in specs}
        assert len(digests) == len(specs)


class TestBuild:
    def test_builds_each_service_class(self):
        assert isinstance(
            build(RunSpec(protocol=_protocol())), DiagnosedCluster)
        assert isinstance(
            build(RunSpec(protocol=_protocol(),
                          variant=VariantSpec(service="membership"))),
            MembershipCluster)
        assert isinstance(
            build(RunSpec(protocol=_protocol(),
                          variant=VariantSpec(service="lowlatency"))),
            LowLatencyCluster)

    def test_scenarios_are_attached_and_bound(self):
        spec = RunSpec(
            protocol=_protocol(),
            scenarios=(ScenarioSpec("SlotBurst", {"round_index": 6,
                                                  "slot": 2, "n_slots": 1}),),
            n_rounds=15)
        dc = build(spec)
        scenario = dc.cluster.injection.scenarios[0]
        assert scenario.round_index == 6
        assert scenario.start == dc.cluster.timebase.slot_start(6, 2)
        dc.run_rounds(spec.n_rounds)
        assert dc.health_vectors(1)[6] == (1, 0, 1, 1)

    def test_stochastic_scenario_uses_named_stream(self):
        spec = RunSpec(
            protocol=_protocol(),
            scenarios=(ScenarioSpec("RandomSlotNoise",
                                    {"probability": 0.5,
                                     "rng_stream": "noise"}),),
            n_rounds=8)
        dc = build(spec)
        reference = DiagnosedCluster(_protocol().to_config(), seed=0)
        from repro.faults.processes import RandomSlotNoise

        reference.cluster.add_scenario(RandomSlotNoise(
            probability=0.5, rng=reference.cluster.streams.stream("noise")))
        dc.run_rounds(spec.n_rounds)
        reference.run_rounds(spec.n_rounds)
        assert (dc.health_vectors(1) == reference.health_vectors(1))

    def test_static_schedule_applied(self):
        spec = RunSpec(protocol=_protocol(),
                       schedule=ScheduleSpec(kind="static", exec_after=2),
                       n_rounds=6)
        dc = build(spec)
        reference = DiagnosedCluster(_protocol().to_config(), seed=0,
                                     exec_after=2)
        dc.run_rounds(6)
        reference.run_rounds(6)
        assert dc.health_vectors(1) == reference.health_vectors(1)


class TestExecuteAndReducers:
    def test_default_reducer_summary(self):
        spec = RunSpec(protocol=_protocol(), n_rounds=10)
        result = execute(spec)
        assert result["digest"] == spec.digest()
        assert result["rounds"] == 10
        assert result["consistent"] is True

    def test_named_reducers_registered(self):
        names = set(registered_reducers())
        assert {"summary", "validation.burst", "validation.penalty-reward",
                "validation.malicious", "validation.clique",
                "table2.penalty-budget"} <= names

    def test_resolve_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown reducer"):
            resolve_reducer("no.such.reducer")

    def test_resolve_passes_through_objects(self):
        reducer = SummaryReducer()
        assert resolve_reducer(reducer) is reducer
        with pytest.raises(TypeError):
            resolve_reducer(object())

    def test_provenance_counter_stamped(self):
        spec = RunSpec(protocol=_protocol(), n_rounds=5)
        registry = MetricsRegistry()
        execute(spec, metrics=registry)
        snapshot = registry.snapshot()
        assert snapshot["counters"][PROVENANCE_PREFIX + spec.digest()] == 1
        stripped = strip_provenance(snapshot)
        assert not any(name.startswith(PROVENANCE_PREFIX)
                       for name in stripped["counters"])
        assert any(not name.startswith(PROVENANCE_PREFIX)
                   for name in snapshot["counters"])

    def test_run_spec_dict_matches_execute(self):
        spec = RunSpec(protocol=_protocol(), n_rounds=8)
        assert run_spec_dict(spec.to_dict()) == execute(spec)

    def test_run_spec_dict_collects_metrics(self):
        spec = RunSpec(protocol=_protocol(), n_rounds=8)
        result, snapshot = run_spec_dict(spec.to_dict(),
                                         collect_metrics=True)
        assert result == execute(spec)
        assert snapshot["counters"][PROVENANCE_PREFIX + spec.digest()] == 1

    def test_run_spec_dict_rejects_mismatched_schema(self):
        data = RunSpec(protocol=_protocol(), n_rounds=8).to_dict()
        data["spec"] = "repro-runspec/99"
        with pytest.raises(ValueError) as excinfo:
            run_spec_dict(data)
        # The error must name both the offending and the expected
        # schema so a user can tell which side is out of date.
        message = str(excinfo.value)
        assert "repro-runspec/99" in message
        assert RUNSPEC_SCHEMA in message
