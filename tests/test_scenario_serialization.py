"""Serialization contract of every fault scenario class.

Every scenario must round-trip through ``to_dict``/``from_dict`` into an
*equivalent* scenario: same spec dict, same repr, and — the part that
actually matters — identical injection behaviour when attached to an
identical cluster.  ``SlotBurst`` additionally must pickle while
unbound (it stores slot coordinates, not resolved times).
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import uniform_config
from repro.core.service import DiagnosedCluster
from repro.faults.processes import (
    IntermittentSender,
    PoissonTransients,
    RandomSlotNoise,
)
from repro.faults.scenarios import (
    BurstSequence,
    BusBurst,
    ChannelBurst,
    PeriodicBurst,
    SenderFault,
    SlotBurst,
    crash,
    every_nth_round,
)
from repro.sim.rng import RandomStreams
from repro.tt.timebase import TimeBase

TB = TimeBase(4, 2.5e-3)


def _roundtrip(scenario, streams=None):
    cls = type(scenario)
    return cls.from_dict(scenario.to_dict(), streams=streams)


# ---------------------------------------------------------------------------
# Property-based round trips, one strategy per deterministic class.
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(start=st.floats(0.0, 1.0), duration=st.floats(1e-6, 0.1),
       min_overlap=st.floats(0.0, 0.9))
def test_bus_burst_roundtrip(start, duration, min_overlap):
    original = BusBurst(start, duration, cause="noise",
                        min_overlap=min_overlap)
    rebuilt = _roundtrip(original)
    assert rebuilt.to_dict() == original.to_dict()
    assert repr(rebuilt) == repr(original)


@settings(max_examples=50, deadline=None)
@given(round_index=st.integers(0, 100), slot=st.integers(0, 3),
       n_slots=st.integers(1, 8))
def test_slot_burst_roundtrip(round_index, slot, n_slots):
    original = SlotBurst(round_index=round_index, slot=slot, n_slots=n_slots)
    rebuilt = _roundtrip(original)
    assert rebuilt.to_dict() == original.to_dict()
    assert repr(rebuilt) == repr(original)


@settings(max_examples=50, deadline=None)
@given(channel=st.integers(0, 2), start=st.floats(0.0, 1.0),
       duration=st.floats(1e-6, 0.1))
def test_channel_burst_roundtrip(channel, start, duration):
    original = ChannelBurst(channel, start, duration)
    rebuilt = _roundtrip(original)
    assert rebuilt.to_dict() == original.to_dict()


@settings(max_examples=50, deadline=None)
@given(start=st.floats(0.0, 1.0), burst_length=st.floats(1e-6, 0.05),
       gap=st.floats(1e-6, 1.0), count=st.integers(1, 20))
def test_periodic_burst_roundtrip(start, burst_length, gap, count):
    original = PeriodicBurst(start, burst_length, gap, count)
    rebuilt = _roundtrip(original)
    assert rebuilt.to_dict() == original.to_dict()


@settings(max_examples=50, deadline=None)
@given(start=st.floats(0.0, 1.0),
       pattern=st.lists(st.tuples(st.floats(0.0, 1.0),
                                  st.floats(1e-6, 0.05)),
                        min_size=1, max_size=6))
def test_burst_sequence_roundtrip(start, pattern):
    original = BurstSequence(start, pattern)
    rebuilt = _roundtrip(original)
    assert rebuilt.to_dict() == original.to_dict()


@settings(max_examples=50, deadline=None)
@given(sender=st.integers(1, 4),
       kind=st.sampled_from(["benign", "malicious"]),
       activation=st.one_of(
           st.lists(st.integers(0, 50), min_size=1, max_size=8,
                    unique=True).map(lambda r: ("rounds", r)),
           st.integers(0, 50).map(lambda r: ("from_round", r))))
def test_sender_fault_roundtrip(sender, kind, activation):
    original = SenderFault(sender, kind=kind, **dict([activation]))
    rebuilt = _roundtrip(original)
    assert rebuilt.to_dict() == original.to_dict()
    assert repr(rebuilt) == repr(original)


def test_asymmetric_sender_fault_roundtrip():
    original = SenderFault(3, kind="asymmetric", rounds=[6],
                           detectable_by=[1, 2])
    rebuilt = _roundtrip(original)
    assert rebuilt.to_dict() == original.to_dict()
    assert repr(rebuilt) == repr(original)


# ---------------------------------------------------------------------------
# Stochastic classes: round trip through a named stream.
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(rate=st.floats(0.1, 100.0), burst_length=st.floats(1e-6, 0.01))
def test_poisson_transients_roundtrip(rate, burst_length):
    streams = RandomStreams(7)
    original = PoissonTransients(rate, burst_length,
                                 rng=streams.stream("t"), rng_stream="t")
    rebuilt = _roundtrip(original, streams=RandomStreams(7))
    assert rebuilt.to_dict() == original.to_dict()


@settings(max_examples=25, deadline=None)
@given(sender=st.integers(1, 4), mean=st.floats(1.0, 100.0),
       burst_rounds=st.integers(1, 5))
def test_intermittent_sender_roundtrip(sender, mean, burst_rounds):
    streams = RandomStreams(7)
    original = IntermittentSender(sender, mean, rng=streams.stream("i"),
                                  burst_rounds=burst_rounds, rng_stream="i")
    rebuilt = _roundtrip(original, streams=RandomStreams(7))
    assert rebuilt.to_dict() == original.to_dict()


@settings(max_examples=25, deadline=None)
@given(probability=st.floats(0.0, 1.0))
def test_random_slot_noise_roundtrip(probability):
    streams = RandomStreams(7)
    original = RandomSlotNoise(probability, rng=streams.stream("n"),
                               rng_stream="n")
    rebuilt = _roundtrip(original, streams=RandomStreams(7))
    assert rebuilt.to_dict() == original.to_dict()


def test_stochastic_without_stream_name_not_serializable():
    streams = RandomStreams(7)
    anonymous = RandomSlotNoise(0.1, rng=streams.stream("n"))
    with pytest.raises(TypeError):
        anonymous.to_dict()


def test_stochastic_from_dict_requires_streams():
    data = {"type": "RandomSlotNoise", "probability": 0.1,
            "cause": "random-noise", "rng_stream": "n"}
    with pytest.raises(ValueError):
        RandomSlotNoise.from_dict(dict(data))
    rebuilt = RandomSlotNoise.from_dict(dict(data),
                                        streams=RandomStreams(7))
    assert rebuilt.probability == 0.1


# ---------------------------------------------------------------------------
# Deterministic repr: equal spec dicts give equal reprs.
# ---------------------------------------------------------------------------

def test_repr_is_derived_from_spec_dict():
    a = SlotBurst(round_index=6, slot=2, n_slots=1)
    b = SlotBurst(round_index=6, slot=2, n_slots=1)
    assert repr(a) == repr(b)
    assert "SlotBurst(" in repr(a)
    assert "round_index=6" in repr(a)

    fault = crash(3, from_round=5)
    assert repr(fault) == repr(crash(3, from_round=5))


def test_predicate_rounds_not_serializable_but_reprable():
    fault = SenderFault(2, rounds=lambda r: r % 2 == 0)
    with pytest.raises(TypeError):
        fault.to_dict()
    assert "<predicate>" in repr(fault)


# ---------------------------------------------------------------------------
# SlotBurst regression: slot coordinates, lazy binding, pickling.
# ---------------------------------------------------------------------------

class TestSlotBurstBinding:
    def test_unbound_instance_pickles(self):
        original = SlotBurst(round_index=6, slot=2, n_slots=3, cause="x")
        clone = pickle.loads(pickle.dumps(original))
        assert clone.to_dict() == original.to_dict()
        clone.bind(TB)
        assert clone.start == TB.slot_start(6, 2)
        assert clone.duration == pytest.approx(3 * TB.slot_length)

    def test_legacy_timebase_first_ctor_still_binds_immediately(self):
        legacy = SlotBurst(TB, 6, 2, 3)
        modern = SlotBurst(round_index=6, slot=2, n_slots=3)
        modern.bind(TB)
        assert legacy.start == modern.start
        assert legacy.duration == modern.duration
        assert legacy.to_dict() == modern.to_dict()

    def test_bind_is_idempotent_first_wins(self):
        burst = SlotBurst(round_index=6, slot=2, n_slots=1)
        burst.bind(TB)
        start = burst.start
        burst.bind(TimeBase(8, 1e-3))  # ignored: already bound
        assert burst.start == start

    def test_add_scenario_binds_automatically(self):
        dc = DiagnosedCluster(uniform_config(4, 3, 50), seed=0)
        burst = SlotBurst(round_index=6, slot=2, n_slots=1)
        dc.cluster.add_scenario(burst)
        assert burst.start == dc.cluster.timebase.slot_start(6, 2)


# ---------------------------------------------------------------------------
# Differential injection: the rebuilt scenario behaves identically.
# ---------------------------------------------------------------------------

def _run_with(scenario_factory, rounds=16):
    dc = DiagnosedCluster(uniform_config(4, 3, 50), seed=11)
    dc.cluster.add_scenario(scenario_factory(dc.cluster.streams))
    dc.run_rounds(rounds)
    return {node: dc.health_vectors(node) for node in range(1, 5)}


@pytest.mark.parametrize("factory", [
    lambda streams: SlotBurst(round_index=6, slot=2, n_slots=2),
    lambda streams: crash(3, from_round=6),
    lambda streams: every_nth_round(2, period=2, start_round=6,
                                    occurrences=4),
    lambda streams: SenderFault(4, kind="asymmetric", rounds=[6],
                                detectable_by=[1]),
    lambda streams: BusBurst(0.015, 0.004, cause="noise"),
    lambda streams: RandomSlotNoise(0.1, rng=streams.stream("dn"),
                                    rng_stream="dn"),
    lambda streams: PoissonTransients(40.0, 0.001,
                                      rng=streams.stream("dp"),
                                      rng_stream="dp"),
    lambda streams: IntermittentSender(2, 4.0, rng=streams.stream("di"),
                                       rng_stream="di"),
], ids=["slot-burst", "crash", "blinking", "asymmetric", "bus-burst",
        "noise", "poisson", "intermittent"])
def test_rebuilt_scenario_injects_identically(factory):
    direct = _run_with(factory)
    rebuilt = _run_with(
        lambda streams: type(factory(RandomStreams(0))).from_dict(
            factory(RandomStreams(0)).to_dict(), streams=streams))
    assert rebuilt == direct
