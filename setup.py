"""Shim for environments without the `wheel` package (offline dev installs).

`pip install -e .` requires wheel for PEP 660 editable builds; on the
offline evaluation machine `python setup.py develop` achieves the same.
All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
