#!/usr/bin/env python3
"""Quickstart: a 4-node TT cluster with the add-on diagnostic protocol.

This walks through the library's main concepts on the smallest useful
scenario — the paper's prototype setup (4 nodes, TDMA round of 2.5 ms)
with a one-slot disturbance injected on the bus:

1. build a :class:`~repro.core.service.DiagnosedCluster` from a
   :class:`~repro.core.config.ProtocolConfig`;
2. register a fault scenario on the bus (the simulated disturbance
   node);
3. run the simulation and inspect the *consistent health vectors* the
   protocol computes, the penalty/reward counters, and the isolation
   decisions.

Run with::

    python examples/quickstart.py
"""

from repro import DiagnosedCluster, uniform_config
from repro.analysis.reporting import render_table
from repro.faults import SlotBurst


def main() -> None:
    # --- 1. configure the protocol --------------------------------------
    # P = 3: a node is isolated after its penalty exceeds 3 (with
    # criticality 1 that is 4 faulty rounds without an R-round clean gap).
    # R = 50: after 50 consecutive clean rounds previous faults are
    # forgotten (the paper uses R = 10^6 ≈ 42 min in production tunings).
    config = uniform_config(n_nodes=4, penalty_threshold=3,
                            reward_threshold=50)
    dc = DiagnosedCluster(config, seed=42)

    # --- 2. inject a fault ----------------------------------------------
    # A burst covering exactly one sending slot: slot 2 of round 6.
    # All receivers will see node 2's frame as invalid in that round —
    # a symmetric benign fault in the paper's fault model.
    dc.cluster.add_scenario(
        SlotBurst(dc.cluster.timebase, round_index=6, slot=2, n_slots=1))

    # --- 3. run and inspect ----------------------------------------------
    dc.run_rounds(15)

    print("Each node broadcasts an N-bit local syndrome per round; the")
    print("nodes vote the syndromes into a consistent health vector for")
    print("the diagnosed round (Alg. 1).  Node 2's slot-6 fault shows up")
    print("as a 0 in diagnosed round 6:\n")

    rows = [(d, " ".join(map(str, hv)))
            for d, hv in sorted(dc.health_vectors(node_id=1).items())]
    print(render_table(["diagnosed round", "health vector (nodes 1..4)"],
                       rows))

    # Consistency (Theorem 1): every obedient node computed the same
    # vector for every diagnosed round.
    assert dc.consistent_health_history(), "nodes disagreed!"
    print("\nall nodes computed identical health vectors ✓")

    # The single transient added one penalty to node 2 but did not
    # isolate it (penalty 1 <= P = 3): transient faults are filtered.
    penalty, reward = dc.service(1).counters_of(2)
    print(f"node 2 counters at node 1: penalty={penalty}, reward={reward}")
    print(f"active vector: {dc.agreed_active_vector()}")
    assert dc.agreed_active_vector() == (1, 1, 1, 1)
    print("node 2 was NOT isolated — the p/r algorithm filtered the "
          "transient ✓")


if __name__ == "__main__":
    main()
