#!/usr/bin/env python3
"""Aerospace cluster: lightning strike, isolation and reintegration.

An aircraft backbone hosting only Safety Critical functions (High Lift
System, Landing Gear System — the paper's Table 2 aerospace setting:
P = 17, s = 1, R = 10^6).  A lightning bolt produces a sequence of
40 ms disturbances with increasing time to reappearance (160 ms,
290 ms, then 9 x 500 ms — Table 3).

Two runs are compared:

1. **paper behaviour** (IsolationMode.IGNORE): the nodes are isolated
   about 0.2 s into the strike (Table 4's aerospace row) and stay down;
2. **reintegration extension** (Sec. 9, last paragraph): isolated nodes
   are kept under observation and readmitted after a reintegration
   reward threshold of fault-free rounds, restoring full availability
   once the strike has passed.

Run with::

    python examples/aerospace_high_lift.py
"""

from repro import DiagnosedCluster, IsolationMode, aerospace_config
from repro.analysis.metrics import availability_seconds
from repro.analysis.reporting import render_table
from repro.core.service import attach_reintegration_everywhere
from repro.faults import BurstSequence

HORIZON = 8.0  # seconds of simulated flight time


def run(reintegrate: bool) -> tuple:
    config = aerospace_config(4)
    if reintegrate:
        config = config.with_updates(
            isolation_mode=IsolationMode.OBSERVE,
            halt_on_self_isolation=False,
            # Readmit after 400 clean rounds (1 s at T = 2.5 ms): long
            # enough to be sure the strike is over at the Table 3
            # reappearance times.
            reintegration_reward_threshold=400,
        )
    dc = DiagnosedCluster(config, seed=3, trace_level=0)
    if reintegrate:
        attach_reintegration_everywhere(dc)
    dc.cluster.add_scenario(BurstSequence.lightning_bolt(start=0.5))
    dc.run_until(HORIZON)
    iso_t = dc.first_isolation_time(1)
    reint = dc.trace.select(category="reintegration", node=1)
    reint_t = min((r.time for r in reint), default=None)
    avail = availability_seconds(dc.trace, node_id=1, horizon=HORIZON)
    return iso_t, reint_t, avail


def main() -> None:
    print("Aerospace SC backbone (High Lift / Landing Gear), lightning "
          "bolt at t = 0.5 s\n")
    rows = []
    for label, reintegrate in (("paper (ignore isolated)", False),
                               ("extension (observe + reintegrate)", True)):
        iso_t, reint_t, avail = run(reintegrate)
        rows.append((label,
                     f"{iso_t:.3f} s" if iso_t else "-",
                     f"{reint_t:.3f} s" if reint_t else "never",
                     f"{avail:.2f} s  ({100 * avail / HORIZON:.0f}%)"))
    print(render_table(
        ["strategy", "node 1 isolated at", "reintegrated at",
         f"availability over {HORIZON:.0f} s"],
        rows))

    iso_paper, reint_paper, avail_paper = run(False)
    iso_ext, reint_ext, avail_ext = run(True)
    # Isolation time matches Table 4's aerospace row (0.205 s after the
    # strike begins) in both strategies.
    assert abs((iso_paper - 0.5) - 0.205) < 0.02
    assert reint_paper is None and reint_ext is not None
    assert avail_ext > avail_paper
    print("\nWith reintegration-by-observation the node returns to "
          "service after the strike, recovering "
          f"{avail_ext - avail_paper:.1f} s of availability in this "
          "window — the tradeoff Sec. 9 proposes for SC functions.")


if __name__ == "__main__":
    main()
