#!/usr/bin/env python3
"""Automotive mixed-criticality cluster under abnormal transients.

The scenario the paper's intro motivates: an X-by-wire car integrates
functions of different criticality on one TT backbone —

* node 1: brake-by-wire ECU            (Safety Critical,  s = 40)
* node 2: electronic stability control (Safety Relevant,  s = 6)
* node 3: door/comfort controller      (Non Safety Rel.,  s = 1)
* node 4: steer-by-wire ECU            (Safety Critical,  s = 40)

A *blinking light with an open relay* puts a 10 ms electrical
disturbance on the bus every 500 ms (Table 3).  The p/r algorithm —
tuned per Table 2 (P = 197, R = 10^6) — correlates the bursts, so the
nodes are eventually isolated, but in criticality order: the SC nodes
first (they must reach a safe state quickly), the comfort node last.

The example also contrasts the naive isolate-on-first-fault strategy,
which would take down the *whole car network* within the first burst.

Run with::

    python examples/automotive_brake_by_wire.py
"""

from repro import CriticalityClass, DiagnosedCluster, automotive_config
from repro.analysis.reporting import render_table
from repro.faults import blinking_light

NODE_ROLES = {
    1: ("brake-by-wire", CriticalityClass.SC),
    2: ("stability control", CriticalityClass.SR),
    3: ("door control", CriticalityClass.NSR),
    4: ("steer-by-wire", CriticalityClass.SC),
}


def main() -> None:
    classes = [cls for _name, cls in NODE_ROLES.values()]
    config = automotive_config(classes)
    print(f"Tuned automotive configuration (Table 2): "
          f"P = {config.penalty_threshold}, R = {config.reward_threshold:.0e}")
    print(f"criticalities: {list(config.criticalities)}\n")

    dc = DiagnosedCluster(config, seed=7, trace_level=0)
    dc.cluster.add_scenario(blinking_light(start=0.0))
    dc.run_until(27.0)

    rows = []
    for node_id, (role, cls) in NODE_ROLES.items():
        t = dc.first_isolation_time(node_id)
        rows.append((node_id, role, cls.name, config.criticality_of(node_id),
                     "-" if t is None else f"{t:.3f} s"))
    print(render_table(
        ["node", "function", "class", "s_i", "time to isolation"], rows,
        title="Blinking-light scenario (10 ms burst every 500 ms, x50)"))

    t_sc = dc.first_isolation_time(1)
    t_sr = dc.first_isolation_time(2)
    t_nsr = dc.first_isolation_time(3)
    assert t_sc < t_sr < t_nsr, "criticality ordering violated"
    print(f"\nSC isolated ~{t_nsr / t_sc:.0f}x sooner than NSR: high-"
          "criticality functions reach their safe state fast, comfort")
    print("functions ride out the disturbance for as long as possible.\n")

    # --- contrast: immediate isolation ----------------------------------
    naive = config.with_updates(penalty_threshold=0)
    naive_dc = DiagnosedCluster(naive, seed=7, trace_level=0)
    naive_dc.cluster.add_scenario(blinking_light(start=0.0))
    naive_dc.run_until(0.2)
    naive_times = [naive_dc.first_isolation_time(i) for i in NODE_ROLES]
    all_down = max(naive_times)
    print("With immediate isolation (P = 0) the FIRST 10 ms burst takes")
    print(f"down every node: all isolated by t = {all_down * 1e3:.1f} ms —")
    print("a whole-vehicle network restart, exactly what Sec. 9 warns "
          "against.")
    assert all(t is not None for t in naive_times)
    assert all_down < 0.05


if __name__ == "__main__":
    main()
