#!/usr/bin/env python3
"""Membership protocol: detecting cliques caused by SOS clock faults.

Asymmetric faults split the receivers of a message into two *cliques* —
one that received it and one that did not — leaving the system with
inconsistent state unless a membership service intervenes (Sec. 7).

This example produces the asymmetry from first principles instead of
hand-picking it: node 3's local clock drifts until its transmissions
fall Slightly-Off-Specification (Sec. 4 / [Ademaj et al.]).  Receivers
whose own clocks lean the other way reject node 3's frames as untimely
while the rest accept them — an asymmetric fault.  The membership
variant of the diagnostic protocol then:

1. reaches a consistent verdict on node 3 via hybrid voting;
2. accuses the *minority clique* members whose syndromes disagreed
   (minority accusations);
3. outputs a new view within two protocol executions (Theorem 2).

Run with::

    python examples/membership_clique_detection.py
"""

from repro import MembershipCluster, uniform_config
from repro.analysis.reporting import render_table
from repro.tt import ClockModel, SOSClockScenario


def main() -> None:
    config = uniform_config(n_nodes=4, penalty_threshold=10 ** 6,
                            reward_threshold=10 ** 6)
    mc = MembershipCluster(config, seed=11)

    # Clocks: the acceptance window is ±1 slot-length-ish of deviation.
    # Node 3 drifts fast; nodes 1 and 2 lean slightly negative, node 4
    # slightly positive.  Early in the run everyone accepts everyone;
    # once node 3's deviation crosses (window - |offset_r|) for the
    # negative-leaning receivers only, its frames become SOS-asymmetric.
    window = 100e-6
    clocks = {
        1: ClockModel(offset=-25e-6),
        2: ClockModel(offset=-25e-6),
        3: ClockModel(offset=0.0, drift=2.0e-3),   # 2 ms/s drift
        4: ClockModel(offset=+30e-6),
    }
    mc.cluster.add_scenario(SOSClockScenario(clocks, acceptance_window=window))

    mc.run_rounds(40)

    # When did node 3's frames start being rejected by whom?
    first_asym = None
    for rec in mc.trace.select(category="tx", node=3):
        validity = rec.data["validity"]
        if 0 < sum(validity.values()) < len(validity):
            first_asym = rec
            break
    assert first_asym is not None, "expected an SOS asymmetric fault"
    rejecting = sorted(r for r, v in first_asym.data["validity"].items()
                       if v == 0)
    print(f"round {first_asym.data['round_index']}: node 3's frame became "
          f"SOS-asymmetric — rejected by nodes {rejecting}, accepted by "
          f"the others.\n")

    rows = []
    for node_id in (1, 2, 4):
        history = mc.views(node_id)
        changes = " -> ".join(
            "{" + ",".join(map(str, sorted(view))) + "}"
            for _round, view in history)
        rows.append((node_id, changes))
    print(render_table(["observer", "view history"], rows,
                       title="Membership views"))

    final_views = {tuple(sorted(mc.services[i].view)) for i in (1, 2)}
    assert len(final_views) == 1, "obedient majority disagrees on the view"
    final = final_views.pop()
    assert 3 not in final, "the SOS sender must leave the view"
    assert 4 not in final, "the persistent minority clique must leave too"
    print(f"\nThe majority clique converged on view {final}.")
    print("Two exclusions happened, both required by the membership "
          "properties:")
    print(" 1. node 3 (the SOS sender) — consistently diagnosed faulty;")
    print(" 2. node 4 — it kept *accepting* node 3's untimely frames that")
    print("    the majority rejected, so it held messages the majority")
    print("    never received.  View synchrony demands that such a")
    print("    persistent minority clique leaves the view (Theorem 2),")
    print("    which the minority-accusation mechanism enforces.")

    accusations = mc.trace.select(category="clique")
    if accusations:
        first = accusations[0]
        print(f"first minority accusation at round "
              f"{first.data['round_index']} by node {first.node}: "
              f"accused {first.data['accused']}")


if __name__ == "__main__":
    main()
