#!/usr/bin/env python3
"""The outage contract: application deadlines vs. diagnostic latency.

Sec. 9's tuning revolves around a contract between the applications and
the diagnostic middleware: each criticality class tolerates a maximum
transient outage; the p/r parameters must isolate a genuinely faulty
provider *before* any consumer's budget expires, while still riding out
short transients.

This example wires a steer-by-wire producer (node 2) and its consumer
(node 1, outage budget of 7 rounds ≈ 17.5 ms) on a 4-node cluster, then
shows three situations end-to-end:

1. a single transient — consumed data skips a beat, no deadline miss,
   no isolation (the p/r filter absorbs it);
2. a crashed provider under a *tuned* P — the protocol isolates the
   provider inside the consumer's budget; the application switches to
   recovery without ever missing its deadline;
3. the same crash under an *oversized* P — diagnosis comes too late and
   the consumer records an outage violation: the configuration the
   tuning procedure of Table 2 exists to rule out.

Run with::

    python examples/xbywire_outage_contract.py
"""

from repro import DiagnosedCluster, uniform_config
from repro.analysis.timeline import render_timeline
from repro.apps import ConsumerJob, ProducerJob
from repro.faults import SlotBurst, crash

BUDGET_ROUNDS = 7  # 17.5 ms at T = 2.5 ms — a steer-by-wire-ish budget


def run(penalty_threshold, scenario):
    config = uniform_config(4, penalty_threshold=penalty_threshold,
                            reward_threshold=100)
    dc = DiagnosedCluster(config, seed=5)
    producer = ProducerJob("steer")
    consumer = ConsumerJob("steer", provider=2,
                           tolerated_outage_rounds=BUDGET_ROUNDS,
                           trace=dc.trace, diagnostic=dc.service(1))
    dc.cluster.install_job(2, producer)
    dc.cluster.install_job(1, consumer)
    if scenario is not None:
        dc.cluster.add_scenario(scenario(dc))
    dc.run_rounds(22)
    return dc, consumer


def main() -> None:
    # --- 1. transient: absorbed -----------------------------------------
    dc, consumer = run(penalty_threshold=2, scenario=lambda dc: SlotBurst(
        dc.cluster.timebase, 6, 2, 1))
    print("1. One-slot transient on the provider's slot:")
    print(f"   worst outage: {consumer.worst_outage} round(s), deadline "
          f"misses: {len(consumer.deadline_misses)}, provider isolated: "
          f"{dc.first_isolation_time(2) is not None}")
    assert consumer.worst_outage == 1 and not consumer.deadline_misses
    assert dc.first_isolation_time(2) is None

    # --- 2. crash, tuned P: recovery inside the budget -------------------
    dc, consumer = run(penalty_threshold=2,
                       scenario=lambda dc: crash(2, from_round=6))
    print("\n2. Provider crash, tuned P = 2 "
          f"(isolation latency 6 rounds < budget {BUDGET_ROUNDS}):")
    print(f"   recovery switched at round {consumer.recovered_at}, "
          f"deadline misses: {len(consumer.deadline_misses)}")
    assert consumer.recovered_at is not None
    assert not consumer.deadline_misses
    print("\n   Timeline (node 1's view):")
    print(render_timeline(dc.trace, 4, first_round=5, last_round=13))

    # --- 3. crash, oversized P: contract violated ------------------------
    dc, consumer = run(penalty_threshold=50,
                       scenario=lambda dc: crash(2, from_round=6))
    print("\n3. Provider crash, oversized P = 50 (diagnosis too slow):")
    print(f"   deadline missed at round {consumer.deadline_misses[0]} — "
          "the configuration Sec. 9's tuning procedure rejects.")
    assert consumer.deadline_misses


if __name__ == "__main__":
    main()
