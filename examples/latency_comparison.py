#!/usr/bin/env python3
"""Detection latency: add-on protocol vs. system-level variant (Sec. 10).

The add-on protocol accepts a worst-case detection latency of four TDMA
rounds in exchange for portability (no constraints on node scheduling).
Sec. 10 sketches the tradeoffs; this example measures them on the same
fault:

* **add-on, send-aligned** (any static schedule): health vector at
  round k covers round k-3;
* **add-on, fast path** (every job scheduled after the last slot, so
  ``forall j: send_curr_round_j`` holds): covers round k-2;
* **system-level variant** (per-slot analysis): verdict exactly one
  round after the faulty slot.

Run with::

    python examples/latency_comparison.py
"""

from repro import DiagnosedCluster, LowLatencyCluster, uniform_config
from repro.analysis.metrics import detection_latency_rounds
from repro.analysis.reporting import render_table
from repro.faults import SlotBurst

FAULT_ROUND, FAULT_SLOT = 6, 2


def addon_latency(all_send_curr: bool) -> int:
    config = uniform_config(4, penalty_threshold=10 ** 6,
                            reward_threshold=10 ** 6,
                            all_send_curr_round=all_send_curr)
    exec_after = 4 if all_send_curr else 0
    dc = DiagnosedCluster(config, seed=1, exec_after=exec_after)
    dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, FAULT_ROUND,
                                      FAULT_SLOT, n_slots=1))
    dc.run_rounds(FAULT_ROUND + 8)
    latency = detection_latency_rounds(dc.trace, FAULT_ROUND, FAULT_SLOT)
    assert latency is not None, "fault not detected"
    assert dc.consistent_health_history()
    return latency


def lowlatency_latency() -> float:
    config = uniform_config(4, penalty_threshold=10 ** 6,
                            reward_threshold=10 ** 6)
    llc = LowLatencyCluster(config, seed=1)
    tb = llc.cluster.timebase
    llc.cluster.add_scenario(SlotBurst(tb, FAULT_ROUND, FAULT_SLOT, n_slots=1))
    llc.run_rounds(FAULT_ROUND + 4)
    verdicts = [llc.service(i).verdicts[(FAULT_ROUND, FAULT_SLOT)]
                for i in range(1, 5)]
    assert verdicts == [0, 0, 0, 0], "fault not consistently detected"
    # The verdict lands at the delivery of the same slot one round
    # later: latency in rounds is exactly 1.
    records = [r for r in llc.trace.select(category="cons_slot")
               if r.data["diagnosed_round"] == FAULT_ROUND
               and r.data["slot"] == FAULT_SLOT]
    decision_t = min(r.time for r in records)
    # Latency is counted from the completion of the faulty slot (when
    # the fault becomes observable) to the consistent verdict.
    fault_seen_t = tb.delivery_time(FAULT_ROUND, FAULT_SLOT)
    return (decision_t - fault_seen_t) / tb.round_length


def main() -> None:
    rows = []
    send_aligned = addon_latency(all_send_curr=False)
    rows.append(("add-on, send alignment (portable)", "unconstrained",
                 f"{send_aligned} rounds"))
    fast = addon_latency(all_send_curr=True)
    rows.append(("add-on, all_send_curr_round fast path",
                 "jobs after last slot", f"{fast} rounds"))
    lowlat = lowlatency_latency()
    rows.append(("system-level per-slot variant (Sec. 10)",
                 "analysis after every slot", f"{lowlat:.2f} rounds"))
    print(render_table(["protocol variant", "scheduling constraint",
                        "detection latency"], rows,
                       title=f"Latency to a consistent verdict on the fault "
                             f"in round {FAULT_ROUND}, slot {FAULT_SLOT}"))

    assert send_aligned == 3 and fast == 2 and lowlat <= 1.01
    print("\nThe paper's tradeoff, reproduced: portability costs "
          f"{send_aligned - 1} extra rounds over the system-level "
          "variant; constraining schedules buys them back.")


if __name__ == "__main__":
    main()
