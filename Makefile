# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test test-fast lint bench bench-all examples reproduce clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	ruff check .

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# Quick benchmark smoke: reduced rounds, publishes the headline
# BENCH_simulator_throughput.json at the repo root (same job CI runs),
# including the warm-cache campaign throughput point.
bench:
	REPRO_BENCH_ROUNDS=50 PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/bench_simulator_throughput.py --benchmark-only -s
	@$(PYTHON) -c "import json; c = json.load(open('BENCH_simulator_throughput.json'))['campaign_cache']; print('campaign cache: %d tasks, cold %.2fs, warm %.3fs (%.1fx)' % (c['tasks'], c['cold_s'], c['warm_s'], c['speedup']))"
	@$(PYTHON) -c "import json; b = json.load(open('BENCH_simulator_throughput.json')).get('backends'); print('vectorized backend: %.1fx vs event @ N=64, %.0f replicates/s Monte Carlo' % (b['n64_speedup'], b['monte_carlo']['replicates_per_s'])) if b else print('vectorized backend: skipped (numpy unavailable)')"
	@$(PYTHON) -c "import json; b = json.load(open('BENCH_simulator_throughput.json')).get('backends'); g = b and b.get('gilbert_elliott'); print('gilbert-elliott @ N=%d: event %.0f rounds/s, vectorized %.0f rounds/s (%.1fx)' % (g['n_nodes'], g['event_rounds_per_s'], g['vectorized_rounds_per_s'], g['speedup'])) if g else print('gilbert-elliott point: skipped (numpy unavailable)')"
	@$(PYTHON) -c "import json; d = json.load(open('BENCH_simulator_throughput.json'))['dispatch']; print('dispatch: %d tasks @ jobs=%d, persistent pool %.2fs vs chunked %.2fs (%.1fx), remote-stub %.2fs' % (d['tasks'], d['jobs'], d['persistent_pool_s'], d['legacy_chunked_s'], d['speedup'], d['remote_stub_s']))"
	@$(PYTHON) -c "import json; s = json.load(open('BENCH_simulator_throughput.json'))['service']; print('service: warm %.0f req/s (%.1fx vs cold POST), %d concurrent clients -> %d simulation' % (s['warm_requests_per_s'], s['speedup'], s['concurrent_clients'], s['simulations_executed']))"

bench-all:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

# Regenerate every paper artefact and persist outputs.
reproduce:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
