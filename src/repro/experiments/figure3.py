"""Fig. 3 reproduction: the reward-threshold tradeoff at T = 2.5 ms.

Fig. 3 shows how the choice of the reward threshold ``R`` trades off
the probability of correlating genuinely related intermittent faults
against the probability of incorrectly correlating two independent
external transients.  The paper's pick, ``R = 10^6``, corresponds to a
correlation window ``R x T ≈ 42 min`` with a second-transient
correlation probability below 1 % at the considered rates.

The analytic curves come from :mod:`repro.analysis.reliability`;
:func:`simulate_point` additionally validates individual points by
Monte-Carlo simulation of the p/r counters under a Poisson transient
stream (so the figure is backed by both the closed form and the
implementation's actual behaviour).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import List, Sequence

from ..analysis.reliability import (
    PAPER_R,
    PAPER_T,
    RewardTradeoffPoint,
    correlation_window_seconds,
    p_correlate_transient,
    reward_tradeoff_curve,
)
from ..core.config import uniform_config
from ..core.penalty_reward import PenaltyRewardState
from ..results.tables import Column, SeriesSpec, TableSpec

#: External transient rates plotted in the reproduction (per hour).
#: They bracket the regimes automotive/aerospace EMI measurements give:
#: from one transient every few days to several per hour.
DEFAULT_RATES_PER_HOUR = (0.01, 0.1, 1.0, 10.0)

#: Reward thresholds swept (log-spaced decades around the paper's 10^6).
DEFAULT_REWARD_SWEEP = tuple(10 ** e for e in range(3, 9))


@dataclass(frozen=True)
class Figure3Series:
    """One curve of the figure: correlation probability vs. R."""

    rate_per_hour: float
    points: Sequence[RewardTradeoffPoint]


#: One Fig. 3 curve as a declarative table (built per series).
FIGURE3_TABLE = TableSpec(
    name="figure3",
    title=lambda s: (f"Fig. 3 — external transient rate "
                     f"{s.rate_per_hour}/hour"),
    columns=(
        Column("R", lambda p: p.reward_threshold),
        Column("window R*T (s)", lambda p: f"{p.window_seconds:.0f}"),
        Column("P(correlate 2nd transient)",
               lambda p: f"{p.p_correlate_transient:.4g}"),
    ),
    rows=lambda s: s.points,
)

#: The whole curve family as one plot series (one curve per rate).
FIGURE3_SERIES = SeriesSpec(
    name="figure3",
    title="Fig. 3 — reward-threshold tradeoff",
    x_label="reward threshold R",
    y_label="P(correlate 2nd transient)",
    curves=lambda family: {
        f"{s.rate_per_hour}/hour": [(p.reward_threshold,
                                     p.p_correlate_transient)
                                    for p in s.points]
        for s in family},
)


def paper_choice_line(round_length: float = PAPER_T) -> str:
    """The one-line Sec. 9 summary the CLI prints under the tables."""
    summary = paper_choice_summary(round_length)
    return (f"paper's choice: R = {summary['reward_threshold']:.0e} "
            f"-> window ≈ {summary['window_minutes']:.1f} min")


def figure3_series(rates_per_hour: Sequence[float] = DEFAULT_RATES_PER_HOUR,
                   reward_sweep: Sequence[int] = DEFAULT_REWARD_SWEEP,
                   round_length: float = PAPER_T,
                   intermittent_mean_reappearance: float = 60.0
                   ) -> List[Figure3Series]:
    """The full curve family of Fig. 3."""
    series = []
    for rate_h in rates_per_hour:
        rate_s = rate_h / 3600.0
        series.append(Figure3Series(
            rate_per_hour=rate_h,
            points=reward_tradeoff_curve(
                list(reward_sweep), rate_s,
                intermittent_mean_reappearance, round_length),
        ))
    return series


def simulate_point(rate_per_hour: float, reward_threshold: int,
                   round_length: float = PAPER_T,
                   trials: int = 2000, seed: int = 0) -> float:
    """Monte-Carlo estimate of the second-transient correlation probability.

    For each trial: a transient hits a node at time 0 (penalty > 0,
    reward = 0); the next independent transient arrives after an
    exponential delay.  The p/r counters are replayed round-by-round
    (in closed form — the counters are deterministic between faults)
    and the trial counts as *correlated* iff the second transient lands
    before the reward threshold resets the penalty.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    rng = Random(seed)
    rate_s = rate_per_hour / 3600.0
    window = correlation_window_seconds(reward_threshold, round_length)
    correlated = 0
    for _ in range(trials):
        gap = rng.expovariate(rate_s) if rate_s > 0 else math.inf
        if gap < window:
            correlated += 1
    return correlated / trials


def pr_counter_replay_check(reward_threshold: int = 100,
                            gap_rounds: int = 40) -> bool:
    """Implementation-level check that the closed form matches Alg. 2.

    Drives an actual :class:`PenaltyRewardState` through a fault, a
    clean gap and a second fault, and confirms the counters correlate
    the faults iff ``gap_rounds < reward_threshold``.
    """
    config = uniform_config(2, penalty_threshold=10 ** 9,
                            reward_threshold=reward_threshold)
    pr = PenaltyRewardState(config)
    pr.update([0, 1])
    for _ in range(gap_rounds):
        pr.update([1, 1])
    pr.update([0, 1])
    penalty = pr.penalties[0]
    correlated = penalty == 2
    return correlated == (gap_rounds < reward_threshold)


def paper_choice_summary(round_length: float = PAPER_T) -> dict:
    """The headline numbers quoted in Sec. 9 for R = 10^6."""
    window = correlation_window_seconds(PAPER_R, round_length)
    return {
        "reward_threshold": PAPER_R,
        "window_seconds": window,
        "window_minutes": window / 60.0,
        # "less than 1%" at the considered rates: report the worst
        # (highest) rate that still satisfies the bound.
        "p_correlate_at_0.01_per_hour": p_correlate_transient(
            0.01 / 3600.0, PAPER_R, round_length),
    }


__all__ = [
    "DEFAULT_RATES_PER_HOUR",
    "DEFAULT_REWARD_SWEEP",
    "FIGURE3_SERIES",
    "FIGURE3_TABLE",
    "Figure3Series",
    "figure3_series",
    "simulate_point",
    "pr_counter_replay_check",
    "paper_choice_line",
    "paper_choice_summary",
]
