"""Resilience scaling: empirical validation of the Lemma 2 bound.

The introduction claims the protocol "is able to detect bursts of
multiple concurrent faults and to tolerate malicious faults.  Its
resiliency also scales with the number of available nodes."  Lemma 2
quantifies it: correctness/completeness/consistency hold as long as
``N > 2a + 2s + b + 1`` with ``a <= 1``.

This harness sweeps cluster sizes and fault allocations:

* for every ``N`` and every ``(s, b)`` *inside* the bound, it injects
  ``s`` byzantine (random-syndrome) nodes and ``b`` coincident benign
  sender faults and verifies the Theorem 1 properties via the oracle;
* it also reports the *capacity frontier*: the maximum ``b`` tolerated
  per ``(N, s)``, which grows linearly with ``N`` — the scaling claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.metrics import (
    completeness_holds,
    consistency_violations,
    correctness_holds,
)
from ..core.config import uniform_config
from ..core.service import DiagnosedCluster
from ..faults.scenarios import SenderFault
from ..results.tables import Column, TableSpec

FAULT_ROUND = 6


@dataclass
class ResiliencePoint:
    """Outcome for one (N, s, b) fault allocation."""

    n_nodes: int
    byzantine: int
    benign: int
    within_bound: bool
    properties_hold: bool


def _resilience_rows(value):
    """Rows of the resilience table from ``(points, frontier)``."""
    points, frontier = value
    rows = []
    for n in sorted(frontier):
        checked = [p for p in points if p.n_nodes == n]
        ok = sum(1 for p in checked if p.properties_hold)
        rows.append((n, len(checked), f"{ok}/{len(checked)}",
                     ", ".join(f"s={s}: b<={b}"
                               for s, b in frontier[n].items())))
    return rows


#: The Lemma 2 scaling sweep as a declarative table; the aggregate
#: value is ``(resilience_sweep(...), capacity_frontier())``.
RESILIENCE_TABLE = TableSpec(
    name="resilience",
    title="Resilience scaling (coincident faults)",
    columns=(
        Column("N", lambda row: row[0]),
        Column("allocations", lambda row: row[1]),
        Column("properties held", lambda row: row[2]),
        Column("Lemma 2 frontier", lambda row: row[3]),
    ),
    rows=_resilience_rows,
)


def max_benign_within_bound(n: int, s: int, a: int = 0) -> int:
    """Largest ``b`` satisfying ``N > 2a + 2s + b + 1``."""
    return max(0, n - 2 * a - 2 * s - 2)


def run_allocation(n: int, s: int, b: int, seed: int = 0) -> ResiliencePoint:
    """Inject ``s`` byzantine nodes + ``b`` coincident benign faults.

    Byzantine nodes occupy the highest IDs; the benign faults hit the
    first ``b`` of the remaining nodes, all in the same round (the
    hardest coincident case).
    """
    if s + b >= n:
        raise ValueError("fault allocation exceeds cluster size")
    config = uniform_config(n, penalty_threshold=10 ** 6,
                            reward_threshold=10 ** 6)
    byzantine_ids = list(range(n - s + 1, n + 1))
    benign_ids = list(range(1, b + 1))
    dc = DiagnosedCluster(config, seed=seed, byzantine_nodes=byzantine_ids)
    for node in benign_ids:
        dc.cluster.add_scenario(SenderFault(node, kind="benign",
                                            rounds=[FAULT_ROUND]))
    dc.run_rounds(FAULT_ROUND + 8)

    obedient = dc.obedient_node_ids()
    holds = not consistency_violations(dc.trace, obedient)
    for node in benign_ids:
        holds = holds and completeness_holds(dc.trace, FAULT_ROUND, node,
                                             obedient)
    correct = [j for j in range(1, n + 1)
               if j not in benign_ids and j not in byzantine_ids]
    holds = holds and correctness_holds(dc.trace, FAULT_ROUND, correct,
                                        obedient)
    within = n > 2 * s + b + 1
    return ResiliencePoint(n_nodes=n, byzantine=s, benign=b,
                           within_bound=within, properties_hold=holds)


def resilience_sweep(n_range=(4, 5, 6, 8, 10), seeds=(0,)
                     ) -> List[ResiliencePoint]:
    """Every (N, s, b) allocation within the Lemma 2 bound."""
    points: List[ResiliencePoint] = []
    for n in n_range:
        max_s = (n - 2) // 2
        for s in range(0, max_s + 1):
            for b in range(0, max_benign_within_bound(n, s) + 1):
                if s == 0 and b == 0:
                    continue
                for seed in seeds:
                    points.append(run_allocation(n, s, b, seed=seed))
    return points


def capacity_frontier(n_range=(4, 5, 6, 8, 10)) -> Dict[int, Dict[int, int]]:
    """``N -> {s: max tolerated b}`` per Lemma 2."""
    out: Dict[int, Dict[int, int]] = {}
    for n in n_range:
        max_s = (n - 2) // 2
        out[n] = {s: max_benign_within_bound(n, s)
                  for s in range(0, max_s + 1)}
    return out


__all__ = [
    "RESILIENCE_TABLE",
    "ResiliencePoint",
    "max_benign_within_bound",
    "run_allocation",
    "resilience_sweep",
    "capacity_frontier",
    "FAULT_ROUND",
]
