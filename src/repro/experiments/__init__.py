"""Experiment harnesses regenerating the paper's tables and figures.

* :mod:`repro.experiments.validation` — the Sec. 8 fault-injection
  campaign (burst/counter/malicious/clique experiment classes);
* :mod:`repro.experiments.table2` — the Sec. 9 tuning experiment;
* :mod:`repro.experiments.adverse` — the Table 3/4 abnormal-transient
  scenarios and the immediate-isolation ablation;
* :mod:`repro.experiments.figure3` — the reward-threshold tradeoff.
"""

from .adverse import (
    AUTOMOTIVE_NODE_CLASSES,
    PAPER_TABLE4,
    TABLE4_TABLE,
    AdverseResult,
    aerospace_adverse,
    automotive_adverse,
    immediate_isolation_ablation,
    table4,
)
from .figure3 import (
    FIGURE3_SERIES,
    FIGURE3_TABLE,
    Figure3Series,
    figure3_series,
    paper_choice_line,
    paper_choice_summary,
    pr_counter_replay_check,
    simulate_point,
)
from .discrimination import (
    DISCRIMINATION_TABLE,
    DiscriminationSummary,
    FilterOutcome,
    discrimination_study,
    generate_health_stream,
    replay_filters,
)
from .oracle import (
    ORACLE_TABLE,
    OracleReport,
    OracleViolation,
    check_against_oracle,
    ground_truth_from_trace,
    lemma_conditions_hold,
)
from .portability import (
    PORTABILITY_TABLE,
    PortabilityResult,
    diagnosed_cluster_for,
    portability_sweep,
    run_on_platform,
)
from .reintegration_tuning import (
    REINTEGRATION_TABLE,
    ReintegrationPoint,
    run_threshold,
    threshold_sweep,
)
from .sensitivity import (
    SENSITIVITY_TABLE,
    PhasePoint,
    band,
    phase_sweep,
    run_phase,
)
from .resilience import (
    RESILIENCE_TABLE,
    ResiliencePoint,
    capacity_frontier,
    max_benign_within_bound,
    resilience_sweep,
    run_allocation,
)
from .table2 import (
    PAPER_TABLE2,
    TABLE2_TABLE,
    Table2Row,
    analytic_cross_check,
    measure_penalty_budget,
    table2,
)
from .validation import (
    FAULT_ROUND,
    PAPER_N_NODES,
    VALIDATION_TABLE,
    BurstResult,
    CampaignSummary,
    CliqueResult,
    MaliciousResult,
    PenaltyRewardResult,
    expected_faulty_slots,
    run_burst_experiment,
    run_clique_experiment,
    run_malicious_experiment,
    run_penalty_reward_experiment,
    run_validation_campaign,
)

__all__ = [
    "AUTOMOTIVE_NODE_CLASSES",
    "DISCRIMINATION_TABLE",
    "FIGURE3_SERIES",
    "FIGURE3_TABLE",
    "ORACLE_TABLE",
    "PORTABILITY_TABLE",
    "REINTEGRATION_TABLE",
    "RESILIENCE_TABLE",
    "SENSITIVITY_TABLE",
    "TABLE2_TABLE",
    "TABLE4_TABLE",
    "VALIDATION_TABLE",
    "DiscriminationSummary",
    "FilterOutcome",
    "discrimination_study",
    "generate_health_stream",
    "replay_filters",
    "OracleReport",
    "OracleViolation",
    "check_against_oracle",
    "ground_truth_from_trace",
    "lemma_conditions_hold",
    "PortabilityResult",
    "diagnosed_cluster_for",
    "portability_sweep",
    "run_on_platform",
    "ReintegrationPoint",
    "run_threshold",
    "threshold_sweep",
    "PhasePoint",
    "band",
    "phase_sweep",
    "run_phase",
    "ResiliencePoint",
    "capacity_frontier",
    "max_benign_within_bound",
    "resilience_sweep",
    "run_allocation",
    "PAPER_TABLE4",
    "AdverseResult",
    "aerospace_adverse",
    "automotive_adverse",
    "immediate_isolation_ablation",
    "table4",
    "Figure3Series",
    "figure3_series",
    "paper_choice_line",
    "paper_choice_summary",
    "pr_counter_replay_check",
    "simulate_point",
    "PAPER_TABLE2",
    "Table2Row",
    "analytic_cross_check",
    "measure_penalty_budget",
    "table2",
    "FAULT_ROUND",
    "PAPER_N_NODES",
    "BurstResult",
    "CampaignSummary",
    "CliqueResult",
    "MaliciousResult",
    "PenaltyRewardResult",
    "expected_faulty_slots",
    "run_burst_experiment",
    "run_clique_experiment",
    "run_malicious_experiment",
    "run_penalty_reward_experiment",
    "run_validation_campaign",
]
