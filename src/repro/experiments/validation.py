"""Sec. 8 validation campaign: fault injection experiment classes.

The paper validates the protocols with 1500 physical fault injections
on a 4-node cluster (T = 2.5 ms), grouped into experiment classes:

* **bursty faults** of one slot, two slots and two TDMA rounds,
  starting in any of the 4 sending slots (12 classes x 100 reps);
* **penalty/reward update**: a fault in one node's sending slot every
  second TDMA round for 20 rounds — either the penalty or the reward
  counter must change at every diagnosed round;
* **malicious node**: one node broadcasts random local syndromes; the
  other nodes must never diagnose a correct node as faulty (4 classes);
* **clique detection**: the disturbance node separates Node 1 from the
  rest of the cluster during another node's sending slot, producing a
  minority clique formed by Node 1, which the membership protocol must
  detect and exclude.

Every experiment class is described declaratively: the ``*_spec``
builders return :class:`~repro.spec.RunSpec` values naming a reducer
registered here, and the ``run_*`` functions simply
:func:`~repro.spec.execute` them.  The reducers score the finished
cluster against the paper's properties (correctness, completeness,
consistency; counter behaviour; view changes).
:func:`run_validation_campaign` reproduces the whole campaign;
:func:`validation_specs` enumerates it as serializable specs for the
parallel runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.metrics import (
    completeness_holds,
    consistency_violations,
    correctness_holds,
    diagnoses_for_round,
)
from ..core.config import ProtocolConfig, uniform_config
from ..faults.scenarios import SenderFault, every_nth_round
from ..results.tables import Column, TableSpec
from ..spec import (
    ClusterSpec,
    ProtocolSpec,
    RunSpec,
    ScenarioSpec,
    VariantSpec,
    execute,
    register_reducer,
)
from ..tt.cluster import PAPER_ROUND_LENGTH

#: The paper's prototype size.
PAPER_N_NODES = 4
#: Round where injections start (after the pipeline has filled).
FAULT_ROUND = 6


def _default_config(n_nodes: int = PAPER_N_NODES) -> ProtocolConfig:
    # A permissive p/r configuration: validation scores the health
    # vectors themselves, not isolation decisions.
    return uniform_config(n_nodes, penalty_threshold=10 ** 6,
                          reward_threshold=10 ** 6)


def _default_protocol(n_nodes: int) -> ProtocolSpec:
    return ProtocolSpec.from_config(_default_config(n_nodes))


@dataclass
class BurstResult:
    """Outcome of one bursty-fault injection."""

    n_slots: int
    start_slot: int
    #: Slots expected faulty, per round: round -> sorted node IDs.
    expected: Dict[int, Tuple[int, ...]]
    #: What the cluster diagnosed: round -> {node: health vector}.
    diagnosed: Dict[int, Dict[int, Tuple[int, ...]]]
    consistent: bool
    complete: bool
    correct: bool

    @property
    def passed(self) -> bool:
        return self.consistent and self.complete and self.correct


def expected_faulty_slots(n_nodes: int, start_slot: int,
                          n_slots: int, fault_round: int = FAULT_ROUND
                          ) -> Dict[int, Tuple[int, ...]]:
    """Ground truth: the senders hit by a burst, grouped by round."""
    per_round: Dict[int, List[int]] = {}
    gidx0 = fault_round * n_nodes + (start_slot - 1)
    for offset in range(n_slots):
        gidx = gidx0 + offset
        per_round.setdefault(gidx // n_nodes, []).append(gidx % n_nodes + 1)
    return {r: tuple(sorted(slots)) for r, slots in per_round.items()}


def burst_spec(n_slots: int, start_slot: int, seed: int = 0,
               n_nodes: int = PAPER_N_NODES,
               round_length: float = PAPER_ROUND_LENGTH) -> RunSpec:
    """Declarative form of one bursty-fault injection.

    Bursts of 1 or 2 slots exercise the Lemma 2 regime; a burst of two
    whole rounds (``n_slots = 2 * n_nodes``) is the Lemma 3 blackout.
    The run is sized so the pipeline diagnoses every affected round.
    """
    expected = expected_faulty_slots(n_nodes, start_slot, n_slots)
    return RunSpec(
        protocol=_default_protocol(n_nodes),
        cluster=ClusterSpec(round_length=round_length, seed=seed),
        scenarios=(ScenarioSpec("SlotBurst",
                                {"round_index": FAULT_ROUND,
                                 "slot": start_slot, "n_slots": n_slots}),),
        n_rounds=max(expected) + 6,
        reducer="validation.burst",
    )


@register_reducer
class BurstReducer:
    """Score a burst injection: consistency, completeness, correctness.

    The ground truth is re-derived from the spec's own ``SlotBurst``
    parameters, so the reducer needs no side-channel beyond the spec.
    """

    name = "validation.burst"

    def reduce(self, target, spec, state) -> BurstResult:
        """Score the finished run against the paper's three properties."""
        params = spec.scenarios[0].params
        n_nodes = spec.protocol.n_nodes
        start_slot = params["slot"]
        n_slots = params.get("n_slots", 1)
        expected = expected_faulty_slots(n_nodes, start_slot, n_slots,
                                         fault_round=params["round_index"])
        obedient = target.obedient_node_ids()
        diagnosed: Dict[int, Dict[int, Tuple[int, ...]]] = {}
        complete = True
        correct = True
        for d_round, faulty in expected.items():
            vectors = diagnoses_for_round(target.trace, d_round, obedient)
            diagnosed[d_round] = vectors
            for f in faulty:
                if not completeness_holds(target.trace, d_round, f, obedient):
                    complete = False
            correct_nodes = [j for j in range(1, n_nodes + 1)
                             if j not in faulty]
            if not correctness_holds(target.trace, d_round, correct_nodes,
                                     obedient):
                correct = False
        consistent = not consistency_violations(target.trace, obedient)
        return BurstResult(n_slots=n_slots, start_slot=start_slot,
                           expected=expected, diagnosed=diagnosed,
                           consistent=consistent, complete=complete,
                           correct=correct)


def run_burst_experiment(n_slots: int, start_slot: int, seed: int = 0,
                         n_nodes: int = PAPER_N_NODES,
                         round_length: float = PAPER_ROUND_LENGTH,
                         metrics=None) -> BurstResult:
    """One injection of a burst of ``n_slots`` slots from ``start_slot``."""
    return execute(burst_spec(n_slots, start_slot, seed=seed,
                              n_nodes=n_nodes, round_length=round_length),
                   metrics=metrics)


@dataclass
class PenaltyRewardResult:
    """Outcome of the counter-update experiment."""

    target: int
    #: (diagnosed_round, penalty, reward) evolution at one observer.
    evolution: List[Tuple[int, int, int]]
    #: Whether one of the two counters changed at every diagnosed round.
    counters_progress: bool
    consistent: bool

    @property
    def passed(self) -> bool:
        return self.counters_progress and self.consistent


def penalty_reward_spec(target: int = 2, seed: int = 0,
                        n_nodes: int = PAPER_N_NODES) -> RunSpec:
    """Declarative form of the counter-update experiment.

    A fault in ``target``'s slot every second round for 20 rounds:
    "Hence, either the penalty or the reward counter should be
    increased at every round" (Sec. 8).
    """
    fault = every_nth_round(target, period=2, start_round=FAULT_ROUND,
                            occurrences=10)
    return RunSpec(
        protocol=_default_protocol(n_nodes),
        cluster=ClusterSpec(seed=seed),
        scenarios=(ScenarioSpec.from_scenario(fault),),
        n_rounds=FAULT_ROUND + 20 + 6,
        reducer="validation.penalty-reward",
    )


def _fault_window(params: Dict[str, Any]) -> Tuple[int, int]:
    """``(first_round, end_round)`` of a round-list ``SenderFault`` spec.

    The end is one period past the last active round — the half-open
    window over which the counters are required to progress.
    """
    rounds = sorted(params["rounds"])
    period = rounds[1] - rounds[0] if len(rounds) > 1 else 1
    return rounds[0], rounds[-1] + period


@register_reducer
class PenaltyRewardReducer:
    """Check that a counter moves at every diagnosed round of the window.

    ``prepare`` installs a post-update probe on node 1's service before
    the run is driven; ``reduce`` scores the recorded evolution.
    """

    name = "validation.penalty-reward"

    def prepare(self, target, spec) -> List[Tuple[int, int, int]]:
        """Install the counter-evolution probe; the list is the state."""
        fault_target = spec.scenarios[0].params["sender"]
        config = target.config
        observer = target.service(1)
        evolution: List[Tuple[int, int, int]] = []

        def probe(service, cons_hv, k):
            d_round = k - config.detection_pipeline_rounds()
            p, r = service.pr.counters_of(fault_target)
            evolution.append((d_round, p, r))

        observer.post_update_hooks.append(probe)
        return evolution

    def reduce(self, target, spec, state) -> PenaltyRewardResult:
        """Score the recorded counter evolution over the fault window."""
        params = spec.scenarios[0].params
        first_round, end_round = _fault_window(params)
        window = [(d, p, r) for d, p, r in state
                  if first_round <= d < end_round]
        progress = True
        for (d0, p0, r0), (d1, p1, r1) in zip(window, window[1:]):
            if (p1, r1) == (p0, r0):
                progress = False
        # The very first faulty round must bump the penalty from 0.
        if not window or window[0][1] == 0:
            progress = False
        consistent = not consistency_violations(target.trace,
                                                target.obedient_node_ids())
        return PenaltyRewardResult(target=params["sender"], evolution=window,
                                   counters_progress=progress,
                                   consistent=consistent)


def run_penalty_reward_experiment(target: int = 2, seed: int = 0,
                                  n_nodes: int = PAPER_N_NODES,
                                  metrics=None) -> PenaltyRewardResult:
    """Fault in ``target``'s slot every second round for 20 rounds."""
    return execute(penalty_reward_spec(target, seed=seed, n_nodes=n_nodes),
                   metrics=metrics)


@dataclass
class MaliciousResult:
    """Outcome of one malicious-node injection."""

    byzantine: int
    consistent: bool
    #: No correct node was ever diagnosed faulty by an obedient node.
    no_false_accusation: bool

    @property
    def passed(self) -> bool:
        return self.consistent and self.no_false_accusation


def malicious_spec(byzantine: int, seed: int = 0,
                   n_nodes: int = PAPER_N_NODES,
                   n_rounds: int = 30) -> RunSpec:
    """Declarative form of one malicious-node injection.

    One node broadcasts random local syndromes for the whole run: "Its
    presence is not supposed to induce the other nodes to diagnose
    correct nodes as faulty" (Sec. 8).
    """
    return RunSpec(
        protocol=_default_protocol(n_nodes),
        cluster=ClusterSpec(seed=seed),
        variant=VariantSpec(byzantine_nodes=(byzantine,)),
        n_rounds=n_rounds,
        reducer="validation.malicious",
    )


@register_reducer
class MaliciousReducer:
    """Check that the byzantine node never causes a false accusation."""

    name = "validation.malicious"

    def reduce(self, target, spec, state) -> MaliciousResult:
        """Score consistency and the no-false-accusation property."""
        byzantine = spec.variant.byzantine_nodes[0]
        n_nodes = spec.protocol.n_nodes
        obedient = target.obedient_node_ids()
        consistent = not consistency_violations(target.trace, obedient)
        no_false = True
        for node in obedient:
            for d_round, hv in target.health_vectors(node).items():
                for j in range(1, n_nodes + 1):
                    if j != byzantine and hv[j - 1] == 0:
                        no_false = False
        return MaliciousResult(byzantine=byzantine, consistent=consistent,
                               no_false_accusation=no_false)


def run_malicious_experiment(byzantine: int, seed: int = 0,
                             n_nodes: int = PAPER_N_NODES,
                             n_rounds: int = 30,
                             metrics=None) -> MaliciousResult:
    """One node broadcasts random local syndromes for the whole run."""
    return execute(malicious_spec(byzantine, seed=seed, n_nodes=n_nodes,
                                  n_rounds=n_rounds), metrics=metrics)


@dataclass
class CliqueResult:
    """Outcome of one clique-detection injection."""

    minority: int
    #: Rounds between the asymmetric fault and the view change.
    view_latency_rounds: Optional[int]
    #: The final agreed view of the majority clique.
    final_view: Optional[Tuple[int, ...]]
    detected: bool
    consistent_views: bool

    @property
    def passed(self) -> bool:
        return (self.detected and self.consistent_views
                and self.final_view is not None
                and self.minority not in self.final_view)


def clique_spec(disturbed_sender: int = 3, seed: int = 0,
                n_nodes: int = PAPER_N_NODES) -> RunSpec:
    """Declarative form of the paper's clique injection.

    The disturbance node sits between Node 1 and the rest of the
    cluster and disconnects the bus during ``disturbed_sender``'s slot:
    only Node 1 misses that frame, forming a minority clique {1}.
    """
    fault = SenderFault(disturbed_sender, kind="asymmetric",
                        rounds=[FAULT_ROUND], detectable_by=[1],
                        cause="disturbance-node")
    return RunSpec(
        protocol=_default_protocol(n_nodes),
        cluster=ClusterSpec(seed=seed),
        variant=VariantSpec(service="membership"),
        scenarios=(ScenarioSpec.from_scenario(fault),),
        n_rounds=FAULT_ROUND + 12,
        reducer="validation.clique",
    )


@register_reducer
class CliqueReducer:
    """Check that the majority clique detects and excludes the minority."""

    name = "validation.clique"

    def reduce(self, target, spec, state) -> CliqueResult:
        """Score view agreement, exclusion and the view-change latency."""
        fault_round = spec.scenarios[0].params["rounds"][0]
        n_nodes = spec.protocol.n_nodes
        majority = [i for i in range(2, n_nodes + 1)]
        views = [target.services[i].view for i in majority]
        consistent_views = len(set(views)) == 1
        final_view = tuple(sorted(views[0])) if consistent_views else None
        detected = all(1 not in v for v in views)
        latency = None
        changes = [rec for rec in target.trace.select(category="view")
                   if rec.node in majority]
        if changes:
            latency = (min(rec.data["round_index"] for rec in changes)
                       - fault_round)
        return CliqueResult(minority=1, view_latency_rounds=latency,
                            final_view=final_view, detected=detected,
                            consistent_views=consistent_views)


def run_clique_experiment(disturbed_sender: int = 3, seed: int = 0,
                          n_nodes: int = PAPER_N_NODES,
                          metrics=None) -> CliqueResult:
    """Reproduce the paper's clique injection."""
    return execute(clique_spec(disturbed_sender, seed=seed, n_nodes=n_nodes),
                   metrics=metrics)


@dataclass
class CampaignSummary:
    """Aggregate outcome of the Sec. 8 campaign."""

    results: Dict[str, List[bool]] = field(default_factory=dict)

    def add(self, experiment_class: str, passed: bool) -> None:
        """Record one injection's outcome for a class."""
        self.results.setdefault(experiment_class, []).append(passed)

    @property
    def total_injections(self) -> int:
        return sum(len(v) for v in self.results.values())

    @property
    def all_passed(self) -> bool:
        return all(all(v) for v in self.results.values())

    def pass_rates(self) -> Dict[str, float]:
        """Per-class fraction of passed injections."""
        return {cls: sum(v) / len(v) for cls, v in self.results.items()}


#: The Sec. 8 campaign summary as a declarative table (rows are the
#: ``(experiment class, outcomes)`` items of a :class:`CampaignSummary`).
VALIDATION_TABLE = TableSpec(
    name="validation",
    title=lambda s: (f"Sec. 8 validation campaign "
                     f"({s.total_injections} injections)"),
    columns=(
        Column("experiment class", lambda row: row[0]),
        Column("injections", lambda row: len(row[1])),
        Column("pass rate",
               lambda row: f"{100 * sum(row[1]) / len(row[1]):.0f}%"),
    ),
    rows=lambda s: sorted(s.results.items()),
    footer=lambda s: (f"all passed: {s.all_passed}",),
)


def validation_specs(repetitions: int = 100,
                     n_nodes: int = PAPER_N_NODES
                     ) -> List[Tuple[str, RunSpec]]:
    """The Sec. 8 campaign as ``(experiment_class, spec)`` pairs.

    Enumerated in the campaign's canonical order: 12 burst classes,
    the counter update, 4 malicious classes, clique detection —
    ``repetitions`` seeds each.  Every spec is fully serializable, so
    the list is directly submittable to the parallel runner.
    """
    specs: List[Tuple[str, RunSpec]] = []
    burst_lengths = (1, 2, 2 * n_nodes)
    for n_slots in burst_lengths:
        for start_slot in range(1, n_nodes + 1):
            cls = f"burst-{n_slots}-slot{start_slot}"
            for rep in range(repetitions):
                specs.append((cls, burst_spec(n_slots, start_slot, seed=rep,
                                              n_nodes=n_nodes)))
    for rep in range(repetitions):
        specs.append(("penalty-reward",
                      penalty_reward_spec(seed=rep, n_nodes=n_nodes)))
    for byzantine in range(1, n_nodes + 1):
        cls = f"malicious-node{byzantine}"
        for rep in range(repetitions):
            specs.append((cls, malicious_spec(byzantine, seed=rep,
                                              n_nodes=n_nodes)))
    for rep in range(repetitions):
        specs.append(("clique-detection",
                      clique_spec(seed=rep, n_nodes=n_nodes)))
    return specs


def run_validation_campaign(repetitions: int = 100,
                            n_nodes: int = PAPER_N_NODES) -> CampaignSummary:
    """The full Sec. 8 campaign.

    With the paper's ``repetitions = 100`` this is 1500+ injections
    (12 burst classes + counter update + 4 malicious classes + clique
    detection, ``repetitions`` each).  The simulator is deterministic
    per seed, so the repetitions vary the seed.
    """
    summary = CampaignSummary()
    for cls, spec in validation_specs(repetitions, n_nodes):
        summary.add(cls, execute(spec).passed)
    return summary


__all__ = [
    "PAPER_N_NODES",
    "FAULT_ROUND",
    "BurstResult",
    "PenaltyRewardResult",
    "MaliciousResult",
    "CliqueResult",
    "CampaignSummary",
    "BurstReducer",
    "PenaltyRewardReducer",
    "MaliciousReducer",
    "CliqueReducer",
    "expected_faulty_slots",
    "burst_spec",
    "penalty_reward_spec",
    "malicious_spec",
    "clique_spec",
    "validation_specs",
    "run_burst_experiment",
    "run_penalty_reward_experiment",
    "run_malicious_experiment",
    "run_clique_experiment",
    "run_validation_campaign",
]
