"""Sec. 8 validation campaign: fault injection experiment classes.

The paper validates the protocols with 1500 physical fault injections
on a 4-node cluster (T = 2.5 ms), grouped into experiment classes:

* **bursty faults** of one slot, two slots and two TDMA rounds,
  starting in any of the 4 sending slots (12 classes x 100 reps);
* **penalty/reward update**: a fault in one node's sending slot every
  second TDMA round for 20 rounds — either the penalty or the reward
  counter must change at every diagnosed round;
* **malicious node**: one node broadcasts random local syndromes; the
  other nodes must never diagnose a correct node as faulty (4 classes);
* **clique detection**: the disturbance node separates Node 1 from the
  rest of the cluster during another node's sending slot, producing a
  minority clique formed by Node 1, which the membership protocol must
  detect and exclude.

Each function runs one injection experiment on the simulated cluster
and scores it against the paper's properties (correctness,
completeness, consistency; counter behaviour; view changes).
:func:`run_validation_campaign` reproduces the whole campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.metrics import (
    completeness_holds,
    consistency_violations,
    correctness_holds,
    diagnoses_for_round,
)
from ..core.config import ProtocolConfig, uniform_config
from ..core.service import DiagnosedCluster, MembershipCluster
from ..faults.scenarios import SenderFault, SlotBurst, every_nth_round
from ..tt.cluster import PAPER_ROUND_LENGTH

#: The paper's prototype size.
PAPER_N_NODES = 4
#: Round where injections start (after the pipeline has filled).
FAULT_ROUND = 6


def _default_config(n_nodes: int = PAPER_N_NODES) -> ProtocolConfig:
    # A permissive p/r configuration: validation scores the health
    # vectors themselves, not isolation decisions.
    return uniform_config(n_nodes, penalty_threshold=10 ** 6,
                          reward_threshold=10 ** 6)


@dataclass
class BurstResult:
    """Outcome of one bursty-fault injection."""

    n_slots: int
    start_slot: int
    #: Slots expected faulty, per round: round -> sorted node IDs.
    expected: Dict[int, Tuple[int, ...]]
    #: What the cluster diagnosed: round -> {node: health vector}.
    diagnosed: Dict[int, Dict[int, Tuple[int, ...]]]
    consistent: bool
    complete: bool
    correct: bool

    @property
    def passed(self) -> bool:
        return self.consistent and self.complete and self.correct


def expected_faulty_slots(n_nodes: int, start_slot: int,
                          n_slots: int, fault_round: int = FAULT_ROUND
                          ) -> Dict[int, Tuple[int, ...]]:
    """Ground truth: the senders hit by a burst, grouped by round."""
    per_round: Dict[int, List[int]] = {}
    gidx0 = fault_round * n_nodes + (start_slot - 1)
    for offset in range(n_slots):
        gidx = gidx0 + offset
        per_round.setdefault(gidx // n_nodes, []).append(gidx % n_nodes + 1)
    return {r: tuple(sorted(slots)) for r, slots in per_round.items()}


def run_burst_experiment(n_slots: int, start_slot: int, seed: int = 0,
                         n_nodes: int = PAPER_N_NODES,
                         round_length: float = PAPER_ROUND_LENGTH,
                         metrics=None) -> BurstResult:
    """One injection of a burst of ``n_slots`` slots from ``start_slot``.

    Bursts of 1 or 2 slots exercise the Lemma 2 regime; a burst of two
    whole rounds (``n_slots = 2 * n_nodes``) is the Lemma 3 blackout.
    """
    dc = DiagnosedCluster(_default_config(n_nodes), seed=seed,
                          round_length=round_length, metrics=metrics)
    dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase, FAULT_ROUND,
                                      start_slot, n_slots))
    expected = expected_faulty_slots(n_nodes, start_slot, n_slots)
    last_round = max(expected)
    # Run long enough for the pipeline to diagnose every affected round.
    dc.run_rounds(last_round + 6)

    obedient = dc.obedient_node_ids()
    diagnosed: Dict[int, Dict[int, Tuple[int, ...]]] = {}
    complete = True
    correct = True
    for d_round, faulty in expected.items():
        vectors = diagnoses_for_round(dc.trace, d_round, obedient)
        diagnosed[d_round] = vectors
        for f in faulty:
            if not completeness_holds(dc.trace, d_round, f, obedient):
                complete = False
        correct_nodes = [j for j in range(1, n_nodes + 1) if j not in faulty]
        if not correctness_holds(dc.trace, d_round, correct_nodes, obedient):
            correct = False
    consistent = not consistency_violations(dc.trace, obedient)
    return BurstResult(n_slots=n_slots, start_slot=start_slot,
                       expected=expected, diagnosed=diagnosed,
                       consistent=consistent, complete=complete,
                       correct=correct)


@dataclass
class PenaltyRewardResult:
    """Outcome of the counter-update experiment."""

    target: int
    #: (diagnosed_round, penalty, reward) evolution at one observer.
    evolution: List[Tuple[int, int, int]]
    #: Whether one of the two counters changed at every diagnosed round.
    counters_progress: bool
    consistent: bool

    @property
    def passed(self) -> bool:
        return self.counters_progress and self.consistent


def run_penalty_reward_experiment(target: int = 2, seed: int = 0,
                                  n_nodes: int = PAPER_N_NODES,
                                  metrics=None) -> PenaltyRewardResult:
    """Fault in ``target``'s slot every second round for 20 rounds.

    "Hence, either the penalty or the reward counter should be
    increased at every round" (Sec. 8).
    """
    config = _default_config(n_nodes)
    dc = DiagnosedCluster(config, seed=seed, metrics=metrics)
    dc.cluster.add_scenario(every_nth_round(target, period=2,
                                            start_round=FAULT_ROUND,
                                            occurrences=10))
    observer = dc.service(1)
    evolution: List[Tuple[int, int, int]] = []

    def probe(service, cons_hv, k):
        d_round = k - config.detection_pipeline_rounds()
        p, r = service.pr.counters_of(target)
        evolution.append((d_round, p, r))

    observer.post_update_hooks.append(probe)
    dc.run_rounds(FAULT_ROUND + 20 + 6)

    window = [(d, p, r) for d, p, r in evolution
              if FAULT_ROUND <= d < FAULT_ROUND + 20]
    progress = True
    for (d0, p0, r0), (d1, p1, r1) in zip(window, window[1:]):
        if (p1, r1) == (p0, r0):
            progress = False
    # The very first faulty round must bump the penalty from 0.
    if not window or window[0][1] == 0:
        progress = False
    consistent = not consistency_violations(dc.trace, dc.obedient_node_ids())
    return PenaltyRewardResult(target=target, evolution=window,
                               counters_progress=progress,
                               consistent=consistent)


@dataclass
class MaliciousResult:
    """Outcome of one malicious-node injection."""

    byzantine: int
    consistent: bool
    #: No correct node was ever diagnosed faulty by an obedient node.
    no_false_accusation: bool

    @property
    def passed(self) -> bool:
        return self.consistent and self.no_false_accusation


def run_malicious_experiment(byzantine: int, seed: int = 0,
                             n_nodes: int = PAPER_N_NODES,
                             n_rounds: int = 30,
                             metrics=None) -> MaliciousResult:
    """One node broadcasts random local syndromes for the whole run.

    "Its presence is not supposed to induce the other nodes to diagnose
    correct nodes as faulty" (Sec. 8).
    """
    dc = DiagnosedCluster(_default_config(n_nodes), seed=seed,
                          byzantine_nodes=[byzantine], metrics=metrics)
    dc.run_rounds(n_rounds)
    obedient = dc.obedient_node_ids()
    consistent = not consistency_violations(dc.trace, obedient)
    no_false = True
    for node in obedient:
        for d_round, hv in dc.health_vectors(node).items():
            for j in range(1, n_nodes + 1):
                if j != byzantine and hv[j - 1] == 0:
                    no_false = False
    return MaliciousResult(byzantine=byzantine, consistent=consistent,
                           no_false_accusation=no_false)


@dataclass
class CliqueResult:
    """Outcome of one clique-detection injection."""

    minority: int
    #: Rounds between the asymmetric fault and the view change.
    view_latency_rounds: Optional[int]
    #: The final agreed view of the majority clique.
    final_view: Optional[Tuple[int, ...]]
    detected: bool
    consistent_views: bool

    @property
    def passed(self) -> bool:
        return (self.detected and self.consistent_views
                and self.final_view is not None
                and self.minority not in self.final_view)


def run_clique_experiment(disturbed_sender: int = 3, seed: int = 0,
                          n_nodes: int = PAPER_N_NODES,
                          metrics=None) -> CliqueResult:
    """Reproduce the paper's clique injection.

    The disturbance node sits between Node 1 and the rest of the
    cluster and disconnects the bus during ``disturbed_sender``'s slot:
    only Node 1 misses that frame, forming a minority clique {1}.
    """
    config = _default_config(n_nodes)
    mc = MembershipCluster(config, seed=seed, metrics=metrics)
    mc.cluster.add_scenario(SenderFault(
        disturbed_sender, kind="asymmetric", rounds=[FAULT_ROUND],
        detectable_by=[1], cause="disturbance-node"))
    mc.run_rounds(FAULT_ROUND + 12)

    majority = [i for i in range(2, n_nodes + 1)]
    views = [mc.services[i].view for i in majority]
    consistent_views = len(set(views)) == 1
    final_view = tuple(sorted(views[0])) if consistent_views else None
    detected = all(1 not in v for v in views)
    latency = None
    changes = [rec for rec in mc.trace.select(category="view")
               if rec.node in majority]
    if changes:
        latency = min(rec.data["round_index"] for rec in changes) - FAULT_ROUND
    return CliqueResult(minority=1, view_latency_rounds=latency,
                        final_view=final_view, detected=detected,
                        consistent_views=consistent_views)


@dataclass
class CampaignSummary:
    """Aggregate outcome of the Sec. 8 campaign."""

    results: Dict[str, List[bool]] = field(default_factory=dict)

    def add(self, experiment_class: str, passed: bool) -> None:
        """Record one injection's outcome for a class."""
        self.results.setdefault(experiment_class, []).append(passed)

    @property
    def total_injections(self) -> int:
        return sum(len(v) for v in self.results.values())

    @property
    def all_passed(self) -> bool:
        return all(all(v) for v in self.results.values())

    def pass_rates(self) -> Dict[str, float]:
        """Per-class fraction of passed injections."""
        return {cls: sum(v) / len(v) for cls, v in self.results.items()}


def run_validation_campaign(repetitions: int = 100,
                            n_nodes: int = PAPER_N_NODES) -> CampaignSummary:
    """The full Sec. 8 campaign.

    With the paper's ``repetitions = 100`` this is 1500+ injections
    (12 burst classes + counter update + 4 malicious classes + clique
    detection, ``repetitions`` each).  The simulator is deterministic
    per seed, so the repetitions vary the seed.
    """
    summary = CampaignSummary()
    burst_lengths = (1, 2, 2 * n_nodes)
    for n_slots in burst_lengths:
        for start_slot in range(1, n_nodes + 1):
            cls = f"burst-{n_slots}-slot{start_slot}"
            for rep in range(repetitions):
                result = run_burst_experiment(n_slots, start_slot, seed=rep,
                                              n_nodes=n_nodes)
                summary.add(cls, result.passed)
    for rep in range(repetitions):
        summary.add("penalty-reward",
                    run_penalty_reward_experiment(seed=rep,
                                                  n_nodes=n_nodes).passed)
    for byzantine in range(1, n_nodes + 1):
        cls = f"malicious-node{byzantine}"
        for rep in range(repetitions):
            summary.add(cls, run_malicious_experiment(byzantine, seed=rep,
                                                      n_nodes=n_nodes).passed)
    for rep in range(repetitions):
        summary.add("clique-detection",
                    run_clique_experiment(seed=rep, n_nodes=n_nodes).passed)
    return summary


__all__ = [
    "PAPER_N_NODES",
    "FAULT_ROUND",
    "BurstResult",
    "PenaltyRewardResult",
    "MaliciousResult",
    "CliqueResult",
    "CampaignSummary",
    "expected_faulty_slots",
    "run_burst_experiment",
    "run_penalty_reward_experiment",
    "run_malicious_experiment",
    "run_clique_experiment",
    "run_validation_campaign",
]
