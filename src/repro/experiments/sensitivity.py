"""Burst-phase sensitivity of the Table 4 times to isolation.

Our Table 4 reproduction differs from the paper by up to ~11 % (the SR
row).  The hypothesised cause: the paper injected *physical* bursts
whose start instants were not aligned to the TDMA round grid, so a
10 ms burst sometimes damages a node's slot in 4 consecutive rounds and
sometimes in 5, changing how fast penalties accumulate.

This harness measures that effect directly: it sweeps the phase offset
of the blinking-light scenario across one TDMA round and records each
criticality class's time to isolation.  The resulting min-max band is
the envelope any physical measurement should fall into — EXPERIMENTS.md
checks that the paper's numbers do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.config import CriticalityClass, automotive_config
from ..core.service import DiagnosedCluster
from ..faults.scenarios import PeriodicBurst
from ..results.tables import Column, TableSpec
from ..tt.cluster import PAPER_ROUND_LENGTH
from .adverse import AUTOMOTIVE_NODE_CLASSES

C = CriticalityClass

#: Node observed per criticality class in the automotive cluster.
CLASS_NODES = {C.SC: 1, C.SR: 2, C.NSR: 3}


@dataclass
class PhasePoint:
    """Times to isolation for one (phase offset, overlap threshold)."""

    phase_fraction: float
    min_overlap: float
    times: Dict[CriticalityClass, Optional[float]]


def run_phase(phase_fraction: float, min_overlap: float = 0.0,
              seed: int = 0, horizon: float = 35.0,
              round_length: float = PAPER_ROUND_LENGTH) -> PhasePoint:
    """One blinking-light run with shifted, threshold-corrupting bursts.

    ``phase_fraction`` in [0, 1) shifts every burst start by that
    fraction of a TDMA round; ``min_overlap`` is the fraction of a
    frame's transmission window a burst must cover to corrupt it
    (physical receivers may survive marginal clipping).  The time to
    isolation is measured from the first burst's start, as in the
    paper, so points are comparable.
    """
    if not 0.0 <= phase_fraction < 1.0:
        raise ValueError("phase_fraction must be in [0, 1)")
    config = automotive_config(list(AUTOMOTIVE_NODE_CLASSES))
    dc = DiagnosedCluster(config, seed=seed, round_length=round_length,
                          trace_level=0)
    start = phase_fraction * round_length
    dc.cluster.add_scenario(PeriodicBurst(
        start=start, burst_length=10e-3, time_to_reappearance=500e-3,
        count=60, cause="blinking-light", min_overlap=min_overlap))
    dc.run_until(horizon + start)
    times = {}
    for cls, node in CLASS_NODES.items():
        t = dc.first_isolation_time(node)
        times[cls] = None if t is None else t - start
    return PhasePoint(phase_fraction=phase_fraction,
                      min_overlap=min_overlap, times=times)


#: The phase sweep as a declarative table over ``List[PhasePoint]``.
SENSITIVITY_TABLE = TableSpec(
    name="sensitivity",
    title="Burst-phase sensitivity of times to isolation",
    columns=(
        Column("phase", lambda p: f"{p.phase_fraction:.1f}"),
        Column("min overlap", lambda p: f"{p.min_overlap:.1f}"),
        Column("SC (s)", lambda p: p.times.get(C.SC)),
        Column("SR (s)", lambda p: p.times.get(C.SR)),
        Column("NSR (s)", lambda p: p.times.get(C.NSR)),
    ),
)


def phase_sweep(phases: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
                overlaps: Sequence[float] = (0.0, 0.5, 0.9),
                seed: int = 0) -> List[PhasePoint]:
    """The full sweep across burst phases and overlap thresholds."""
    return [run_phase(p, o, seed=seed) for o in overlaps for p in phases]


def band(points: Sequence[PhasePoint],
         cls: CriticalityClass) -> Dict[str, float]:
    """Min/max envelope of the time to isolation for one class."""
    values = [p.times[cls] for p in points if p.times[cls] is not None]
    if not values:
        raise ValueError(f"no isolation observed for {cls}")
    return {"min": min(values), "max": max(values)}


__all__ = ["SENSITIVITY_TABLE", "PhasePoint", "run_phase", "phase_sweep",
           "band", "CLASS_NODES"]
