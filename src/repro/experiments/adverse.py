"""Diagnosis under adverse external conditions (Sec. 9, Tables 3-4).

The paper evaluates the p/r algorithm's availability under two
*abnormal transient* scenarios that systems are designed to ride out
without recovery actions:

* **automotive, blinking light** (Table 3): an open relay causes 10 ms
  electrical instabilities on the bus every 500 ms, 50 times;
* **aerospace, lightning bolt** (Table 3): 40 ms instabilities with
  increasing times to reappearance — 160 ms, 290 ms, then 9 x 500 ms.

Under these conditions the bursts are (by design of the p/r tuning)
treated as correlated, so healthy nodes are eventually *incorrectly*
isolated; Table 4 reports the time to that incorrect isolation per
criticality class.  This module regenerates Table 4 and the ablation
the paper argues qualitatively: immediate isolation would take out
*every* node during the first abnormal period, forcing a whole-system
restart, while p/r keeps low-criticality functions alive ~50x longer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.config import CriticalityClass, aerospace_config, automotive_config
from ..core.service import DiagnosedCluster
from ..faults.scenarios import BurstSequence, blinking_light
from ..results.tables import Column, TableSpec
from ..tt.cluster import PAPER_ROUND_LENGTH

#: Paper Table 4 reference values (seconds).
PAPER_TABLE4 = {
    ("automotive", CriticalityClass.SC): 0.518,
    ("automotive", CriticalityClass.SR): 4.595,
    ("automotive", CriticalityClass.NSR): 24.475,
    ("aerospace", CriticalityClass.SC): 0.205,
}

#: Node-to-class assignment used for the automotive cluster: one node
#: per criticality class plus a second SC node (N = 4, as in the
#: prototype).
AUTOMOTIVE_NODE_CLASSES = (CriticalityClass.SC, CriticalityClass.SR,
                           CriticalityClass.NSR, CriticalityClass.SC)


@dataclass
class AdverseResult:
    """Time to incorrect isolation per criticality class."""

    domain: str
    times: Dict[CriticalityClass, Optional[float]]
    #: Horizon actually simulated (seconds).
    horizon: float

    def row(self) -> Tuple[str, str, str]:
        """Render as a Table 4 row (setting, classes, times)."""
        classes = " / ".join(c.name for c in self.times)
        times = " / ".join(
            "-" if t is None else f"{t:.3f}" for t in self.times.values())
        return (self.domain, classes, f"{times} sec")


def automotive_adverse(seed: int = 0, horizon: float = 27.0,
                       round_length: float = PAPER_ROUND_LENGTH) -> AdverseResult:
    """The blinking-light scenario on the tuned automotive cluster."""
    config = automotive_config(list(AUTOMOTIVE_NODE_CLASSES))
    dc = DiagnosedCluster(config, seed=seed, round_length=round_length,
                          trace_level=0)
    dc.cluster.add_scenario(blinking_light(start=0.0))
    dc.run_until(horizon)
    times = {
        CriticalityClass.SC: dc.first_isolation_time(1),
        CriticalityClass.SR: dc.first_isolation_time(2),
        CriticalityClass.NSR: dc.first_isolation_time(3),
    }
    return AdverseResult(domain="Automotive", times=times, horizon=horizon)


def aerospace_adverse(seed: int = 0, horizon: float = 6.0,
                      round_length: float = PAPER_ROUND_LENGTH) -> AdverseResult:
    """The lightning-bolt scenario on the tuned aerospace cluster."""
    config = aerospace_config(4)
    dc = DiagnosedCluster(config, seed=seed, round_length=round_length,
                          trace_level=0)
    dc.cluster.add_scenario(BurstSequence.lightning_bolt(start=0.0))
    dc.run_until(horizon)
    times = {CriticalityClass.SC: dc.first_isolation_time(1)}
    return AdverseResult(domain="Aerospace", times=times, horizon=horizon)


@dataclass
class ImmediateIsolationAblation:
    """What immediate isolation would do in the same scenario."""

    #: Time at which every node would have been isolated (whole-system
    #: restart) under isolate-on-first-fault.
    immediate_all_down: Optional[float]
    #: p/r times to isolation per class, for contrast.
    pr_times: Dict[CriticalityClass, Optional[float]]


def immediate_isolation_ablation(seed: int = 0) -> ImmediateIsolationAblation:
    """Sec. 9's availability argument, quantified.

    Runs the automotive blinking-light scenario with ``P = 0`` (isolate
    on first diagnosed fault): the first burst hits every sending slot,
    so every node is isolated within milliseconds — "a single abnormal
    transient period would result in the isolation of all the nodes in
    the system".
    """
    base = automotive_config(list(AUTOMOTIVE_NODE_CLASSES))
    immediate = base.with_updates(penalty_threshold=0)
    dc = DiagnosedCluster(immediate, seed=seed, trace_level=0)
    dc.cluster.add_scenario(blinking_light(start=0.0))
    dc.run_until(0.6)
    down_times = [dc.first_isolation_time(i) for i in range(1, 5)]
    all_down = max(down_times) if all(t is not None for t in down_times) else None
    pr = automotive_adverse(seed=seed)
    return ImmediateIsolationAblation(immediate_all_down=all_down,
                                      pr_times=pr.times)


#: Table 4 as a declarative table over a ``List[AdverseResult]``.
TABLE4_TABLE = TableSpec(
    name="table4",
    title="Table 4: time to incorrect isolation",
    columns=(
        Column("Setting", lambda r: r.row()[0]),
        Column("Criticality class", lambda r: r.row()[1]),
        Column("Time to isolation", lambda r: r.row()[2]),
    ),
)


def table4(seed: int = 0) -> List[AdverseResult]:
    """Regenerate Table 4 (both domains)."""
    return [automotive_adverse(seed=seed), aerospace_adverse(seed=seed)]


__all__ = [
    "PAPER_TABLE4",
    "AUTOMOTIVE_NODE_CLASSES",
    "TABLE4_TABLE",
    "AdverseResult",
    "automotive_adverse",
    "aerospace_adverse",
    "ImmediateIsolationAblation",
    "immediate_isolation_ablation",
    "table4",
]
