"""Table 2 reproduction: experimental tuning of the p/r algorithm.

The paper's procedure (Sec. 9, "Tuning the diagnostic latency"):

1. inject a continuous faulty burst into a node with criticality 1;
2. observe the penalty counter value reached when the class's maximum
   tolerated diagnostic latency elapses — that is the class's penalty
   budget ``p_class``;
3. set ``P = max(p_class)`` and ``s_class = ceil(P / p_class)``.

:func:`measure_penalty_budget` performs step 1-2 on the actual
simulated cluster (not analytically): it runs a cluster under a
continuous bus burst and reads the penalty counter at the deadline.
:func:`table2` assembles the full table for both domains and
cross-checks it against the closed-form derivation in
:mod:`repro.analysis.tuning`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.tuning import TuningResult, tune
from ..core.config import (
    AEROSPACE_TOLERATED_OUTAGE,
    AUTOMOTIVE_TOLERATED_OUTAGE,
    PAPER_REWARD_THRESHOLD,
    CriticalityClass,
    uniform_config,
)
from ..results.tables import Column, TableSpec
from ..spec import (
    ClusterSpec,
    ProtocolSpec,
    RunSpec,
    ScenarioSpec,
    execute,
    register_reducer,
)
from ..tt.cluster import PAPER_ROUND_LENGTH

#: Table 2 reference values.
PAPER_TABLE2 = {
    "automotive": {
        "P": 197,
        "R": PAPER_REWARD_THRESHOLD,
        "criticalities": {CriticalityClass.SC: 40, CriticalityClass.SR: 6,
                          CriticalityClass.NSR: 1},
    },
    "aerospace": {
        "P": 17,
        "R": PAPER_REWARD_THRESHOLD,
        "criticalities": {CriticalityClass.SC: 1},
    },
}


def penalty_budget_spec(tolerated_outage: float, seed: int = 0,
                        n_nodes: int = 4,
                        round_length: float = PAPER_ROUND_LENGTH) -> RunSpec:
    """Declarative form of one penalty-budget measurement.

    A continuous burst starts at a round boundary and outlasts the
    tolerated outage; the run covers exactly the rounds that complete
    strictly before the outage deadline — an isolation decided at the
    deadline itself would already exceed the tolerated outage (jobs
    execute inside their round, after the deadline instant).  The runs
    use ``trace_level=0`` (the counters are read directly from the
    services), so a metrics registry is the only way to observe the
    protocol's behaviour online here.
    """
    start_round = 6
    fault_start = start_round * round_length
    deadline_round = start_round + int(round(tolerated_outage / round_length))
    config = uniform_config(n_nodes, penalty_threshold=10 ** 9,
                            reward_threshold=10 ** 9)
    return RunSpec(
        protocol=ProtocolSpec.from_config(config),
        cluster=ClusterSpec(round_length=round_length, seed=seed,
                            trace_level=0),
        scenarios=(ScenarioSpec(
            "BusBurst",
            {"start": fault_start,
             "duration": tolerated_outage + 10 * round_length,
             "cause": "continuous-burst"}),),
        n_rounds=deadline_round,
        reducer="table2.penalty-budget",
    )


@register_reducer
class PenaltyBudgetReducer:
    """Read the consistent criticality-1 penalty counter at the deadline."""

    name = "table2.penalty-budget"

    def reduce(self, target, spec, state) -> int:
        """The agreed budget (asserting all nodes agree on it)."""
        n_nodes = spec.protocol.n_nodes
        budgets = {target.service(i).pr.penalties[0]
                   for i in range(1, n_nodes + 1)}
        if len(budgets) != 1:
            raise AssertionError(
                f"nodes disagree on the penalty budget: {budgets}")
        return budgets.pop()


def measure_penalty_budget(tolerated_outage: float, seed: int = 0,
                           n_nodes: int = 4,
                           round_length: float = PAPER_ROUND_LENGTH,
                           metrics=None) -> int:
    """Measure a class's penalty budget on the simulated cluster.

    Injects a continuous burst starting at a round boundary and reads
    node 1's penalty counter (criticality 1) at every node when the
    tolerated outage has elapsed, mirroring the paper's measurement.
    The returned budget is the *consistent* counter value (asserting
    all nodes agree).
    """
    return execute(penalty_budget_spec(tolerated_outage, seed=seed,
                                       n_nodes=n_nodes,
                                       round_length=round_length),
                   metrics=metrics)


@dataclass
class Table2Row:
    """One (domain, class) row of the reproduced Table 2."""

    domain: str
    criticality_class: CriticalityClass
    tolerated_outage: float
    measured_budget: int
    criticality: int
    penalty_threshold: int
    reward_threshold: int
    round_length: float


#: Table 2 as a declarative table over a ``List[Table2Row]`` aggregate.
TABLE2_TABLE = TableSpec(
    name="table2",
    title="Table 2: experimental tuning of the p/r algorithm",
    columns=(
        Column("Domain", lambda r: r.domain),
        Column("Class", lambda r: r.criticality_class.name),
        Column("Tolerated outage", lambda r: f"{r.tolerated_outage * 1e3:.0f} ms"),
        Column("Measured budget", lambda r: r.measured_budget),
        Column("Crit. lvl (s_i)", lambda r: r.criticality),
        Column("P", lambda r: r.penalty_threshold),
        Column("R", lambda r: f"{r.reward_threshold:.0e}"),
    ),
)


def table2(seed: int = 0,
           round_length: float = PAPER_ROUND_LENGTH) -> List[Table2Row]:
    """Run the tuning experiment for both domains and assemble Table 2."""
    import math

    rows: List[Table2Row] = []
    for domain, outages in (("Automotive", AUTOMOTIVE_TOLERATED_OUTAGE),
                            ("Aerospace", AEROSPACE_TOLERATED_OUTAGE)):
        budgets = {
            cls: measure_penalty_budget(outage, seed=seed,
                                        round_length=round_length)
            for cls, outage in outages.items()
        }
        penalty_threshold = max(budgets.values())
        for cls, outage in outages.items():
            rows.append(Table2Row(
                domain=domain,
                criticality_class=cls,
                tolerated_outage=outage,
                measured_budget=budgets[cls],
                criticality=math.ceil(penalty_threshold / budgets[cls]),
                penalty_threshold=penalty_threshold,
                reward_threshold=PAPER_REWARD_THRESHOLD,
                round_length=round_length,
            ))
    return rows


def analytic_cross_check(round_length: float = PAPER_ROUND_LENGTH
                         ) -> Tuple[TuningResult, TuningResult]:
    """The closed-form derivation, for comparison with the measurement."""
    return (tune(AUTOMOTIVE_TOLERATED_OUTAGE, round_length),
            tune(AEROSPACE_TOLERATED_OUTAGE, round_length))


__all__ = [
    "PAPER_TABLE2",
    "TABLE2_TABLE",
    "Table2Row",
    "PenaltyBudgetReducer",
    "penalty_budget_spec",
    "measure_penalty_budget",
    "table2",
    "analytic_cross_check",
]
