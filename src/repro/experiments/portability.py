"""Portability sweep: the identical protocol across TT platforms.

Sec. 10 argues the add-on protocol ports to any TT platform because it
only consumes validity bits, slot timing and schedule constants.  This
harness runs the *same* protocol code over the timing profiles of the
platforms the paper names (FlexRay, TTP/C, SAFEbus, TT-Ethernet) and
reports, per platform:

* detection latency for a one-slot fault, in rounds and milliseconds
  (rounds are platform-invariant; wall-clock scales with the round);
* protocol bandwidth (N bits per message, N^2 per round);
* the result of the full property oracle on a mixed fault scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.metrics import detection_latency_rounds
from ..core.config import uniform_config
from ..core.service import DiagnosedCluster
from ..faults.scenarios import SlotBurst
from ..results.tables import Column, TableSpec
from ..tt.frames import round_bandwidth_bits, syndrome_size_bits
from ..tt.platforms import PLATFORMS, PlatformProfile
from .oracle import check_against_oracle

FAULT_ROUND = 6


@dataclass
class PortabilityResult:
    """Protocol behaviour on one platform profile."""

    platform: str
    n_nodes: int
    round_ms: float
    latency_rounds: Optional[int]
    latency_ms: Optional[float]
    message_bits: int
    round_bits: int
    oracle_ok: bool


#: The Sec. 10 platform sweep as a declarative table.
PORTABILITY_TABLE = TableSpec(
    name="portability",
    title="Portability: identical protocol per TT platform",
    columns=(
        Column("platform", lambda r: r.platform),
        Column("N", lambda r: r.n_nodes),
        Column("round", lambda r: f"{r.round_ms:.1f} ms"),
        Column("latency (rounds)", lambda r: r.latency_rounds),
        Column("latency (ms)", lambda r: f"{r.latency_ms:.1f} ms"),
        Column("per message", lambda r: f"{r.message_bits} bits"),
        Column("oracle", lambda r: "ok" if r.oracle_ok else "VIOLATED"),
    ),
)


def diagnosed_cluster_for(profile: PlatformProfile,
                          n_nodes: Optional[int] = None,
                          seed: int = 0,
                          **config_kwargs) -> DiagnosedCluster:
    """A :class:`DiagnosedCluster` with a platform's timing profile."""
    n = n_nodes or profile.default_n_nodes
    config = uniform_config(n, penalty_threshold=10 ** 6,
                            reward_threshold=10 ** 6, **config_kwargs)
    return DiagnosedCluster(config,
                            round_length=profile.round_length,
                            tx_fraction=profile.tx_fraction,
                            n_channels=profile.n_channels,
                            seed=seed)


def run_on_platform(profile: PlatformProfile, seed: int = 0
                    ) -> PortabilityResult:
    """One fault-injection run of the unchanged protocol on a platform."""
    dc = diagnosed_cluster_for(profile, seed=seed)
    n = dc.config.n_nodes
    tb = dc.cluster.timebase
    faulty_slot = 2
    dc.cluster.add_scenario(SlotBurst(tb, FAULT_ROUND, faulty_slot, 1))
    # A second, later fault keeps the oracle scenario non-trivial.
    dc.cluster.add_scenario(SlotBurst(tb, FAULT_ROUND + 4, n, 1))
    dc.run_rounds(FAULT_ROUND + 10)

    latency = detection_latency_rounds(dc.trace, FAULT_ROUND, faulty_slot)
    report = check_against_oracle(dc)
    return PortabilityResult(
        platform=profile.name,
        n_nodes=n,
        round_ms=profile.round_length * 1e3,
        latency_rounds=latency,
        latency_ms=(latency * profile.round_length * 1e3
                    if latency is not None else None),
        message_bits=syndrome_size_bits(n),
        round_bits=round_bandwidth_bits(n),
        oracle_ok=report.ok,
    )


def portability_sweep(seed: int = 0) -> List[PortabilityResult]:
    """The full platform sweep, in the paper's listing order."""
    return [run_on_platform(profile, seed=seed)
            for profile in PLATFORMS.values()]


__all__ = ["PORTABILITY_TABLE", "PortabilityResult", "diagnosed_cluster_for",
           "run_on_platform", "portability_sweep", "FAULT_ROUND"]
