"""Ground-truth oracle: score any protocol run against injected faults.

The paper's validation methodology is "as we know which faults are
injected, we can experimentally evaluate whether the diagnostic
protocol is able to detect them" (Sec. 8).  This module generalises the
per-experiment checks into one oracle usable on *any* simulation:

1. the bus records, for every transmission, the per-receiver validity
   map and the resulting fault class (ground truth by construction);
2. from those records the oracle derives, per diagnosed round, the
   *expected* health verdict for every sender:

   * all receivers valid → 1 (correctness: must not be accused),
   * no receiver valid (symmetric benign) → 0 (completeness: must be
     accused),
   * mixed (asymmetric) → unconstrained, but the decision must be
     consistent (Theorem 1);

3. verdicts are only *required* to match where the Lemma 2 / Lemma 3
   conditions held over the protocol execution window (the diagnosed
   round and the dissemination rounds that carry its syndromes) — the
   same hypothesis under which the paper proves the properties.

:func:`check_against_oracle` returns a report with any violations,
making it the strongest single check in the test suite: the
property-based tests throw randomly composed fault scenarios at the
cluster and require an empty report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.service import DiagnosedCluster
from ..faults.model import FaultClass
from ..results.tables import Column, TableSpec
from ..sim.trace import Trace


@dataclass(frozen=True)
class RoundGroundTruth:
    """Per-sender injected fault classes for one round."""

    round_index: int
    #: sender -> FaultClass (bus-level view; symmetric malicious content
    #: from byzantine *applications* is not visible here and is handled
    #: via node obedience).
    classes: Dict[int, FaultClass]

    def expected_verdict(self, sender: int) -> Optional[int]:
        """1 (must be healthy), 0 (must be faulty) or None (either)."""
        cls = self.classes[sender]
        if cls is FaultClass.NONE or cls is FaultClass.SYMMETRIC_MALICIOUS:
            # Malicious content passes local detection everywhere: the
            # protocol is *required* not to accuse (it cannot detect
            # semantic errors, only communication errors).
            return 1
        if cls is FaultClass.SYMMETRIC_BENIGN:
            return 0
        return None  # asymmetric: any consistent value


def ground_truth_from_trace(trace: Trace, n_nodes: int
                            ) -> Dict[int, RoundGroundTruth]:
    """Rebuild the injected fault classes from the bus's tx records."""
    per_round: Dict[int, Dict[int, FaultClass]] = {}
    for rec in trace.select(category="tx"):
        k = rec.data["round_index"]
        sender = rec.data["slot"]
        per_round.setdefault(k, {})[sender] = FaultClass(
            rec.data["fault_class"])
    return {
        k: RoundGroundTruth(round_index=k, classes=classes)
        for k, classes in per_round.items()
    }


#: Severity order used to classify a node over a whole execution
#: window (the paper assumes one error type per node per execution; a
#: scenario mixing types gets the node's worst class).
_CLASS_SEVERITY = {
    FaultClass.NONE: 0,
    FaultClass.SYMMETRIC_BENIGN: 1,
    FaultClass.SYMMETRIC_MALICIOUS: 2,
    FaultClass.ASYMMETRIC: 3,
}


def lemma_conditions_hold(gt_by_round: Dict[int, RoundGroundTruth],
                          d_round: int, n_nodes: int, byzantine: int,
                          pipeline_rounds: int = 3) -> bool:
    """Whether Theorem 1's hypotheses held for one protocol execution.

    The execution spans the diagnosed round and the rounds carrying its
    syndromes through the pipeline.  The paper counts ``a``, ``s``,
    ``b`` as the numbers of asymmetric / symmetric-malicious / benign
    faulty *nodes over one execution of the protocol*, so each node is
    classified by its (worst) behaviour across the whole window.
    Conditions (Lemma 2 / Lemma 3): ``N > 2a + 2s + b + 1`` with
    ``a <= 1``, or only benign faults with ``N - 1 <= b <= N``.
    """
    per_node: Dict[int, FaultClass] = {}
    for k in range(d_round, d_round + pipeline_rounds + 1):
        gt = gt_by_round.get(k)
        if gt is None:
            return False
        for node, cls in gt.classes.items():
            prev = per_node.get(node, FaultClass.NONE)
            if _CLASS_SEVERITY[cls] > _CLASS_SEVERITY[prev]:
                per_node[node] = cls
            else:
                per_node.setdefault(node, prev)
    a = sum(1 for c in per_node.values() if c is FaultClass.ASYMMETRIC)
    s = byzantine + sum(1 for c in per_node.values()
                        if c is FaultClass.SYMMETRIC_MALICIOUS)
    b = sum(1 for c in per_node.values()
            if c is FaultClass.SYMMETRIC_BENIGN)
    if a == 0 and s == 0 and n_nodes - 1 <= b <= n_nodes:
        return True
    return n_nodes > 2 * a + 2 * s + b + 1 and a <= 1


@dataclass
class OracleViolation:
    """One scored property failure."""

    diagnosed_round: int
    kind: str            # "consistency" | "correctness" | "completeness"
    detail: str


@dataclass
class OracleReport:
    """Outcome of scoring a run against the ground truth."""

    rounds_checked: int = 0
    rounds_skipped: int = 0
    violations: List[OracleViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


#: An :class:`OracleReport` as a declarative table (one violation per
#: row; the checked/skipped tally travels in the footer).
ORACLE_TABLE = TableSpec(
    name="oracle",
    title="Oracle report: property violations",
    columns=(
        Column("diagnosed round", lambda v: v.diagnosed_round),
        Column("property", lambda v: v.kind),
        Column("detail", lambda v: v.detail),
    ),
    rows=lambda report: report.violations,
    footer=lambda report: (
        f"rounds checked: {report.rounds_checked}, "
        f"skipped (hypotheses not met): {report.rounds_skipped}, "
        f"ok: {report.ok}",),
)


def check_against_oracle(dc: DiagnosedCluster,
                         pipeline_rounds: Optional[int] = None) -> OracleReport:
    """Score every diagnosed round of a finished run.

    Consistency is required unconditionally for rounds whose execution
    window satisfies Theorem 1's hypotheses; correctness and
    completeness additionally compare against the expected verdicts.
    """
    n = dc.config.n_nodes
    if pipeline_rounds is None:
        pipeline_rounds = dc.config.detection_pipeline_rounds()
    obedient = dc.obedient_node_ids()
    byzantine = n - len(obedient)
    gt_by_round = ground_truth_from_trace(dc.trace, n)

    vectors_by_node = {node: dc.health_vectors(node) for node in obedient}
    diagnosed_rounds = sorted(
        {d for hv in vectors_by_node.values() for d in hv})

    report = OracleReport()
    for d in diagnosed_rounds:
        if not lemma_conditions_hold(gt_by_round, d, n, byzantine,
                                     pipeline_rounds):
            report.rounds_skipped += 1
            continue
        report.rounds_checked += 1
        vectors = {node: hv[d] for node, hv in vectors_by_node.items()
                   if d in hv}
        if len(set(vectors.values())) > 1:
            report.violations.append(OracleViolation(
                d, "consistency", f"diverging vectors {vectors}"))
            continue
        if not vectors:
            continue
        vector = next(iter(vectors.values()))
        gt = gt_by_round[d]
        for sender in range(1, n + 1):
            if dc.cluster.node(sender).ground_truth.obedient is False:
                # A byzantine node's slot carries random but well-formed
                # content: bus-level class NONE, verdict unconstrained
                # at the semantic level.
                continue
            expected = gt.expected_verdict(sender)
            if expected is None:
                continue
            if vector[sender - 1] != expected:
                kind = "completeness" if expected == 0 else "correctness"
                report.violations.append(OracleViolation(
                    d, kind,
                    f"sender {sender}: expected {expected}, "
                    f"got {vector[sender - 1]} (classes {gt.classes})"))
    return report


__all__ = [
    "ORACLE_TABLE",
    "RoundGroundTruth",
    "ground_truth_from_trace",
    "lemma_conditions_hold",
    "OracleViolation",
    "OracleReport",
    "check_against_oracle",
]
