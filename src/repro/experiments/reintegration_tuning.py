"""Tuning the reintegration reward threshold (Sec. 9's closing idea).

The paper ends its evaluation observing that for safety-critical nodes
"the detection of intermittent faults could be sacrificed for the sake
of availability": isolated nodes could be observed and reintegrated
after a *reintegration reward threshold* of fault-free behaviour.  That
threshold is a new tunable, with its own tradeoff:

* too **small**, and a node isolated during an ongoing disturbance is
  readmitted *between* bursts, only to fail again — flapping that
  repeatedly exposes applications to a faulty provider;
* too **large**, and availability is given away: the node sits out long
  after the disturbance ended.

This harness quantifies the tradeoff on the aerospace lightning-bolt
scenario (where every burst is an external transient and the node is
genuinely healthy): for each candidate threshold it measures the node's
availability over the mission window and the number of premature
reintegration cycles (readmissions followed by another isolation).
The knee sits just above the scenario's worst time-to-reappearance
expressed in rounds — the same correlation logic that sizes ``R``
itself (Fig. 3), now applied to recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.metrics import availability_seconds
from ..core.config import IsolationMode, aerospace_config
from ..core.service import DiagnosedCluster, attach_reintegration_everywhere
from ..faults.scenarios import BurstSequence
from ..results.tables import Column, TableSpec
from ..tt.cluster import PAPER_ROUND_LENGTH

#: Mission window observed, in seconds (the strike occupies ~6 s).
DEFAULT_HORIZON = 12.0
#: Strike start time.
STRIKE_AT = 0.5


@dataclass
class ReintegrationPoint:
    """Outcome for one reintegration threshold."""

    threshold_rounds: int
    availability_seconds: float
    availability_fraction: float
    isolations: int
    reintegrations: int

    @property
    def flapping_cycles(self) -> int:
        """Isolation cycles after the first (premature readmissions)."""
        return max(0, self.isolations - 1)


def run_threshold(threshold_rounds: int, seed: int = 0,
                  horizon: float = DEFAULT_HORIZON,
                  round_length: float = PAPER_ROUND_LENGTH
                  ) -> ReintegrationPoint:
    """One lightning-bolt run with a given reintegration threshold."""
    config = aerospace_config(4).with_updates(
        isolation_mode=IsolationMode.OBSERVE,
        halt_on_self_isolation=False,
        reintegration_reward_threshold=threshold_rounds)
    dc = DiagnosedCluster(config, seed=seed, trace_level=0)
    attach_reintegration_everywhere(dc)
    dc.cluster.add_scenario(BurstSequence.lightning_bolt(start=STRIKE_AT))
    dc.run_until(horizon)

    # Per-observer events are quadruplicated (every node records its
    # decision); count distinct decision rounds.
    isolations = len({r.data["round_index"]
                      for r in dc.trace.select(category="isolation")
                      if r.data["isolated"] == 1})
    reintegrations = len({r.data["round_index"]
                          for r in dc.trace.select(category="reintegration")
                          if r.data["reintegrated"] == 1})
    avail = availability_seconds(dc.trace, node_id=1, horizon=horizon)
    return ReintegrationPoint(
        threshold_rounds=threshold_rounds,
        availability_seconds=avail,
        availability_fraction=avail / horizon,
        isolations=isolations,
        reintegrations=reintegrations,
    )


#: The reintegration tradeoff as a declarative table over
#: ``List[ReintegrationPoint]``.
REINTEGRATION_TABLE = TableSpec(
    name="reintegration",
    title="Reintegration reward threshold tradeoff (lightning bolt)",
    columns=(
        Column("threshold (rounds)", lambda p: p.threshold_rounds),
        Column("availability", lambda p: f"{100 * p.availability_fraction:.1f}%"),
        Column("isolations", lambda p: p.isolations),
        Column("reintegrations", lambda p: p.reintegrations),
        Column("flapping cycles", lambda p: p.flapping_cycles),
    ),
)


def threshold_sweep(thresholds: Sequence[int] = (50, 150, 250, 400, 2000),
                    seed: int = 0) -> List[ReintegrationPoint]:
    """Sweep the reintegration threshold over the lightning scenario.

    The scenario's worst time to reappearance is 500 ms = 200 rounds:
    thresholds below that flap; above it, each extra round is pure
    unavailability after the strike.
    """
    return [run_threshold(t, seed=seed) for t in thresholds]


__all__ = ["REINTEGRATION_TABLE", "ReintegrationPoint", "run_threshold",
           "threshold_sweep", "DEFAULT_HORIZON", "STRIKE_AT"]
