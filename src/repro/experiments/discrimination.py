"""Discriminating healthy from unhealthy nodes (Secs. 4 and 9).

The extended fault model's whole point: an *unhealthy* node suffers
internal faults that reappear quickly (intermittent) or persist
(permanent); a *healthy* node only suffers sporadic external
transients.  An ideal filter isolates exactly the unhealthy nodes.

This harness generates mixed populations on the simulated cluster —
one intermittent (unhealthy) node and external Poisson transients
hitting everyone — records the consistent health-vector stream once,
then replays the *identical* stream through the candidate filters:

* the paper's penalty/reward algorithm (Alg. 2);
* α-count with matched budget and half-life;
* immediate isolation (P = 0).

Reported per filter: whether the unhealthy node was isolated, how fast
(diagnostic latency of the discrimination), and how many healthy nodes
were incorrectly isolated (availability loss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.alpha_count import AlphaCount, equivalent_alpha_config
from ..baselines.immediate import ImmediateIsolation
from ..core.config import uniform_config
from ..core.penalty_reward import PenaltyRewardState
from ..core.service import DiagnosedCluster
from ..faults.processes import IntermittentSender, PoissonTransients
from ..results.tables import Column, TableSpec

#: The unhealthy node in every generated scenario.
UNHEALTHY_NODE = 2


def generate_health_stream(n_rounds: int, seed: int,
                           transient_rate: float = 2.0,
                           intermittent_mean_rounds: float = 12.0,
                           n_nodes: int = 4,
                           round_length: float = 2.5e-3
                           ) -> List[Tuple[int, ...]]:
    """Run the cluster once and harvest the health-vector stream.

    ``transient_rate`` is external transients per second on the bus
    (deliberately high so that healthy nodes accumulate occasional
    penalties); the unhealthy node's internal fault reappears every
    ``intermittent_mean_rounds`` rounds on average.
    """
    config = uniform_config(n_nodes, penalty_threshold=10 ** 9,
                            reward_threshold=10 ** 9)
    dc = DiagnosedCluster(config, seed=seed)
    streams = dc.cluster.streams
    dc.cluster.add_scenario(PoissonTransients(
        rate=transient_rate, burst_length=round_length / n_nodes,
        rng=streams.stream("external-transients")))
    dc.cluster.add_scenario(IntermittentSender(
        UNHEALTHY_NODE, mean_reappearance_rounds=intermittent_mean_rounds,
        rng=streams.stream("internal-intermittent")))
    dc.cluster.node(UNHEALTHY_NODE).ground_truth.notes["unhealthy"] = True
    dc.run_rounds(n_rounds)
    vectors = dc.health_vectors(1)
    return [vectors[d] for d in sorted(vectors)]


@dataclass
class FilterOutcome:
    """Replay result for one filter."""

    filter_name: str
    #: Round (stream index) at which the unhealthy node was isolated.
    unhealthy_isolated_at: Optional[int]
    #: Healthy nodes incorrectly isolated, with the stream index.
    false_isolations: Dict[int, int]

    @property
    def detected(self) -> bool:
        return self.unhealthy_isolated_at is not None

    @property
    def false_positive_count(self) -> int:
        return len(self.false_isolations)


def _replay(filter_name: str, update, n_nodes: int,
            stream: Sequence[Tuple[int, ...]]) -> FilterOutcome:
    active = [1] * n_nodes
    unhealthy_at: Optional[int] = None
    false_isolations: Dict[int, int] = {}
    for idx, hv in enumerate(stream):
        act = update(list(hv))
        for j in range(1, n_nodes + 1):
            if active[j - 1] and not act[j - 1]:
                active[j - 1] = 0
                if j == UNHEALTHY_NODE:
                    unhealthy_at = idx
                else:
                    false_isolations[j] = idx
    return FilterOutcome(filter_name, unhealthy_at, false_isolations)


def replay_filters(stream: Sequence[Tuple[int, ...]],
                   penalty_threshold: int = 5,
                   reward_threshold: int = 60,
                   n_nodes: int = 4) -> List[FilterOutcome]:
    """Replay one health stream through p/r, α-count and immediate.

    The p/r thresholds are scaled-down analogues of the Table 2 tunings
    (the full R = 10^6 would need ~42 min of simulated stream).
    """
    pr = PenaltyRewardState(uniform_config(
        n_nodes, penalty_threshold=penalty_threshold,
        reward_threshold=reward_threshold))
    ac = AlphaCount(equivalent_alpha_config(
        n_nodes, penalty_threshold=penalty_threshold,
        reward_threshold=reward_threshold))
    imm = ImmediateIsolation(n_nodes)
    return [
        _replay("penalty/reward", pr.update, n_nodes, stream),
        _replay("alpha-count", ac.update, n_nodes, stream),
        _replay("immediate", imm.update, n_nodes, stream),
    ]


@dataclass
class DiscriminationSummary:
    """Aggregate over repetitions."""

    filter_name: str
    detection_rate: float
    mean_detection_round: Optional[float]
    false_positive_rate: float

    @staticmethod
    def aggregate(outcomes: List[FilterOutcome], n_healthy: int
                  ) -> "DiscriminationSummary":
        """Aggregate per-population outcomes into rates."""
        detections = [o.unhealthy_isolated_at for o in outcomes
                      if o.detected]
        false_total = sum(o.false_positive_count for o in outcomes)
        return DiscriminationSummary(
            filter_name=outcomes[0].filter_name,
            detection_rate=len(detections) / len(outcomes),
            mean_detection_round=(sum(detections) / len(detections)
                                  if detections else None),
            false_positive_rate=false_total / (len(outcomes) * n_healthy),
        )


#: The discrimination study as a declarative table over its summaries.
DISCRIMINATION_TABLE = TableSpec(
    name="discrimination",
    title="Healthy/unhealthy discrimination study",
    columns=(
        Column("filter", lambda s: s.filter_name),
        Column("unhealthy detected", lambda s: f"{100 * s.detection_rate:.0f}%"),
        Column("mean time to isolation",
               lambda s: ("-" if s.mean_detection_round is None
                          else f"{s.mean_detection_round:.0f} rounds")),
        Column("healthy isolated",
               lambda s: f"{100 * s.false_positive_rate:.0f}%"),
    ),
)


def discrimination_study(repetitions: int = 10, n_rounds: int = 800,
                         **stream_kwargs) -> List[DiscriminationSummary]:
    """Full study: generate ``repetitions`` streams, replay all filters."""
    n_nodes = stream_kwargs.get("n_nodes", 4)
    per_filter: Dict[str, List[FilterOutcome]] = {}
    for seed in range(repetitions):
        stream = generate_health_stream(n_rounds, seed=seed,
                                        **stream_kwargs)
        for outcome in replay_filters(stream, n_nodes=n_nodes):
            per_filter.setdefault(outcome.filter_name, []).append(outcome)
    return [DiscriminationSummary.aggregate(outcomes, n_healthy=n_nodes - 1)
            for outcomes in per_filter.values()]


__all__ = [
    "DISCRIMINATION_TABLE",
    "UNHEALTHY_NODE",
    "FilterOutcome",
    "DiscriminationSummary",
    "generate_health_stream",
    "replay_filters",
    "discrimination_study",
]
