"""Deterministic fan-out of experiment tasks over worker processes.

Experiments in this reproduction are embarrassingly parallel: every
repetition builds its own cluster from an explicitly assigned seed and
shares no state with any other repetition.  Exact serial/parallel
equivalence therefore needs only two rules, which this module encodes:

1. every task's randomness comes from its arguments (a seed), never
   from global state or from which worker runs it;
2. results are merged in task-submission order, never in completion
   order.

``jobs <= 1`` executes in-process and is the reference semantics; any
``jobs > 1`` must — and does — produce the identical result list.

The same two rules make *metrics* deterministic across worker counts:
a worker meters its run through a process-local
:class:`repro.obs.MetricsRegistry` and ships the snapshot home as part
of its result; the caller merges snapshots in submission order with
:func:`repro.obs.merge_snapshots` (commutative integer addition), so
the merged report is byte-identical for every ``jobs`` value.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from ..sim.rng import derive_seed


@dataclass(frozen=True)
class Task:
    """One unit of work for :func:`run_tasks`.

    ``fn`` must be a module-level callable (picklable for the process
    pool) and the arguments must be picklable too; experiment entry
    points taking plain ints/floats satisfy this trivially.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)


def derive_task_seeds(master_seed: int, name: str, count: int) -> List[int]:
    """Stable per-repetition seeds for a named experiment class.

    Wraps :func:`repro.sim.rng.derive_seed` so a sweep can give each
    repetition an independent seed that depends only on
    ``(master_seed, name, index)`` — not on how tasks are sliced across
    workers — keeping any parallel schedule reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [derive_seed(master_seed, f"{name}:{i}") for i in range(count)]


def run_tasks(tasks: Sequence[Task], jobs: int = 1) -> List[Any]:
    """Execute ``tasks`` and return their results in task order.

    ``jobs <= 1`` runs serially in-process (the reference execution).
    ``jobs > 1`` fans out over a :class:`ProcessPoolExecutor` with that
    many workers; futures are gathered in submission order, so the
    returned list is identical to the serial one regardless of worker
    timing.  A task that raises propagates its exception to the caller
    (after the pool shuts down), matching serial behaviour.
    """
    if jobs <= 1:
        return [task.fn(*task.args, **task.kwargs) for task in tasks]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(task.fn, *task.args, **task.kwargs)
                   for task in tasks]
        return [future.result() for future in futures]


__all__ = ["Task", "derive_task_seeds", "run_tasks"]
