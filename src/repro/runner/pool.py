"""Deterministic fan-out of experiment tasks over worker processes.

Experiments in this reproduction are embarrassingly parallel: every
repetition builds its own cluster from an explicitly assigned seed and
shares no state with any other repetition.  Exact serial/parallel
equivalence therefore needs only two rules, which this module encodes:

1. every task's randomness comes from its arguments (a seed), never
   from global state or from which worker runs it;
2. results are merged in task-submission order, never in completion
   order.

``jobs <= 1`` executes in-process and is the reference semantics; any
``jobs > 1`` must — and does — produce the identical result list.

The same two rules make *metrics* deterministic across worker counts:
a worker meters its run through a process-local
:class:`repro.obs.MetricsRegistry` and ships the snapshot home as part
of its result; the caller merges snapshots in submission order with
:func:`repro.obs.merge_snapshots` (commutative integer addition), so
the merged report is byte-identical for every ``jobs`` value.

Failure semantics are explicit: with ``on_error="collect"`` a raising
task becomes a structured :class:`TaskError` *in its slot* of the
result list, so sibling results survive partial failure and callers —
the campaign retry loop above all — can re-dispatch exactly the failed
slots.  The default ``on_error="raise"`` still propagates the first
exception (in task order) for callers that treat any failure as fatal,
but only after every submitted future has been gathered, so the pool
always shuts down cleanly.
"""

from __future__ import annotations

import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.rng import derive_seed

_ON_ERROR_MODES = ("raise", "collect")


@dataclass(frozen=True)
class Task:
    """One unit of work for :func:`run_tasks`.

    ``fn`` must be a module-level callable (picklable for the process
    pool) and the arguments must be picklable too; experiment entry
    points taking plain ints/floats satisfy this trivially.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TaskError:
    """Structured record of one task's failure (``on_error="collect"``).

    Sits in the failed task's slot of the :func:`run_tasks` result list
    so the caller keeps every sibling result and knows exactly which
    indices to retry.  ``error_type`` is the exception class name,
    ``traceback`` the formatted worker-side traceback (best effort: an
    exception that crossed a process boundary reformats without the
    worker frames).
    """

    index: int
    error_type: str
    message: str
    traceback: str = ""
    timed_out: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "timeout" if self.timed_out else "error"
        return (f"TaskError(task {self.index}: {kind} "
                f"{self.error_type}: {self.message})")


def task_error_from_exception(exc: BaseException,
                              index: int = -1) -> TaskError:
    """Structure ``exc`` as a :class:`TaskError` for slot ``index``.

    Shared by the chunked :func:`run_tasks` collector and the streaming
    dispatch backends (:mod:`repro.runner.backends`), which pass the
    placeholder ``index=-1`` and let the campaign engine rewrite it per
    task slot.
    """
    return TaskError(
        index=index,
        error_type=type(exc).__name__,
        message=str(exc),
        traceback="".join(_traceback.format_exception(
            type(exc), exc, exc.__traceback__)),
        timed_out=isinstance(exc, TimeoutError),
    )


def _task_error(index: int, exc: BaseException) -> TaskError:
    return task_error_from_exception(exc, index=index)


def derive_task_seeds(master_seed: int, name: str, count: int) -> List[int]:
    """Stable per-repetition seeds for a named experiment class.

    Wraps :func:`repro.sim.rng.derive_seed` so a sweep can give each
    repetition an independent seed that depends only on
    ``(master_seed, name, index)`` — not on how tasks are sliced across
    workers — keeping any parallel schedule reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [derive_seed(master_seed, f"{name}:{i}") for i in range(count)]


def run_tasks(tasks: Sequence[Task], jobs: int = 1,
              on_error: str = "raise") -> List[Any]:
    """Execute ``tasks`` and return their results in task order.

    ``jobs <= 1`` runs serially in-process (the reference execution).
    ``jobs > 1`` fans out over a :class:`ProcessPoolExecutor` with that
    many workers; futures are gathered in submission order, so the
    returned list is identical to the serial one regardless of worker
    timing.

    ``on_error`` selects the failure contract:

    * ``"raise"`` (default) — the first failing task's exception (in
      task order) propagates to the caller after the pool shuts down;
    * ``"collect"`` — every task runs, and a failing task's slot holds
      a :class:`TaskError` instead of a result, so partial failure
      keeps every sibling result.
    """
    if on_error not in _ON_ERROR_MODES:
        raise ValueError(
            f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}")
    if jobs <= 1:
        if on_error == "raise":
            return [task.fn(*task.args, **task.kwargs) for task in tasks]
        results: List[Any] = []
        for index, task in enumerate(tasks):
            try:
                results.append(task.fn(*task.args, **task.kwargs))
            except Exception as exc:
                results.append(_task_error(index, exc))
        return results
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(task.fn, *task.args, **task.kwargs)
                   for task in tasks]
        results = []
        first_error: Optional[BaseException] = None
        for index, future in enumerate(futures):
            exc = future.exception()
            if exc is None:
                results.append(future.result())
            elif on_error == "collect":
                results.append(_task_error(index, exc))
            elif first_error is None:
                first_error = exc
                results.append(None)
            else:
                results.append(None)
    if on_error == "raise" and first_error is not None:
        raise first_error
    return results


__all__ = ["Task", "TaskError", "derive_task_seeds", "run_tasks",
           "task_error_from_exception"]
