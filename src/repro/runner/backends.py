"""Streaming dispatch backends for the campaign engine.

The campaign hot loop used to pay three avoidable costs per sweep: a
fresh :class:`~concurrent.futures.ProcessPoolExecutor` per chunk *and*
per retry round, chunk barriers (one straggler idles every worker
until the whole chunk returns), and a retry model that waited for a
full round before re-dispatching anything.  This module abstracts
dispatch behind one small interface so the engine can stream instead:

* :meth:`DispatchBackend.submit` enqueues a :class:`WorkItem`;
* :meth:`DispatchBackend.as_completed` yields :class:`Completion`
  values in **completion order** as results arrive, and tolerates new
  ``submit`` calls between yields — retries re-enter the live queue
  instead of waiting for a barrier;
* :meth:`DispatchBackend.close` releases workers.

Determinism is unaffected by completion order: the engine commits each
result into its task-index slot and merges results and metrics
snapshots in task order, so every backend — and every worker count —
produces byte-identical merged artefacts.

Three implementations:

* :class:`LocalPoolBackend` — one **persistent** process pool that
  lives for the whole campaign.  Workers are forked once (inheriting
  the parent's already-imported modules) and reused across tasks and
  retry rounds.  Replicate groups ship deduplicated: one spec dict
  plus a seed list per :class:`WorkItem`, never one spec copy per
  replicate.  ``jobs <= 1`` degrades to inline in-process execution —
  the reference semantics, with no subprocess ever spawned.
* :class:`MultiPoolBackend` — several local pools with work-stealing
  over spec digests, for NUMA/oversubscription experiments: items are
  routed to a home pool by hashing their ``affinity`` (the spec's
  store key, so replicates of one physics land together), and an idle
  pool steals from the deepest backlog (counter ``dispatch.steals``).
* :class:`RemoteStubBackend` — a subprocess-per-"host" backend
  speaking an SSH-shaped command protocol: JSONL requests down stdin,
  JSONL results and heartbeats up stdout
  (:mod:`repro.runner.remote_worker`).  It proves the interface works
  across process boundaries — payloads cross the wire through the
  store's own codec (:func:`repro.store.encode_value`), so anything
  the :class:`~repro.store.ResultStore` rendezvous can hold can be
  shipped — and it demonstrates the fault model a real multi-host
  backend needs: worker heartbeats (:mod:`repro.runner.heartbeat`),
  dead-host detection (process exit *or* heartbeat silence), and
  re-dispatch of in-flight work to surviving hosts (counter
  ``dispatch.worker_restarts``).

Work executes through one module-level entry point,
:func:`execute_work_item`, resolved against the :data:`WORK_KINDS`
registry — picklable for process pools, importable by remote workers,
and monkeypatchable by fault-injection tests.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import zlib
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from queue import Empty, Queue
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from ..obs.registry import NULL_REGISTRY
from .heartbeat import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_HEARTBEAT_TIMEOUT,
    HeartbeatMonitor,
)
from .pool import TaskError, task_error_from_exception

#: The dispatch backends the CLI and engine accept by name.
DISPATCH_BACKENDS = ("pool", "multipool", "remote-stub")

#: How many consecutive dead-host re-dispatches one item survives
#: before it is failed as a structured error (guards against a task
#: that kills every worker it lands on).
MAX_REDISPATCHES = 3


# ----------------------------------------------------------------------
# Work items and the worker entry point
# ----------------------------------------------------------------------
@dataclass
class WorkItem:
    """One unit of dispatch: a spec run or a replicate batch.

    ``kind`` selects the handler from :data:`WORK_KINDS`; ``spec`` is
    the plain ``RunSpec.to_dict()`` payload; a batch item carries the
    replicate group's ``seeds`` beside **one** shared spec dict (the
    payload-dedup shape).  ``affinity`` is a routing key — the spec's
    store key — used by :class:`MultiPoolBackend` to keep related
    items on one pool until stolen.  ``redispatches`` counts dead-host
    re-dispatches (remote backend only).
    """

    item_id: int
    kind: str
    spec: dict
    seeds: Optional[List[int]] = None
    timeout: Optional[float] = None
    affinity: str = ""
    redispatches: int = 0


@dataclass
class Completion:
    """One finished :class:`WorkItem`: a value or a structured error.

    ``error`` carries ``index=-1`` — the engine rewrites it per task
    slot, since one batch item maps to several campaign indices.
    """

    item: WorkItem
    value: Any = None
    error: Optional[TaskError] = None


def _spec_handler(spec_dict: dict, seeds: Optional[List[int]],
                  timeout: Optional[float]) -> Any:
    from ..campaign.engine import execute_spec_task

    return execute_spec_task(spec_dict, timeout=timeout)


def _batch_handler(spec_dict: dict, seeds: Optional[List[int]],
                   timeout: Optional[float]) -> Any:
    from ..campaign.engine import execute_batch_task

    return execute_batch_task(spec_dict, list(seeds or ()), timeout=timeout)


#: Work-kind registry: handler(spec_dict, seeds, timeout) -> value.
#: A dict (not a match statement) so fault-injection tests can wrap a
#: handler to poison specific seeds inside the worker.
WORK_KINDS: Dict[str, Callable[[dict, Optional[List[int]],
                                Optional[float]], Any]] = {
    "spec": _spec_handler,
    "batch": _batch_handler,
}


def execute_work_item(kind: str, spec_dict: dict,
                      seeds: Optional[List[int]] = None,
                      timeout: Optional[float] = None) -> Any:
    """The one worker entry point every backend executes.

    Module-level (picklable for process pools) and registry-resolved
    (importable by remote workers from the ``kind`` string alone).
    """
    try:
        handler = WORK_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown work kind {kind!r}; expected one of "
            f"{tuple(WORK_KINDS)}") from None
    return handler(spec_dict, seeds, timeout)


def _run_inline(item: WorkItem) -> Completion:
    try:
        return Completion(item, value=execute_work_item(
            item.kind, item.spec, item.seeds, item.timeout))
    except Exception as exc:
        return Completion(item, error=task_error_from_exception(exc))


def _completion_from_future(item: WorkItem, future: Future) -> Completion:
    exc = future.exception()
    if exc is None:
        return Completion(item, value=future.result())
    return Completion(item, error=task_error_from_exception(exc))


# ----------------------------------------------------------------------
# The interface
# ----------------------------------------------------------------------
class DispatchBackend:
    """Submit work, stream completions, release workers.

    The contract the engine relies on:

    * ``submit`` never blocks on task execution (it may enqueue);
    * ``as_completed`` yields one :class:`Completion` per submitted
      item and returns when no submitted work remains; calling
      ``submit`` between yields extends the stream (retries re-enter
      the live queue);
    * ``close`` is idempotent and releases every worker resource.
    """

    #: Short name used for the ``dispatch.backend.<name>`` counter.
    name = "abstract"

    def submit(self, item: WorkItem) -> None:
        """Enqueue ``item`` for execution (never blocks on a task)."""
        raise NotImplementedError

    def as_completed(self) -> Iterator[Completion]:
        """Yield one :class:`Completion` per item, completion order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release every worker resource (idempotent)."""
        raise NotImplementedError

    def __enter__(self) -> "DispatchBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Local persistent pool
# ----------------------------------------------------------------------
class LocalPoolBackend(DispatchBackend):
    """A persistent process pool living for the whole campaign.

    The executor is created lazily on first submit — a fully-warm
    campaign never forks a worker — and reused across every task and
    retry until :meth:`close`.  With ``jobs <= 1`` items execute
    inline in the parent process when :meth:`as_completed` drains the
    queue: the serial reference semantics.
    """

    name = "pool"

    def __init__(self, jobs: int = 1, metrics=NULL_REGISTRY) -> None:
        self._jobs = max(1, int(jobs))
        self._metrics = metrics
        self._pool: Optional[ProcessPoolExecutor] = None
        self._futures: Dict[Future, WorkItem] = {}
        self._inline: deque = deque()
        self._closed = False

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._jobs)
        return self._pool

    def submit(self, item: WorkItem) -> None:
        """Queue ``item`` inline (``jobs <= 1``) or on the pool."""
        if self._closed:
            raise RuntimeError("backend is closed")
        if self._jobs <= 1:
            self._inline.append(item)
            return
        future = self._ensure_pool().submit(
            execute_work_item, item.kind, item.spec, item.seeds,
            item.timeout)
        self._futures[future] = item

    def as_completed(self) -> Iterator[Completion]:
        """Stream completions; inline items run here, lazily."""
        while self._inline or self._futures:
            if self._inline:
                yield _run_inline(self._inline.popleft())
                continue
            done, _ = futures_wait(list(self._futures),
                                   return_when=FIRST_COMPLETED)
            for future in done:
                yield _completion_from_future(self._futures.pop(future),
                                              future)

    def close(self) -> None:
        """Shut the pool down and drop any queued work."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._futures.clear()
        self._inline.clear()


# ----------------------------------------------------------------------
# Multiple pools with work-stealing
# ----------------------------------------------------------------------
class MultiPoolBackend(DispatchBackend):
    """Several local pools with work-stealing over spec digests.

    ``jobs`` workers are split across ``pools`` executors.  Each item
    has a *home* pool — ``crc32(affinity) % pools`` — so replicates of
    one spec stay together (warm page cache, shared imports, and on a
    NUMA box one socket).  A pool with a drained backlog steals from
    the back of the deepest competitor backlog; every steal bumps the
    ``dispatch.steals`` counter.  The point of this backend is the
    experiment — measuring what locality vs stealing costs under
    oversubscription — not a default recommendation.
    """

    name = "multipool"

    def __init__(self, jobs: int = 2, pools: int = 2,
                 metrics=NULL_REGISTRY) -> None:
        jobs = max(1, int(jobs))
        self._n = max(1, min(int(pools), jobs))
        self._jobs_per_pool = max(1, jobs // self._n)
        self._metrics = metrics
        self._pools: List[Optional[ProcessPoolExecutor]] = [None] * self._n
        self._backlogs: List[deque] = [deque() for _ in range(self._n)]
        self._inflight: List[Dict[Future, WorkItem]] = [
            {} for _ in range(self._n)]
        self._closed = False

    def _ensure_pool(self, index: int) -> ProcessPoolExecutor:
        if self._pools[index] is None:
            self._pools[index] = ProcessPoolExecutor(
                max_workers=self._jobs_per_pool)
        return self._pools[index]

    def _home(self, item: WorkItem) -> int:
        if item.affinity:
            return zlib.crc32(item.affinity.encode("utf-8")) % self._n
        return item.item_id % self._n

    def submit(self, item: WorkItem) -> None:
        """Queue ``item`` on its home pool's backlog."""
        if self._closed:
            raise RuntimeError("backend is closed")
        self._backlogs[self._home(item)].append(item)
        self._fill()

    def _fill(self) -> None:
        """Top every pool up to capacity from its own backlog, then by
        stealing from the deepest other backlog."""
        for i in range(self._n):
            while len(self._inflight[i]) < self._jobs_per_pool:
                if self._backlogs[i]:
                    item = self._backlogs[i].popleft()
                else:
                    donor = max(range(self._n),
                                key=lambda j: len(self._backlogs[j]))
                    if not self._backlogs[donor]:
                        break
                    item = self._backlogs[donor].pop()
                    self._metrics.counter("dispatch.steals").inc()
                future = self._ensure_pool(i).submit(
                    execute_work_item, item.kind, item.spec, item.seeds,
                    item.timeout)
                self._inflight[i][future] = item

    def as_completed(self) -> Iterator[Completion]:
        """Stream completions across all pools, refilling as they
        drain (steals happen here)."""
        while any(self._inflight) or any(self._backlogs):
            self._fill()
            pending = [f for flight in self._inflight for f in flight]
            done, _ = futures_wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                for flight in self._inflight:
                    item = flight.pop(future, None)
                    if item is not None:
                        yield _completion_from_future(item, future)
                        break

    def close(self) -> None:
        """Shut every pool down and drop queued work."""
        self._closed = True
        for i, pool in enumerate(self._pools):
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
                self._pools[i] = None
        for flight in self._inflight:
            flight.clear()
        for backlog in self._backlogs:
            backlog.clear()


# ----------------------------------------------------------------------
# Remote stub: subprocess "hosts" over a JSONL pipe protocol
# ----------------------------------------------------------------------
@dataclass
class _StubHost:
    """One live worker subprocess plus its reader-thread plumbing."""

    serial: str
    proc: subprocess.Popen
    reader: threading.Thread
    inflight: Optional[WorkItem] = None
    dead: bool = False
    sends: int = field(default=0)

    def send(self, message: dict) -> bool:
        """Write one JSONL request; False means the pipe is gone."""
        try:
            self.proc.stdin.write(json.dumps(message) + "\n")
            self.proc.stdin.flush()
            self.sends += 1
            return True
        except (OSError, ValueError):
            return False


class RemoteStubBackend(DispatchBackend):
    """Subprocess-per-host dispatch over JSONL pipes.

    Localhost stand-in for an SSH/job-array backend: each "host" is
    ``python -m repro.runner.remote_worker`` reading task requests on
    stdin and writing results and heartbeats on stdout.  The parent
    keeps at most one task in flight per host, re-assigns the backlog
    as hosts free up, and treats a host as dead when its process exits
    *or* its heartbeat goes silent past ``heartbeat_timeout``.  A dead
    host's in-flight item re-enters the queue head and a replacement
    host is spawned (``dispatch.worker_restarts``); an item that kills
    :data:`MAX_REDISPATCHES` hosts in a row is failed with a
    structured :class:`~repro.runner.pool.TaskError` instead of
    looping forever.

    Results cross the pipe through the store codec
    (:func:`repro.store.encode_value`), so exactly the payload shapes
    the :class:`~repro.store.ResultStore` rendezvous accepts survive
    the host boundary.
    """

    name = "remote-stub"

    def __init__(self, hosts: int = 2, metrics=NULL_REGISTRY,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 poll_interval: float = 0.05,
                 max_redispatches: int = MAX_REDISPATCHES) -> None:
        self._target_hosts = max(1, int(hosts))
        self._metrics = metrics
        self._heartbeat_interval = heartbeat_interval
        self._monitor = HeartbeatMonitor(timeout=heartbeat_timeout)
        self._poll = poll_interval
        self._max_redispatches = max_redispatches
        self._hosts: List[_StubHost] = []
        self._events: Queue = Queue()
        self._backlog: deque = deque()
        self._dead_letters: deque = deque()
        self._spawned = 0
        self._closed = False

    # -- host lifecycle ------------------------------------------------
    def _worker_env(self) -> dict:
        import repro

        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = package_root + (
            os.pathsep + existing if existing else "")
        env["REPRO_HEARTBEAT_INTERVAL"] = repr(self._heartbeat_interval)
        return env

    def _spawn_host(self) -> _StubHost:
        serial = f"host-{self._spawned}"
        self._spawned += 1
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.runner.remote_worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            env=self._worker_env(), text=True, bufsize=1)
        reader = threading.Thread(
            target=self._read_loop, args=(serial, proc), daemon=True,
            name=f"remote-stub-reader-{serial}")
        host = _StubHost(serial=serial, proc=proc, reader=reader)
        self._monitor.expect(serial)
        reader.start()
        self._hosts.append(host)
        return host

    def _read_loop(self, serial: str, proc: subprocess.Popen) -> None:
        try:
            for line in proc.stdout:
                line = line.strip()
                if not line:
                    continue
                try:
                    message = json.loads(line)
                except ValueError:
                    continue
                self._events.put((serial, message))
        except (OSError, ValueError):
            pass
        self._events.put((serial, None))

    def _ensure_hosts(self) -> None:
        if self._closed:
            raise RuntimeError("backend is closed")
        while len(self._hosts) < self._target_hosts:
            self._spawn_host()

    def _host_by_serial(self, serial: str) -> Optional[_StubHost]:
        for host in self._hosts:
            if host.serial == serial:
                return host
        return None

    # -- dispatch ------------------------------------------------------
    def submit(self, item: WorkItem) -> None:
        """Queue ``item``; hosts pick work up during
        :meth:`as_completed`."""
        if self._closed:
            raise RuntimeError("backend is closed")
        self._backlog.append(item)

    def _assign(self) -> None:
        for host in self._hosts:
            if not self._backlog:
                return
            if host.dead or host.inflight is not None:
                continue
            item = self._backlog.popleft()
            request = {"type": "task", "id": item.item_id,
                       "kind": item.kind, "spec": item.spec,
                       "seeds": item.seeds, "timeout": item.timeout}
            if host.send(request):
                host.inflight = item
            else:
                self._backlog.appendleft(item)
                self._declare_dead(host)

    def _declare_dead(self, host: _StubHost) -> None:
        if host.dead:
            return
        host.dead = True
        try:
            host.proc.kill()
        except OSError:
            pass
        self._monitor.forget(host.serial)
        self._hosts.remove(host)
        self._metrics.counter("dispatch.worker_restarts").inc()
        item = host.inflight
        host.inflight = None
        if item is not None:
            item.redispatches += 1
            if item.redispatches > self._max_redispatches:
                self._dead_letters.append(Completion(
                    item, error=TaskError(
                        index=-1, error_type="WorkerDied",
                        message=f"host died {item.redispatches} times "
                                f"while running this task")))
            else:
                self._backlog.appendleft(item)
        if not self._closed:
            self._spawn_host()

    def _reap(self) -> None:
        for host in list(self._hosts):
            if host.dead:
                continue
            if host.proc.poll() is not None or self._monitor.stale(
                    host.serial):
                self._declare_dead(host)

    def _pending(self) -> bool:
        return bool(self._backlog or self._dead_letters
                    or any(h.inflight is not None for h in self._hosts))

    def as_completed(self) -> Iterator[Completion]:
        """Stream completions from the host fleet.

        Also the supervision loop: assigns backlog to free hosts,
        consumes heartbeats, reaps dead hosts (process exit or
        heartbeat silence) and re-dispatches their in-flight work.
        """
        from ..store import decode_value

        if self._pending():
            self._ensure_hosts()
        while self._pending():
            while self._dead_letters:
                yield self._dead_letters.popleft()
            self._assign()
            try:
                serial, message = self._events.get(timeout=self._poll)
            except Empty:
                self._reap()
                continue
            host = self._host_by_serial(serial)
            if host is None or host.dead:
                continue  # stale message from an already-buried host
            if message is None:
                self._declare_dead(host)
                continue
            kind = message.get("type")
            if kind in ("heartbeat", "ready"):
                self._monitor.beat(serial)
                continue
            if kind != "result":
                continue
            self._monitor.beat(serial)
            item = host.inflight
            host.inflight = None
            if item is None or message.get("id") != item.item_id:
                continue
            if message.get("ok"):
                try:
                    value = decode_value(message["enc"],
                                         message["payload"])
                except Exception as exc:
                    yield Completion(item,
                                     error=task_error_from_exception(exc))
                else:
                    yield Completion(item, value=value)
            else:
                error = message.get("error") or {}
                yield Completion(item, error=TaskError(
                    index=-1,
                    error_type=error.get("error_type", "RemoteError"),
                    message=error.get("message", ""),
                    traceback=error.get("traceback", ""),
                    timed_out=bool(error.get("timed_out"))))

    def close(self) -> None:
        """Politely shut hosts down, then kill whatever lingers."""
        self._closed = True
        for host in self._hosts:
            host.send({"type": "shutdown"})
        for host in self._hosts:
            try:
                host.proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                host.proc.kill()
                host.proc.wait()
            except OSError:
                pass
            for stream in (host.proc.stdin, host.proc.stdout):
                try:
                    stream.close()
                except OSError:
                    pass
        self._hosts.clear()
        self._backlog.clear()
        self._dead_letters.clear()


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
def make_backend(dispatch: Union[str, DispatchBackend], jobs: int = 1,
                 metrics=NULL_REGISTRY) -> DispatchBackend:
    """Resolve a dispatch selector (name or instance) to a backend.

    ``"pool"`` maps ``jobs`` to pool workers, ``"multipool"`` splits
    them across two pools, ``"remote-stub"`` runs one task at a time
    on each of ``jobs`` subprocess hosts.  An already-built backend
    passes through untouched (the caller keeps ownership).
    """
    if isinstance(dispatch, DispatchBackend):
        return dispatch
    if dispatch == "pool":
        return LocalPoolBackend(jobs=jobs, metrics=metrics)
    if dispatch == "multipool":
        return MultiPoolBackend(jobs=jobs, metrics=metrics)
    if dispatch == "remote-stub":
        return RemoteStubBackend(hosts=jobs, metrics=metrics)
    raise ValueError(f"unknown dispatch backend {dispatch!r}; expected "
                     f"one of {DISPATCH_BACKENDS}")


__all__ = [
    "DISPATCH_BACKENDS",
    "MAX_REDISPATCHES",
    "Completion",
    "DispatchBackend",
    "LocalPoolBackend",
    "MultiPoolBackend",
    "RemoteStubBackend",
    "WORK_KINDS",
    "WorkItem",
    "execute_work_item",
    "make_backend",
]
