"""Pre-built parallel sweeps of the paper's experiment campaigns.

Each sweep enumerates a serial campaign from :mod:`repro.experiments`
as serializable :class:`~repro.spec.RunSpec` values — generated in
exactly the serial loop order, same experiment-class names, same
per-repetition seeds — and fans them out with
:func:`~repro.runner.pool.run_tasks`.  Every task is the same generic
worker, :func:`repro.spec.run_spec_dict`, applied to the spec's plain
``to_dict`` form; the workers rebuild the spec, resolve its named
reducer and return the reduced result, so the pool pickles nothing but
dicts of JSON-native values.  Results merge back in task-submission
order.  Consequences:

* ``run_validation_sweep(reps, jobs=1)`` reproduces
  :func:`repro.experiments.validation.run_validation_campaign`
  exactly, and any ``jobs > 1`` reproduces ``jobs=1`` exactly;
* likewise ``run_table2_sweep(jobs=N)`` vs
  :func:`repro.experiments.table2.table2`.

With ``collect_metrics`` each worker meters its run through a fresh
in-process registry and returns ``(result, snapshot)``; snapshots are
merged with :func:`repro.obs.merge_snapshots` in task-submission
order, and since snapshot merging is commutative integer addition the
merged report is identical for every ``jobs`` value.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..core.config import (
    AEROSPACE_TOLERATED_OUTAGE,
    AUTOMOTIVE_TOLERATED_OUTAGE,
    PAPER_REWARD_THRESHOLD,
)
from ..experiments.table2 import Table2Row, penalty_budget_spec
from ..experiments.validation import (
    PAPER_N_NODES,
    CampaignSummary,
    validation_specs,
)
from ..obs.registry import merge_snapshots
from ..spec import RunSpec, run_spec_dict
from ..tt.cluster import PAPER_ROUND_LENGTH
from .pool import Task, run_tasks


def spec_task(spec: RunSpec, collect_metrics: bool = False) -> Task:
    """The generic pool task executing one serialized spec.

    The spec travels as the plain dict ``RunSpec.to_dict`` emits, and
    the worker is always :func:`repro.spec.run_spec_dict` — no campaign
    ever needs a bespoke picklable closure.
    """
    kwargs = {"collect_metrics": True} if collect_metrics else {}
    return Task(run_spec_dict, (spec.to_dict(),), kwargs)


def validation_tasks(repetitions: int = 100,
                     n_nodes: int = PAPER_N_NODES,
                     collect_metrics: bool = False
                     ) -> List[Tuple[str, Task]]:
    """The Sec. 8 campaign as ``(experiment class, Task)`` pairs.

    Generated in exactly the loop order of
    :func:`~repro.experiments.validation.run_validation_campaign`, with
    the same class names and the same ``seed = repetition`` assignment.
    With ``collect_metrics`` each task returns ``(result, snapshot)``
    instead of a bare result.
    """
    return [(cls, spec_task(spec, collect_metrics))
            for cls, spec in validation_specs(repetitions, n_nodes)]


def run_validation_sweep(repetitions: int = 100,
                         n_nodes: int = PAPER_N_NODES,
                         jobs: int = 1,
                         with_metrics: bool = False):
    """The Sec. 8 validation campaign, optionally fanned across workers.

    The aggregate :class:`CampaignSummary` is identical for every
    ``jobs`` value (and identical to the serial
    ``run_validation_campaign``): the specs carry explicit seeds and
    the results are merged in task order.

    With ``with_metrics`` every injection is metered through its own
    registry and the call returns ``(summary, merged_snapshot)``.
    """
    tasks = validation_tasks(repetitions, n_nodes,
                             collect_metrics=with_metrics)
    results = run_tasks([task for _cls, task in tasks], jobs=jobs)
    summary = CampaignSummary()
    if with_metrics:
        for (cls, _task), (result, _snap) in zip(tasks, results):
            summary.add(cls, result.passed)
        merged = merge_snapshots(snap for _result, snap in results)
        return summary, merged
    for (cls, _task), result in zip(tasks, results):
        summary.add(cls, result.passed)
    return summary


def run_table2_sweep(seed: int = 0,
                     round_length: float = PAPER_ROUND_LENGTH,
                     jobs: int = 1,
                     with_metrics: bool = False):
    """The Sec. 9 tuning experiment, one worker per (domain, class).

    Decomposes :func:`~repro.experiments.table2.table2` into its
    independent penalty-budget specs and assembles the identical row
    list.  With ``with_metrics`` returns ``(rows, merged_snapshot)``;
    the budget measurements run at ``trace_level=0``, so the metrics
    snapshot is the only online observability these runs have.
    """
    domains = (("Automotive", AUTOMOTIVE_TOLERATED_OUTAGE),
               ("Aerospace", AEROSPACE_TOLERATED_OUTAGE))
    keys: List[Tuple[str, object, float]] = []
    tasks: List[Task] = []
    for domain, outages in domains:
        for cls, outage in outages.items():
            keys.append((domain, cls, outage))
            tasks.append(spec_task(
                penalty_budget_spec(outage, seed=seed,
                                    round_length=round_length),
                collect_metrics=with_metrics))
    results = run_tasks(tasks, jobs=jobs)
    if with_metrics:
        merged = merge_snapshots(snap for _budget, snap in results)
        budgets = [budget for budget, _snap in results]
    else:
        budgets = results
    measured = {(domain, cls): budget
                for (domain, cls, _outage), budget in zip(keys, budgets)}

    rows: List[Table2Row] = []
    for domain, outages in domains:
        penalty_threshold = max(measured[(domain, cls)] for cls in outages)
        for cls, outage in outages.items():
            budget = measured[(domain, cls)]
            rows.append(Table2Row(
                domain=domain,
                criticality_class=cls,
                tolerated_outage=outage,
                measured_budget=budget,
                criticality=math.ceil(penalty_threshold / budget),
                penalty_threshold=penalty_threshold,
                reward_threshold=PAPER_REWARD_THRESHOLD,
                round_length=round_length,
            ))
    if with_metrics:
        return rows, merged
    return rows


__all__ = [
    "spec_task",
    "validation_tasks",
    "run_validation_sweep",
    "run_table2_sweep",
]
