"""Pre-built parallel sweeps of the paper's experiment campaigns.

Each sweep decomposes a serial campaign from :mod:`repro.experiments`
into independent :class:`~repro.runner.pool.Task` objects generated in
exactly the serial loop order — same experiment-class names, same
per-repetition seeds — fans them out with
:func:`~repro.runner.pool.run_tasks`, and merges the results back in
task order.  Consequences:

* ``run_validation_sweep(reps, jobs=1)`` reproduces
  :func:`repro.experiments.validation.run_validation_campaign`
  exactly, and any ``jobs > 1`` reproduces ``jobs=1`` exactly;
* likewise ``run_table2_sweep(jobs=N)`` vs
  :func:`repro.experiments.table2.table2`.

Workers return only the aggregate each campaign needs (a pass verdict,
a counter value), keeping inter-process pickling negligible.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..core.config import (
    AEROSPACE_TOLERATED_OUTAGE,
    AUTOMOTIVE_TOLERATED_OUTAGE,
    PAPER_REWARD_THRESHOLD,
)
from ..experiments.table2 import Table2Row, measure_penalty_budget
from ..experiments.validation import (
    PAPER_N_NODES,
    CampaignSummary,
    run_burst_experiment,
    run_clique_experiment,
    run_malicious_experiment,
    run_penalty_reward_experiment,
)
from ..tt.cluster import PAPER_ROUND_LENGTH
from .pool import Task, run_tasks


# ----------------------------------------------------------------------
# Module-level workers (must be picklable for the process pool).
# ----------------------------------------------------------------------
def _burst_passed(n_slots: int, start_slot: int, seed: int,
                  n_nodes: int) -> bool:
    """Worker: one burst injection reduced to its pass verdict."""
    return run_burst_experiment(n_slots, start_slot, seed=seed,
                                n_nodes=n_nodes).passed


def _penalty_reward_passed(seed: int, n_nodes: int) -> bool:
    """Worker: one counter-update experiment reduced to its verdict."""
    return run_penalty_reward_experiment(seed=seed, n_nodes=n_nodes).passed


def _malicious_passed(byzantine: int, seed: int, n_nodes: int) -> bool:
    """Worker: one malicious-node injection reduced to its verdict."""
    return run_malicious_experiment(byzantine, seed=seed,
                                    n_nodes=n_nodes).passed


def _clique_passed(seed: int, n_nodes: int) -> bool:
    """Worker: one clique-detection injection reduced to its verdict."""
    return run_clique_experiment(seed=seed, n_nodes=n_nodes).passed


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
def validation_tasks(repetitions: int = 100,
                     n_nodes: int = PAPER_N_NODES
                     ) -> List[Tuple[str, Task]]:
    """The Sec. 8 campaign as ``(experiment class, Task)`` pairs.

    Generated in exactly the loop order of
    :func:`~repro.experiments.validation.run_validation_campaign`, with
    the same class names and the same ``seed = repetition`` assignment.
    """
    tasks: List[Tuple[str, Task]] = []
    for n_slots in (1, 2, 2 * n_nodes):
        for start_slot in range(1, n_nodes + 1):
            cls = f"burst-{n_slots}-slot{start_slot}"
            for rep in range(repetitions):
                tasks.append((cls, Task(_burst_passed,
                                        (n_slots, start_slot, rep, n_nodes))))
    for rep in range(repetitions):
        tasks.append(("penalty-reward",
                      Task(_penalty_reward_passed, (rep, n_nodes))))
    for byzantine in range(1, n_nodes + 1):
        cls = f"malicious-node{byzantine}"
        for rep in range(repetitions):
            tasks.append((cls, Task(_malicious_passed,
                                    (byzantine, rep, n_nodes))))
    for rep in range(repetitions):
        tasks.append(("clique-detection", Task(_clique_passed,
                                               (rep, n_nodes))))
    return tasks


def run_validation_sweep(repetitions: int = 100,
                         n_nodes: int = PAPER_N_NODES,
                         jobs: int = 1) -> CampaignSummary:
    """The Sec. 8 validation campaign, optionally fanned across workers.

    The aggregate :class:`CampaignSummary` is identical for every
    ``jobs`` value (and identical to the serial
    ``run_validation_campaign``): tasks carry explicit seeds and the
    verdicts are merged in task order.
    """
    tasks = validation_tasks(repetitions, n_nodes)
    verdicts = run_tasks([task for _cls, task in tasks], jobs=jobs)
    summary = CampaignSummary()
    for (cls, _task), passed in zip(tasks, verdicts):
        summary.add(cls, passed)
    return summary


def run_table2_sweep(seed: int = 0,
                     round_length: float = PAPER_ROUND_LENGTH,
                     jobs: int = 1) -> List[Table2Row]:
    """The Sec. 9 tuning experiment, one worker per (domain, class).

    Decomposes :func:`~repro.experiments.table2.table2` into its
    independent :func:`measure_penalty_budget` calls and assembles the
    identical row list.
    """
    domains = (("Automotive", AUTOMOTIVE_TOLERATED_OUTAGE),
               ("Aerospace", AEROSPACE_TOLERATED_OUTAGE))
    keys: List[Tuple[str, object, float]] = []
    tasks: List[Task] = []
    for domain, outages in domains:
        for cls, outage in outages.items():
            keys.append((domain, cls, outage))
            tasks.append(Task(measure_penalty_budget, (outage,),
                              {"seed": seed, "round_length": round_length}))
    budgets = run_tasks(tasks, jobs=jobs)
    measured = {(domain, cls): budget
                for (domain, cls, _outage), budget in zip(keys, budgets)}

    rows: List[Table2Row] = []
    for domain, outages in domains:
        penalty_threshold = max(measured[(domain, cls)] for cls in outages)
        for cls, outage in outages.items():
            budget = measured[(domain, cls)]
            rows.append(Table2Row(
                domain=domain,
                criticality_class=cls,
                tolerated_outage=outage,
                measured_budget=budget,
                criticality=math.ceil(penalty_threshold / budget),
                penalty_threshold=penalty_threshold,
                reward_threshold=PAPER_REWARD_THRESHOLD,
                round_length=round_length,
            ))
    return rows


__all__ = [
    "validation_tasks",
    "run_validation_sweep",
    "run_table2_sweep",
]
