"""Pre-built parallel sweeps, now thin wrappers over the campaign engine.

Each sweep names a campaign definition from
:mod:`repro.campaign.definitions` — the exact serial loop order, the
same experiment-class names, the same per-repetition seeds — and hands
it to :func:`repro.campaign.run_campaign`, which dispatches the specs
through the process pool (every task is the same generic metered
worker) and merges results back in task-submission order.
Consequences, unchanged from the pre-campaign sweeps:

* ``run_validation_sweep(reps, jobs=1)`` reproduces
  :func:`repro.experiments.validation.run_validation_campaign`
  exactly, and any ``jobs > 1`` reproduces ``jobs=1`` exactly;
* likewise ``run_table2_sweep(jobs=N)`` vs
  :func:`repro.experiments.table2.table2`.

What the campaign engine adds on top: pass a
:class:`~repro.store.ResultStore` as ``store`` and the sweep becomes
persistent — completed repetitions are cached by content address and a
re-run replays them (results *and* merged metrics byte-identical)
without simulating anything.  With ``with_metrics`` the sweep returns
``(aggregate, merged_snapshot)``; snapshot merging is commutative
integer addition, so the merged report is identical for every ``jobs``
value and every cache state.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

from ..experiments.validation import PAPER_N_NODES
from ..spec import RunSpec, run_spec_dict
from ..store import ResultStore
from ..tt.cluster import PAPER_ROUND_LENGTH
from .pool import Task


def spec_task(spec: RunSpec, collect_metrics: bool = False) -> Task:
    """The generic pool task executing one serialized spec.

    The spec travels as the plain dict ``RunSpec.to_dict`` emits, and
    the worker is always :func:`repro.spec.run_spec_dict` — no campaign
    ever needs a bespoke picklable closure.
    """
    kwargs = {"collect_metrics": True} if collect_metrics else {}
    return Task(run_spec_dict, (spec.to_dict(),), kwargs)


def validation_tasks(repetitions: int = 100,
                     n_nodes: int = PAPER_N_NODES,
                     collect_metrics: bool = False
                     ) -> List[Tuple[str, Task]]:
    """The Sec. 8 campaign as ``(experiment class, Task)`` pairs.

    Generated in exactly the loop order of
    :func:`~repro.experiments.validation.run_validation_campaign`, with
    the same class names and the same ``seed = repetition`` assignment.
    With ``collect_metrics`` each task returns ``(result, snapshot)``
    instead of a bare result.
    """
    from ..experiments.validation import validation_specs

    return [(cls, spec_task(spec, collect_metrics))
            for cls, spec in validation_specs(repetitions, n_nodes)]


def run_validation_sweep(repetitions: int = 100,
                         n_nodes: int = PAPER_N_NODES,
                         jobs: int = 1,
                         with_metrics: bool = False,
                         store: Optional[ResultStore] = None,
                         dispatch: str = "pool"):
    """The Sec. 8 validation campaign, optionally fanned across workers.

    The aggregate :class:`CampaignSummary` is identical for every
    ``jobs`` value (and identical to the serial
    ``run_validation_campaign``): the specs carry explicit seeds and
    the results are merged in task order.  A worker failure raises
    (after the engine's bounded retries), matching serial behaviour.

    With ``with_metrics`` the call returns ``(summary, snapshot)``;
    with ``store`` the sweep consults/fills the persistent result
    store first.
    """
    # Imported lazily: repro.campaign imports the pool from this
    # package, so a module-level import here would be circular.
    from ..campaign import run_campaign, validation_campaign

    definition = validation_campaign(repetitions=repetitions,
                                     n_nodes=n_nodes)
    result = run_campaign(definition.labeled_specs, name=definition.name,
                          store=store, jobs=jobs, dispatch=dispatch)
    result.raise_first_error()
    summary = definition.aggregate(result.results)
    if with_metrics:
        return summary, result.merged_snapshot()
    return summary


def run_table2_sweep(seed: int = 0,
                     round_length: float = PAPER_ROUND_LENGTH,
                     jobs: int = 1,
                     with_metrics: bool = False,
                     store: Optional[ResultStore] = None,
                     dispatch: str = "pool"):
    """The Sec. 9 tuning experiment, one worker per (domain, class).

    Decomposes :func:`~repro.experiments.table2.table2` into its
    independent penalty-budget specs and assembles the identical row
    list.  With ``with_metrics`` returns ``(rows, merged_snapshot)``;
    the budget measurements run at ``trace_level=0``, so the metrics
    snapshot is the only online observability these runs have.
    """
    from ..campaign import run_campaign, table2_campaign

    definition = table2_campaign(seed=seed, round_length=round_length)
    result = run_campaign(definition.labeled_specs, name=definition.name,
                          store=store, jobs=jobs, dispatch=dispatch)
    result.raise_first_error()
    rows = definition.aggregate(result.results)
    if with_metrics:
        return rows, result.merged_snapshot()
    return rows


def monte_carlo_specs(spec: RunSpec, replicates: int) -> List[RunSpec]:
    """Seed-shifted replicate specs ``seed, seed + 1, ...`` of one spec."""
    base_seed = spec.cluster.seed
    return [replace(spec, cluster=replace(spec.cluster, seed=base_seed + i))
            for i in range(replicates)]


def run_monte_carlo_sweep(spec: RunSpec, replicates: int,
                          jobs: int = 1,
                          with_metrics: bool = False,
                          store: Optional[ResultStore] = None,
                          reducer: Optional[str] = None,
                          dispatch: str = "pool"):
    """Monte Carlo: one spec across ``replicates`` seed-shifted copies.

    Results come back in replicate order, cached per replicate by
    content address when a ``store`` is given.  The backend decides the
    dispatch shape: event-backend replicates run one pool task each,
    while ``backend="vectorized"`` replicates that miss the cache are
    simulated as a single lockstep kernel batch per retry round —
    identical results and store bytes, one simulation instead of N.
    With ``with_metrics`` the call returns
    ``(results, merged_snapshot)``.  ``reducer`` overrides the spec's
    named reducer on every replicate (e.g. ``"isolation"`` for the
    rare-event estimators in :mod:`repro.analysis.rare`).
    """
    from ..campaign import run_campaign

    if reducer is not None:
        spec = replace(spec, reducer=reducer)
    specs = monte_carlo_specs(spec, replicates)
    result = run_campaign(
        [(f"replicate-{i}", replicate) for i, replicate in enumerate(specs)],
        name="monte-carlo", store=store, jobs=jobs, dispatch=dispatch)
    result.raise_first_error()
    if with_metrics:
        return result.results, result.merged_snapshot()
    return result.results


__all__ = [
    "spec_task",
    "validation_tasks",
    "monte_carlo_specs",
    "run_monte_carlo_sweep",
    "run_validation_sweep",
    "run_table2_sweep",
]
