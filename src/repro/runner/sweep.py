"""Pre-built parallel sweeps of the paper's experiment campaigns.

Each sweep decomposes a serial campaign from :mod:`repro.experiments`
into independent :class:`~repro.runner.pool.Task` objects generated in
exactly the serial loop order — same experiment-class names, same
per-repetition seeds — fans them out with
:func:`~repro.runner.pool.run_tasks`, and merges the results back in
task order.  Consequences:

* ``run_validation_sweep(reps, jobs=1)`` reproduces
  :func:`repro.experiments.validation.run_validation_campaign`
  exactly, and any ``jobs > 1`` reproduces ``jobs=1`` exactly;
* likewise ``run_table2_sweep(jobs=N)`` vs
  :func:`repro.experiments.table2.table2`.

Workers return only the aggregate each campaign needs (a pass verdict,
a counter value — plus, with ``collect_metrics``, the run's metrics
snapshot), keeping inter-process pickling negligible.  Snapshots are
merged with :func:`repro.obs.merge_snapshots` in task-submission order,
so the merged report is identical for every ``jobs`` value.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..core.config import (
    AEROSPACE_TOLERATED_OUTAGE,
    AUTOMOTIVE_TOLERATED_OUTAGE,
    PAPER_REWARD_THRESHOLD,
)
from ..experiments.table2 import Table2Row, measure_penalty_budget
from ..experiments.validation import (
    PAPER_N_NODES,
    CampaignSummary,
    run_burst_experiment,
    run_clique_experiment,
    run_malicious_experiment,
    run_penalty_reward_experiment,
)
from ..obs.registry import MetricsRegistry, merge_snapshots
from ..tt.cluster import PAPER_ROUND_LENGTH
from .pool import Task, run_tasks


# ----------------------------------------------------------------------
# Module-level workers (must be picklable for the process pool).
#
# With ``collect_metrics`` each worker meters its run through a fresh
# in-process registry and returns ``(verdict, snapshot)`` — the
# snapshot is a plain dict of ints, so the pickling cost stays small.
# ----------------------------------------------------------------------
def _burst_passed(n_slots: int, start_slot: int, seed: int,
                  n_nodes: int, collect_metrics: bool = False):
    """Worker: one burst injection reduced to its pass verdict."""
    if not collect_metrics:
        return run_burst_experiment(n_slots, start_slot, seed=seed,
                                    n_nodes=n_nodes).passed
    registry = MetricsRegistry()
    passed = run_burst_experiment(n_slots, start_slot, seed=seed,
                                  n_nodes=n_nodes, metrics=registry).passed
    return passed, registry.snapshot()


def _penalty_reward_passed(seed: int, n_nodes: int,
                           collect_metrics: bool = False):
    """Worker: one counter-update experiment reduced to its verdict."""
    if not collect_metrics:
        return run_penalty_reward_experiment(seed=seed,
                                             n_nodes=n_nodes).passed
    registry = MetricsRegistry()
    passed = run_penalty_reward_experiment(seed=seed, n_nodes=n_nodes,
                                           metrics=registry).passed
    return passed, registry.snapshot()


def _malicious_passed(byzantine: int, seed: int, n_nodes: int,
                      collect_metrics: bool = False):
    """Worker: one malicious-node injection reduced to its verdict."""
    if not collect_metrics:
        return run_malicious_experiment(byzantine, seed=seed,
                                        n_nodes=n_nodes).passed
    registry = MetricsRegistry()
    passed = run_malicious_experiment(byzantine, seed=seed, n_nodes=n_nodes,
                                      metrics=registry).passed
    return passed, registry.snapshot()


def _clique_passed(seed: int, n_nodes: int, collect_metrics: bool = False):
    """Worker: one clique-detection injection reduced to its verdict."""
    if not collect_metrics:
        return run_clique_experiment(seed=seed, n_nodes=n_nodes).passed
    registry = MetricsRegistry()
    passed = run_clique_experiment(seed=seed, n_nodes=n_nodes,
                                   metrics=registry).passed
    return passed, registry.snapshot()


def _penalty_budget_with_metrics(tolerated_outage: float, seed: int,
                                 round_length: float):
    """Worker: one metered penalty-budget measurement."""
    registry = MetricsRegistry()
    budget = measure_penalty_budget(tolerated_outage, seed=seed,
                                    round_length=round_length,
                                    metrics=registry)
    return budget, registry.snapshot()


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
def validation_tasks(repetitions: int = 100,
                     n_nodes: int = PAPER_N_NODES,
                     collect_metrics: bool = False
                     ) -> List[Tuple[str, Task]]:
    """The Sec. 8 campaign as ``(experiment class, Task)`` pairs.

    Generated in exactly the loop order of
    :func:`~repro.experiments.validation.run_validation_campaign`, with
    the same class names and the same ``seed = repetition`` assignment.
    With ``collect_metrics`` each task returns ``(passed, snapshot)``
    instead of a bare verdict.
    """
    kwargs = {"collect_metrics": True} if collect_metrics else {}
    tasks: List[Tuple[str, Task]] = []
    for n_slots in (1, 2, 2 * n_nodes):
        for start_slot in range(1, n_nodes + 1):
            cls = f"burst-{n_slots}-slot{start_slot}"
            for rep in range(repetitions):
                tasks.append((cls, Task(_burst_passed,
                                        (n_slots, start_slot, rep, n_nodes),
                                        dict(kwargs))))
    for rep in range(repetitions):
        tasks.append(("penalty-reward",
                      Task(_penalty_reward_passed, (rep, n_nodes),
                           dict(kwargs))))
    for byzantine in range(1, n_nodes + 1):
        cls = f"malicious-node{byzantine}"
        for rep in range(repetitions):
            tasks.append((cls, Task(_malicious_passed,
                                    (byzantine, rep, n_nodes),
                                    dict(kwargs))))
    for rep in range(repetitions):
        tasks.append(("clique-detection", Task(_clique_passed,
                                               (rep, n_nodes),
                                               dict(kwargs))))
    return tasks


def run_validation_sweep(repetitions: int = 100,
                         n_nodes: int = PAPER_N_NODES,
                         jobs: int = 1,
                         with_metrics: bool = False):
    """The Sec. 8 validation campaign, optionally fanned across workers.

    The aggregate :class:`CampaignSummary` is identical for every
    ``jobs`` value (and identical to the serial
    ``run_validation_campaign``): tasks carry explicit seeds and the
    verdicts are merged in task order.

    With ``with_metrics`` every injection is metered through its own
    registry and the call returns ``(summary, merged_snapshot)``; the
    snapshots are merged in task-submission order, and since snapshot
    merging is commutative integer addition the merged report is also
    byte-identical across ``jobs`` values.
    """
    tasks = validation_tasks(repetitions, n_nodes,
                             collect_metrics=with_metrics)
    results = run_tasks([task for _cls, task in tasks], jobs=jobs)
    summary = CampaignSummary()
    if with_metrics:
        for (cls, _task), (passed, _snap) in zip(tasks, results):
            summary.add(cls, passed)
        merged = merge_snapshots(snap for _passed, snap in results)
        return summary, merged
    for (cls, _task), passed in zip(tasks, results):
        summary.add(cls, passed)
    return summary


def run_table2_sweep(seed: int = 0,
                     round_length: float = PAPER_ROUND_LENGTH,
                     jobs: int = 1,
                     with_metrics: bool = False):
    """The Sec. 9 tuning experiment, one worker per (domain, class).

    Decomposes :func:`~repro.experiments.table2.table2` into its
    independent :func:`measure_penalty_budget` calls and assembles the
    identical row list.  With ``with_metrics`` returns
    ``(rows, merged_snapshot)``; the budget measurements run at
    ``trace_level=0``, so the metrics snapshot is the only online
    observability these runs have.
    """
    domains = (("Automotive", AUTOMOTIVE_TOLERATED_OUTAGE),
               ("Aerospace", AEROSPACE_TOLERATED_OUTAGE))
    keys: List[Tuple[str, object, float]] = []
    tasks: List[Task] = []
    for domain, outages in domains:
        for cls, outage in outages.items():
            keys.append((domain, cls, outage))
            if with_metrics:
                tasks.append(Task(_penalty_budget_with_metrics,
                                  (outage, seed, round_length)))
            else:
                tasks.append(Task(measure_penalty_budget, (outage,),
                                  {"seed": seed,
                                   "round_length": round_length}))
    results = run_tasks(tasks, jobs=jobs)
    if with_metrics:
        merged = merge_snapshots(snap for _budget, snap in results)
        budgets = [budget for budget, _snap in results]
    else:
        budgets = results
    measured = {(domain, cls): budget
                for (domain, cls, _outage), budget in zip(keys, budgets)}

    rows: List[Table2Row] = []
    for domain, outages in domains:
        penalty_threshold = max(measured[(domain, cls)] for cls in outages)
        for cls, outage in outages.items():
            budget = measured[(domain, cls)]
            rows.append(Table2Row(
                domain=domain,
                criticality_class=cls,
                tolerated_outage=outage,
                measured_budget=budget,
                criticality=math.ceil(penalty_threshold / budget),
                penalty_threshold=penalty_threshold,
                reward_threshold=PAPER_REWARD_THRESHOLD,
                round_length=round_length,
            ))
    if with_metrics:
        return rows, merged
    return rows


__all__ = [
    "validation_tasks",
    "run_validation_sweep",
    "run_table2_sweep",
]
