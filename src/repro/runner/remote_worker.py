"""One "host" of the remote-stub dispatch backend.

Run as ``python -m repro.runner.remote_worker``.  Speaks a minimal
SSH-shaped command protocol with the parent
(:class:`repro.runner.backends.RemoteStubBackend`): JSONL requests on
stdin, JSONL responses on stdout.

Parent → worker::

    {"type": "task", "id": 7, "kind": "spec"|"batch",
     "spec": {...}, "seeds": [0, 1, ...] | null, "timeout": 30.0 | null}
    {"type": "shutdown"}

Worker → parent::

    {"type": "ready", "pid": 12345}
    {"type": "heartbeat"}                       # every interval, from a
                                                # daemon thread, so a busy
                                                # worker still beats
    {"type": "result", "id": 7, "ok": true,
     "enc": "json"|"pickle"|..., "payload": "..."}
    {"type": "result", "id": 7, "ok": false,
     "error": {"error_type": ..., "message": ..., "traceback": ...,
               "timed_out": false}}

Result payloads use the store codec
(:func:`repro.store.encode_value`), so a value crosses the host
boundary exactly as the :class:`~repro.store.ResultStore` rendezvous
would persist it.  Tasks execute in the worker's main thread, so the
per-task ``SIGALRM`` deadline (:func:`repro.campaign.engine._deadline`)
holds on remote hosts just as it does in local pools.  A heartbeat
thread (:class:`repro.runner.heartbeat.HeartbeatEmitter`) shares a
stdout lock with result writes so lines never interleave.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import traceback

from .backends import execute_work_item
from .heartbeat import DEFAULT_HEARTBEAT_INTERVAL, HeartbeatEmitter


def main() -> int:
    out_lock = threading.Lock()

    def send(message: dict) -> None:
        with out_lock:
            sys.stdout.write(json.dumps(message, sort_keys=True) + "\n")
            sys.stdout.flush()

    interval = float(os.environ.get("REPRO_HEARTBEAT_INTERVAL",
                                    repr(DEFAULT_HEARTBEAT_INTERVAL)))
    emitter = HeartbeatEmitter(lambda: send({"type": "heartbeat"}),
                               interval=interval)
    emitter.start()
    send({"type": "ready", "pid": os.getpid()})

    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except ValueError:
            continue
        kind = request.get("type")
        if kind == "shutdown":
            break
        if kind != "task":
            continue
        task_id = request.get("id")
        try:
            value = execute_work_item(
                request["kind"], request["spec"],
                request.get("seeds"), request.get("timeout"))
            from ..store import encode_value

            enc, payload = encode_value(value)
            send({"type": "result", "id": task_id, "ok": True,
                  "enc": enc, "payload": payload})
        except Exception as exc:
            send({"type": "result", "id": task_id, "ok": False,
                  "error": {"error_type": type(exc).__name__,
                            "message": str(exc),
                            "traceback": traceback.format_exc(),
                            "timed_out": isinstance(exc, TimeoutError)}})
    emitter.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised as subprocess
    sys.exit(main())
