"""Parallel experiment runner.

The paper's evaluation is Monte Carlo at heart: hundreds of
independent, seeded injections per experiment class (Sec. 8), plus
per-class tuning measurements (Sec. 9).  Each run builds its own
cluster from an explicit seed and shares no state with any other run,
so the campaigns are embarrassingly parallel.

This package fans those repetitions across worker processes while
keeping the aggregate results *exactly* equal to the serial campaign:

* :mod:`repro.runner.pool` — the generic contract: picklable tasks,
  deterministic per-task seeds, results merged in task order (never
  completion order);
* :mod:`repro.runner.backends` — streaming dispatch backends for the
  campaign engine: a persistent local pool, a work-stealing multi-pool
  and a subprocess-per-host remote stub with heartbeats
  (:mod:`repro.runner.heartbeat`);
* :mod:`repro.runner.sweep` — pre-built decompositions of the Sec. 8
  validation campaign and the Table 2 tuning experiment.

The ``repro-diag validate --jobs N`` / ``campaign run --dispatch``
CLI flags and the campaign benchmarks are wired through these.
"""

from .backends import (
    DISPATCH_BACKENDS,
    Completion,
    DispatchBackend,
    LocalPoolBackend,
    MultiPoolBackend,
    RemoteStubBackend,
    WorkItem,
    make_backend,
)
from .heartbeat import HeartbeatEmitter, HeartbeatMonitor
from .pool import Task, TaskError, derive_task_seeds, run_tasks
from .sweep import run_table2_sweep, run_validation_sweep, spec_task

__all__ = [
    "DISPATCH_BACKENDS",
    "Completion",
    "DispatchBackend",
    "HeartbeatEmitter",
    "HeartbeatMonitor",
    "LocalPoolBackend",
    "MultiPoolBackend",
    "RemoteStubBackend",
    "Task",
    "TaskError",
    "WorkItem",
    "derive_task_seeds",
    "make_backend",
    "run_tasks",
    "run_table2_sweep",
    "run_validation_sweep",
    "spec_task",
]
