"""Worker liveness: heartbeat emission and staleness tracking.

The remote-stub dispatch backend (:mod:`repro.runner.backends`) runs
each "host" as a subprocess speaking JSONL over pipes.  A host that is
merely *slow* must be left alone — campaign tasks legitimately run for
minutes — but a host that is *gone* (killed, wedged, unscheduled) must
be detected so its in-flight work can re-enter the live queue.  The
two halves of that contract live here:

* :class:`HeartbeatEmitter` — worker side.  A daemon thread invoking a
  ``send`` callback every ``interval`` seconds, independent of the
  task the worker main thread is executing, so liveness is decoupled
  from task duration.  Python threads keep running while the main
  thread computes, so a busy worker still beats; only a dead or
  stopped *process* falls silent.
* :class:`HeartbeatMonitor` — parent side.  Records the last beat per
  host against an injectable monotonic clock and answers "is this
  host stale?".  Spawning a host registers an initial implicit beat,
  so startup (interpreter boot + imports) counts against the same
  timeout as silence.

Both classes are transport-agnostic: the emitter takes any callable
and the monitor any hashable host id, so tests drive them without
subprocesses and the backend wires them to JSONL pipes.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Hashable

#: Seconds between worker heartbeat messages.
DEFAULT_HEARTBEAT_INTERVAL = 0.25

#: Seconds of silence after which a host is declared dead.  Generous
#: by default — heartbeats flow from a dedicated thread, so only a
#: truly gone process stays silent this long.
DEFAULT_HEARTBEAT_TIMEOUT = 30.0


class HeartbeatEmitter:
    """Emit a heartbeat via ``send()`` every ``interval`` seconds.

    The first beat is sent synchronously from :meth:`start` (so a
    freshly booted worker announces liveness before its first task),
    then a daemon thread keeps beating until :meth:`stop` or process
    exit.  ``send`` failures stop the loop silently: a broken pipe
    means the parent is gone and the worker is about to be reaped.
    """

    def __init__(self, send: Callable[[], None],
                 interval: float = DEFAULT_HEARTBEAT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self._send = send
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="heartbeat-emitter")

    def start(self) -> None:
        """Send the first beat synchronously, then beat from a daemon
        thread every ``interval`` seconds."""
        self._send()
        self._thread.start()

    def stop(self) -> None:
        """Stop the beat loop (the daemon thread exits on its next
        wakeup)."""
        self._stop.set()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._send()
            except Exception:
                return


class HeartbeatMonitor:
    """Track last-beat times per host and decide staleness.

    ``clock`` defaults to :func:`time.monotonic`; tests inject a fake
    clock to make staleness decisions deterministic.
    """

    def __init__(self, timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.timeout = timeout
        self._clock = clock
        self._last: Dict[Hashable, float] = {}

    def expect(self, host_id: Hashable) -> None:
        """Register ``host_id`` with an implicit beat at the current
        time (called at spawn, so boot time counts against the
        timeout)."""
        self._last[host_id] = self._clock()

    def beat(self, host_id: Hashable) -> None:
        """Record a beat from ``host_id`` at the current time."""
        self._last[host_id] = self._clock()

    def stale(self, host_id: Hashable) -> bool:
        """Whether ``host_id`` has been silent past the timeout.

        Unknown hosts are never stale (they were never expected)."""
        last = self._last.get(host_id)
        if last is None:
            return False
        return (self._clock() - last) > self.timeout

    def forget(self, host_id: Hashable) -> None:
        """Stop tracking ``host_id`` (a buried host is never stale)."""
        self._last.pop(host_id, None)


__all__ = [
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "HeartbeatEmitter",
    "HeartbeatMonitor",
]
