"""Channel and fault-model library: realistic disturbance statistics.

The paper's tuning story (Secs. 8-9, Fig. 3) is about how the
penalty/reward thresholds behave under *realistic* fault statistics.
The scripted bursts of :mod:`repro.faults.scenarios` and the
independent arrivals of :mod:`repro.faults.processes` only cover the
two extremes; this module adds the channel models in between:

* :class:`GilbertElliottChannel` — the classic two-state Markov bursty
  channel: a hidden good/bad state evolves once per slot, and each
  transmission is corrupted with the state's error probability.  Burst
  lengths are geometric (mean ``1/p_bg``), so error clusters look like
  real EMI on a wire rather than independent coin flips.
* :class:`CorrelatedEMI` — spatially correlated receiver failures: one
  latent disturbance per round knocks out a contiguous *neighbourhood*
  of receivers for the whole round (every reception at those nodes is
  locally detectable, i.e. an asymmetric/SOS pattern).
* :class:`DutyCycleIntermittent` — an intermittent sender with a duty
  cycle: exactly ``on_rounds`` faulty rounds in every ``period_rounds``
  window, at a per-period random phase.  Occupancy is exact by
  construction, which makes the model a sharp test load for reward
  tuning.
* :class:`AdaptiveSaboteur` — an adversarial sender that reads the live
  health/penalty state and stops attacking just before it would be
  isolated (the "crying wolf" strategy the reward-based penalty
  forgetting is designed around).  Declared ``event_only``: its
  decisions depend on protocol state, so it cannot be lowered to
  precomputed masks.
* :class:`FaultStorm` — correlated multi-node storms: per round a
  single gust draw decides whether a storm is active, and during a gust
  every (selected) sender is independently hit with ``intensity``.

All models follow the two contracts the rest of the stack relies on:

* **Serialization** — each is a :class:`SerializableScenario` with
  ``spec_params``/``to_dict``/``from_dict``; the stochastic ones carry
  an ``rng_stream`` name resolved against the cluster's
  :class:`~repro.sim.rng.RandomStreams`, so they flow through
  :class:`~repro.spec.model.ScenarioSpec`, the campaign store and spec
  digests unchanged.
* **Prefix-stable lazy sampling** — draws advance monotonically with
  the queried horizon and never depend on *which* slots were queried,
  so the quiescence probes (bus fast path) and the vectorized lowering
  (:mod:`repro.vec.inject`) reproduce the event engine's RNG stream
  draw-for-draw.
"""

from __future__ import annotations

from random import Random
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Sequence

from ..tt.timebase import TimeBase
from .injector import Scenario, TransmissionContext
from .model import FaultDirective
from .processes import _StochasticScenario, require_finite_horizon
from .scenarios import SerializableScenario


def _check_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return float(value)


class GilbertElliottChannel(_StochasticScenario, Scenario):
    """Two-state (good/bad) Markov bursty channel over the whole bus.

    The hidden state advances once per global slot; a transmission in
    the good state is corrupted with probability ``error_good`` and in
    the bad state with ``error_bad``.  Transition probabilities
    ``p_gb`` (good -> bad) and ``p_bg`` (bad -> good) give the closed
    forms the statistical tests pin:

    * stationary bad-state probability ``pi_B = p_gb / (p_gb + p_bg)``;
    * stationary error rate
      ``(1 - pi_B) * error_good + pi_B * error_bad``;
    * mean bad-state sojourn (burst length) ``1 / p_bg`` slots.

    Draw order is fixed at two draws per slot — the error coin first,
    then the transition coin — so the sampled sequence is a pure
    function of the seed, independent of which slots are queried.
    """

    def __init__(self, p_gb: float, p_bg: float, rng: Random,
                 error_good: float = 0.0, error_bad: float = 1.0,
                 start_bad: bool = False, cause: str = "ge-burst",
                 rng_stream: Optional[str] = None) -> None:
        if not 0.0 < p_gb <= 1.0:
            raise ValueError(f"p_gb must be in (0, 1], got {p_gb}")
        if not 0.0 < p_bg <= 1.0:
            raise ValueError(f"p_bg must be in (0, 1], got {p_bg}")
        self.p_gb = float(p_gb)
        self.p_bg = float(p_bg)
        self.error_good = _check_probability("error_good", error_good)
        self.error_bad = _check_probability("error_bad", error_bad)
        self.start_bad = bool(start_bad)
        self.cause = cause
        self.rng_stream = rng_stream
        self._rng = rng
        self._n_slots: Optional[int] = None
        self._errors: List[bool] = []
        self._bad = self.start_bad  # state entering the next unsampled slot

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict."""
        return {"p_gb": self.p_gb, "p_bg": self.p_bg,
                "error_good": self.error_good, "error_bad": self.error_bad,
                "start_bad": self.start_bad, "cause": self.cause,
                "rng_stream": self.rng_stream}

    def stationary_bad(self) -> float:
        """Closed-form stationary probability of the bad state."""
        return self.p_gb / (self.p_gb + self.p_bg)

    def stationary_error_rate(self) -> float:
        """Closed-form stationary per-slot error probability."""
        pi_b = self.stationary_bad()
        return (1.0 - pi_b) * self.error_good + pi_b * self.error_bad

    def mean_burst_slots(self) -> float:
        """Closed-form mean bad-state sojourn length in slots."""
        return 1.0 / self.p_bg

    def _bind_slots(self, n_slots: int) -> None:
        # First binding wins; the slot count defines the global slot
        # index and with it the whole sampled sequence.
        if self._n_slots is None:
            self._n_slots = n_slots
        elif self._n_slots != n_slots:
            raise ValueError(
                f"GilbertElliottChannel bound to {self._n_slots} slots "
                f"cannot be reused on a {n_slots}-slot cluster")

    def _extend_to(self, t: int) -> None:
        require_finite_horizon(type(self).__name__, t)
        while len(self._errors) <= t:
            bad = self._bad
            err_p = self.error_bad if bad else self.error_good
            self._errors.append(self._rng.random() < err_p)
            flip_p = self.p_bg if bad else self.p_gb
            if self._rng.random() < flip_p:
                self._bad = not bad

    def slot_error(self, round_index: int, slot: int,
                   timebase: TimeBase) -> bool:
        """Oracle: whether the channel corrupts ``(round, slot)``."""
        self._bind_slots(timebase.n_slots)
        t = round_index * self._n_slots + (slot - 1)
        self._extend_to(t)
        return self._errors[t]

    def error_sequence(self, n_slots_total: int,
                       timebase: TimeBase) -> List[bool]:
        """The first ``n_slots_total`` per-slot error flags (for tests)."""
        self._bind_slots(timebase.n_slots)
        self._extend_to(n_slots_total - 1)
        return self._errors[:n_slots_total]

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        if self.slot_error(ctx.round_index, ctx.slot, ctx.timebase):
            yield FaultDirective.benign(cause=self.cause)

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True iff the channel leaves this slot clean.

        Samples exactly the prefix :meth:`directives` would, so the RNG
        draw sequence is identical on both bus paths.
        """
        return not self.slot_error(round_index, slot, timebase)


class CorrelatedEMI(_StochasticScenario, Scenario):
    """Spatially correlated receiver failures from one latent event.

    Per round, one draw decides whether a disturbance strikes
    (probability ``event_rate``); if it does, a second draw places its
    centre uniformly and a contiguous neighbourhood of ``width``
    receivers (wrapping around the ring ``1..N``) loses every reception
    of that round.  The affected receivers locally detect each frame as
    faulty — the asymmetric/SOS reception pattern of Sec. 8 — so two
    receivers within ``width`` of each other fail *together* far more
    often than independent per-receiver noise would allow.
    """

    def __init__(self, event_rate: float, width: int, rng: Random,
                 cause: str = "emi", rng_stream: Optional[str] = None) -> None:
        if not 0.0 < event_rate <= 1.0:
            raise ValueError(f"event_rate must be in (0, 1], got {event_rate}")
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.event_rate = float(event_rate)
        self.width = int(width)
        self.cause = cause
        self.rng_stream = rng_stream
        self._rng = rng
        self._n: Optional[int] = None
        self._events: Dict[int, FrozenSet[int]] = {}
        self._sampled_until = -1

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict."""
        return {"event_rate": self.event_rate, "width": self.width,
                "cause": self.cause, "rng_stream": self.rng_stream}

    def _bind_nodes(self, n: int) -> None:
        if self._n is None:
            self._n = n
        elif self._n != n:
            raise ValueError(
                f"CorrelatedEMI bound to {self._n} nodes cannot be "
                f"reused on an {n}-node cluster")

    def _extend_to(self, round_index: int) -> None:
        require_finite_horizon(type(self).__name__, round_index)
        while self._sampled_until < round_index:
            k = self._sampled_until + 1
            if self._rng.random() < self.event_rate:
                center = self._rng.randrange(self._n)
                self._events[k] = frozenset(
                    ((center + i) % self._n) + 1 for i in range(self.width))
            self._sampled_until = k

    def affected_receivers(self, round_index: int,
                           timebase: TimeBase) -> FrozenSet[int]:
        """Receivers knocked out in ``round_index`` (empty if none)."""
        self._bind_nodes(timebase.n_slots)
        self._extend_to(round_index)
        return self._events.get(round_index, frozenset())

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        affected = self.affected_receivers(ctx.round_index, ctx.timebase)
        if affected:
            yield FaultDirective.asymmetric(sorted(affected), cause=self.cause)

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True iff no disturbance strikes this slot's round.

        The round-level sampling is shared with :meth:`directives`, so
        probing burns no extra draws.
        """
        return not self.affected_receivers(round_index, timebase)


class DutyCycleIntermittent(_StochasticScenario, Scenario):
    """An intermittent sender with an exact duty cycle.

    Time from ``first_round`` on is tiled into periods of
    ``period_rounds`` rounds; in each period the sender is faulty for a
    contiguous window of exactly ``on_rounds`` rounds, placed at a
    uniformly random phase (one draw per period).  The occupancy is
    therefore exactly ``on_rounds / period_rounds`` over whole periods
    — a sharp, tunable load for reward-threshold experiments, unlike
    the exponential reappearances of
    :class:`~repro.faults.processes.IntermittentSender`.
    """

    def __init__(self, sender: int, period_rounds: int, on_rounds: int,
                 rng: Random, first_round: int = 0,
                 cause: Optional[str] = None,
                 rng_stream: Optional[str] = None) -> None:
        if period_rounds < 1:
            raise ValueError(f"period_rounds must be >= 1, got {period_rounds}")
        if not 1 <= on_rounds <= period_rounds:
            raise ValueError(
                f"on_rounds must be in [1, period_rounds], got {on_rounds}")
        self.sender = sender
        self.period_rounds = int(period_rounds)
        self.on_rounds = int(on_rounds)
        self.first_round = int(first_round)
        self.cause = cause or f"duty-cycle-{sender}"
        self.rng_stream = rng_stream
        self._rng = rng
        self._offsets: List[int] = []  # one sampled phase per period

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict."""
        return {"sender": self.sender, "period_rounds": self.period_rounds,
                "on_rounds": self.on_rounds, "first_round": self.first_round,
                "cause": self.cause, "rng_stream": self.rng_stream}

    def duty_cycle(self) -> float:
        """Exact fraction of faulty rounds over whole periods."""
        return self.on_rounds / self.period_rounds

    def _extend_to_period(self, period: int) -> None:
        require_finite_horizon(type(self).__name__, period)
        while len(self._offsets) <= period:
            self._offsets.append(
                self._rng.randrange(self.period_rounds - self.on_rounds + 1))

    def is_faulty_round(self, round_index: int) -> bool:
        """Oracle: whether the sender's slot in ``round_index`` is hit."""
        if round_index < self.first_round:
            return False
        rel = round_index - self.first_round
        period, phase = divmod(rel, self.period_rounds)
        self._extend_to_period(period)
        offset = self._offsets[period]
        return offset <= phase < offset + self.on_rounds

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        if ctx.sender != self.sender:
            return
        if self.is_faulty_round(ctx.round_index):
            yield FaultDirective.benign(cause=self.cause)

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True unless the sender's slot falls in the period's on-window.

        The short-circuit keeps sampling restricted to the sender's own
        slots, exactly as :meth:`directives` restricts it.
        """
        return slot != self.sender or not self.is_faulty_round(round_index)


class AdaptiveSaboteur(SerializableScenario, Scenario):
    """An adversarial sender that reads the health state and backs off.

    The saboteur injects benign faults in its own slot for as long as
    the protocol's *current* penalty against it leaves room below the
    isolation threshold, and stops as soon as one more penalty hit
    could come within ``margin`` of crossing ``P`` — the adaptive
    "stay just under the radar" strategy the reward-based penalty
    forgetting (Sec. 9) exists to bound.  Because the diagnosis
    pipeline lags the bus by a few rounds, an aggressive margin can
    still overshoot into isolation; that race is exactly what the model
    is for.

    The scenario must be given a view of the protocol state with
    :meth:`bind_observer` (the spec build path does this automatically
    for any scenario exposing the hook).  Decisions are memoised per
    round at first query, so the fast-path quiescence probe and the
    slow-path directive application see the identical choice.

    ``event_only = True``: the decision depends on live protocol state,
    so the model cannot be lowered to precomputed masks — the
    vectorized backend rejects it with
    :class:`~repro.vec.errors.UnsupportedSpecError`.
    """

    #: The vectorized backend cannot precompute this scenario's masks.
    event_only = True

    def __init__(self, sender: int, margin: int = 0,
                 cause: Optional[str] = None) -> None:
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        self.sender = sender
        self.margin = int(margin)
        self.cause = cause or f"saboteur-{sender}"
        self._observer: Any = None
        self._decisions: Dict[int, bool] = {}

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict."""
        return {"sender": self.sender, "margin": self.margin,
                "cause": self.cause}

    def bind_observer(self, target: Any) -> None:
        """Attach the cluster facade whose penalty state drives decisions."""
        self._observer = target

    def _attack_in(self, round_index: int) -> bool:
        if round_index in self._decisions:
            return self._decisions[round_index]
        if self._observer is None:
            raise ValueError(
                "AdaptiveSaboteur has no protocol view; call "
                "bind_observer(cluster_facade) after attaching it (the "
                "spec build path does this automatically)")
        config = self._observer.config
        # Worst case over all observers: the consensus property keeps
        # the views equal in steady state, but during the pipeline lag
        # the most advanced view is the one that isolates first.
        penalty = max(
            service.pr.penalties[self.sender - 1]
            for service in self._observer.services.values())
        headroom = (config.penalty_threshold
                    - config.criticality_of(self.sender) - self.margin)
        decision = penalty <= headroom
        self._decisions[round_index] = decision
        return decision

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        if ctx.sender != self.sender:
            return
        if self._attack_in(ctx.round_index):
            yield FaultDirective.benign(cause=self.cause)

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True unless the saboteur decides to attack this round.

        The decision is memoised at first query (probe or directive) —
        both happen at the slot's transmission time, so fast and slow
        bus paths read the same protocol state.
        """
        return slot != self.sender or not self._attack_in(round_index)


class FaultStorm(_StochasticScenario, Scenario):
    """Correlated multi-node fault storms (gusts hitting many senders).

    Per round inside the active window, one draw decides whether a gust
    is blowing (probability ``gust_rate``); during a gust each selected
    sender is independently hit with probability ``intensity`` (one
    draw per candidate sender, in ascending sender order).  A hit
    corrupts that sender's transmission for all receivers (benign).
    Cross-sender correlation comes entirely from the shared gust: two
    senders fail in the same round with probability
    ``gust_rate * intensity**2``, not ``(gust_rate * intensity)**2``.
    """

    def __init__(self, gust_rate: float, intensity: float, rng: Random,
                 senders: Optional[Sequence[int]] = None,
                 start_round: int = 0,
                 duration_rounds: Optional[int] = None,
                 cause: str = "storm",
                 rng_stream: Optional[str] = None) -> None:
        if not 0.0 < gust_rate <= 1.0:
            raise ValueError(f"gust_rate must be in (0, 1], got {gust_rate}")
        self.gust_rate = float(gust_rate)
        self.intensity = _check_probability("intensity", intensity)
        self.senders = (None if senders is None
                        else sorted(int(s) for s in senders))
        if self.senders is not None and not self.senders:
            raise ValueError("senders must be None (all) or non-empty")
        self.start_round = int(start_round)
        self.duration_rounds = (None if duration_rounds is None
                                else int(duration_rounds))
        if self.duration_rounds is not None and self.duration_rounds < 1:
            raise ValueError("duration_rounds must be None or >= 1")
        self.cause = cause
        self.rng_stream = rng_stream
        self._rng = rng
        self._n: Optional[int] = None
        self._hits: Dict[int, FrozenSet[int]] = {}
        self._sampled_until = -1

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict."""
        return {"gust_rate": self.gust_rate, "intensity": self.intensity,
                "senders": self.senders, "start_round": self.start_round,
                "duration_rounds": self.duration_rounds, "cause": self.cause,
                "rng_stream": self.rng_stream}

    def _bind_nodes(self, n: int) -> None:
        if self._n is None:
            self._n = n
        elif self._n != n:
            raise ValueError(
                f"FaultStorm bound to {self._n} nodes cannot be reused "
                f"on an {n}-node cluster")

    def _in_window(self, round_index: int) -> bool:
        if round_index < self.start_round:
            return False
        if self.duration_rounds is None:
            return True
        return round_index < self.start_round + self.duration_rounds

    def _extend_to(self, round_index: int) -> None:
        require_finite_horizon(type(self).__name__, round_index)
        candidates = self.senders or range(1, self._n + 1)
        while self._sampled_until < round_index:
            k = self._sampled_until + 1
            if self._in_window(k) and self._rng.random() < self.gust_rate:
                hit = frozenset(s for s in candidates
                                if self._rng.random() < self.intensity)
                if hit:
                    self._hits[k] = hit
            self._sampled_until = k

    def hit_senders(self, round_index: int,
                    timebase: TimeBase) -> FrozenSet[int]:
        """Senders whose transmissions are corrupted in ``round_index``."""
        self._bind_nodes(timebase.n_slots)
        self._extend_to(round_index)
        return self._hits.get(round_index, frozenset())

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        if ctx.sender in self.hit_senders(ctx.round_index, ctx.timebase):
            yield FaultDirective.benign(cause=self.cause)

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True iff the storm leaves this sender's slot untouched.

        Sampling is per round regardless of the queried slot, so probes
        and directives consume the identical draw sequence.
        """
        return slot not in self.hit_senders(round_index, timebase)


def gilbert_elliott_stationary_bad(p_gb: float, p_bg: float) -> float:
    """Stationary bad-state probability of a Gilbert-Elliott chain."""
    return p_gb / (p_gb + p_bg)


def gilbert_elliott_error_rate(p_gb: float, p_bg: float,
                               error_good: float, error_bad: float) -> float:
    """Stationary per-slot error probability of a Gilbert-Elliott chain."""
    pi_b = gilbert_elliott_stationary_bad(p_gb, p_bg)
    return (1.0 - pi_b) * error_good + pi_b * error_bad


__all__ = [
    "AdaptiveSaboteur",
    "CorrelatedEMI",
    "DutyCycleIntermittent",
    "FaultStorm",
    "GilbertElliottChannel",
    "gilbert_elliott_error_rate",
    "gilbert_elliott_stationary_bad",
]
