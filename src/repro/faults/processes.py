"""Stochastic fault processes for the extended fault model.

The paper's extended fault model (Sec. 4) distinguishes nodes by the
statistics of their faults rather than by a single fault event:

* **healthy** nodes suffer only *external transient* faults — rare,
  independent events well modelled as a Poisson process on the bus;
* **unhealthy** nodes suffer *internal* faults that manifest either as
  a permanent sender fault or as *intermittent* faults whose time to
  reappearance is much shorter than the external transient
  inter-arrival time.

These processes drive the tuning experiments (Sec. 9 / Fig. 3): the
reward threshold ``R`` must be large enough to correlate intermittent
reappearances yet small enough that two independent transients are
almost never correlated.

All processes draw from a caller-provided :class:`random.Random` so the
experiments are reproducible; arrivals are *pre-sampled lazily* up to
any queried horizon, making the scenario a deterministic function of
its seed.

For serialization (:mod:`repro.spec`) a stochastic scenario carries an
optional ``rng_stream`` name: ``from_dict`` resolves it against the
cluster's :class:`~repro.sim.rng.RandomStreams`, so a rebuilt scenario
draws exactly the numbers the original did.  ``to_dict`` refuses to
serialize an instance constructed from a bare ``Random`` without a
stream name — such an RNG has no portable identity.
"""

from __future__ import annotations

import math
from random import Random
from typing import Any, Dict, Iterator, List, Optional

from ..tt.timebase import TimeBase
from .injector import Scenario, TransmissionContext
from .model import FaultDirective
from .scenarios import SerializableScenario

_EPS = 1e-12


def require_finite_horizon(name: str, horizon) -> None:
    """Reject non-finite sampling horizons with a clear ``ValueError``.

    The lazy pre-sampling loops extend monotonically up to the queried
    horizon; fed ``inf`` they would never terminate, and fed ``nan``
    every comparison is false, so the process silently reports *no*
    arrivals for every subsequent query — wrong results with no error.
    Every ``_extend_to`` validates through here instead.
    """
    if not math.isfinite(horizon):
        raise ValueError(
            f"{name} sampling horizon must be finite, got {horizon!r}")


class _StochasticScenario(SerializableScenario):
    """Serialization glue shared by the RNG-driven scenarios."""

    rng_stream: Optional[str] = None

    @classmethod
    def from_dict(cls, data: Dict[str, Any], streams=None):
        """Rebuild the scenario, resolving ``rng_stream`` via ``streams``.

        The named stream must be *fresh* in ``streams``: a rebuilt
        process restarts its draw sequence from the beginning, so
        resolving it against a registry whose stream has already
        advanced would silently produce a different arrival sequence —
        early horizons would disagree with the original with no error.
        That hazard is rejected here with a ``ValueError``.
        """
        params = dict(data)
        tag = params.pop("type", cls.__name__)
        if tag != cls.__name__:
            raise ValueError(f"spec type {tag!r} does not match {cls.__name__}")
        stream_name = params.pop("rng_stream", None)
        if stream_name is None:
            raise ValueError(
                f"{cls.__name__} spec needs an rng_stream name")
        if streams is None:
            raise ValueError(
                f"rebuilding {cls.__name__} needs a RandomStreams resolver")
        if not streams.is_fresh(stream_name):
            raise ValueError(
                f"rng_stream {stream_name!r} was already materialized in "
                f"this RandomStreams registry; a rebuilt {cls.__name__} "
                "would resume mid-sequence and silently sample a different "
                "arrival sequence — rebuild against a fresh registry or "
                "use a distinct stream name")
        return cls(rng=streams.stream(stream_name),
                   rng_stream=stream_name, **params)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible description; requires a named RNG stream."""
        data = super().to_dict()
        if data.get("rng_stream") is None:
            raise TypeError(
                f"{type(self).__name__} was built from a bare Random; give "
                "it an rng_stream name to make it serializable")
        return data


class PoissonTransients(_StochasticScenario, Scenario):
    """External transient faults: Poisson arrivals of short bus bursts.

    Each arrival corrupts the bus for ``burst_length`` seconds (default:
    one slot is typically covered).  ``rate`` is in arrivals per second.
    """

    def __init__(self, rate: float, burst_length: float, rng: Random,
                 start: float = 0.0, cause: str = "transient",
                 rng_stream: Optional[str] = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst_length <= 0:
            raise ValueError(f"burst_length must be positive, got {burst_length}")
        self.rate = rate
        self.burst_length = burst_length
        self.start = float(start)
        self.cause = cause
        self.rng_stream = rng_stream
        self._rng = rng
        self._arrivals: List[float] = []
        self._next_sample_from = float(start)

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict."""
        return {"rate": self.rate, "burst_length": self.burst_length,
                "start": self.start, "cause": self.cause,
                "rng_stream": self.rng_stream}

    def _extend_to(self, horizon: float) -> None:
        """Lazily sample arrivals up to ``horizon``."""
        require_finite_horizon(type(self).__name__, horizon)
        while self._next_sample_from <= horizon:
            gap = self._rng.expovariate(self.rate)
            self._next_sample_from += gap
            self._arrivals.append(self._next_sample_from)

    def arrivals_until(self, horizon: float) -> List[float]:
        """All arrival instants in ``[start, horizon]`` (for oracles)."""
        self._extend_to(horizon)
        return [t for t in self._arrivals if t <= horizon]

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        tx_start, tx_end = ctx.timebase.tx_window(ctx.round_index, ctx.slot)
        self._extend_to(tx_end)
        for arrival in self._arrivals:
            if arrival >= tx_end - _EPS:
                break
            if arrival + self.burst_length > tx_start + _EPS:
                yield FaultDirective.benign(cause=self.cause)
                return

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True iff no sampled arrival touches this slot's tx window.

        Samples lazily to exactly the horizon :meth:`directives` would,
        so the RNG draw sequence is identical on both bus paths.
        """
        tx_start, tx_end = timebase.tx_window(round_index, slot)
        self._extend_to(tx_end)
        for arrival in self._arrivals:
            if arrival >= tx_end - _EPS:
                break
            if arrival + self.burst_length > tx_start + _EPS:
                return False
        return True


class IntermittentSender(_StochasticScenario, Scenario):
    """An unhealthy node's internal fault, reappearing stochastically.

    After each faulty burst of ``burst_rounds`` rounds, the fault
    reappears after an exponentially distributed number of rounds with
    mean ``mean_reappearance_rounds``.  The defining characteristic of
    an *internal* intermittent fault is that this mean is small compared
    to ``R`` (the reward threshold), so the penalty/reward algorithm
    accumulates its penalties (Sec. 9, "characterizing intermittent
    faults").
    """

    def __init__(self, sender: int, mean_reappearance_rounds: float,
                 rng: Random, burst_rounds: int = 1,
                 first_round: int = 0, cause: Optional[str] = None,
                 rng_stream: Optional[str] = None) -> None:
        if mean_reappearance_rounds <= 0:
            raise ValueError("mean_reappearance_rounds must be positive")
        if burst_rounds < 1:
            raise ValueError("burst_rounds must be >= 1")
        self.sender = sender
        self.mean_reappearance_rounds = mean_reappearance_rounds
        self.burst_rounds = burst_rounds
        self.first_round = first_round
        self.cause = cause or f"intermittent-{sender}"
        self.rng_stream = rng_stream
        self._rng = rng
        self._faulty_rounds: set = set()
        self._next_burst_start = first_round
        self._sampled_until = -1

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict."""
        return {"sender": self.sender,
                "mean_reappearance_rounds": self.mean_reappearance_rounds,
                "burst_rounds": self.burst_rounds,
                "first_round": self.first_round, "cause": self.cause,
                "rng_stream": self.rng_stream}

    def _extend_to(self, round_index: int) -> None:
        require_finite_horizon(type(self).__name__, round_index)
        while self._sampled_until < round_index:
            burst_start = self._next_burst_start
            for r in range(burst_start, burst_start + self.burst_rounds):
                self._faulty_rounds.add(r)
            self._sampled_until = burst_start + self.burst_rounds - 1
            gap = self._rng.expovariate(1.0 / self.mean_reappearance_rounds)
            self._next_burst_start = (burst_start + self.burst_rounds
                                      + max(1, int(math.ceil(gap))))

    def is_faulty_round(self, round_index: int) -> bool:
        """Oracle: whether the sender's slot in ``round_index`` is hit."""
        self._extend_to(round_index)
        return round_index in self._faulty_rounds

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        if ctx.sender != self.sender:
            return
        if self.is_faulty_round(ctx.round_index):
            yield FaultDirective.benign(cause=self.cause)

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True unless the sender's slot falls in a sampled faulty round.

        The short-circuit keeps the memoised sampling in
        :meth:`is_faulty_round` restricted to the sender's own slots,
        exactly as :meth:`directives` restricts it.
        """
        return slot != self.sender or not self.is_faulty_round(round_index)


class RandomSlotNoise(_StochasticScenario, Scenario):
    """Each transmission is independently corrupted with probability p.

    A simple memoryless disturbance useful for stress tests; the
    per-transmission decision is memoised so repeated queries (e.g. on
    a replicated bus) are consistent.
    """

    def __init__(self, probability: float, rng: Random,
                 cause: str = "random-noise",
                 rng_stream: Optional[str] = None) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.probability = probability
        self.cause = cause
        self.rng_stream = rng_stream
        self._rng = rng
        self._decisions: dict = {}

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict."""
        return {"probability": self.probability, "cause": self.cause,
                "rng_stream": self.rng_stream}

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        key = (ctx.round_index, ctx.slot)
        if key not in self._decisions:
            self._decisions[key] = self._rng.random() < self.probability
        if self._decisions[key]:
            yield FaultDirective.benign(cause=self.cause)

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True iff this transmission's memoised coin flip came up clean."""
        key = (round_index, slot)
        if key not in self._decisions:
            self._decisions[key] = self._rng.random() < self.probability
        return not self._decisions[key]


__all__ = ["IntermittentSender", "PoissonTransients", "RandomSlotNoise",
           "require_finite_horizon"]
