"""Deterministic fault scenarios used in the paper's experiments.

All the disturbance patterns the paper injects are expressed here as
:class:`~repro.faults.injector.Scenario` implementations:

* :class:`BusBurst` — a window of noise/silence on the bus corrupting
  every overlapping transmission (used for 1-slot, 2-slot and
  2-round bursts in Sec. 8, and for continuous bursts in Sec. 9).
* :class:`SlotBurst` — convenience wrapper expressing a burst as
  "``n_slots`` slots starting at slot ``s`` of round ``k``".
* :class:`PeriodicBurst` — bursts with a fixed time to reappearance
  (the *blinking light* scenario of Table 3).
* :class:`BurstSequence` — an explicit list of bursts (the *lightning
  bolt* scenario of Table 3, with increasing times to reappearance).
* :class:`SenderFault` — faults attached to a specific sender:
  benign omission, asymmetric (SOS-style, detected only by a subset of
  receivers), or symmetric malicious (forged payload), active on a
  configurable set of rounds (or permanently: a crashed node).
* :class:`ChannelBurst` — a burst restricted to one channel of a
  replicated bus.

Every scenario is *serializable*: :meth:`SerializableScenario.to_dict`
returns a JSON-compatible dict with a ``type`` tag, the matching
``from_dict`` rebuilds an equivalent scenario, and ``repr`` is derived
from that same dict, so two scenarios with equal spec dicts print
identically.  The spec layer (:mod:`repro.spec`) builds its scenario
registry on this contract.

Timing convention: a burst corrupts a frame iff its ``[start, end)``
window overlaps the frame's transmission window on the bus.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..tt.timebase import TimeBase
from .injector import Scenario, TransmissionContext
from .model import FaultDirective

_EPS = 1e-12


class SerializableScenario:
    """Mixin: dict round-trip and a deterministic spec-derived repr.

    Subclasses implement :meth:`spec_params` returning the constructor
    parameters as JSON-native values; ``to_dict``/``from_dict`` and
    ``__repr__`` are derived from it, so the printed form, the pickled
    form and the serialized form all describe the same scenario.
    """

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict (no type tag)."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible description: ``{"type": ..., **params}``."""
        return {"type": type(self).__name__, **self.spec_params()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any], streams=None):
        """Rebuild a scenario from :meth:`to_dict` output.

        ``streams`` (a :class:`~repro.sim.rng.RandomStreams`) is only
        consulted by stochastic scenarios; deterministic ones ignore it.
        """
        params = dict(data)
        tag = params.pop("type", cls.__name__)
        if tag != cls.__name__:
            raise ValueError(f"spec type {tag!r} does not match {cls.__name__}")
        return cls(**params)

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self._repr_params().items())
        return f"{type(self).__name__}({args})"

    def _repr_params(self) -> Dict[str, Any]:
        # Overridden where spec_params may raise (e.g. callable rounds).
        return self.spec_params()


class BusBurst(SerializableScenario, Scenario):
    """Noise/silence on the whole bus during ``[start, start+duration)``.

    Every frame whose transmission window overlaps the burst is locally
    detectable as faulty by *all* receivers (symmetric benign), which is
    how broadband electrical disturbances manifest (Sec. 8).

    ``min_overlap`` models the physical-layer detail that a frame only
    marginally clipped by a disturbance may still pass the receivers'
    checks: a frame is corrupted iff the burst covers more than that
    fraction of its transmission window (default 0: any overlap
    corrupts, the conservative EMI-on-the-wire assumption).
    """

    def __init__(self, start: float, duration: float, cause: str = "noise",
                 min_overlap: float = 0.0) -> None:
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if not 0.0 <= min_overlap < 1.0:
            raise ValueError(f"min_overlap must be in [0, 1), got {min_overlap}")
        self.start = float(start)
        self.duration = float(duration)
        self.end = self.start + self.duration
        self.cause = cause
        self.min_overlap = float(min_overlap)

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict."""
        return {"start": self.start, "duration": self.duration,
                "cause": self.cause, "min_overlap": self.min_overlap}

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        tx_start, tx_end = ctx.timebase.tx_window(ctx.round_index, ctx.slot)
        overlap = min(tx_end, self.end) - max(tx_start, self.start)
        threshold = self.min_overlap * (tx_end - tx_start)
        if overlap > max(threshold, _EPS):
            yield FaultDirective.benign(cause=self.cause)

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True iff the burst cannot corrupt this slot's transmission.

        Exact negation of the :meth:`directives` overlap condition.
        """
        tx_start, tx_end = timebase.tx_window(round_index, slot)
        overlap = min(tx_end, self.end) - max(tx_start, self.start)
        threshold = self.min_overlap * (tx_end - tx_start)
        return overlap <= max(threshold, _EPS)


class SlotBurst(BusBurst):
    """A burst covering ``n_slots`` consecutive slots.

    Mirrors the paper's Sec. 8 injection classes: bursts of one slot,
    two slots, or two TDMA rounds (``n_slots = 2 * N``), starting in any
    of the ``N`` sending slots.

    The canonical form holds only ``(round_index, slot, n_slots)`` —
    plain integers, so the scenario pickles and serializes without a
    live :class:`TimeBase` — and resolves the absolute burst window
    lazily: :meth:`bind` is called with the cluster's time base when the
    scenario is attached (or on first use, from the transmission
    context).  The legacy call form ``SlotBurst(timebase, round_index,
    slot, n_slots)`` is still accepted and binds immediately.
    """

    _PARAM_ORDER = ("round_index", "slot", "n_slots", "cause")

    def __init__(self, *args, **kwargs) -> None:
        args = list(args)
        timebase = kwargs.pop("timebase", None)
        if args and isinstance(args[0], TimeBase):
            timebase = args.pop(0)
        if len(args) > len(self._PARAM_ORDER):
            raise TypeError(f"SlotBurst takes at most "
                            f"{len(self._PARAM_ORDER)} positional parameters")
        params: Dict[str, Any] = dict(zip(self._PARAM_ORDER, args))
        clash = sorted(set(params) & set(kwargs))
        if clash:
            raise TypeError(f"SlotBurst got duplicate parameters {clash}")
        params.update(kwargs)
        unknown = sorted(set(params) - set(self._PARAM_ORDER))
        if unknown:
            raise TypeError(f"SlotBurst got unexpected parameters {unknown}")
        try:
            round_index = params["round_index"]
            slot = params["slot"]
        except KeyError as exc:
            raise TypeError(f"SlotBurst missing parameter {exc}") from None
        n_slots = params.get("n_slots", 1)
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        self.round_index = int(round_index)
        self.slot = int(slot)
        self.n_slots = int(n_slots)
        self.first_slot = (self.round_index, self.slot)
        self.cause = params.get("cause", "noise")
        self.min_overlap = 0.0
        self._bound = False
        if timebase is not None:
            self.bind(timebase)

    def bind(self, timebase: TimeBase) -> None:
        """Resolve the absolute burst window against ``timebase``.

        Idempotent: the first binding wins, so a scenario attached to a
        cluster keeps that cluster's timing even if probed with another
        time base later.
        """
        if self._bound:
            return
        start = timebase.slot_start(self.round_index, self.slot)
        super().__init__(start, self.n_slots * timebase.slot_length,
                         cause=self.cause)
        self._bound = True

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict.

        Only the slot coordinates are emitted — never the resolved
        absolute times — so the dict is valid for any cluster geometry.
        """
        return {"round_index": self.round_index, "slot": self.slot,
                "n_slots": self.n_slots, "cause": self.cause}

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        self.bind(ctx.timebase)
        return super().directives(ctx)

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True iff the burst cannot corrupt this slot's transmission."""
        self.bind(timebase)
        return super().is_quiescent(round_index, slot, timebase)


class ChannelBurst(SerializableScenario, Scenario):
    """A burst affecting only one channel of a replicated bus."""

    def __init__(self, channel: int, start: float, duration: float,
                 cause: str = "channel-noise") -> None:
        self.channel = channel
        self._burst = BusBurst(start, duration, cause=cause)

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict."""
        return {"channel": self.channel, "start": self._burst.start,
                "duration": self._burst.duration, "cause": self._burst.cause}

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        if ctx.channel != self.channel:
            return
        for directive in self._burst.directives(ctx):
            yield FaultDirective.benign(cause=directive.cause)

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True iff the underlying burst misses this slot on its channel."""
        return self._burst.is_quiescent(round_index, slot, timebase)


class PeriodicBurst(SerializableScenario, Scenario):
    """Bursts repeating with a constant time to reappearance.

    Models the *blinking light* abnormal transient scenario (Table 3):
    an open relay causes a 10 ms disturbance every 500 ms, 50 times.
    ``time_to_reappearance`` is the gap between the *end* of one burst
    and the *start* of the next, matching Table 3's ``TTReapp`` column.
    """

    def __init__(self, start: float, burst_length: float,
                 time_to_reappearance: float, count: int,
                 cause: str = "blinking-light",
                 min_overlap: float = 0.0) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.start = float(start)
        self.burst_length = float(burst_length)
        self.time_to_reappearance = float(time_to_reappearance)
        self.count = count
        self.cause = cause
        self.min_overlap = float(min_overlap)
        self.bursts: List[BusBurst] = []
        t = self.start
        for _ in range(count):
            self.bursts.append(BusBurst(t, burst_length, cause=cause,
                                        min_overlap=min_overlap))
            t += burst_length + time_to_reappearance

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict."""
        return {"start": self.start, "burst_length": self.burst_length,
                "time_to_reappearance": self.time_to_reappearance,
                "count": self.count, "cause": self.cause,
                "min_overlap": self.min_overlap}

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        for burst in self.bursts:
            yield from burst.directives(ctx)

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True iff every burst of the train misses this slot."""
        return all(b.is_quiescent(round_index, slot, timebase)
                   for b in self.bursts)

    @property
    def burst_windows(self) -> List[Tuple[float, float]]:
        """``(start, end)`` of each burst, for harness bookkeeping."""
        return [(b.start, b.end) for b in self.bursts]


class BurstSequence(SerializableScenario, Scenario):
    """An explicit sequence of ``(gap_before, burst_length)`` bursts.

    Models the *lightning bolt* scenario (Table 3): 40 ms bursts with
    times to reappearance 160 ms, 290 ms, then 9 times 500 ms.  Each
    entry's gap is measured from the end of the previous burst.
    """

    def __init__(self, start: float,
                 pattern: Sequence[Sequence[float]],
                 cause: str = "lightning") -> None:
        self.start = float(start)
        self.pattern: List[List[float]] = [
            [float(gap), float(length)] for gap, length in pattern]
        self.cause = cause
        self.bursts: List[BusBurst] = []
        t = self.start
        for gap_before, burst_length in self.pattern:
            t += gap_before
            self.bursts.append(BusBurst(t, burst_length, cause=cause))
            t += burst_length

    @classmethod
    def lightning_bolt(cls, start: float = 0.0,
                       burst_length: float = 40e-3) -> "BurstSequence":
        """The paper's aerospace lightning-bolt scenario (Table 3).

        One initial 40 ms burst, reappearing after 160 ms, then after
        290 ms, then 9 more times with 500 ms reappearance.
        """
        pattern: List[Tuple[float, float]] = [(0.0, burst_length),
                                              (160e-3, burst_length),
                                              (290e-3, burst_length)]
        pattern.extend((500e-3, burst_length) for _ in range(9))
        return cls(start, pattern, cause="lightning")

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict."""
        return {"start": self.start,
                "pattern": [list(entry) for entry in self.pattern],
                "cause": self.cause}

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        for burst in self.bursts:
            yield from burst.directives(ctx)

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True iff every burst of the sequence misses this slot."""
        return all(b.is_quiescent(round_index, slot, timebase)
                   for b in self.bursts)

    @property
    def burst_windows(self) -> List[Tuple[float, float]]:
        """``(start, end)`` of each burst, for harness bookkeeping."""
        return [(b.start, b.end) for b in self.bursts]


def blinking_light(start: float = 0.0) -> PeriodicBurst:
    """The paper's automotive blinking-light scenario (Table 3).

    10 ms bursts with 500 ms time to reappearance, 50 instances.
    """
    return PeriodicBurst(start=start, burst_length=10e-3,
                         time_to_reappearance=500e-3, count=50,
                         cause="blinking-light")


class SenderFault(SerializableScenario, Scenario):
    """Faults attached to one sender's slots.

    ``rounds`` selects when the fault is active: an iterable of round
    indices, a predicate ``round_index -> bool``, or ``None`` for
    "always" (a permanent fault).  ``from_round`` is the serializable
    alternative to a ``k >= n`` predicate: active from that round on
    (a crashed node).  At most one of ``rounds``/``from_round`` may be
    given.

    ``kind`` selects the fault class:

    * ``"benign"`` — omission: every receiver's validity bit is 0;
    * ``"asymmetric"`` — only ``detectable_by`` receivers see the fault
      (SOS faults, Sec. 4);
    * ``"malicious"`` — all receivers accept ``payload`` instead of the
      sender's real message (symmetric malicious).
    """

    def __init__(self, sender: int, kind: str = "benign",
                 rounds: Any = None,
                 detectable_by: Optional[Iterable[int]] = None,
                 payload: Any = None,
                 cause: Optional[str] = None,
                 from_round: Optional[int] = None) -> None:
        if kind not in ("benign", "asymmetric", "malicious"):
            raise ValueError(f"unknown fault kind {kind!r}")
        if kind == "asymmetric" and not detectable_by:
            raise ValueError("asymmetric faults need a non-empty detectable_by")
        if rounds is not None and from_round is not None:
            raise ValueError("give either rounds or from_round, not both")
        self.sender = sender
        self.kind = kind
        self.detectable_by = frozenset(detectable_by or ())
        self.payload = payload
        self.cause = cause or f"{kind}-sender-{sender}"
        self.from_round = from_round
        self.rounds: Optional[Tuple[int, ...]] = None
        self._rounds_callable: Optional[Callable[[int], bool]] = None
        self._round_set: Optional[frozenset] = None
        if callable(rounds):
            self._rounds_callable = rounds
        elif rounds is not None:
            self._round_set = frozenset(rounds)
            self.rounds = tuple(sorted(self._round_set))

    def _active(self, round_index: int) -> bool:
        # A plain method (not a captured lambda) keeps the scenario
        # picklable whenever the activity window itself is.
        if self._rounds_callable is not None:
            return self._rounds_callable(round_index)
        if self.from_round is not None:
            return round_index >= self.from_round
        if self._round_set is not None:
            return round_index in self._round_set
        return True

    def spec_params(self) -> Dict[str, Any]:
        """Constructor parameters as a JSON-native dict.

        Raises :class:`TypeError` when the activity window was given as
        an arbitrary predicate — callables have no serial form; use
        ``rounds`` or ``from_round`` for serializable scenarios.
        """
        if self._rounds_callable is not None:
            raise TypeError(
                "SenderFault with a callable rounds predicate is not "
                "serializable; pass an iterable of rounds or from_round")
        return {"sender": self.sender, "kind": self.kind,
                "rounds": list(self.rounds) if self.rounds is not None else None,
                "detectable_by": sorted(self.detectable_by),
                "payload": self.payload, "cause": self.cause,
                "from_round": self.from_round}

    def _repr_params(self) -> Dict[str, Any]:
        if self._rounds_callable is not None:
            return {"sender": self.sender, "kind": self.kind,
                    "rounds": "<predicate>",
                    "detectable_by": sorted(self.detectable_by),
                    "payload": self.payload, "cause": self.cause,
                    "from_round": self.from_round}
        return self.spec_params()

    def directives(self, ctx: TransmissionContext) -> Iterator[FaultDirective]:
        """Yield the fault directives this scenario imposes on ``ctx``."""
        if ctx.sender != self.sender or not self._active(ctx.round_index):
            return
        if self.kind == "benign":
            yield FaultDirective.benign(cause=self.cause)
        elif self.kind == "asymmetric":
            yield FaultDirective.asymmetric(self.detectable_by, cause=self.cause)
        else:
            yield FaultDirective.malicious(self.payload, cause=self.cause)

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True unless this is the faulty sender's slot in an active round.

        Slot ownership is the identity map (:class:`GlobalSchedule`), so
        the slot index doubles as the sender id.
        """
        return slot != self.sender or not self._active(round_index)


def crash(sender: int, from_round: int = 0) -> SenderFault:
    """A crashed node: permanent benign sender fault from ``from_round``."""
    return SenderFault(sender, kind="benign", from_round=from_round,
                       cause=f"crash-{sender}")


def every_nth_round(sender: int, period: int, start_round: int,
                    occurrences: int) -> SenderFault:
    """A benign fault in the sender's slot every ``period`` rounds.

    Used by the Sec. 8 penalty/reward validation class: "a fault is
    injected in the sending slots of the node every second TDMA round
    for 20 TDMA rounds".
    """
    if period < 1 or occurrences < 1:
        raise ValueError("period and occurrences must be >= 1")
    active_rounds = frozenset(start_round + i * period for i in range(occurrences))
    return SenderFault(sender, kind="benign", rounds=active_rounds,
                       cause=f"intermittent-{sender}")


__all__ = [
    "SerializableScenario",
    "BusBurst",
    "SlotBurst",
    "ChannelBurst",
    "PeriodicBurst",
    "BurstSequence",
    "SenderFault",
    "blinking_light",
    "crash",
    "every_nth_round",
]
