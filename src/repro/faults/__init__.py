"""Fault model and fault-injection substrate (paper Secs. 4 and 8).

This package replaces the paper's physical disturbance node: scenarios
describe *when* and *how* transmissions are corrupted, the
:class:`~repro.faults.injector.InjectionLayer` composes them into
per-receiver reception outcomes, and the bus applies those outcomes
when frames are delivered.
"""

from .channels import (
    AdaptiveSaboteur,
    CorrelatedEMI,
    DutyCycleIntermittent,
    FaultStorm,
    GilbertElliottChannel,
    gilbert_elliott_error_rate,
    gilbert_elliott_stationary_bad,
)
from .injector import InjectedOutcome, InjectionLayer, Scenario, TransmissionContext
from .model import (
    FaultClass,
    FaultDirective,
    NodeGroundTruth,
    NodeHealth,
    ReceptionOutcome,
    classify_broadcast,
    worst_outcome,
)
from .processes import IntermittentSender, PoissonTransients, RandomSlotNoise
from .scenarios import (
    BurstSequence,
    BusBurst,
    ChannelBurst,
    PeriodicBurst,
    SenderFault,
    SlotBurst,
    blinking_light,
    crash,
    every_nth_round,
)

__all__ = [
    "AdaptiveSaboteur",
    "CorrelatedEMI",
    "DutyCycleIntermittent",
    "FaultStorm",
    "GilbertElliottChannel",
    "gilbert_elliott_error_rate",
    "gilbert_elliott_stationary_bad",
    "InjectedOutcome",
    "InjectionLayer",
    "Scenario",
    "TransmissionContext",
    "FaultClass",
    "FaultDirective",
    "NodeGroundTruth",
    "NodeHealth",
    "ReceptionOutcome",
    "classify_broadcast",
    "worst_outcome",
    "IntermittentSender",
    "PoissonTransients",
    "RandomSlotNoise",
    "BurstSequence",
    "BusBurst",
    "ChannelBurst",
    "PeriodicBurst",
    "SenderFault",
    "SlotBurst",
    "blinking_light",
    "crash",
    "every_nth_round",
]
