"""Fault model primitives (paper Sec. 4).

The paper uses a Customizable Fault-Effect Model that classifies the
*communication errors* observable in the broadcast of one message:

* **symmetric benign** — the message is locally detectable (syntax,
  early/late/missing) by *all* receivers;
* **symmetric malicious** — all receivers accept the same locally
  undetectable but semantically wrong message;
* **asymmetric** — at least one but not all receivers locally detect
  the message (e.g. Slightly-Off-Specification faults, or EMI that
  disturbs only part of the bus).

At the level of one (frame, receiver) pair this reduces to a
:class:`ReceptionOutcome`: the receiver either accepts the intended
payload (``OK``), rejects the frame (``DETECTABLE`` — validity bit 0),
or accepts a wrong payload (``MALICIOUS`` — validity bit 1 with bad
data).  The injection layer composes scenario directives into exactly
one outcome per (frame, receiver, channel).

The *extended fault model* distinguishes node health over time:

* a **healthy** node suffers only sporadic, external transient faults;
* an **unhealthy** node has internal faults that manifest as
  intermittent or permanent communication faults (shorter time to
  reappearance than external transients).

Node health is ground truth known only to the experiment harness (the
protocol must infer it); :class:`NodeGroundTruth` records it for
oracle checks in tests and benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional


class ReceptionOutcome(enum.Enum):
    """What one receiver observes for one transmitted frame."""

    #: Frame accepted with the sender's intended payload.
    OK = "ok"
    #: Frame locally detectable as faulty (validity bit = 0).
    DETECTABLE = "detectable"
    #: Frame accepted (validity bit = 1) but payload is wrong.
    MALICIOUS = "malicious"


#: Severity order used when several scenarios affect the same frame:
#: a detectable corruption dominates a malicious one, which dominates
#: a clean reception.
_SEVERITY = {
    ReceptionOutcome.OK: 0,
    ReceptionOutcome.MALICIOUS: 1,
    ReceptionOutcome.DETECTABLE: 2,
}


def worst_outcome(a: "ReceptionOutcome", b: "ReceptionOutcome") -> "ReceptionOutcome":
    """The dominating outcome when two fault effects overlap."""
    return a if _SEVERITY[a] >= _SEVERITY[b] else b


class FaultClass(enum.Enum):
    """Sender-level fault classification of one broadcast (Sec. 4)."""

    NONE = "none"
    SYMMETRIC_BENIGN = "symmetric_benign"
    SYMMETRIC_MALICIOUS = "symmetric_malicious"
    ASYMMETRIC = "asymmetric"


def classify_broadcast(outcomes: Dict[int, ReceptionOutcome]) -> FaultClass:
    """Classify a broadcast from its per-receiver outcomes.

    ``outcomes`` maps receiver IDs to what they observed.  The paper's
    broadcast-channel assumption forbids two *different* undetectable
    payloads at different receivers, which this model enforces by
    construction (a malicious directive carries a single forged value).
    """
    values = set(outcomes.values())
    if values == {ReceptionOutcome.OK}:
        return FaultClass.NONE
    if values == {ReceptionOutcome.DETECTABLE}:
        return FaultClass.SYMMETRIC_BENIGN
    if values == {ReceptionOutcome.MALICIOUS}:
        return FaultClass.SYMMETRIC_MALICIOUS
    return FaultClass.ASYMMETRIC


class NodeHealth(enum.Enum):
    """Ground-truth health of a node in the extended fault model."""

    #: Only sporadic external transients hit this node's slots.
    HEALTHY = "healthy"
    #: Internal faults: intermittent or permanent sender faults.
    UNHEALTHY = "unhealthy"


@dataclass
class NodeGroundTruth:
    """Oracle information about one node, for experiment evaluation.

    The diagnostic protocol never reads this; harnesses use it to score
    decisions (e.g. "was the isolated node actually unhealthy?").
    """

    node_id: int
    health: NodeHealth = NodeHealth.HEALTHY
    #: True while the node follows its program (correct or omissive);
    #: false for nodes with corrupted internal state (e.g. a node that
    #: broadcasts random syndromes).
    obedient: bool = True
    notes: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class FaultDirective:
    """The effect of one scenario on one transmission.

    Exactly one of the three shapes is used:

    * benign: ``detectable_by is None`` and ``malicious_payload is None``
      — every receiver sees ``DETECTABLE``;
    * asymmetric: ``detectable_by`` is the set of receivers that locally
      detect the frame (the rest see it as ``OK``);
    * symmetric malicious: ``malicious_payload`` is the forged value all
      receivers accept.
    """

    detectable_by: Optional[FrozenSet[int]] = None
    malicious_payload: Any = None
    is_malicious: bool = False
    #: Restrict the effect to one bus channel (None = all channels).
    channel: Optional[int] = None
    #: Free-form tag for traces ("noise", "silence", "spike", "sos"...).
    cause: str = "fault"

    def outcome_for(self, receiver: int) -> ReceptionOutcome:
        """Outcome this directive imposes on ``receiver``."""
        if self.is_malicious:
            return ReceptionOutcome.MALICIOUS
        if self.detectable_by is None:
            return ReceptionOutcome.DETECTABLE
        if receiver in self.detectable_by:
            return ReceptionOutcome.DETECTABLE
        return ReceptionOutcome.OK

    @staticmethod
    def benign(cause: str = "noise", channel: Optional[int] = None) -> "FaultDirective":
        """All receivers locally detect the frame as faulty."""
        return FaultDirective(cause=cause, channel=channel)

    @staticmethod
    def asymmetric(detectable_by, cause: str = "sos",
                   channel: Optional[int] = None) -> "FaultDirective":
        """Only ``detectable_by`` receivers detect the frame."""
        return FaultDirective(detectable_by=frozenset(detectable_by),
                              cause=cause, channel=channel)

    @staticmethod
    def malicious(payload: Any, cause: str = "malicious",
                  channel: Optional[int] = None) -> "FaultDirective":
        """All receivers accept the forged ``payload``."""
        return FaultDirective(malicious_payload=payload, is_malicious=True,
                              cause=cause, channel=channel)


__all__ = [
    "ReceptionOutcome",
    "worst_outcome",
    "FaultClass",
    "classify_broadcast",
    "NodeHealth",
    "NodeGroundTruth",
    "FaultDirective",
]
