"""Fault-injection layer: the simulated disturbance node.

The paper's validation (Sec. 8) uses a physical *disturbance node* that
injects electrical spikes, random noise and periods of silence on the
bus.  Because the diagnostic protocol "does not discriminate between
node and link faults", a fault in a node can be emulated by corrupting
or dropping a message it sends — which is exactly what this layer does,
deterministically, at the moment a frame is transmitted.

:class:`InjectionLayer` holds an ordered list of *scenarios*.  When the
bus transmits a frame it asks the layer for the per-receiver outcomes;
each scenario may contribute a :class:`~repro.faults.model.FaultDirective`
and overlapping directives are composed receiver-wise with
:func:`~repro.faults.model.worst_outcome` (a detectable corruption
dominates a malicious one dominates a clean reception).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Protocol, Sequence, Tuple

from ..tt.timebase import TimeBase
from .model import FaultDirective, ReceptionOutcome, worst_outcome


@dataclass(frozen=True)
class TransmissionContext:
    """Everything a scenario may condition its directives on."""

    time: float
    round_index: int
    slot: int
    sender: int
    receivers: Tuple[int, ...]
    channel: int
    timebase: TimeBase


class Scenario(Protocol):
    """A source of fault directives.

    Implementations return the directives affecting one transmission
    (usually zero or one).  Scenarios must be deterministic functions of
    the context and of their own (seeded) random stream.
    """

    def directives(self, ctx: TransmissionContext) -> Iterable[FaultDirective]:
        """Directives affecting the transmission described by ``ctx``."""
        ...  # pragma: no cover - protocol definition


@dataclass
class InjectedOutcome:
    """Composed result of injection for one transmission on one channel."""

    #: Per-receiver outcome.
    outcomes: Dict[int, ReceptionOutcome]
    #: Forged payload if any receiver's outcome is MALICIOUS.
    malicious_payload: Any
    #: Causes of the directives that actually applied (for traces).
    causes: Tuple[str, ...]

    @property
    def clean(self) -> bool:
        """True iff no receiver was affected."""
        return all(o is ReceptionOutcome.OK for o in self.outcomes.values())


class InjectionLayer:
    """Composes scenario directives into per-receiver outcomes."""

    def __init__(self) -> None:
        self._scenarios: List[Scenario] = []

    def add(self, scenario: Scenario) -> None:
        """Register a scenario (kept for the simulation's lifetime)."""
        self._scenarios.append(scenario)

    def remove(self, scenario: Scenario) -> None:
        """Unregister a scenario."""
        self._scenarios.remove(scenario)

    @property
    def scenarios(self) -> Sequence[Scenario]:
        return tuple(self._scenarios)

    def apply(self, ctx: TransmissionContext) -> InjectedOutcome:
        """Compute the injected outcome for one transmission.

        The sender is treated as a receiver of its own frame (the local
        collision detector reads the bus back), so ``ctx.receivers``
        normally includes the sender.
        """
        outcomes: Dict[int, ReceptionOutcome] = {
            r: ReceptionOutcome.OK for r in ctx.receivers
        }
        malicious_payload: Any = None
        causes: List[str] = []
        for scenario in self._scenarios:
            for directive in scenario.directives(ctx):
                if directive.channel is not None and directive.channel != ctx.channel:
                    continue
                causes.append(directive.cause)
                if directive.is_malicious:
                    malicious_payload = directive.malicious_payload
                for receiver in ctx.receivers:
                    outcomes[receiver] = worst_outcome(
                        outcomes[receiver], directive.outcome_for(receiver))
        # A malicious payload only matters for receivers that still see
        # the frame as valid-but-wrong after composition.
        if not any(o is ReceptionOutcome.MALICIOUS for o in outcomes.values()):
            malicious_payload = None
        return InjectedOutcome(outcomes=outcomes,
                               malicious_payload=malicious_payload,
                               causes=tuple(causes))


__all__ = [
    "TransmissionContext",
    "Scenario",
    "InjectedOutcome",
    "InjectionLayer",
]
