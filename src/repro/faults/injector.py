"""Fault-injection layer: the simulated disturbance node.

The paper's validation (Sec. 8) uses a physical *disturbance node* that
injects electrical spikes, random noise and periods of silence on the
bus.  Because the diagnostic protocol "does not discriminate between
node and link faults", a fault in a node can be emulated by corrupting
or dropping a message it sends — which is exactly what this layer does,
deterministically, at the moment a frame is transmitted.

:class:`InjectionLayer` holds an ordered list of *scenarios*.  When the
bus transmits a frame it asks the layer for the per-receiver outcomes;
each scenario may contribute a :class:`~repro.faults.model.FaultDirective`
and overlapping directives are composed receiver-wise with
:func:`~repro.faults.model.worst_outcome` (a detectable corruption
dominates a malicious one dominates a clean reception).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Protocol, Sequence, Tuple

from ..tt.timebase import TimeBase
from .model import FaultDirective, ReceptionOutcome, worst_outcome


@dataclass(frozen=True)
class TransmissionContext:
    """Everything a scenario may condition its directives on."""

    time: float
    round_index: int
    slot: int
    sender: int
    receivers: Tuple[int, ...]
    channel: int
    timebase: TimeBase


class Scenario(Protocol):
    """A source of fault directives.

    Implementations return the directives affecting one transmission
    (usually zero or one).  Scenarios must be deterministic functions of
    the context and of their own (seeded) random stream.

    Scenarios may additionally expose an optional probe
    ``is_quiescent(round_index, slot, timebase) -> bool`` returning True
    iff ``directives`` is guaranteed to yield nothing for that slot (on
    any channel).  The bus fast path uses the probe to batch fault-free
    slots; scenarios without it are conservatively treated as active.
    Probes of stochastic scenarios must perform exactly the sampling
    their ``directives`` would, so fast- and slow-path executions
    consume identical RNG draws.
    """

    def directives(self, ctx: TransmissionContext) -> Iterable[FaultDirective]:
        """Directives affecting the transmission described by ``ctx``."""
        ...  # pragma: no cover - protocol definition


@dataclass
class InjectedOutcome:
    """Composed result of injection for one transmission on one channel."""

    #: Per-receiver outcome.
    outcomes: Dict[int, ReceptionOutcome]
    #: Forged payload if any receiver's outcome is MALICIOUS.
    malicious_payload: Any
    #: Causes of the directives that actually applied (for traces).
    causes: Tuple[str, ...]

    @property
    def clean(self) -> bool:
        """True iff no receiver was affected."""
        return all(o is ReceptionOutcome.OK for o in self.outcomes.values())


class InjectionLayer:
    """Composes scenario directives into per-receiver outcomes."""

    def __init__(self) -> None:
        self._scenarios: List[Scenario] = []

    def add(self, scenario: Scenario) -> None:
        """Register a scenario (kept for the simulation's lifetime)."""
        self._scenarios.append(scenario)

    def remove(self, scenario: Scenario) -> None:
        """Unregister a scenario."""
        self._scenarios.remove(scenario)

    @property
    def scenarios(self) -> Sequence[Scenario]:
        return tuple(self._scenarios)

    def is_quiescent(self, round_index: int, slot: int,
                     timebase: TimeBase) -> bool:
        """True iff no scenario can affect this slot's transmission.

        This is the bus fast path's gate: a quiescent slot has a known
        all-OK outcome on every channel, so the per-channel
        :meth:`apply` calls (and the per-receiver composition) can be
        skipped entirely.  A scenario that does not implement the
        optional ``is_quiescent`` probe is conservatively treated as
        active.  The probe short-circuits on the first active scenario;
        that is safe for RNG equivalence because the slow-path
        :meth:`apply` that follows still queries every scenario for the
        same (round, slot), and stochastic scenarios memoise their
        draws per key.
        """
        for scenario in self._scenarios:
            probe = getattr(scenario, "is_quiescent", None)
            if probe is None or not probe(round_index, slot, timebase):
                return False
        return True

    def apply(self, ctx: TransmissionContext) -> InjectedOutcome:
        """Compute the injected outcome for one transmission.

        The sender is treated as a receiver of its own frame (the local
        collision detector reads the bus back), so ``ctx.receivers``
        normally includes the sender.
        """
        outcomes: Dict[int, ReceptionOutcome] = {
            r: ReceptionOutcome.OK for r in ctx.receivers
        }
        malicious_payload: Any = None
        causes: List[str] = []
        for scenario in self._scenarios:
            for directive in scenario.directives(ctx):
                if directive.channel is not None and directive.channel != ctx.channel:
                    continue
                causes.append(directive.cause)
                if directive.is_malicious:
                    malicious_payload = directive.malicious_payload
                for receiver in ctx.receivers:
                    outcomes[receiver] = worst_outcome(
                        outcomes[receiver], directive.outcome_for(receiver))
        # A malicious payload only matters for receivers that still see
        # the frame as valid-but-wrong after composition.
        if not any(o is ReceptionOutcome.MALICIOUS for o in outcomes.values()):
            malicious_payload = None
        return InjectedOutcome(outcomes=outcomes,
                               malicious_payload=malicious_payload,
                               causes=tuple(causes))


__all__ = [
    "TransmissionContext",
    "Scenario",
    "InjectedOutcome",
    "InjectionLayer",
]
