"""Named campaign definitions: the paper's sweeps as campaign inputs.

A :class:`CampaignDefinition` bundles what the engine needs (ordered,
labelled specs), what reports need (the semantic parameters), and what
humans need (an ``aggregate`` over task-order results plus a ``render``
to text).  The pre-built sweeps in :mod:`repro.runner.sweep` and the
``repro-diag campaign`` CLI both build these — the enumeration logic
lives here exactly once.

:func:`result_document` serializes a finished campaign into the stable
JSON document the CLI's ``--out`` writes: per-task results through the
store codec plus the task-order merged metrics snapshot, with no
execution details (worker counts, cache hits, timings) — so the file
is byte-identical across ``--jobs`` values, across cold/warm caches,
and across kill/resume cycles.  That file *is* the acceptance check
for the checkpoint/resume path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from ..results.render import render_ascii
from ..results.tables import Column, SeriesSpec, TableSpec
from ..runner.pool import TaskError
from ..spec import RunSpec
from ..store.result_store import encode_value
from .engine import CampaignResult

#: Schema tag of the ``campaign run --out`` document.  ``/2`` embeds
#: the campaign's built tables so the document is self-describing;
#: readers accept both tags (``/1`` documents simply carry no tables).
CAMPAIGN_RESULT_SCHEMA = "repro-campaign-result/2"

#: Document schema tags the results pipeline accepts.
COMPATIBLE_RESULT_SCHEMAS = ("repro-campaign-result/1",
                             "repro-campaign-result/2")


@dataclass(frozen=True)
class CampaignDefinition:
    """One named campaign: labelled specs plus aggregation/rendering."""

    name: str
    labeled_specs: List[Tuple[str, RunSpec]]
    #: Semantic parameters only (seeds, sizes, reps) — never worker
    #: counts — so reports derived from them stay byte-diffable.
    params: Dict[str, Any]
    #: Task-order results -> aggregate value.
    aggregate: Callable[[List[Any]], Any]
    #: Declarative tables over the aggregate (may be empty for ad-hoc
    #: spec-file campaigns, which fall back to ``str()`` per result).
    tables: Tuple[TableSpec, ...] = ()
    #: Declarative plot series over the aggregate.
    series: Tuple[SeriesSpec, ...] = ()

    def build_tables(self, value: Any) -> List[Any]:
        """Materialise every declared table against one aggregate."""
        return [spec.build(value) for spec in self.tables]

    def render(self, value: Any) -> str:
        """Aggregate value -> human-readable text (ASCII tables)."""
        if not self.tables:
            return "\n".join(str(result) for result in value)
        return "\n\n".join(render_ascii(table)
                           for table in self.build_tables(value))


def validation_campaign(repetitions: int = 5,
                        n_nodes: int = 4) -> CampaignDefinition:
    """The Sec. 8 fault-injection campaign as a campaign definition."""
    from ..experiments.validation import (
        VALIDATION_TABLE,
        CampaignSummary,
        validation_specs,
    )

    labeled = validation_specs(repetitions, n_nodes)

    def aggregate(results: List[Any]) -> "CampaignSummary":
        summary = CampaignSummary()
        for (cls, _spec), result in zip(labeled, results):
            summary.add(cls, result.passed)
        return summary

    return CampaignDefinition(
        name="validate", labeled_specs=labeled,
        params={"reps": repetitions, "nodes": n_nodes},
        aggregate=aggregate, tables=(VALIDATION_TABLE,))


def table2_campaign(seed: int = 0,
                    round_length: float = None) -> CampaignDefinition:
    """The Sec. 9 tuning experiment as a campaign definition."""
    from ..core.config import (
        AEROSPACE_TOLERATED_OUTAGE,
        AUTOMOTIVE_TOLERATED_OUTAGE,
        PAPER_REWARD_THRESHOLD,
    )
    from ..experiments.table2 import (
        TABLE2_TABLE,
        Table2Row,
        penalty_budget_spec,
    )
    from ..tt.cluster import PAPER_ROUND_LENGTH

    if round_length is None:
        round_length = PAPER_ROUND_LENGTH
    domains = (("Automotive", AUTOMOTIVE_TOLERATED_OUTAGE),
               ("Aerospace", AEROSPACE_TOLERATED_OUTAGE))
    labeled: List[Tuple[str, RunSpec]] = []
    keys: List[Tuple[str, Any, float]] = []
    for domain, outages in domains:
        for cls, outage in outages.items():
            keys.append((domain, cls, outage))
            labeled.append((
                f"{domain}:{cls.name}",
                penalty_budget_spec(outage, seed=seed,
                                    round_length=round_length)))

    def aggregate(results: List[Any]) -> List["Table2Row"]:
        measured = {(domain, cls): budget
                    for (domain, cls, _outage), budget in
                    zip(keys, results)}
        rows: List[Table2Row] = []
        for domain, outages in domains:
            penalty_threshold = max(measured[(domain, cls)]
                                    for cls in outages)
            for cls, outage in outages.items():
                budget = measured[(domain, cls)]
                rows.append(Table2Row(
                    domain=domain,
                    criticality_class=cls,
                    tolerated_outage=outage,
                    measured_budget=budget,
                    criticality=math.ceil(penalty_threshold / budget),
                    penalty_threshold=penalty_threshold,
                    reward_threshold=PAPER_REWARD_THRESHOLD,
                    round_length=round_length,
                ))
        return rows

    return CampaignDefinition(
        name="table2", labeled_specs=labeled,
        params={"seed": seed, "round_length": round_length},
        aggregate=aggregate, tables=(TABLE2_TABLE,))


#: Gilbert-Elliott good->bad rates swept by the rare-events campaign.
RARE_EVENT_RATES = (0.02, 0.05, 0.1)

#: The rare-events aggregate — ``[(rate, MonteCarloEstimate), ...]`` —
#: as a declarative table.
RARE_EVENTS_TABLE = TableSpec(
    name="rare-events",
    title="False-alarm probability under Gilbert-Elliott bursts",
    columns=(
        Column("p_gb", lambda row: f"{row[0]:g}"),
        Column("replicates", lambda row: row[1].trials),
        Column("false-alarm p", lambda row: f"{row[1].p_hat:.3f}"),
        Column("95% CI",
               lambda row: f"[{row[1].ci_low:.3f}, {row[1].ci_high:.3f}]"),
    ),
)

#: The same aggregate as a plot: the estimate with its CI envelope.
RARE_EVENTS_SERIES = SeriesSpec(
    name="rare-events",
    title="False-alarm probability under Gilbert-Elliott bursts",
    x_label="good->bad rate p_gb",
    y_label="false-alarm probability",
    curves=lambda curve: {
        "p_hat": [(rate, est.p_hat) for rate, est in curve],
        "95% CI low": [(rate, est.ci_low) for rate, est in curve],
        "95% CI high": [(rate, est.ci_high) for rate, est in curve],
    },
)


def rare_events_campaign(replicates: int = 5, n_nodes: int = 4,
                         seed: int = 0) -> CampaignDefinition:
    """False-alarm estimation under Gilbert-Elliott bursty channels.

    For each good->bad rate the campaign runs ``replicates``
    seed-shifted runs of an all-healthy cluster behind a bursty
    channel and estimates the probability that the protocol *falsely*
    isolates any node, with a Wilson confidence interval per rate
    (:mod:`repro.analysis.rare`).  Every task is an ordinary RunSpec
    with the ``"isolation"`` reducer, so the campaign store caches
    replicates by content address like any other campaign.
    """
    from ..analysis.rare import MonteCarloEstimate, estimate_probability
    from ..spec import ClusterSpec, ProtocolSpec, ScenarioSpec

    protocol = ProtocolSpec(
        n_nodes=n_nodes, penalty_threshold=2, reward_threshold=5,
        criticalities=(1,) * n_nodes)
    labeled: List[Tuple[str, RunSpec]] = []
    for rate in RARE_EVENT_RATES:
        for i in range(replicates):
            spec = RunSpec(
                protocol=protocol,
                cluster=ClusterSpec(seed=seed + i, trace_level=1),
                scenarios=(ScenarioSpec("GilbertElliottChannel", {
                    "p_gb": rate, "p_bg": 0.5,
                    "error_good": 0.0, "error_bad": 1.0,
                    "rng_stream": "rare-ge"}),),
                n_rounds=20,
                reducer="isolation",
            )
            labeled.append((f"p_gb={rate}:replicate-{i}", spec))

    def aggregate(results: List[Any]
                  ) -> List[Tuple[float, "MonteCarloEstimate"]]:
        curve = []
        for j, rate in enumerate(RARE_EVENT_RATES):
            chunk = results[j * replicates:(j + 1) * replicates]
            hits = sum(bool(r["isolated"]) for r in chunk)
            curve.append((rate, estimate_probability(hits, replicates)))
        return curve

    return CampaignDefinition(
        name="rare-events", labeled_specs=labeled,
        params={"reps": replicates, "nodes": n_nodes, "seed": seed},
        aggregate=aggregate, tables=(RARE_EVENTS_TABLE,),
        series=(RARE_EVENTS_SERIES,))


def spec_file_campaign(path: str, text: str) -> CampaignDefinition:
    """An ad-hoc campaign from a RunSpec JSON file (object or array)."""
    import json

    data = json.loads(text)
    spec_dicts = data if isinstance(data, list) else [data]
    labeled = []
    for spec_dict in spec_dicts:
        spec = RunSpec.from_dict(spec_dict)
        labeled.append((spec.digest(), spec))

    def aggregate(results: List[Any]) -> List[Any]:
        return results

    return CampaignDefinition(
        name="spec-file", labeled_specs=labeled,
        params={"specs": len(labeled)},
        aggregate=aggregate)


#: Campaigns addressable by name from the CLI.
NAMED_CAMPAIGNS = ("validate", "table2", "rare-events")


def build_campaign(name: str, reps: int = 5, nodes: int = 4,
                   seed: int = 0) -> CampaignDefinition:
    """Build a named campaign with its CLI-facing knobs."""
    if name == "validate":
        return validation_campaign(repetitions=reps, n_nodes=nodes)
    if name == "table2":
        return table2_campaign(seed=seed)
    if name == "rare-events":
        return rare_events_campaign(replicates=reps, n_nodes=nodes,
                                    seed=seed)
    raise ValueError(
        f"unknown campaign {name!r}; named campaigns: {NAMED_CAMPAIGNS}")


def definition_for_params(name: str,
                          params: Dict[str, Any]) -> CampaignDefinition:
    """Rebuild a named campaign from a result document's ``params``.

    This is the results pipeline's compat path for ``/1`` documents
    (and the digest-keyed diff's source of per-label specs): the params
    dict is exactly what :func:`result_document` wrote, so the rebuilt
    definition enumerates the same labels in the same order.
    """
    if name == "validate":
        return validation_campaign(repetitions=params["reps"],
                                   n_nodes=params["nodes"])
    if name == "table2":
        return table2_campaign(seed=params["seed"],
                               round_length=params["round_length"])
    if name == "rare-events":
        return rare_events_campaign(replicates=params["reps"],
                                    n_nodes=params["nodes"],
                                    seed=params["seed"])
    raise ValueError(
        f"cannot rebuild campaign {name!r} from params; "
        f"named campaigns: {NAMED_CAMPAIGNS}")


def result_document(definition: CampaignDefinition,
                    result: CampaignResult) -> Dict[str, Any]:
    """The deterministic ``--out`` document for a finished campaign.

    Execution details (jobs, hit counts, retry counts) are deliberately
    absent; see the module docstring.  When the definition declares
    tables and every task succeeded, the built tables are embedded
    (schema ``/2``) so the document renders without re-running
    aggregation code — the self-describing form the future HTTP
    service will hand out.
    """
    tasks = []
    failed = False
    for task, value in zip(result.tasks, result.results):
        entry: Dict[str, Any] = {"label": task.label,
                                 "digest": task.spec.digest(),
                                 "key": task.key}
        if isinstance(value, TaskError):
            entry["error"] = {"type": value.error_type,
                              "message": value.message,
                              "timed_out": value.timed_out}
            failed = True
        else:
            enc, payload = encode_value(value)
            entry["result"] = {"enc": enc, "payload": payload}
        tasks.append(entry)
    document = {
        "schema": CAMPAIGN_RESULT_SCHEMA,
        "campaign": definition.name,
        "params": dict(definition.params),
        "tasks": tasks,
        "metrics": result.merged_snapshot(),
    }
    if definition.tables and not failed:
        value = definition.aggregate(result.results)
        document["tables"] = [t.to_dict()
                              for t in definition.build_tables(value)]
    return document


__all__ = [
    "CAMPAIGN_RESULT_SCHEMA",
    "COMPATIBLE_RESULT_SCHEMAS",
    "NAMED_CAMPAIGNS",
    "RARE_EVENTS_SERIES",
    "RARE_EVENTS_TABLE",
    "RARE_EVENT_RATES",
    "CampaignDefinition",
    "build_campaign",
    "definition_for_params",
    "rare_events_campaign",
    "result_document",
    "spec_file_campaign",
    "table2_campaign",
    "validation_campaign",
]
