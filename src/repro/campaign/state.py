"""Campaign checkpoint state: tiny, atomic, resume-validating.

The heavy lifting of checkpointing is the result store itself — every
completed task's payload is committed there individually, so a killed
campaign loses at most the in-flight chunk.  What this module adds is
the small state file that makes resumption *safe and observable*:

* the campaign's identity (a digest over its ordered store keys), so
  ``--resume`` can refuse to continue a *different* campaign into the
  same state slot;
* progress counters and a status (``running`` / ``completed`` /
  ``failed``), which is what ``repro-diag campaign status`` renders;
* atomic persistence (write temp + ``os.replace``), so a SIGKILL
  during a checkpoint leaves the previous consistent state.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Iterable, List, Optional

#: Schema tag for campaign state files; bump on layout changes.
CAMPAIGN_STATE_SCHEMA = "repro-campaign-state/1"

_STATUSES = ("running", "completed", "failed")


def campaign_id(keys: Iterable[str]) -> str:
    """Stable identity of a campaign: sha256 over its ordered keys."""
    digest = hashlib.sha256()
    for key in keys:
        digest.update(key.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()[:16]


@dataclass
class CampaignState:
    """One campaign's checkpoint record (JSON on disk)."""

    campaign_id: str
    name: str
    total: int
    completed: int = 0
    failed: int = 0
    status: str = "running"
    updated: float = 0.0
    errors: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise ValueError(
                f"status must be one of {_STATUSES}, got {self.status!r}")

    def to_dict(self) -> dict:
        """JSON-native form, schema-tagged."""
        data = asdict(self)
        data["schema"] = CAMPAIGN_STATE_SCHEMA
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignState":
        """Rebuild a state from :meth:`to_dict` output."""
        data = dict(data)
        schema = data.pop("schema", CAMPAIGN_STATE_SCHEMA)
        if schema != CAMPAIGN_STATE_SCHEMA:
            raise ValueError(
                f"unsupported campaign state schema {schema!r} "
                f"(this build reads {CAMPAIGN_STATE_SCHEMA!r})")
        return cls(**data)

    def save(self, path: str) -> None:
        """Atomically persist the state (temp file + rename)."""
        self.updated = time.time()
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, sort_keys=True, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> Optional["CampaignState"]:
        """The state at ``path``, or None if absent/unreadable.

        An unreadable state file is treated like a missing one — the
        store still holds every committed result, so the worst case is
        re-checking the store for each task.
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return cls.from_dict(json.load(fh))
        except (OSError, ValueError, TypeError):
            return None


def load_all_states(campaign_dir: str) -> List[CampaignState]:
    """Every readable campaign state under ``campaign_dir``."""
    states = []
    try:
        names = sorted(os.listdir(campaign_dir))
    except OSError:
        return states
    for name in names:
        if not name.endswith(".json"):
            continue
        state = CampaignState.load(os.path.join(campaign_dir, name))
        if state is not None:
            states.append(state)
    return states


__all__ = [
    "CAMPAIGN_STATE_SCHEMA",
    "CampaignState",
    "campaign_id",
    "load_all_states",
]
