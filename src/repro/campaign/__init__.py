"""Persistent campaigns: store-first, resumable, fault-tolerant sweeps.

This package turns a list of :class:`~repro.spec.RunSpec` values into
a production-grade campaign run::

    from repro.campaign import run_campaign, validation_campaign
    from repro.store import ResultStore

    definition = validation_campaign(repetitions=100)
    with ResultStore("/var/cache/repro") as store:
        result = run_campaign(definition.labeled_specs, store=store,
                              jobs=8, task_timeout=300.0)
    result.raise_first_error()
    print(definition.render(definition.aggregate(result.results)))

* :mod:`repro.campaign.engine` — the engine: consult the store first,
  dispatch only misses, checkpoint completed chunks, retry failures
  with bounded backoff, enforce per-task deadlines;
* :mod:`repro.campaign.state` — the atomic checkpoint state file
  behind ``--resume`` and ``campaign status``;
* :mod:`repro.campaign.definitions` — the paper's sweeps as named
  campaign definitions, plus the deterministic result document.

The CLI surface is ``repro-diag campaign run|status|gc``.
"""

from .definitions import (
    CAMPAIGN_RESULT_SCHEMA,
    COMPATIBLE_RESULT_SCHEMAS,
    NAMED_CAMPAIGNS,
    RARE_EVENT_RATES,
    CampaignDefinition,
    build_campaign,
    definition_for_params,
    rare_events_campaign,
    result_document,
    spec_file_campaign,
    table2_campaign,
    validation_campaign,
)
from .engine import (
    CampaignFailedError,
    CampaignResult,
    CampaignTask,
    InterruptedCampaignError,
    TaskTimeout,
    campaign_tasks,
    execute_spec_task,
    run_campaign,
)
from .state import CampaignState, campaign_id, load_all_states

__all__ = [
    "CAMPAIGN_RESULT_SCHEMA",
    "COMPATIBLE_RESULT_SCHEMAS",
    "NAMED_CAMPAIGNS",
    "CampaignDefinition",
    "CampaignFailedError",
    "CampaignResult",
    "CampaignState",
    "CampaignTask",
    "InterruptedCampaignError",
    "RARE_EVENT_RATES",
    "TaskTimeout",
    "build_campaign",
    "definition_for_params",
    "rare_events_campaign",
    "campaign_id",
    "campaign_tasks",
    "execute_spec_task",
    "load_all_states",
    "result_document",
    "run_campaign",
    "spec_file_campaign",
    "table2_campaign",
    "validation_campaign",
]
