"""The campaign engine: store-first, checkpointed, fault-tolerant runs.

A *campaign* is an ordered list of :class:`~repro.spec.RunSpec` values
(Monte Carlo repetitions, tuning grids, regression suites) whose
results aggregate into one artefact.  :func:`run_campaign` executes a
campaign with three guarantees the bare sweep layer never had:

1. **Store-first execution.**  Every task's content address
   (:func:`repro.store.store_key`) is consulted against a
   :class:`~repro.store.ResultStore` before any work is dispatched;
   hits replay the cached result *and* its metrics snapshot, so a
   fully-warm campaign is pure index lookups and its merged metrics
   are byte-identical to an uncached ``jobs=1`` run.
2. **Checkpoint/resume.**  Completed tasks are committed to the store
   *as each one finishes* — streaming commits bound what a SIGKILL can
   lose to the tasks in flight at that instant, never a whole chunk —
   and a tiny atomic state file (:mod:`repro.campaign.state`) tracks
   progress.  A campaign killed mid-flight resumes with
   ``resume=True`` (CLI ``--resume``), re-runs only what the store is
   missing, and produces the same bytes as an uninterrupted run.
3. **Fault tolerance.**  Workers run with an optional per-task
   deadline (SIGALRM inside the worker, so a hung task cannot wedge
   the sweep), failures surface as structured
   :class:`~repro.runner.pool.TaskError` values, and a failed task
   re-enters the **live** dispatch queue with bounded exponential
   backoff — no retry round barrier, siblings keep streaming.  A task
   that keeps failing ends up as a ``TaskError`` in its result slot —
   the rest of the campaign completes regardless.

Dispatch goes through a pluggable streaming backend
(:mod:`repro.runner.backends`): a **persistent** local process pool
by default (workers forked once for the whole campaign, results
consumed via ``as_completed``), work-stealing multi-pool and
remote-stub multi-host backends behind the same interface
(``dispatch="pool" | "multipool" | "remote-stub"`` or any
:class:`~repro.runner.backends.DispatchBackend` instance).

Determinism contract: results and snapshots are merged in task order
(every completion lands in its task-index slot, whatever order and
whichever backend delivered it), cache hits replay exactly what
execution produced, and the engine's own bookkeeping (``store.*`` /
``campaign.*`` / ``dispatch.*`` counters on the *engine* registry)
never leaks into the merged run metrics — the merged snapshot is
byte-identical across backends and job counts.
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..obs.registry import NULL_REGISTRY, empty_snapshot, merge_snapshots
from ..runner.backends import DispatchBackend, WorkItem, make_backend
from ..runner.pool import TaskError
from ..spec import RunSpec, run_spec_dict
from ..store import ResultStore, store_key
from .state import CampaignState, campaign_id

#: Default number of re-dispatch rounds for failed tasks.
DEFAULT_RETRIES = 2
#: First retry delay in seconds; doubles per round, capped below.
DEFAULT_BACKOFF = 0.25
DEFAULT_MAX_BACKOFF = 2.0


class TaskTimeout(TimeoutError):
    """A worker task exceeded its per-task deadline."""


class InterruptedCampaignError(RuntimeError):
    """An unfinished checkpoint exists and ``resume`` was not requested."""


class CampaignFailedError(RuntimeError):
    """Raised by :meth:`CampaignResult.raise_first_error` on failures."""


@contextmanager
def _deadline(seconds: Optional[float]):
    """Raise :class:`TaskTimeout` if the body runs longer than ``seconds``.

    Implemented with ``SIGALRM`` so a wedged simulation is interrupted
    *inside the worker* instead of blocking the whole pool; silently a
    no-op off POSIX or outside the main thread (the pool runs tasks in
    worker main threads, so the guard holds where it matters).
    """
    if not seconds or seconds <= 0 or os.name != "posix" \
            or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _expired(signum, frame):
        raise TaskTimeout(f"task exceeded the {seconds:g}s deadline")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_spec_task(spec_dict: dict,
                      timeout: Optional[float] = None) -> Tuple[Any, dict]:
    """The campaign pool worker: one metered spec run under a deadline.

    Always collects metrics — the snapshot is cached alongside the
    result so warm campaigns replay observability byte-identically.
    """
    with _deadline(timeout):
        return run_spec_dict(spec_dict, collect_metrics=True)


def execute_batch_task(spec_dict: dict, seeds: List[int],
                       timeout: Optional[float] = None
                       ) -> List[Tuple[Any, dict]]:
    """Pool worker for a vectorized replicate batch under one deadline.

    One kernel execution simulates every seed in lockstep; the return
    value is one ``(result, snapshot)`` pair per seed, each exactly
    what :func:`execute_spec_task` would produce for the seed-shifted
    spec — so batched and per-task dispatch fill the store with the
    same bytes.
    """
    with _deadline(timeout):
        from ..vec import execute_batch

        spec = RunSpec.from_dict(spec_dict)
        return execute_batch(spec, seeds=seeds, collect_metrics=True)


def _replicate_groups(tasks: List["CampaignTask"],
                      pending: List[int]) -> List[List[int]]:
    """Pending vectorized tasks grouped into replicate batches.

    Two tasks batch together when their specs are identical except for
    ``cluster.seed`` — the Monte Carlo shape.  Only groups of at least
    two are returned (singletons go through the ordinary per-task
    worker); each group keeps task order, so results commit in the same
    order either way.
    """
    groups: Dict[str, List[int]] = {}
    for index in pending:
        spec = tasks[index].spec
        if spec.backend != "vectorized":
            continue
        data = spec.to_dict()
        data["cluster"] = dict(data["cluster"])
        data["cluster"].pop("seed", None)
        groups.setdefault(json.dumps(data, sort_keys=True), []).append(index)
    return [group for group in groups.values() if len(group) > 1]


@dataclass(frozen=True)
class CampaignTask:
    """One campaign slot: display label, spec, and its store key."""

    label: str
    spec: RunSpec
    key: str


@dataclass
class CampaignResult:
    """Everything a finished (or partially failed) campaign produced."""

    name: str
    tasks: List[CampaignTask]
    #: Per-task reducer results in task order; a slot holds a
    #: :class:`TaskError` when the task exhausted its retries.
    results: List[Any]
    #: Per-task metrics snapshots in task order (empty for failures).
    snapshots: List[dict]
    hits: int = 0
    misses: int = 0
    #: Total task re-dispatches across all retry rounds.
    retried: int = 0

    @property
    def errors(self) -> List[TaskError]:
        return [r for r in self.results if isinstance(r, TaskError)]

    @property
    def ok(self) -> bool:
        return not self.errors

    def merged_snapshot(self) -> dict:
        """Task-order merge of every per-task metrics snapshot."""
        return merge_snapshots(self.snapshots)

    def raise_first_error(self) -> None:
        """Raise if any task failed (for callers without partial-failure
        handling, e.g. the plain sweeps)."""
        errors = self.errors
        if errors:
            first = errors[0]
            raise CampaignFailedError(
                f"{len(errors)} campaign task(s) failed; first: "
                f"task {first.index} [{self.tasks[first.index].label}] "
                f"{first.error_type}: {first.message}")


SpecsInput = Iterable[Union[RunSpec, Tuple[str, RunSpec]]]


def campaign_tasks(specs: SpecsInput) -> List[CampaignTask]:
    """Normalise an iterable of specs / ``(label, spec)`` pairs."""
    tasks = []
    for item in specs:
        if isinstance(item, RunSpec):
            label, spec = item.digest(), item
        else:
            label, spec = item
        tasks.append(CampaignTask(label=label, spec=spec,
                                  key=store_key(spec)))
    return tasks


def _valid_payload(payload: Any) -> bool:
    return (isinstance(payload, dict)
            and "result" in payload and "snapshot" in payload)


def run_campaign(specs: SpecsInput,
                 name: str = "campaign",
                 store: Optional[ResultStore] = None,
                 jobs: int = 1,
                 retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF,
                 max_backoff: float = DEFAULT_MAX_BACKOFF,
                 task_timeout: Optional[float] = None,
                 chunk_size: Optional[int] = None,
                 resume: bool = False,
                 state_path: Optional[str] = None,
                 metrics=NULL_REGISTRY,
                 sleep: Callable[[float], None] = time.sleep,
                 dispatch: Union[str, DispatchBackend] = "pool",
                 progress: Optional[Callable[[dict], None]] = None
                 ) -> CampaignResult:
    """Run a campaign store-first with streaming commits and retries.

    Without a ``store`` this degrades to a deterministic retrying sweep
    (no persistence, no state file) — the mode the thin
    :mod:`repro.runner.sweep` wrappers use.  With one, every completed
    task is committed and checkpointed as it finishes, so a SIGKILL
    loses at most the in-flight tasks; ``resume=True`` is required to
    continue a campaign whose state file says it never finished (so an
    accidental re-launch cannot silently double-run a half-done
    campaign).

    ``dispatch`` selects the streaming backend: ``"pool"`` (one
    persistent process pool, the default), ``"multipool"``
    (work-stealing pools), ``"remote-stub"`` (subprocess hosts over
    JSONL pipes), or a ready-made
    :class:`~repro.runner.backends.DispatchBackend` instance, which
    the caller keeps ownership of.  Results, aggregates and the merged
    metrics snapshot are byte-identical across all of them and across
    every ``jobs`` value.  ``chunk_size`` is retained for backward
    compatibility and ignored: commits stream per task now.

    ``progress`` is an optional callback receiving small structured
    event dicts as the campaign advances — ``{"kind": "plan"}`` after
    store consultation, ``{"kind": "task"}`` per committed task,
    ``{"kind": "retry"}`` per re-dispatch, ``{"kind": "task_failed"}``
    per exhausted task and ``{"kind": "finished"}`` at the end.  The
    HTTP service streams these to SSE subscribers; ``None`` costs
    nothing.  Callbacks run on the engine thread in commit order, so a
    recording observer sees the exact sequence results landed in.
    """
    del chunk_size  # legacy knob: streaming commits replaced chunks

    def _notify(event: dict) -> None:
        if progress is not None:
            progress(event)

    tasks = campaign_tasks(specs)
    total = len(tasks)
    metrics.counter("campaign.tasks").inc(total)
    if not tasks:
        # A zero-task campaign is complete by definition: nothing to
        # consult, dispatch, or checkpoint — and no state file, so a
        # later non-empty campaign cannot trip over a stale one.
        return CampaignResult(name=name, tasks=[], results=[],
                              snapshots=[])
    results: List[Any] = [None] * total
    snapshots: List[dict] = [empty_snapshot() for _ in range(total)]

    # -- store consultation (the resume path is exactly this) ----------
    cached: Dict[str, Any] = {}
    if store is not None:
        cached = store.get_many([task.key for task in tasks])
    pending: List[int] = []
    done: set = set()
    hits = 0
    for index, task in enumerate(tasks):
        payload = cached.get(task.key)
        if payload is not None and _valid_payload(payload):
            results[index] = payload["result"]
            snapshots[index] = payload["snapshot"]
            done.add(index)
            hits += 1
        else:
            pending.append(index)
    misses = len(pending)
    _notify({"kind": "plan", "total": total, "hits": hits,
             "misses": misses})

    # -- checkpoint state ----------------------------------------------
    state: Optional[CampaignState] = None
    if store is not None:
        cid = campaign_id(task.key for task in tasks)
        if state_path is None:
            state_path = os.path.join(store.campaign_dir, cid + ".json")
        existing = CampaignState.load(state_path)
        if existing is not None and existing.campaign_id == cid \
                and existing.status == "running" and not resume:
            raise InterruptedCampaignError(
                f"campaign {cid} has an unfinished checkpoint at "
                f"{state_path} ({existing.completed}/{existing.total} "
                f"done); pass resume=True / --resume to continue it")
        state = CampaignState(campaign_id=cid, name=name, total=total,
                              completed=hits)
        state.save(state_path)

    def _checkpoint() -> None:
        if state is not None:
            state.completed = len(done)
            state.save(state_path)

    # -- dispatch misses through a streaming backend -------------------
    # Each completion commits (store + checkpoint) the moment it
    # arrives; failed tasks re-enter the live queue with per-task
    # exponential backoff instead of waiting for a retry round.
    failures: Dict[int, TaskError] = {}
    attempts: Dict[int, int] = {index: 0 for index in pending}
    retried = 0
    owns_backend = not isinstance(dispatch, DispatchBackend)
    backend = make_backend(dispatch, jobs=jobs, metrics=metrics)
    metrics.counter(f"dispatch.backend.{backend.name}").inc()

    item_ids = itertools.count()
    item_members: Dict[int, List[int]] = {}

    def _commit(index: int, result: Any, snapshot: dict) -> None:
        results[index] = result
        snapshots[index] = snapshot
        done.add(index)
        _notify({"kind": "task", "index": index,
                 "label": tasks[index].label,
                 "completed": len(done), "total": total})

    def _payload(index: int) -> dict:
        return {"result": results[index], "snapshot": snapshots[index]}

    def _submit_spec(index: int) -> None:
        item = WorkItem(item_id=next(item_ids), kind="spec",
                        spec=tasks[index].spec.to_dict(),
                        timeout=task_timeout,
                        affinity=tasks[index].key)
        item_members[item.item_id] = [index]
        metrics.counter("campaign.dispatched").inc()
        backend.submit(item)

    def _submit_batch(group: List[int]) -> None:
        # Payload dedup: the whole replicate group ships one spec dict
        # plus its seed list — one kernel execution in the worker.
        item = WorkItem(item_id=next(item_ids), kind="batch",
                        spec=tasks[group[0]].spec.to_dict(),
                        seeds=[tasks[i].spec.cluster.seed for i in group],
                        timeout=task_timeout,
                        affinity=tasks[group[0]].key)
        item_members[item.item_id] = list(group)
        metrics.counter("campaign.dispatched").inc(len(group))
        metrics.counter("campaign.batches").inc()
        backend.submit(item)

    def _register_failure(members: List[int],
                          error: TaskError) -> List[int]:
        """Book one failed attempt per member; return who retries."""
        retryable = []
        for index in members:
            attempts[index] += 1
            metrics.counter("campaign.task_errors").inc()
            if error.timed_out:
                metrics.counter("campaign.timeouts").inc()
            if attempts[index] <= retries:
                retryable.append(index)
            else:
                failures[index] = replace(error, index=index)
        return retryable

    try:
        # Vectorized Monte Carlo misses dispatch as whole replicate
        # batches: one work item (and one kernel execution) per group
        # of specs identical up to cluster.seed.
        groups = _replicate_groups(tasks, pending)
        grouped = {index for group in groups for index in group}
        for group in groups:
            _submit_batch(group)
        for index in pending:
            if index not in grouped:
                _submit_spec(index)

        for completion in backend.as_completed():
            members = item_members.pop(completion.item.item_id)
            if completion.error is None:
                if completion.item.kind == "batch":
                    for index, (result, snapshot) in zip(
                            members, completion.value):
                        _commit(index, result, snapshot)
                    if store is not None:
                        store.put_many((tasks[index].key, _payload(index))
                                       for index in members)
                else:
                    index = members[0]
                    result, snapshot = completion.value
                    _commit(index, result, snapshot)
                    if store is not None:
                        store.put(tasks[index].key, _payload(index))
                _checkpoint()
                continue
            # Failure: surviving attempts re-enter the live queue.  A
            # failed replicate batch falls back to per-task dispatch,
            # so one poisoned seed cannot fail the whole batch twice.
            retryable = _register_failure(members, completion.error)
            if retryable:
                retried += len(retryable)
                metrics.counter("campaign.retries").inc(len(retryable))
                sleep(min(backoff * (2 ** (attempts[retryable[0]] - 1)),
                          max_backoff))
                for index in retryable:
                    _notify({"kind": "retry", "index": index,
                             "attempt": attempts[index]})
                    _submit_spec(index)
    finally:
        if owns_backend:
            backend.close()

    # -- finalise ------------------------------------------------------
    for index in sorted(failures):
        results[index] = failures[index]
        metrics.counter("campaign.failed").inc()
        error = failures[index]
        _notify({"kind": "task_failed", "index": index,
                 "label": tasks[index].label,
                 "error_type": error.error_type,
                 "message": error.message,
                 "timed_out": error.timed_out})
    if state is not None:
        state.failed = len(failures)
        state.status = "failed" if failures else "completed"
        _checkpoint()
    _notify({"kind": "finished", "completed": len(done),
             "failed": len(failures), "hits": hits, "misses": misses,
             "retried": retried, "total": total})
    return CampaignResult(name=name, tasks=tasks, results=results,
                          snapshots=snapshots, hits=hits, misses=misses,
                          retried=retried)


__all__ = [
    "DEFAULT_BACKOFF",
    "DEFAULT_MAX_BACKOFF",
    "DEFAULT_RETRIES",
    "CampaignFailedError",
    "CampaignResult",
    "CampaignTask",
    "InterruptedCampaignError",
    "TaskTimeout",
    "campaign_tasks",
    "execute_batch_task",
    "execute_spec_task",
    "run_campaign",
]
