"""Command-line interface: regenerate the paper's experiments.

Installed as ``repro-diag``.  Subcommands map to the evaluation:

* ``repro-diag validate [--reps N]`` — the Sec. 8 fault-injection campaign;
* ``repro-diag table2``              — the Sec. 9 tuning experiment;
* ``repro-diag table4``              — abnormal-transient time-to-isolation;
* ``repro-diag figure3``             — the reward-threshold tradeoff;
* ``repro-diag demo``                — a small annotated cluster run;
* ``repro-diag stats``               — a metered run printing the online
  metrics report (works at trace level 0);
* ``repro-diag spec EXPERIMENT``     — emit an experiment's serialized
  :class:`~repro.spec.RunSpec` JSON (a single object or an array);
* ``repro-diag run PATH``            — execute RunSpec JSON from a file
  or stdin (``-``), e.g.
  ``repro-diag spec validate --reps 1 | repro-diag run -``;
* ``repro-diag campaign run SOURCE`` — run a named campaign
  (``validate``, ``table2``) or a RunSpec JSON file through the
  persistent campaign engine: results cached by content address in the
  store (``--store DIR``), checkpointed for ``--resume``, failed tasks
  retried with backoff under a per-task ``--task-timeout``;
* ``repro-diag campaign status``     — checkpoint states + store footprint;
* ``repro-diag campaign gc``         — evict old cache entries, compact
  the payload shards;
* ``repro-diag results render SOURCE`` — render a campaign ``--out``
  document (or a named campaign's cached store results) as ascii,
  markdown, latex, csv, html or json without re-running anything;
* ``repro-diag results diff A B``    — digest-keyed cross-campaign diff:
  cell-by-cell table comparison plus the diverging spec parameters
  behind every changed task digest;
* ``repro-diag results plot SOURCE`` — matplotlib plot emitters for the
  declared series (soft dependency: exits 2 with an actionable message
  when matplotlib is missing);
* ``repro-diag serve``               — the diagnosis-as-a-service HTTP
  job server (:mod:`repro.service`): POST RunSpec/campaign JSON to
  ``/v1/jobs``, identical submissions dedup onto one run by content
  address, progress streams as replayable SSE, results come back as
  the same documents ``campaign run --out`` writes.

``validate``, ``table2``, ``stats`` and ``run`` accept
``--metrics-out PATH`` to write a deterministic JSON run report (see
:mod:`repro.obs`): the file is byte-identical across repeated runs and
across ``--jobs`` values, so it can be diffed against a checked-in
golden copy.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from . import __version__
from .analysis.reporting import render_table


def _write_metrics_report(path: str, command: str, params: dict,
                          snapshot: dict) -> None:
    """Write a deterministic run report and confirm on stdout.

    ``params`` must stay semantic (seeds, sizes, reps) — never worker
    counts — so the file is byte-diffable across ``--jobs`` values.
    """
    from .obs import run_report, write_report

    write_report(path, run_report(command, params, snapshot))
    print(f"metrics report written to {path}")


def _cmd_validate(args: argparse.Namespace) -> int:
    from .experiments.validation import VALIDATION_TABLE
    from .results.render import render_ascii
    from .runner.sweep import run_validation_sweep

    if args.metrics_out:
        summary, snapshot = run_validation_sweep(
            repetitions=args.reps, jobs=args.jobs, with_metrics=True)
    else:
        summary = run_validation_sweep(repetitions=args.reps, jobs=args.jobs)
    print(render_ascii(VALIDATION_TABLE.build(summary)))
    if args.metrics_out:
        _write_metrics_report(args.metrics_out, "validate",
                              {"reps": args.reps}, snapshot)
    return 0 if summary.all_passed else 1


def _cmd_table2(args: argparse.Namespace) -> int:
    from .runner.sweep import run_table2_sweep

    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        table_rows, snapshot = run_table2_sweep(
            seed=args.seed, jobs=getattr(args, "jobs", 1), with_metrics=True)
    else:
        table_rows = run_table2_sweep(seed=args.seed,
                                      jobs=getattr(args, "jobs", 1))
    from .experiments.table2 import TABLE2_TABLE
    from .results.render import render_ascii

    print(render_ascii(TABLE2_TABLE.build(table_rows)))
    if metrics_out:
        _write_metrics_report(metrics_out, "table2",
                              {"seed": args.seed}, snapshot)
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    from .experiments.adverse import TABLE4_TABLE, table4
    from .results.render import render_ascii

    print(render_ascii(TABLE4_TABLE.build(table4(seed=args.seed))))
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    from .experiments.figure3 import (
        FIGURE3_TABLE,
        figure3_series,
        paper_choice_line,
    )
    from .results.render import render_ascii

    for series in figure3_series():
        print(render_ascii(FIGURE3_TABLE.build(series)))
        print()
    print(paper_choice_line())
    return 0


def _demo_spec(seed: int):
    """The demo run (4 nodes, 1-slot burst in round 5 / slot 2) as a spec."""
    from .core import uniform_config
    from .spec import ClusterSpec, ProtocolSpec, RunSpec, ScenarioSpec

    config = uniform_config(4, penalty_threshold=3, reward_threshold=50)
    return RunSpec(
        protocol=ProtocolSpec.from_config(config),
        cluster=ClusterSpec(seed=seed),
        scenarios=(ScenarioSpec("SlotBurst",
                                {"round_index": 5, "slot": 2, "n_slots": 1}),),
        n_rounds=14,
    )


def _cmd_demo(args: argparse.Namespace) -> int:
    from .spec import build

    spec = _demo_spec(args.seed)
    dc = build(spec)
    dc.run_rounds(spec.n_rounds)
    rows = []
    for d_round, hv in sorted(dc.health_vectors(1).items()):
        rows.append((d_round, " ".join(map(str, hv))))
    print(render_table(["diagnosed round", "consistent health vector"], rows,
                       title="Demo: 4-node cluster, 1-slot burst in "
                             "round 5 / slot 2"))
    print(f"consistent across nodes: {dc.consistent_health_history()}")
    return 0


def _cmd_portability(args: argparse.Namespace) -> int:
    from .experiments.portability import PORTABILITY_TABLE, portability_sweep
    from .results.render import render_ascii

    print(render_ascii(
        PORTABILITY_TABLE.build(portability_sweep(seed=args.seed))))
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    from .experiments.resilience import (
        RESILIENCE_TABLE,
        capacity_frontier,
        resilience_sweep,
    )
    from .results.render import render_ascii

    points = resilience_sweep(seeds=(args.seed,))
    print(render_ascii(
        RESILIENCE_TABLE.build((points, capacity_frontier()))))
    return 0


def _cmd_discrimination(args: argparse.Namespace) -> int:
    from .experiments.discrimination import (
        DISCRIMINATION_TABLE,
        discrimination_study,
    )
    from .results.render import render_ascii

    print(render_ascii(DISCRIMINATION_TABLE.build(
        discrimination_study(repetitions=args.reps))))
    return 0


def _stats_spec(nodes: int, rounds: int, seed: int, scenario: str):
    """The stats run as a spec (trace dark, metrics as the only eyes)."""
    from .core import uniform_config
    from .faults.scenarios import crash
    from .spec import ClusterSpec, ProtocolSpec, RunSpec, ScenarioSpec

    config = uniform_config(nodes, penalty_threshold=3, reward_threshold=50)
    target = 2 if nodes >= 2 else 1
    scenarios = ()
    if scenario == "burst":
        scenarios = (ScenarioSpec("SlotBurst",
                                  {"round_index": 5, "slot": target,
                                   "n_slots": 2}),)
    elif scenario == "crash":
        scenarios = (ScenarioSpec.from_scenario(crash(target, from_round=6)),)
    elif scenario == "noise":
        scenarios = (ScenarioSpec("RandomSlotNoise",
                                  {"probability": 0.05,
                                   "rng_stream": "stats-noise"}),)
    # trace_level=0: the point of this command is that the metrics
    # registry observes the protocol online, with the trace dark.
    return RunSpec(
        protocol=ProtocolSpec.from_config(config),
        cluster=ClusterSpec(seed=seed, trace_level=0),
        scenarios=scenarios,
        n_rounds=rounds,
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import MetricsRegistry, render_text, render_timings
    from .spec import build

    registry = MetricsRegistry(timing=args.timing)
    spec = _stats_spec(args.nodes, args.rounds, args.seed, args.scenario)
    dc = build(spec, metrics=registry)
    dc.run_rounds(spec.n_rounds)

    snapshot = registry.snapshot()
    print(render_text(snapshot,
                      title=f"stats: N={args.nodes}, {args.rounds} rounds, "
                            f"scenario={args.scenario}, seed={args.seed}"))
    if args.timing:
        print()
        print(render_timings(registry.timings_snapshot()))
    if args.metrics_out:
        _write_metrics_report(args.metrics_out, "stats",
                              {"nodes": args.nodes, "rounds": args.rounds,
                               "seed": args.seed,
                               "scenario": args.scenario}, snapshot)
    return 0


def _timeline_spec(seed: int):
    """The timeline run (node 2 crashes at round 6) as a spec."""
    from .core import uniform_config
    from .faults.scenarios import crash
    from .spec import ClusterSpec, ProtocolSpec, RunSpec, ScenarioSpec

    config = uniform_config(4, penalty_threshold=3, reward_threshold=50)
    return RunSpec(
        protocol=ProtocolSpec.from_config(config),
        cluster=ClusterSpec(seed=seed),
        scenarios=(ScenarioSpec.from_scenario(crash(2, from_round=6)),),
        n_rounds=16,
    )


def _cmd_timeline(args: argparse.Namespace) -> int:
    from .analysis.timeline import render_timeline
    from .spec import build

    spec = _timeline_spec(args.seed)
    dc = build(spec)
    dc.run_rounds(spec.n_rounds)
    print(render_timeline(dc.trace, 4, first_round=4, last_round=14))
    return 0


def _cmd_spec(args: argparse.Namespace) -> int:
    if args.experiment == "demo":
        sys.stdout.write(_demo_spec(args.seed).to_json())
        return 0
    if args.experiment == "validate":
        from .experiments.validation import validation_specs

        spec_dicts = [spec.to_dict()
                      for _cls, spec in validation_specs(args.reps,
                                                         args.nodes)]
    else:
        from .core.config import (
            AEROSPACE_TOLERATED_OUTAGE,
            AUTOMOTIVE_TOLERATED_OUTAGE,
        )
        from .experiments.table2 import penalty_budget_spec

        spec_dicts = [
            penalty_budget_spec(outage, seed=args.seed).to_dict()
            for outages in (AUTOMOTIVE_TOLERATED_OUTAGE,
                            AEROSPACE_TOLERATED_OUTAGE)
            for outage in outages.values()
        ]
    print(json.dumps(spec_dicts, indent=2, sort_keys=True))
    return 0


def _result_passed(result) -> Optional[bool]:
    """A result's pass verdict, if it carries one (else None)."""
    passed = getattr(result, "passed", None)
    if passed is None and isinstance(result, dict):
        passed = result.get("passed")
    return passed


def _apply_backend(spec_dicts: List[dict], backend: Optional[str]) -> int:
    """Force ``backend`` onto every spec dict; 0 on success, else exit 2.

    Requesting the vectorized backend without numpy installed is
    reported here, before any dispatch, as a clean actionable message.
    """
    if backend:
        if backend == "vectorized":
            from .vec import BackendUnavailableError, require_numpy

            try:
                require_numpy()
            except BackendUnavailableError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        for spec_dict in spec_dicts:
            spec_dict["backend"] = backend
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .runner.pool import Task, run_tasks
    from .spec import run_spec_dict

    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, "r", encoding="utf-8") as handle:
            text = handle.read()
    data = json.loads(text)
    spec_dicts = data if isinstance(data, list) else [data]
    status = _apply_backend(spec_dicts, getattr(args, "backend", None))
    if status:
        return status
    try:
        from .spec import RunSpec

        for spec_dict in spec_dicts:
            RunSpec.from_dict(spec_dict)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    collect = bool(args.metrics_out)
    kwargs = {"collect_metrics": True} if collect else {}
    tasks = [Task(run_spec_dict, (spec_dict,), dict(kwargs))
             for spec_dict in spec_dicts]
    try:
        results = run_tasks(tasks, jobs=args.jobs)
    except ValueError as exc:
        # e.g. UnsupportedSpecError: the spec asked the vectorized
        # backend for a feature only the event engine models.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if collect:
        from .obs import merge_snapshots

        snapshot = merge_snapshots(snap for _result, snap in results)
        results = [result for result, _snap in results]
    failed = 0
    for result in results:
        print(result)
        if _result_passed(result) is False:
            failed += 1
    verdicts = [_result_passed(r) for r in results]
    scored = sum(1 for v in verdicts if v is not None)
    print(f"{len(results)} run(s), {scored} scored, {failed} failed")
    if collect:
        _write_metrics_report(args.metrics_out, "run",
                              {"specs": len(spec_dicts)}, snapshot)
    return 1 if failed else 0


def _open_store(args, metrics):
    """The result store the campaign commands operate on (or None)."""
    from .store import ResultStore

    if getattr(args, "no_store", False):
        return None
    return ResultStore(args.store, metrics=metrics)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    import os

    from .campaign import (
        NAMED_CAMPAIGNS,
        InterruptedCampaignError,
        build_campaign,
        result_document,
        run_campaign,
        spec_file_campaign,
    )
    from .obs import MetricsRegistry, render_text

    if args.source in NAMED_CAMPAIGNS:
        definition = build_campaign(args.source, reps=args.reps,
                                    nodes=args.nodes, seed=args.seed)
    elif os.path.isfile(args.source) or args.source == "-":
        text = (sys.stdin.read() if args.source == "-" else
                open(args.source, "r", encoding="utf-8").read())
        try:
            definition = spec_file_campaign(args.source, text)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        print(f"error: {args.source!r} is neither a named campaign "
              f"{NAMED_CAMPAIGNS} nor a spec file", file=sys.stderr)
        return 2

    backend = getattr(args, "backend", None)
    if backend:
        from dataclasses import replace as _replace

        if backend == "vectorized":
            from .vec import BackendUnavailableError, require_numpy

            try:
                require_numpy()
            except BackendUnavailableError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        definition = _replace(definition, labeled_specs=[
            (label, _replace(spec, backend=backend))
            for label, spec in definition.labeled_specs])

    engine_metrics = MetricsRegistry()
    store = _open_store(args, engine_metrics)
    try:
        result = run_campaign(
            definition.labeled_specs, name=definition.name, store=store,
            jobs=args.jobs, retries=args.retries,
            task_timeout=args.task_timeout, resume=args.resume,
            metrics=engine_metrics,
            dispatch=getattr(args, "dispatch", "pool"))
    except InterruptedCampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    finally:
        if store is not None:
            store.close()

    errors = result.errors
    if not errors:
        print(definition.render(definition.aggregate(result.results)))
    else:
        for error in errors:
            label = result.tasks[error.index].label
            print(f"task {error.index} [{label}] failed: "
                  f"{error.error_type}: {error.message}")
    print(f"{len(result.tasks)} task(s): {result.hits} cached, "
          f"{result.misses} executed, {result.retried} retried, "
          f"{len(errors)} failed")
    if args.verbose_stats:
        print()
        print(render_text(engine_metrics.snapshot(),
                          title="campaign engine counters"))
    if args.out:
        from .obs.export import render_json

        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(render_json(result_document(definition, result)))
        print(f"campaign results written to {args.out}")
    if args.metrics_out:
        _write_metrics_report(args.metrics_out, "campaign",
                              dict(definition.params,
                                   campaign=definition.name),
                              result.merged_snapshot())
    return 1 if errors else 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from .campaign.state import load_all_states
    from .obs import MetricsRegistry

    store = _open_store(args, MetricsRegistry(enabled=False))
    try:
        states = load_all_states(store.campaign_dir)
        rows = [(s.campaign_id, s.name, s.status,
                 f"{s.completed}/{s.total}", s.failed)
                for s in states]
        if rows:
            print(render_table(
                ["campaign", "name", "status", "done", "failed"], rows,
                title=f"campaign checkpoints in {store.campaign_dir}"))
        else:
            print(f"no campaign checkpoints in {store.campaign_dir}")
        stats = store.stats()
        print(f"store: {stats['entries']} cached result(s), "
              f"{stats['shard_bytes']} payload byte(s) in {stats['root']}")
    finally:
        store.close()
    return 0


def _cmd_campaign_gc(args: argparse.Namespace) -> int:
    from .obs import MetricsRegistry

    store = _open_store(args, MetricsRegistry(enabled=False))
    try:
        max_age = args.max_age_days * 86400.0 \
            if args.max_age_days is not None else None
        stats = store.gc(max_entries=args.max_entries,
                         max_age_seconds=max_age)
    finally:
        store.close()
    print(f"gc: evicted {stats.evicted} entrie(s), dropped "
          f"{stats.orphans_dropped} stale record(s), kept {stats.kept}; "
          f"shards {stats.bytes_before} -> {stats.bytes_after} bytes")
    return 0


#: ``results render --format`` spellings -> canonical renderer names.
_FORMAT_ALIASES = {"md": "markdown", "tex": "latex"}


def _cmd_results_render(args: argparse.Namespace) -> int:
    from .campaign import NAMED_CAMPAIGNS, build_campaign
    from .results import source
    from .results.render import render_tables

    fmt = _FORMAT_ALIASES.get(args.format, args.format)

    def select(tables):
        if not args.table:
            return tables
        chosen = [t for t in tables if t.name == args.table]
        if not chosen:
            names = ", ".join(t.name for t in tables)
            raise source.DocumentError(
                f"no table named {args.table!r}; available: {names}")
        return chosen

    try:
        if args.source in NAMED_CAMPAIGNS:
            # Live store lookups by content address: render what the
            # campaign engine already cached, executing nothing.
            from .obs import MetricsRegistry

            definition = build_campaign(args.source, reps=args.reps,
                                        nodes=args.nodes, seed=args.seed)
            store = _open_store(args, MetricsRegistry(enabled=False))
            try:
                tables = source.tables_from_store(definition, store)
            finally:
                store.close()
            text = render_tables(select(tables), fmt)
        else:
            doc = source.load_document(args.source)
            text = _render_document(doc, fmt, select, args.store)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"rendered results written to {args.out}")
    else:
        print(text)
    return 0


def _render_document(doc, fmt: str, select, store_dir: str) -> str:
    """Render one document, memoizing in the store when one is given."""
    from .results import source
    from .results.render import render_tables

    def compute() -> str:
        return render_tables(select(source.tables_for_document(doc)), fmt)

    if not store_dir:
        return compute()
    from .obs import MetricsRegistry
    from .results.cache import DerivedCache
    from .store import ResultStore

    store = ResultStore(store_dir, metrics=MetricsRegistry(enabled=False))
    try:
        cache = DerivedCache(store)
        fingerprint = source.document_fingerprint(doc)
        return cache.get_or_compute(fingerprint, f"render.{fmt}", compute)
    finally:
        store.close()


def _cmd_results_diff(args: argparse.Namespace) -> int:
    from .results import source
    from .results.diff import diff_documents, render_diff

    try:
        doc_a = source.load_document(args.a)
        doc_b = source.load_document(args.b)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = diff_documents(doc_a, doc_b)
    store = None
    if args.store:
        from .obs import MetricsRegistry
        from .store import ResultStore

        store = ResultStore(args.store,
                            metrics=MetricsRegistry(enabled=False))
    try:
        print(render_diff(diff, store=store))
    finally:
        if store is not None:
            store.close()
    return 0 if diff.identical else 1


def _cmd_results_plot(args: argparse.Namespace) -> int:
    from .results.plots import PlotUnavailableError, require_matplotlib

    try:
        # Gate before any document work, mirroring _apply_backend's
        # numpy check: missing matplotlib is a clean exit 2.
        require_matplotlib()
    except PlotUnavailableError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from .results import source
    from .results.plots import emit_plots

    try:
        if args.source == "figure3":
            from .experiments.figure3 import FIGURE3_SERIES, figure3_series

            series = [FIGURE3_SERIES.build(figure3_series())]
        else:
            doc = source.load_document(args.source)
            series = source.series_for_document(doc)
            if not series:
                print(f"error: campaign {doc.campaign!r} declares no plot "
                      f"series", file=sys.stderr)
                return 2
        paths = emit_plots(series, args.out_dir, fmt=args.format)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for path in paths:
        print(f"plot written to {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import JobManager, create_app
    from .service.asgi import ServiceUnavailableError, require_uvicorn

    if args.impl == "uvicorn":
        try:
            # Gate before building anything, mirroring the numpy /
            # matplotlib soft-dependency checks: exit 2 with the
            # install hint when the `service` extra is missing.
            require_uvicorn()
        except ServiceUnavailableError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    manager = JobManager(
        store_root=args.store,
        workers=args.workers,
        queue_limit=args.queue_limit,
        engine_jobs=args.jobs,
        retries=args.retries,
        task_timeout=args.task_timeout,
        snapshot_every=args.snapshot_every,
    )
    app = create_app(manager)
    try:
        if args.impl == "uvicorn":
            from .service.asgi import run_uvicorn

            run_uvicorn(app, args.host, args.port)
            return 0
        from .service.http import ServiceThread

        server = ServiceThread(app, host=args.host, port=args.port)
        try:
            server.start()
        except OSError as exc:
            print(f"error: cannot bind {args.host}:{args.port}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"repro-diag service listening on {server.url}")
        print("POST /v1/jobs to submit; ctrl-c to drain and stop")
        sys.stdout.flush()
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down: draining in-flight jobs...")
        finally:
            server.stop()
        return 0
    finally:
        manager.shutdown()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-diag",
        description="Reproduction of the DSN'07 tunable add-on diagnostic "
                    "protocol for time-triggered systems.")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="run the Sec. 8 validation campaign")
    p.add_argument("--reps", type=int, default=5,
                   help="repetitions per experiment class (paper: 100)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = serial; results are "
                        "identical for any value)")
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="write a deterministic JSON metrics report "
                        "(byte-identical across runs and --jobs values)")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("stats", help="run a metered cluster and print the "
                                     "online metrics report")
    p.add_argument("--nodes", type=int, default=4, help="cluster size")
    p.add_argument("--rounds", type=int, default=50,
                   help="TDMA rounds to simulate")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scenario", choices=("fault-free", "burst", "crash",
                                          "noise"), default="fault-free",
                   help="optional fault process to inject")
    p.add_argument("--timing", action="store_true",
                   help="also collect wall-clock phase timings "
                        "(nondeterministic; excluded from --metrics-out)")
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="write a deterministic JSON metrics report")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("discrimination",
                       help="healthy/unhealthy filter comparison")
    p.add_argument("--reps", type=int, default=10,
                   help="generated populations")
    p.set_defaults(func=_cmd_discrimination)

    p = sub.add_parser("spec", help="emit an experiment's serialized "
                                    "RunSpec JSON")
    p.add_argument("experiment", choices=("demo", "validate", "table2"),
                   help="experiment to serialize (demo: one spec; "
                        "validate/table2: an array)")
    p.add_argument("--reps", type=int, default=1,
                   help="repetitions per class (validate only)")
    p.add_argument("--nodes", type=int, default=4,
                   help="cluster size (validate only)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_spec)

    p = sub.add_parser("campaign",
                       help="persistent campaigns: cached, resumable, "
                            "fault-tolerant sweeps")
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    p = campaign_sub.add_parser(
        "run", help="run a named campaign (validate, table2, rare-events) "
                    "or a RunSpec JSON file through the campaign engine")
    p.add_argument("source",
                   help="campaign name (validate, table2, rare-events), "
                        "a RunSpec JSON file, or - for stdin")
    p.add_argument("--reps", type=int, default=5,
                   help="repetitions per class (validate) or replicates "
                        "per rate (rare-events)")
    p.add_argument("--nodes", type=int, default=4,
                   help="cluster size (validate, rare-events)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed (table2, rare-events)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (results identical for any value)")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="result store directory (default: REPRO_CACHE_DIR "
                        "or ~/.cache/repro-diag)")
    p.add_argument("--no-store", action="store_true",
                   help="run without the persistent store (no caching, "
                        "no checkpointing)")
    p.add_argument("--resume", action="store_true",
                   help="continue a campaign whose checkpoint says it "
                        "never finished")
    p.add_argument("--retries", type=int, default=2,
                   help="re-dispatch rounds for failed tasks")
    p.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-task deadline enforced inside the worker")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write the deterministic campaign result JSON "
                        "(byte-identical across --jobs, cache state and "
                        "kill/resume cycles)")
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="write a deterministic JSON metrics report")
    p.add_argument("--verbose-stats", action="store_true",
                   help="also print the engine's store/retry counters")
    p.add_argument("--backend", choices=("event", "vectorized"), default=None,
                   help="override the simulation backend on every spec; "
                        "vectorized Monte Carlo replicates dispatch as "
                        "lockstep kernel batches")
    p.add_argument("--dispatch", choices=("pool", "multipool", "remote-stub"),
                   default="pool",
                   help="dispatch backend: one persistent process pool, "
                        "work-stealing multi-pool, or subprocess-per-host "
                        "remote stub (results identical for any choice)")
    p.set_defaults(func=_cmd_campaign_run)

    p = campaign_sub.add_parser(
        "status", help="show campaign checkpoints and store footprint")
    p.add_argument("--store", metavar="DIR", default=None)
    p.set_defaults(func=_cmd_campaign_status)

    p = campaign_sub.add_parser(
        "gc", help="evict old cache entries and compact payload shards")
    p.add_argument("--store", metavar="DIR", default=None)
    p.add_argument("--max-entries", type=int, default=None,
                   help="keep at most this many entries (LRU eviction)")
    p.add_argument("--max-age-days", type=float, default=None,
                   help="evict entries unused for this many days")
    p.set_defaults(func=_cmd_campaign_gc)

    p = sub.add_parser("results",
                       help="render, diff and plot campaign results "
                            "without re-running anything")
    results_sub = p.add_subparsers(dest="results_command", required=True)

    p = results_sub.add_parser(
        "render", help="render a campaign document (or a named campaign's "
                       "cached results) as ascii/markdown/latex/csv/"
                       "html/json")
    p.add_argument("source",
                   help="campaign result JSON (--out document), - for "
                        "stdin, or a named campaign (validate, table2, "
                        "rare-events) to read live from the store")
    p.add_argument("--format", choices=("ascii", "md", "markdown", "latex",
                                        "tex", "csv", "html", "json"),
                   default="ascii",
                   help="output format (md/tex are aliases)")
    p.add_argument("--table", metavar="NAME", default=None,
                   help="render only the named table")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write to a file instead of stdout")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="result store directory; required for named "
                        "campaigns, enables the derived-value cache for "
                        "documents")
    p.add_argument("--reps", type=int, default=5,
                   help="named campaigns: repetitions per class/rate")
    p.add_argument("--nodes", type=int, default=4,
                   help="named campaigns: cluster size")
    p.add_argument("--seed", type=int, default=0,
                   help="named campaigns: seed")
    p.set_defaults(func=_cmd_results_render)

    p = results_sub.add_parser(
        "diff", help="compare two campaign documents cell-by-cell and "
                     "name the spec parameters behind diverging digests")
    p.add_argument("a", help="first campaign result JSON")
    p.add_argument("b", help="second campaign result JSON")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="result store directory: annotate diverging "
                        "digests with their cached store keys")
    p.set_defaults(func=_cmd_results_diff)

    p = results_sub.add_parser(
        "plot", help="emit matplotlib plots for a campaign document's "
                     "declared series (requires matplotlib)")
    p.add_argument("source",
                   help="campaign result JSON, - for stdin, or 'figure3' "
                        "for the Fig. 3 tradeoff curves")
    p.add_argument("--out-dir", metavar="DIR", default=".",
                   help="directory the plot files are written to")
    p.add_argument("--format", choices=("png", "svg", "pdf"), default="png",
                   help="image format")
    p.set_defaults(func=_cmd_results_plot)

    p = sub.add_parser("serve",
                       help="serve diagnosis campaigns over HTTP: "
                            "content-addressed job dedup, SSE progress, "
                            "store-first caching (repro.service)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: loopback)")
    p.add_argument("--port", type=int, default=8377,
                   help="bind port (0 = pick a free port)")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="result store directory (default: REPRO_CACHE_DIR "
                        "or ~/.cache/repro-diag)")
    p.add_argument("--workers", type=int, default=2,
                   help="campaign worker threads")
    p.add_argument("--queue-limit", type=int, default=8,
                   help="max queued+running jobs before HTTP 429")
    p.add_argument("--jobs", type=int, default=1,
                   help="engine worker processes per campaign (1 = serial "
                        "and fully deterministic event streams)")
    p.add_argument("--retries", type=int, default=2,
                   help="re-dispatch rounds for failed tasks")
    p.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-task deadline enforced inside the worker")
    p.add_argument("--snapshot-every", type=int, default=0,
                   help="emit a metrics snapshot event every N committed "
                        "tasks (0 = only at completion)")
    p.add_argument("--impl", choices=("stdlib", "uvicorn"),
                   default="stdlib",
                   help="HTTP host: the built-in stdlib asyncio server, "
                        "or uvicorn (requires the `service` extra)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("run", help="execute RunSpec JSON from a file "
                                   "or stdin (-)")
    p.add_argument("path", help="spec file (a single object or an array), "
                                "or - for stdin")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (results identical for any value)")
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="write a deterministic JSON metrics report")
    p.add_argument("--backend", choices=("event", "vectorized"), default=None,
                   help="override the simulation backend on every spec "
                        "(vectorized = numpy round kernel, bit-identical "
                        "observables)")
    p.set_defaults(func=_cmd_run)

    for name, func, help_text in (
            ("table2", _cmd_table2, "reproduce Table 2 (p/r tuning)"),
            ("table4", _cmd_table4, "reproduce Table 4 (time to isolation)"),
            ("figure3", _cmd_figure3, "reproduce Fig. 3 (reward tradeoff)"),
            ("portability", _cmd_portability,
             "run the protocol across TT platform profiles"),
            ("resilience", _cmd_resilience,
             "empirical Lemma 2 fault-allocation sweep"),
            ("timeline", _cmd_timeline,
             "render an annotated round/slot timeline"),
            ("demo", _cmd_demo, "run a small annotated demo cluster")):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--seed", type=int, default=0)
        if name == "table2":
            p.add_argument("--jobs", type=int, default=1,
                           help="worker processes (results identical "
                                "for any value)")
            p.add_argument("--metrics-out", metavar="PATH", default=None,
                           help="write a deterministic JSON metrics report")
        p.set_defaults(func=func)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
