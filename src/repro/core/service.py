"""Middleware facade: a cluster with the diagnostic protocol installed.

:class:`DiagnosedCluster` assembles the full stack the paper's
prototype runs — a TDMA cluster (:class:`~repro.tt.cluster.Cluster`)
with one diagnostic (or membership, or low-latency) service per node —
and exposes the cross-node views that experiments and applications
need: per-node activity vectors, consistency checks, isolation/view
queries against the shared trace.

This is the main entry point of the library::

    from repro import DiagnosedCluster, uniform_config
    from repro.faults import SlotBurst

    dc = DiagnosedCluster(uniform_config(n_nodes=4, penalty_threshold=3))
    dc.cluster.add_scenario(SlotBurst(dc.cluster.timebase,
                                      round_index=5, slot=2, n_slots=1))
    dc.run_rounds(12)
    assert dc.consistent_health_history()  # all nodes agreed
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..sim.trace import TraceRecord
from ..tt.cluster import PAPER_ROUND_LENGTH, Cluster
from .bitmatrix import AnalysisCache
from .config import ProtocolConfig
from .diagnostic import TRACE_ALL, DiagnosticService
from .lowlatency import LowLatencyDiagnosticService
from .membership import MembershipService
from .reintegration import ReintegrationPolicy, attach_reintegration


class DiagnosedCluster:
    """A simulated TT cluster running the add-on diagnostic protocol.

    Parameters
    ----------
    config:
        Protocol configuration; its ``n_nodes`` sets the cluster size.
    round_length, tx_fraction, seed, n_channels:
        Forwarded to :class:`~repro.tt.cluster.Cluster`.
    service_cls:
        :class:`DiagnosticService` (default) or
        :class:`MembershipService`.
    byzantine_nodes:
        IDs of nodes that broadcast random syndromes (Sec. 8's malicious
        validation case).
    exec_after:
        Static schedule position for all diagnostic jobs (see
        :func:`~repro.tt.schedule.offset_for_exec_after`), or a per-node
        sequence, or ``None`` for the library default (job at round
        start, ``l_i = 0``).
    dynamic_schedules:
        If true, every node uses a per-round random schedule (Sec. 10).
    trace_level:
        Trace verbosity, forwarded both to the services and to the
        cluster-owned :class:`~repro.sim.trace.Trace` (so level 0 also
        suppresses per-slot bus records).
    fast_path:
        Forwarded to :class:`~repro.tt.cluster.Cluster`: batched
        delivery of injection-quiescent slots (bit-identical results).
    metrics:
        Optional :class:`repro.obs.MetricsRegistry` shared by the whole
        stack (engine, bus, every per-node service); query it via
        :meth:`metrics_snapshot`.  Works at any ``trace_level``,
        including 0.
    bitset:
        Run every service's analysis phase on the packed bitmask
        representation with one :class:`~repro.core.bitmatrix.AnalysisCache`
        shared cluster-wide (bit-identical results; default on).  Set
        ``False`` to fall back to the tuple reference path.
    """

    def __init__(self, config: ProtocolConfig,
                 round_length: float = PAPER_ROUND_LENGTH,
                 tx_fraction: float = 0.8,
                 seed: int = 0,
                 n_channels: int = 1,
                 service_cls: Type[DiagnosticService] = DiagnosticService,
                 byzantine_nodes: Sequence[int] = (),
                 exec_after=None,
                 dynamic_schedules: bool = False,
                 trace_level: int = TRACE_ALL,
                 fast_path: bool = True,
                 metrics=None,
                 bitset: bool = True) -> None:
        self.config = config
        self.metrics = metrics
        self.cluster = Cluster(config.n_nodes, round_length=round_length,
                               tx_fraction=tx_fraction, seed=seed,
                               n_channels=n_channels,
                               trace_level=trace_level, fast_path=fast_path,
                               metrics=metrics)
        self.trace = self.cluster.trace

        # Schedules first (they fix l_i / send_curr_round_i and hence
        # whether config.all_send_curr_round is achievable).
        if dynamic_schedules:
            for node_id in range(1, config.n_nodes + 1):
                self.cluster.set_dynamic_schedule(node_id)
        elif exec_after is not None:
            positions = ([exec_after] * config.n_nodes
                         if isinstance(exec_after, int) else list(exec_after))
            if len(positions) != config.n_nodes:
                raise ValueError("exec_after must be an int or one entry per node")
            for node_id, pos in enumerate(positions, start=1):
                self.cluster.set_static_schedule(node_id, exec_after=pos)

        if config.all_send_curr_round and not self.cluster.schedule.all_send_curr_round():
            raise ValueError(
                "config.all_send_curr_round is set but the node schedules "
                "do not satisfy the global predicate (use exec_after="
                f"{config.n_nodes} on every node)")

        self.services: Dict[int, DiagnosticService] = {}
        byzantine = frozenset(byzantine_nodes)
        # One analysis memo for the whole cluster: Sec. 5 consistency
        # means the N per-node analyses of one round mostly see the
        # same matrix, so the first node computes and the rest reuse.
        analysis_cache = AnalysisCache(metrics) if bitset else None
        for node_id in range(1, config.n_nodes + 1):
            rng = (self.cluster.streams.stream(f"byzantine-{node_id}")
                   if node_id in byzantine else None)
            service = service_cls(config, self.cluster.node(node_id),
                                  self.trace, byzantine_rng=rng,
                                  trace_level=trace_level, metrics=metrics,
                                  bitset=bitset,
                                  analysis_cache=analysis_cache)
            self.cluster.install_job(node_id, service)
            self.services[node_id] = service

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_rounds(self, n_rounds: int) -> None:
        """Advance the simulation by ``n_rounds`` complete rounds."""
        self.cluster.run_rounds(n_rounds)

    def run_until(self, time: float) -> None:
        """Advance the simulation to absolute ``time`` (seconds)."""
        self.cluster.run_until(time)

    def metrics_snapshot(self) -> dict:
        """The deterministic metrics snapshot of this run.

        Empty (but well-formed) when the cluster was built without a
        metrics registry.
        """
        if self.metrics is None:
            from ..obs.registry import empty_snapshot
            return empty_snapshot()
        return self.metrics.snapshot()

    # ------------------------------------------------------------------
    # Cross-node queries
    # ------------------------------------------------------------------
    def service(self, node_id: int) -> DiagnosticService:
        """The diagnostic service installed on one node."""
        return self.services[node_id]

    def obedient_node_ids(self) -> Tuple[int, ...]:
        """Nodes whose ground truth marks them obedient."""
        return tuple(i for i, node in sorted(self.cluster.nodes.items())
                     if node.ground_truth.obedient)

    def health_vectors(self, node_id: int) -> Dict[int, Tuple[int, ...]]:
        """Diagnosed round -> consistent health vector, from the trace."""
        out: Dict[int, Tuple[int, ...]] = {}
        for rec in self.trace.select(category="cons_hv", node=node_id):
            out[rec.data["diagnosed_round"]] = tuple(rec.data["cons_hv"])
        return out

    def consistent_health_history(self, obedient_only: bool = True) -> bool:
        """Whether all (obedient) nodes produced identical health vectors.

        The consistency property of Theorem 1, checked over the entire
        trace: for every diagnosed round, every node that computed a
        health vector computed the same one.
        """
        nodes = (self.obedient_node_ids() if obedient_only
                 else tuple(self.services))
        reference: Dict[int, Tuple[int, ...]] = {}
        for node_id in nodes:
            for d_round, hv in self.health_vectors(node_id).items():
                if d_round in reference:
                    if reference[d_round] != hv:
                        return False
                else:
                    reference[d_round] = hv
        return True

    def isolation_records(self, isolated: Optional[int] = None) -> List[TraceRecord]:
        """All isolation decisions, optionally filtered by target node."""
        records = self.trace.select(category="isolation")
        if isolated is not None:
            records = [r for r in records if r.data["isolated"] == isolated]
        return records

    def first_isolation_time(self, isolated: int) -> Optional[float]:
        """Earliest time any node isolated ``isolated`` (None if never)."""
        records = self.isolation_records(isolated)
        return min((r.time for r in records), default=None)

    def active_matrix(self) -> Dict[int, Tuple[int, ...]]:
        """Each node's current activity vector (observer -> vector)."""
        return {i: tuple(s.active) for i, s in self.services.items()}

    def agreed_active_vector(self) -> Tuple[int, ...]:
        """The activity vector, asserting all obedient nodes agree."""
        vectors = {tuple(self.services[i].active)
                   for i in self.obedient_node_ids()}
        if len(vectors) != 1:
            raise AssertionError(
                f"obedient nodes disagree on activity: {sorted(vectors)}")
        return next(iter(vectors))


class MembershipCluster(DiagnosedCluster):
    """A cluster running the membership variant on every node."""

    def __init__(self, config: ProtocolConfig, **kwargs) -> None:
        kwargs.setdefault("service_cls", MembershipService)
        super().__init__(config, **kwargs)

    def views(self, node_id: int):
        """The node's view history ``[(round, frozenset), ...]``."""
        return list(self.services[node_id].view_history)

    def agreed_view(self) -> frozenset:
        """Current view, asserting all obedient in-view nodes agree."""
        views = {self.services[i].view for i in self.obedient_node_ids()
                 if i in self.services[i].view}
        if len(views) != 1:
            raise AssertionError(f"view disagreement: {sorted(map(sorted, views))}")
        return next(iter(views))


class LowLatencyCluster:
    """A cluster running the system-level low-latency variant (Sec. 10)."""

    def __init__(self, config: ProtocolConfig,
                 round_length: float = PAPER_ROUND_LENGTH,
                 tx_fraction: float = 0.8, seed: int = 0,
                 n_channels: int = 1, membership: bool = False,
                 trace_level: int = TRACE_ALL,
                 fast_path: bool = True,
                 metrics=None,
                 bitset: bool = True) -> None:
        self.config = config
        self.metrics = metrics
        self.cluster = Cluster(config.n_nodes, round_length=round_length,
                               tx_fraction=tx_fraction, seed=seed,
                               n_channels=n_channels,
                               trace_level=trace_level, fast_path=fast_path,
                               metrics=metrics)
        self.trace = self.cluster.trace
        self.services: Dict[int, LowLatencyDiagnosticService] = {}
        for node_id in range(1, config.n_nodes + 1):
            self.services[node_id] = LowLatencyDiagnosticService(
                config, self.cluster.node(node_id), self.trace,
                membership=membership, trace_level=trace_level,
                metrics=metrics, bitset=bitset)

    def run_rounds(self, n_rounds: int) -> None:
        """Advance the simulation by ``n_rounds`` complete rounds."""
        self.cluster.run_rounds(n_rounds)

    def metrics_snapshot(self) -> dict:
        """The deterministic metrics snapshot of this run."""
        if self.metrics is None:
            from ..obs.registry import empty_snapshot
            return empty_snapshot()
        return self.metrics.snapshot()

    def service(self, node_id: int) -> LowLatencyDiagnosticService:
        """The low-latency service installed on one node."""
        return self.services[node_id]

    def consistent_verdicts(self) -> bool:
        """Whether all nodes agree on every retained per-slot verdict."""
        reference: Dict[Tuple[int, int], int] = {}
        for service in self.services.values():
            for key, verdict in service.verdicts.items():
                if key in reference and reference[key] != verdict:
                    return False
                reference.setdefault(key, verdict)
        return True


def attach_reintegration_everywhere(dc: DiagnosedCluster) -> Dict[int, ReintegrationPolicy]:
    """Attach the Sec. 9 reintegration policy to every node's service."""
    return {node_id: attach_reintegration(service)
            for node_id, service in dc.services.items()}


__all__ = [
    "DiagnosedCluster",
    "MembershipCluster",
    "LowLatencyCluster",
    "attach_reintegration_everywhere",
]
