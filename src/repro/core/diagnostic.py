"""The on-line diagnostic protocol (Alg. 1 of the paper).

:class:`DiagnosticService` is the *diagnostic job* ``diag_i`` running on
each node as an add-on, application-level module.  Once per round it:

1. **Local detection** — reads the validity bits of the diagnostic
   messages and, via read alignment, forms the local syndrome of the
   previous round.
2. **Dissemination** — writes a local syndrome to the interface state
   (send alignment decides whether the fresh or the previous one).
3. **Aggregation** — read-aligns the received diagnostic messages into
   the diagnostic matrix for the diagnosed round, mapping syndromes
   whose validity bit is 0 (or whose sender is isolated, or whose
   payload is malformed) to the error value ε.
4. **Analysis** — computes the consistent health vector by hybrid
   majority voting over the matrix columns; when no external syndrome
   survives (communication blackout, Lemma 3) it falls back on the
   local collision detector for itself and on its own buffered local
   syndrome for the other nodes.
5. **Update counters** — feeds the health vector to the penalty/reward
   algorithm and applies isolation decisions.

The service only touches the observables the paper allows an
application-level module: interface variables + validity bits, the
collision detector API and the OS-reported schedule parameters.

The class is written as a template method so that the membership
variant (Sec. 7) can reorder analysis before dissemination and inject
minority accusations by overriding two hooks.
"""

from __future__ import annotations

from random import Random
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim.trace import Trace
from ..tt.controller import DIAG_CHANNEL, SenderStatus
from ..tt.node import JobContext, Node
from .alignment import diagnosed_round, read_align, select_dissemination
from .bitmatrix import AnalysisCache, BitDiagnosticMatrix, pack_syndrome_cached
from .config import IsolationMode, ProtocolConfig
from .penalty_reward import PenaltyRewardState
from .syndrome import (EPSILON, DiagnosticMatrix, Row, intern_syndrome,
                       is_valid_syndrome, parse_tagged_syndrome)
from .voting import BOTTOM, h_maj, h_maj_explain

#: Trace verbosity: 0 = decisions only, 1 = + health vectors containing
#: faults, 2 = everything (syndromes, all health vectors, counters).
TRACE_DECISIONS, TRACE_FAULTS, TRACE_ALL = 0, 1, 2

IsolationCallback = Callable[[int, int, int], None]


class DiagnosticService:
    """Alg. 1, the per-node diagnostic job.

    Parameters
    ----------
    config:
        Protocol configuration (shared by all nodes of the cluster).
    node:
        The hosting :class:`~repro.tt.node.Node`.
    trace:
        Trace to record protocol events into.
    byzantine_rng:
        When given, the node broadcasts *random* local syndromes instead
        of its real ones — the malicious-node validation case of Sec. 8.
        (The node is then not obedient; its own diagnosis output is
        unconstrained by the theorems.)
    on_isolation:
        Optional callback ``(observer_id, isolated_id, round)`` invoked
        when this service isolates a node.
    trace_level:
        Verbosity of trace recording (see module constants).
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; when enabled the
        service counts votes, Eqn. 1 branch outcomes, health-vector
        transitions, isolations and reintegrations online (independent
        of ``trace_level``).
    bitset:
        Run the analysis phase on the packed bitmask representation
        (:mod:`repro.core.bitmatrix`) with per-round memoisation —
        bit-identical to the tuple path (pinned by the differential
        fuzz); disable only to exercise the reference semantics.
    analysis_cache:
        Optional :class:`~repro.core.bitmatrix.AnalysisCache` shared by
        all services of one cluster so identical matrices are analysed
        once per round cluster-wide; a private cache is created when
        omitted and ``bitset`` is on.
    """

    def __init__(self, config: ProtocolConfig, node: Node, trace: Trace,
                 byzantine_rng: Optional[Random] = None,
                 on_isolation: Optional[IsolationCallback] = None,
                 trace_level: int = TRACE_ALL,
                 metrics: Optional[Any] = None,
                 bitset: bool = True,
                 analysis_cache: Optional[AnalysisCache] = None) -> None:
        if config.n_nodes != node.controller.n_nodes:
            raise ValueError("config.n_nodes does not match the cluster size")
        self.config = config
        self.node = node
        self.node_id = node.node_id
        self.trace = trace
        self.trace_level = trace_level
        self.byzantine_rng = byzantine_rng
        self.on_isolation = on_isolation
        if byzantine_rng is not None:
            node.ground_truth.obedient = False
            node.ground_truth.notes["byzantine"] = True

        n = config.n_nodes
        # Buffers for read/send alignment (Alg. 1 lines 16-17).  All are
        # 0-based lists of length N (index j-1 for node j).
        self._prev_dm: List[Any] = [None] * n
        self._prev_ls: List[int] = [0] * n
        self._prev_al_ls: List[int] = [0] * n
        # Own aligned syndromes by the round their observations refer
        # to; the Lemma 3 fallback reads the diagnosed round's entry.
        self._own_ls_by_round: Dict[int, Tuple[int, ...]] = {}
        # Protocol outputs.
        self.active: List[int] = [1] * n
        self.pr = PenaltyRewardState(config, metrics=metrics)
        # Extension hook (reintegration policy etc.).
        self.post_update_hooks: List[Callable[["DiagnosticService", List[int], int], None]] = []
        self._last_analysis_round: Optional[int] = None
        self._last_matrix: Optional[DiagnosticMatrix] = None
        self._now: float = 0.0
        # Bitset analysis plane (on by default; tuple path kept as the
        # reference semantics and escape hatch).
        self._bitset = bool(bitset)
        if self._bitset and analysis_cache is None:
            analysis_cache = AnalysisCache(metrics)
        self._analysis_cache = analysis_cache if self._bitset else None
        # Online observability: instruments resolved once, updates
        # guarded by one cached boolean on the per-round paths.
        self.metrics = metrics
        self._m_on = metrics is not None and metrics.enabled
        self._timing_on = self._m_on and metrics.timing
        self._prev_cons_hv: Optional[List[int]] = None
        if self._m_on:
            self._m_hmaj_calls = metrics.counter("vote.hmaj_calls")
            self._m_hmaj_majority = metrics.counter("vote.hmaj_majority")
            self._m_hmaj_default = metrics.counter("vote.hmaj_default_healthy")
            self._m_hmaj_bottom = metrics.counter("vote.hmaj_bottom")
            self._m_analysis_rounds = metrics.counter("diag.analysis_rounds")
            self._m_uniform_rounds = metrics.counter(
                "diag.uniform_shortcut_rounds")
            self._m_hv_transitions = metrics.counter("diag.hv_transitions")
            self._m_isolations = metrics.counter("diag.isolations")
            self._m_reintegrations = metrics.counter("diag.reintegrations")
            self._m_eps_rows = metrics.histogram(
                "diag.matrix_epsilon_rows", (0, 1, 2, 4, 8, 16, 32))
            self._m_popcount_votes = metrics.counter("vote.popcount_votes")
            self._m_intern_evict = metrics.counter(
                "syndrome.intern_evictions")
        else:
            self._m_intern_evict = None

    # ------------------------------------------------------------------
    # Job protocol
    # ------------------------------------------------------------------
    def execute(self, ctx: JobContext) -> None:
        """One execution of ``diag_i`` (one round).

        Static node schedules run the paper's Alg. 1 verbatim
        (:meth:`_execute_static`).  Dynamic schedules (Sec. 10) run a
        variant with *round-tagged* syndromes (:meth:`_execute_dynamic`):
        the paper's read/send alignment relies on the split point
        ``l_i`` and the ``send_curr_round_i`` predicate staying fixed
        between consecutive executions — with a per-round random
        schedule both can flip, which silently drops observations and
        mis-attributes disseminated syndromes to the wrong diagnosed
        round.  Tagging each diagnostic message with the round its
        observations refer to (a couple of bits on the wire) removes
        the ambiguity; mismatching or missing tags degrade to ε votes,
        which the hybrid voting tolerates by construction.
        """
        if self.node.schedule.is_static:
            self._execute_static(ctx)
        else:
            self._execute_dynamic(ctx)

    def _execute_static(self, ctx: JobContext) -> None:
        """Alg. 1 exactly as published (static schedules)."""
        k = ctx.round_index
        controller = ctx.controller
        self._now = ctx.time

        # Phases 1 and 3 — read interface state and align (lines 1-6).
        iface = controller.read_interface(channel=DIAG_CHANNEL)
        vbits = controller.read_validity()
        curr_dm = iface[1:]
        curr_ls = vbits[1:]
        l = ctx.params.l
        al_dm = read_align(self._prev_dm, curr_dm, l)
        al_ls = read_align(self._prev_ls, curr_ls, l)
        d_round = diagnosed_round(k, self.config.all_send_curr_round)

        if self._analysis_enabled(k) and self.analysis_before_dissemination:
            # Membership variant: analyse first so accusations can ride
            # on the syndrome disseminated this round (Sec. 7).
            matrix = self._build_matrix(al_dm, al_ls)
            cons_hv = self._analyse(controller, matrix, d_round, k)
            al_ls = self._post_analysis(al_dm, al_ls, cons_hv, k)
            self._disseminate(controller, al_ls, ctx.params.send_curr_round, k)
            self._update_counters(controller, cons_hv, k)
        else:
            # Phase 2 — dissemination (lines 7-10).
            self._disseminate(controller, al_ls, ctx.params.send_curr_round, k)
            if self._analysis_enabled(k):
                # Phases 4 and 5 — analysis and counter update.
                matrix = self._build_matrix(al_dm, al_ls)
                cons_hv = self._analyse(controller, matrix, d_round, k)
                al_ls = self._post_analysis(al_dm, al_ls, cons_hv, k)
                self._update_counters(controller, cons_hv, k)

        # Buffering for the next round (lines 16-17).
        self._prev_dm = list(curr_dm)
        self._prev_ls = list(curr_ls)
        self._prev_al_ls = list(al_ls)
        self._own_ls_by_round[k - 1] = tuple(al_ls)
        self._prune_own_ls(k)

        if self.trace_level >= TRACE_ALL:
            self.trace.record(ctx.time, "syndrome", node=self.node_id,
                              round_index=k, syndrome=tuple(al_ls), l=l)

    def _execute_dynamic(self, ctx: JobContext) -> None:
        """The round-tagged variant for dynamic node schedules."""
        k = ctx.round_index
        controller = ctx.controller
        self._now = ctx.time

        # Local detection for round k-1 straight from the controller's
        # receive history (always complete, regardless of the offset the
        # scheduler drew this round).
        al_ls = self._history_validity(controller, k - 1)
        d_round = k - 3

        analysis_on = d_round >= self.config.startup_rounds
        if analysis_on and self.analysis_before_dissemination:
            matrix = self._build_tagged_matrix(controller, d_round, k)
            cons_hv = self._analyse(controller, matrix, d_round, k)
            al_ls = self._post_analysis(None, al_ls, cons_hv, k)
            self._disseminate_tagged(controller, k - 1, al_ls)
            self._update_counters(controller, cons_hv, k)
        else:
            self._disseminate_tagged(controller, k - 1, al_ls)
            if analysis_on:
                matrix = self._build_tagged_matrix(controller, d_round, k)
                cons_hv = self._analyse(controller, matrix, d_round, k)
                al_ls = self._post_analysis(None, al_ls, cons_hv, k)
                self._update_counters(controller, cons_hv, k)

        self._own_ls_by_round[k - 1] = tuple(al_ls)
        self._prune_own_ls(k)
        if self.trace_level >= TRACE_ALL:
            self.trace.record(ctx.time, "syndrome", node=self.node_id,
                              round_index=k, syndrome=tuple(al_ls),
                              l=ctx.params.l)

    def _history_validity(self, controller, target_round: int) -> List[int]:
        """Validity bits of the messages sent in ``target_round``."""
        al_ls: List[int] = []
        for j in range(1, self.config.n_nodes + 1):
            rec = controller.read_delivery(j, target_round)
            al_ls.append(rec[0] if rec is not None else 0)
        return al_ls

    def _prune_own_ls(self, k: int) -> None:
        """Drop own-syndrome buffer entries older than the pipeline depth."""
        horizon = k - self.config.detection_pipeline_rounds() - 2
        stale = [r for r in self._own_ls_by_round if r < horizon]
        for r in stale:
            del self._own_ls_by_round[r]

    # ------------------------------------------------------------------
    # Variant hooks
    # ------------------------------------------------------------------
    #: Overridden by the membership variant (analysis must precede
    #: dissemination so accusations can be folded in, Sec. 7).
    analysis_before_dissemination: bool = False

    def _post_analysis(self, al_dm: List[Any], al_ls: List[int],
                       cons_hv: List[int], k: int) -> List[int]:
        """Hook between analysis and counter update.

        The base protocol returns ``al_ls`` unchanged; the membership
        variant folds minority accusations into it.
        """
        return al_ls

    # ------------------------------------------------------------------
    # Phase 2 — dissemination
    # ------------------------------------------------------------------
    def _disseminate(self, controller, al_ls: List[int],
                     send_curr_round: bool, k: int) -> None:
        out = select_dissemination(al_ls, self._prev_al_ls, send_curr_round,
                                   self.config.all_send_curr_round)
        if self.byzantine_rng is not None:
            out = [self.byzantine_rng.randrange(2)
                   for _ in range(self.config.n_nodes)]
        # Interned so that the identical syndromes a healthy cluster
        # disseminates every round share one tuple object; the matrix
        # aggregation detects uniform rounds by pointer comparison.
        controller.write_interface(
            intern_syndrome(tuple(out), self._m_intern_evict))

    # ------------------------------------------------------------------
    # Phase 4 — analysis
    # ------------------------------------------------------------------
    def _analysis_enabled(self, k: int) -> bool:
        """Whether the dissemination pipeline holds genuine data.

        The health vector at round ``k`` refers to round ``k-2``/``k-3``
        (Lemma 1); until that diagnosed round exists (and any extra
        configured startup margin passed) the analysis is skipped.
        """
        return (diagnosed_round(k, self.config.all_send_curr_round)
                >= self.config.startup_rounds)

    def _build_matrix(self, al_dm: List[Any], al_ls: List[int]):
        """Aggregation: the diagnostic matrix with ε rows filled in."""
        n = self.config.n_nodes
        if 0 not in al_ls and 0 not in self.active:
            # Fast path for the common fault-free round: every sender is
            # active and valid, and (thanks to syndrome interning at
            # dissemination) all received syndromes are the same tuple
            # object.  The resulting matrix is exactly what the loop
            # below would build — all rows are ``tuple(al_dm[m-1])``,
            # which for a tuple input is the object itself — plus the
            # uniform marker that lets the analysis skip the vote.
            row0 = al_dm[0]
            if (type(row0) is tuple and len(row0) == n
                    and all(r is row0 for r in al_dm)
                    and row0.count(0) + row0.count(1) == n):
                matrix = (BitDiagnosticMatrix.uniform(n, row0)
                          if self._bitset else
                          DiagnosticMatrix.uniform(n, row0))
                self._last_matrix = matrix
                return matrix
        if self._bitset:
            bit_matrix = BitDiagnosticMatrix(n)
            for m in range(1, n + 1):
                if (al_ls[m - 1] == 0 or self.active[m - 1] == 0
                        or not is_valid_syndrome(al_dm[m - 1], n)):
                    continue  # row stays ε
                bit_matrix.set_row_bits(
                    m, pack_syndrome_cached(tuple(al_dm[m - 1])))
            self._last_matrix = bit_matrix
            return bit_matrix
        matrix = DiagnosticMatrix(n)
        for m in range(1, n + 1):
            row: Row
            if al_ls[m - 1] == 0 or self.active[m - 1] == 0:
                row = EPSILON
            elif not is_valid_syndrome(al_dm[m - 1], n):
                # Garbage from a non-obedient node that still passed the
                # controller's checks: no usable opinion.
                row = EPSILON
            else:
                row = tuple(al_dm[m - 1])
            matrix.set_row(m, row)
        self._last_matrix = matrix
        return matrix

    def _build_tagged_matrix(self, controller, d_round: int, k: int):
        """Aggregation for the dynamic variant: match syndromes by tag.

        Scans each sender's buffered deliveries of rounds ``k-1`` and
        ``k-2`` for a valid diagnostic message whose tag names the
        diagnosed round; anything else (invalid frame, wrong tag,
        malformed payload, isolated sender) contributes ε.
        """
        n = self.config.n_nodes
        matrix = (BitDiagnosticMatrix(n) if self._bitset
                  else DiagnosticMatrix(n))
        for m in range(1, n + 1):
            row: Row = EPSILON
            if self.active[m - 1]:
                for source_round in (k - 1, k - 2):
                    rec = controller.read_delivery(m, source_round)
                    if rec is None:
                        continue
                    valid, payload = rec
                    if not valid:
                        continue
                    parsed = parse_tagged_syndrome(
                        controller.channel_of(payload, DIAG_CHANNEL), n)
                    if parsed is not None and parsed[0] == d_round:
                        row = parsed[1]
                        break
            matrix.set_row(m, row)
        self._last_matrix = matrix
        return matrix

    def _disseminate_tagged(self, controller, about_round: int,
                            al_ls: List[int]) -> None:
        """Write a self-describing (tag, syndrome) diagnostic message."""
        out = list(al_ls)
        if self.byzantine_rng is not None:
            out = [self.byzantine_rng.randrange(2)
                   for _ in range(self.config.n_nodes)]
        controller.write_interface((about_round, tuple(out)))

    def _analyse(self, controller, matrix: DiagnosticMatrix,
                 d_round: int, k: int) -> List[int]:
        if self._timing_on:
            with self.metrics.timer("diag.analysis"):
                return self._analyse_impl(controller, matrix, d_round, k)
        return self._analyse_impl(controller, matrix, d_round, k)

    def _analyse_impl(self, controller, matrix: DiagnosticMatrix,
                      d_round: int, k: int) -> List[int]:
        n = self.config.n_nodes
        m_on = self._m_on
        uniform = matrix.uniform_row()
        if uniform is not None:
            # Uniform matrix: column j holds N-1 identical non-ε votes
            # equal to ``uniform[j-1]``, and a strict majority of
            # identical votes is that vote (BOTTOM is unreachable).
            cons_hv = list(uniform)
            if m_on:
                self._m_analysis_rounds.inc()
                self._m_uniform_rounds.inc()
                self._m_eps_rows.observe(0)
        elif self._bitset:
            cons_hv = self._analyse_bitset(controller, matrix, d_round)
        elif m_on:
            self._m_analysis_rounds.inc()
            self._m_hmaj_calls.inc(n)
            self._m_eps_rows.observe(matrix.epsilon_rows())
            cons_hv = []
            for j in range(1, n + 1):
                diag, reason = h_maj_explain(matrix.column(j))
                if reason == "majority":
                    self._m_hmaj_majority.inc()
                elif reason == "bottom":
                    self._m_hmaj_bottom.inc()
                    diag = self._bottom_fallback(controller, j, d_round)
                else:
                    self._m_hmaj_default.inc()
                cons_hv.append(diag)
        else:
            cons_hv = []
            for j in range(1, n + 1):
                diag = h_maj(matrix.column(j))
                if diag is BOTTOM:
                    diag = self._bottom_fallback(controller, j, d_round)
                cons_hv.append(diag)
        if m_on:
            prev = self._prev_cons_hv
            if prev is not None and prev != cons_hv:
                self._m_hv_transitions.inc()
            self._prev_cons_hv = list(cons_hv)
        self._last_analysis_round = k
        if self.trace_level >= TRACE_ALL or (
                self.trace_level >= TRACE_FAULTS and 0 in cons_hv):
            self.trace.record(self._now, "cons_hv",
                              node=self.node_id, round_index=k,
                              diagnosed_round=d_round, cons_hv=tuple(cons_hv))
        return cons_hv

    def _analyse_bitset(self, controller, matrix: BitDiagnosticMatrix,
                        d_round: int) -> List[int]:
        """Analysis on the packed plane with per-round memoisation.

        Counter-for-counter equivalent to the tuple loops in
        :meth:`_analyse_impl`: the memoised entry carries the Eqn. 1
        branch tallies, so cache hits meter exactly like a
        recomputation would, and the ⊥ fallback — node-local by Lemma 3
        — is applied per node *after* the shared lookup.
        """
        n = self.config.n_nodes
        cache = self._analysis_cache
        key = matrix.key()
        entry = cache.lookup(d_round, key)
        if entry is None:
            entry = matrix.analyse()
            cache.store(key, entry)
            if self._m_on:
                self._m_popcount_votes.inc(n)
        decisions, reasons, n_bottom, n_majority, n_default = entry
        if self._m_on:
            self._m_analysis_rounds.inc()
            self._m_hmaj_calls.inc(n)
            self._m_eps_rows.observe(matrix.epsilon_rows())
            self._m_hmaj_majority.inc(n_majority)
            self._m_hmaj_bottom.inc(n_bottom)
            self._m_hmaj_default.inc(n_default)
        if n_bottom == 0:
            return list(decisions)
        return [self._bottom_fallback(controller, j + 1, d_round)
                if reasons[j] == "bottom" else decisions[j]
                for j in range(n)]

    def _bottom_fallback(self, controller, j: int, d_round: int) -> int:
        """Decision when no external syndrome survived (Lemma 3).

        For itself the node queries the local collision detector of the
        diagnosed round — necessary and sufficient for self-diagnosis.
        For other nodes its own buffered local syndrome already reflects
        the system state (with only benign faults all local syndromes
        are consistent).
        """
        if j == self.node_id:
            return 1 if controller.collision_ok(d_round) else 0
        own = self._own_ls_by_round.get(d_round)
        if own is not None:
            return own[j - 1]
        # No information at all (cold start): optimistic default.
        return 1

    # ------------------------------------------------------------------
    # Phase 5 — update counters
    # ------------------------------------------------------------------
    def _update_counters(self, controller, cons_hv: List[int], k: int) -> None:
        if self._timing_on:
            with self.metrics.timer("diag.pr_update"):
                curr_act = self.pr.update(cons_hv)
        else:
            curr_act = self.pr.update(cons_hv)
        newly_isolated = [j for j in range(1, self.config.n_nodes + 1)
                          if self.active[j - 1] == 1 and curr_act[j - 1] == 0]
        self.active = [a and c for a, c in zip(self.active, curr_act)]
        for j in newly_isolated:
            self._apply_isolation(controller, j, k)
        if self.trace_level >= TRACE_ALL and (
                any(self.pr.penalties) or any(self.pr.rewards)):
            self.trace.record(self._now, "penalty", node=self.node_id,
                              round_index=k, **self.pr.snapshot())
        for hook in self.post_update_hooks:
            hook(self, cons_hv, k)

    def _apply_isolation(self, controller, j: int, k: int) -> None:
        if self.config.isolation_mode is IsolationMode.IGNORE:
            controller.set_sender_status(j, SenderStatus.IGNORED)
        else:
            controller.set_sender_status(j, SenderStatus.OBSERVED)
        if j == self.node_id and self.config.effective_halt_on_self_isolation:
            controller.disable_transmission()
        if self._m_on:
            self._m_isolations.inc()
        self.trace.record(self._now, "isolation", node=self.node_id,
                          round_index=k, isolated=j,
                          penalty=self.pr.penalties[j - 1])
        if self.on_isolation is not None:
            self.on_isolation(self.node_id, j, k)

    # ------------------------------------------------------------------
    # Reintegration support (Sec. 9 extension)
    # ------------------------------------------------------------------
    def reintegrate(self, j: int, k: int) -> None:
        """Readmit node ``j``: reset counters and activity (Sec. 5:
        "upon reintegration ... the value of the corresponding element
        is set back to the initial value 1 and the traffic considered
        again")."""
        self.active[j - 1] = 1
        self.pr.reset_node(j)
        self.node.controller.set_sender_status(j, SenderStatus.ACTIVE)
        if j == self.node_id:
            self.node.controller.enable_transmission()
        if self._m_on:
            self._m_reintegrations.inc()
        self.trace.record(self._now, "reintegration", node=self.node_id,
                          round_index=k, reintegrated=j)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active_nodes(self) -> Tuple[int, ...]:
        """IDs of nodes this service currently considers active."""
        return tuple(j for j in range(1, self.config.n_nodes + 1)
                     if self.active[j - 1] == 1)

    def is_active(self, j: int) -> bool:
        """Whether this service still considers node ``j`` active."""
        return self.active[j - 1] == 1

    def counters_of(self, j: int) -> Tuple[int, int]:
        """``(penalty, reward)`` of node ``j`` as seen by this service."""
        return self.pr.counters_of(j)


__all__ = [
    "DiagnosticService",
    "TRACE_DECISIONS",
    "TRACE_FAULTS",
    "TRACE_ALL",
]
