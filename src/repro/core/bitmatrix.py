"""Bitset diagnostic data plane: packed matrices and shared analysis.

Sec. 5 guarantees that all correct nodes aggregate the *same*
diagnostic matrix and reach the *same* consistent health vector, so in
an N-node cluster N−f of the per-round hybrid-majority votes are
redundant recomputation, and each individual vote shuffles O(N²)
short-lived lists.  This module removes both costs without changing a
single observable bit:

* a syndrome of length N packs into one ``int`` (bit ``j-1`` is the
  opinion about node ``j``), a matrix into one packed row per sender
  plus a *presence* bitmask standing in for the ε rows;
* every column vote reduces to two ``int.bit_count()`` popcounts fed
  through :func:`repro.core.voting.h_maj_counts` — the same Eqn. 1
  semantics as ``h_maj``, pinned by differential tests;
* an :class:`AnalysisCache`, shared by all nodes of a cluster, memoises
  the analysis of each distinct matrix per diagnosed round: the first
  node to see a matrix computes the vote (and the Eqn. 1 branch
  tallies the observability layer wants), identical followers reuse
  it, while faulty/asymmetric views still compute their own.

The ⊥ (blackout) fallback is *not* cached: it depends on node-local
state (collision detector, buffered own syndrome), so cached entries
record *which* columns were ⊥ and every node applies its own Lemma 3
fallback.

:class:`BitDiagnosticMatrix` is API-compatible with
:class:`repro.core.syndrome.DiagnosticMatrix` (``row``/``column``/
``render``/... return the same tuple-level values), with lossless
converters in both directions, so traces and the analysis layer are
unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from .syndrome import (EPSILON, DiagnosticMatrix, Opinion, Row, Syndrome,
                       _Epsilon, make_syndrome)
from .voting import h_maj_counts

#: A memoised analysis result: per-column decisions (``BOTTOM`` for ⊥),
#: per-column Eqn. 1 branch names, and the branch tallies
#: ``(n_bottom, n_majority, n_default)`` the metered path consumes.
AnalysisEntry = Tuple[Tuple[Optional[int], ...], Tuple[str, ...], int, int, int]


def pack_syndrome(syndrome: Sequence[int]) -> int:
    """Pack a 0/1 sequence into an opinion bitmask (bit ``j-1`` = node ``j``)."""
    mask = 0
    for i, v in enumerate(syndrome):
        if v:
            mask |= 1 << i
    return mask


def unpack_syndrome(mask: int, n_nodes: int) -> Syndrome:
    """Unpack an opinion bitmask back into a canonical 0/1 tuple."""
    return tuple((mask >> i) & 1 for i in range(n_nodes))


#: Bounded value-keyed memo for :func:`pack_syndrome`: disseminated
#: syndromes are interned tuples, so in steady state every row pack is
#: one dict hit instead of an O(N) Python loop.
_PACK_CACHE: Dict[Syndrome, int] = {}
_PACK_LIMIT = 8192


def pack_syndrome_cached(syndrome: Syndrome) -> int:
    """Like :func:`pack_syndrome`, memoised by tuple value (bounded)."""
    mask = _PACK_CACHE.get(syndrome)
    if mask is None:
        mask = pack_syndrome(syndrome)
        if len(_PACK_CACHE) < _PACK_LIMIT:
            _PACK_CACHE[syndrome] = mask
    return mask


class BitDiagnosticMatrix:
    """The N×N opinion matrix as one packed int row per sender.

    Drop-in for :class:`~repro.core.syndrome.DiagnosticMatrix`: the
    tuple-level accessors (``row``, ``column``, ``render``, ...) return
    exactly what the tuple matrix would, while the analysis path works
    on the packed representation (:meth:`analyse`, :meth:`key`,
    :meth:`disagree_mask`).
    """

    __slots__ = ("n_nodes", "_bits", "_present", "_uniform_row", "_full")

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        #: Packed opinion row per sender (0-based); meaningful only
        #: where the presence bit is set, canonically 0 for ε rows.
        self._bits: List[int] = [0] * n_nodes
        #: Bit ``i-1`` set iff sender ``i``'s row is non-ε.
        self._present = 0
        self._uniform_row: Optional[Syndrome] = None
        self._full = (1 << n_nodes) - 1

    # -- construction ---------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[Row]) -> "BitDiagnosticMatrix":
        """Build a matrix from rows ordered by sender ID (1..N)."""
        matrix = cls(len(rows))
        for i, row in enumerate(rows, start=1):
            matrix.set_row(i, row)
        return matrix

    @classmethod
    def uniform(cls, n_nodes: int, row: Sequence[int]) -> "BitDiagnosticMatrix":
        """Build a matrix whose every row is the same syndrome.

        Mirrors :meth:`DiagnosticMatrix.uniform`, including the
        ``uniform_row`` marker the analysis shortcut keys on.
        """
        row = make_syndrome(row)
        if len(row) != n_nodes:
            raise ValueError(
                f"syndrome length {len(row)} != n_nodes {n_nodes}")
        matrix = cls(n_nodes)
        bits = pack_syndrome_cached(row)
        matrix._bits = [bits] * n_nodes
        matrix._present = matrix._full
        matrix._uniform_row = row
        return matrix

    @classmethod
    def from_tuple_matrix(cls, matrix: DiagnosticMatrix) -> "BitDiagnosticMatrix":
        """Lossless conversion from the tuple representation."""
        out = cls(matrix.n_nodes)
        for i in range(1, matrix.n_nodes + 1):
            out.set_row(i, matrix.row(i))
        out._uniform_row = matrix.uniform_row()
        return out

    def to_tuple_matrix(self) -> DiagnosticMatrix:
        """Lossless conversion to the tuple representation."""
        out = DiagnosticMatrix(self.n_nodes)
        for i in range(1, self.n_nodes + 1):
            row = self.row(i)
            if row is not EPSILON:
                out.set_row(i, row)
        if self._uniform_row is not None:
            out._uniform_row = self._uniform_row
        return out

    # -- tuple-compatible accessors -------------------------------------
    def uniform_row(self) -> Optional[Syndrome]:
        """The shared syndrome if built via :meth:`uniform`, else ``None``."""
        return self._uniform_row

    def set_row(self, sender: int, row: Row) -> None:
        """Install the (validated) syndrome sent by ``sender`` (or ε)."""
        self._check_node(sender)
        if row is EPSILON:
            self.set_row_bits(sender, None)
            return
        row = make_syndrome(row)
        if len(row) != self.n_nodes:
            raise ValueError(
                f"syndrome length {len(row)} != n_nodes {self.n_nodes}")
        self.set_row_bits(sender, pack_syndrome_cached(row))

    def set_row_bits(self, sender: int, bits: Optional[int]) -> None:
        """Install a pre-packed row (``None`` = ε), skipping validation.

        Aggregation fast path: the diagnostic service has already
        validated the payload via ``is_valid_syndrome``.
        """
        idx = sender - 1
        if bits is None:
            self._bits[idx] = 0
            self._present &= ~(1 << idx)
        else:
            self._bits[idx] = bits
            self._present |= 1 << idx
        self._uniform_row = None

    def row(self, sender: int) -> Row:
        """The syndrome sent by ``sender`` (or ε), as a canonical tuple."""
        self._check_node(sender)
        idx = sender - 1
        if not self._present >> idx & 1:
            return EPSILON
        return unpack_syndrome(self._bits[idx], self.n_nodes)

    def column(self, accused: int) -> List[Union[Opinion, _Epsilon]]:
        """All opinions about ``accused``, excluding its self-opinion."""
        self._check_node(accused)
        shift = accused - 1
        column: List[Union[Opinion, _Epsilon]] = []
        for sender in range(self.n_nodes):
            if sender == shift:
                continue
            if self._present >> sender & 1:
                column.append(self._bits[sender] >> shift & 1)
            else:
                column.append(EPSILON)
        return column

    def epsilon_rows(self) -> int:
        """Number of rows that are ε (missing/corrupted syndromes)."""
        return self.n_nodes - self._present.bit_count()

    def render(self) -> str:
        """Human-readable rendering in the style of the paper's Table 1."""
        return self.to_tuple_matrix().render()

    def _check_node(self, node_id: int) -> None:
        if not 1 <= node_id <= self.n_nodes:
            raise ValueError(f"node must be in 1..{self.n_nodes}, got {node_id}")

    # -- analysis plane -------------------------------------------------
    def key(self) -> Tuple[int, Tuple[int, ...]]:
        """Content key for memoisation: identical matrices, equal keys.

        Canonical because ε rows always hold packed value 0.
        """
        return (self._present, tuple(self._bits))

    def disagree_mask(self, cons_hv: Sequence[int]) -> int:
        """Bitmask of senders whose row disagrees with ``cons_hv``.

        Same predicate as :meth:`DiagnosticMatrix.disagree_mask`, one
        XOR per present row.
        """
        hv = pack_syndrome(cons_hv)
        full = self._full
        mask = 0
        remaining = self._present
        bits = self._bits
        while remaining:
            low = remaining & -remaining
            idx = low.bit_length() - 1
            if (bits[idx] ^ hv) & ~low & full:
                mask |= low
            remaining ^= low
        return mask

    def analyse(self) -> AnalysisEntry:
        """Vote every column via popcounts (Eqn. 1, bit-parallel).

        Identical rows are grouped first — a single distinct syndrome
        contributes its multiplicity to every set bit in one pass — so
        the common sustained-fault matrix (N−1 identical rows + ε/
        deviant rows) is analysed in O(G·N) int operations for G
        distinct rows, instead of O(N²) list churn.
        """
        n = self.n_nodes
        present = self._present
        present_count = present.bit_count()
        bits = self._bits

        groups: Dict[int, int] = {}
        remaining = present
        while remaining:
            low = remaining & -remaining
            row = bits[low.bit_length() - 1]
            groups[row] = groups.get(row, 0) | low
            remaining ^= low

        ones = [0] * n
        for row, senders in groups.items():
            count = senders.bit_count()
            while row:
                low = row & -row
                ones[low.bit_length() - 1] += count
                row ^= low

        decisions: List[Optional[int]] = []
        reasons: List[str] = []
        n_bottom = n_majority = n_default = 0
        for j in range(n):
            jbit = 1 << j
            if present & jbit:
                total = present_count - 1
                # The self-opinion is excluded from the column vote.
                column_ones = ones[j] - (bits[j] >> j & 1)
            else:
                total = present_count
                column_ones = ones[j]
            decision, reason = h_maj_counts(column_ones, total - column_ones)
            decisions.append(decision)
            reasons.append(reason)
            if reason == "majority":
                n_majority += 1
            elif reason == "bottom":
                n_bottom += 1
            else:
                n_default += 1
        return (tuple(decisions), tuple(reasons),
                n_bottom, n_majority, n_default)


class AnalysisCache:
    """Per-round memo of matrix analyses, shared by a cluster's nodes.

    Keyed on interned matrix content (:meth:`BitDiagnosticMatrix.key`);
    entries live only for the current diagnosed round, so the cache
    never outgrows the number of *distinct views* in one round (1 for
    a healthy or symmetrically-faulty cluster, a handful under
    asymmetric faults).  Hits and misses are counted online
    (``vote.cache_hit`` / ``vote.cache_miss``) when a metrics registry
    is attached.
    """

    __slots__ = ("_round", "_entries", "_hits", "_misses")

    def __init__(self, metrics=None) -> None:
        self._round: Optional[int] = None
        self._entries: Dict[Tuple[int, Tuple[int, ...]], AnalysisEntry] = {}
        if metrics is None:
            from ..obs.registry import NULL_REGISTRY
            metrics = NULL_REGISTRY
        self._hits = metrics.counter("vote.cache_hit")
        self._misses = metrics.counter("vote.cache_miss")

    def lookup(self, d_round: int,
               key: Tuple[int, Tuple[int, ...]]) -> Optional[AnalysisEntry]:
        """The memoised analysis for ``key`` in ``d_round``, or ``None``.

        Seeing a new diagnosed round drops the previous round's
        entries (all nodes analyse round ``r`` before any analyses
        ``r+1`` — job executions are time-ordered within a round).
        """
        if d_round != self._round:
            self._round = d_round
            self._entries.clear()
            self._misses.inc()
            return None
        entry = self._entries.get(key)
        if entry is None:
            self._misses.inc()
        else:
            self._hits.inc()
        return entry

    def store(self, key: Tuple[int, Tuple[int, ...]],
              entry: AnalysisEntry) -> None:
        """Memoise a freshly computed analysis for the current round."""
        self._entries[key] = entry


__all__ = [
    "AnalysisCache",
    "AnalysisEntry",
    "BitDiagnosticMatrix",
    "pack_syndrome",
    "pack_syndrome_cached",
    "unpack_syndrome",
]
