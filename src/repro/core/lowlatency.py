"""The low-latency system-level protocol variant (Sec. 10).

The add-on protocol trades latency for portability: with unconstrained
scheduling the worst-case detection latency is four TDMA rounds.  The
paper sketches a system-level variant that constrains the node
scheduling to get the latency down to **one round** (two rounds for
membership): "each node keeps sending its local syndrome at each
sending slot, but the analysis is executed right after each slot and
refers to a single previous slot".

This module implements that variant.  Instead of a once-per-round job,
the service hooks every slot delivery (a system-level capability —
precisely why this variant is less portable):

* each node continuously maintains a *sliding syndrome window*: its
  local opinion on the most recent completed instance of every slot;
  the window rides in the node's frame every round;
* a frame sent by node ``i`` in round ``k`` therefore reports on slots
  ``1..i-1`` of round ``k`` and ``i..N`` of round ``k-1``;
* right after slot ``s`` of round ``k`` is delivered, every node has
  all ``N-1`` external opinions on slot ``s`` of round ``k-1`` and runs
  the hybrid-majority analysis for it — detection latency exactly one
  round;
* the per-slot verdict feeds the same penalty/reward counters.

With ``membership = True`` the variant adds per-slot minority
accusations, giving a membership service with two-round latency.
"""

from __future__ import annotations

from itertools import chain
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..sim.trace import Trace
from ..tt.controller import DIAG_CHANNEL, SenderStatus
from ..tt.node import Node
from .config import IsolationMode, ProtocolConfig
from .diagnostic import TRACE_ALL, TRACE_FAULTS
from .penalty_reward import PenaltyRewardState
from .syndrome import EPSILON, is_valid_syndrome
from .voting import BOTTOM, h_maj, h_maj_counts

SlotKey = Tuple[int, int]


class LowLatencyDiagnosticService:
    """Per-slot diagnosis with one-round detection latency (Sec. 10).

    ``bitset`` (default on) keeps the per-slot report store as two
    bitmasks per diagnosed slot — who reported, and their 0/1 votes —
    and decides the verdict from popcount tallies; semantics (traces,
    verdicts, views, counters) are bit-identical to the tuple/dict
    reference path, pinned by the differential fuzz.
    """

    def __init__(self, config: ProtocolConfig, node: Node, trace: Trace,
                 membership: bool = False,
                 trace_level: int = TRACE_ALL,
                 metrics: Optional[Any] = None,
                 bitset: bool = True) -> None:
        if config.n_nodes != node.controller.n_nodes:
            raise ValueError("config.n_nodes does not match the cluster size")
        self.config = config
        self.node = node
        self.node_id = node.node_id
        self.trace = trace
        self.trace_level = trace_level
        self.membership = membership
        self._bitset = bool(bitset)
        self.metrics = metrics
        self._m_on = metrics is not None and metrics.enabled
        if self._m_on:
            self._m_slot_analyses = metrics.counter("lowlat.slot_analyses")
            self._m_isolations = metrics.counter("diag.isolations")
            self._m_popcount_votes = metrics.counter("vote.popcount_votes")

        n = config.n_nodes
        #: Local opinion on the most recent completed instance of each
        #: slot (1 until observed otherwise).
        self._window: List[int] = [1] * n
        #: Own validity observations per (round, slot), for fallbacks.
        self._vbits: Dict[SlotKey, int] = {}
        #: External opinions per diagnosed (round, slot) per reporter
        #: (tuple path only; the bitset path uses ``_report_masks``).
        self._reports: Dict[SlotKey, Dict[int, int]] = {}
        #: Bitset report store: ``[reporter_mask, ones_mask]`` per
        #: diagnosed slot (bit ``m-1`` = reporter ``m``).
        self._report_masks: Dict[SlotKey, List[int]] = {}
        self.active: List[int] = [1] * n
        self.pr = PenaltyRewardState(config, metrics=metrics)
        self._accused: Set[int] = set()
        self.view: FrozenSet[int] = frozenset(range(1, n + 1))
        self.view_history: List[Tuple[Optional[SlotKey], FrozenSet[int]]] = [
            (None, self.view)]
        #: Per-slot verdict log for latency measurements:
        #: (round, slot) -> verdict.
        self.verdicts: Dict[SlotKey, int] = {}

        self._now: float = 0.0
        node.controller.add_delivery_listener(self._on_delivery)
        node.controller.write_interface(tuple(self._window))

    # ------------------------------------------------------------------
    def _on_delivery(self, sender: int, round_index: int, slot: int,
                     valid: bool, payload, time: float = 0.0) -> None:
        n = self.config.n_nodes
        self._now = time
        # 1. Record the local observation and refresh the outgoing
        #    window (the frame of our next slot must carry it).
        opinion = 1 if valid else 0
        self._vbits[(round_index, slot)] = opinion
        self._window[slot - 1] = opinion
        self._write_window()

        payload = self.node.controller.channel_of(payload, DIAG_CHANNEL)
        # 2. Harvest the reporter's opinions.  Entry s of the payload is
        #    the reporter's opinion on the most recent completed
        #    instance of slot s before this frame: round ``round_index``
        #    for s < slot, round ``round_index - 1`` for s >= slot.
        if valid and is_valid_syndrome(payload, n) and self.active[sender - 1]:
            if self._bitset:
                bit = 1 << (sender - 1)
                masks_by_key = self._report_masks
                for s in range(1, n + 1):
                    r = round_index if s < slot else round_index - 1
                    masks = masks_by_key.get((r, s))
                    if masks is None:
                        masks = masks_by_key[(r, s)] = [0, 0]
                    masks[0] |= bit
                    if payload[s - 1]:
                        masks[1] |= bit
                    else:
                        masks[1] &= ~bit
            else:
                for s in range(1, n + 1):
                    r = round_index if s < slot else round_index - 1
                    self._reports.setdefault((r, s), {})[sender] = payload[s - 1]

        # 3. Analyse the slot that just became fully reported:
        #    slot ``slot`` of the previous round.
        target = (round_index - 1, slot)
        if target[0] >= 0:
            self._analyse_slot(target)
        self._prune(round_index)

    def _write_window(self) -> None:
        window = list(self._window)
        for j in self._accused:
            window[j - 1] = 0
        self.node.controller.write_interface(tuple(window))

    # ------------------------------------------------------------------
    def _analyse_slot(self, target: SlotKey) -> None:
        if target in self.verdicts:
            return
        r, s = target
        n = self.config.n_nodes
        if self._bitset:
            # Two popcounts decide the slot: reporters minus the
            # accused's self-opinion, split into 1 and 0 votes.
            masks = self._report_masks.get(target)
            voters = ones_mask = 0
            if masks is not None:
                voters = masks[0] & ~(1 << (s - 1))
                ones_mask = masks[1]
            ones = (ones_mask & voters).bit_count()
            diag, _ = h_maj_counts(ones, voters.bit_count() - ones)
            if self._m_on:
                self._m_popcount_votes.inc()
            reports = None
        else:
            reports = self._reports.get(target, {})
            votes = [reports.get(m, EPSILON)
                     for m in range(1, n + 1) if m != s]
            diag = h_maj(votes)
        if diag is BOTTOM:
            if s == self.node_id:
                diag = 1 if self.node.controller.collision_ok(r) else 0
            else:
                diag = self._vbits.get(target, 1)
        self.verdicts[target] = diag
        if self._m_on:
            self._m_slot_analyses.inc()
        if self.trace_level >= TRACE_ALL or (
                self.trace_level >= TRACE_FAULTS and diag == 0):
            self.trace.record(self._now, "cons_slot", node=self.node_id,
                              diagnosed_round=r, slot=s, verdict=diag)

        if self.membership:
            if self._bitset:
                self._minority_accusations_bits(target, diag)
            else:
                self._minority_accusations(target, diag, reports)

        # Penalty/reward per slot verdict.
        act = self.pr.update_single(s, faulty=(diag == 0))
        if act == 0 and self.active[s - 1] == 1:
            self.active[s - 1] = 0
            self._apply_isolation(s, target)
        if self.membership and diag == 0 and s in self.view:
            self.view = self.view - {s}
            self.view_history.append((target, self.view))
            self.trace.record(self._now, "view", node=self.node_id,
                              diagnosed_round=r, slot=s,
                              view=tuple(sorted(self.view)))
            self._accused.discard(s)
            self._write_window()

    def _minority_accusations(self, target: SlotKey, diag: int,
                              reports: Dict[int, int]) -> None:
        r, s = target
        for reporter, vote in reports.items():
            if reporter == s:
                continue
            if vote != diag and self.active[reporter - 1]:
                if reporter not in self._accused:
                    self._accused.add(reporter)
                    self.trace.record(self._now, "clique", node=self.node_id,
                                      diagnosed_round=r, slot=s,
                                      accused=(reporter,))
                    self._write_window()

    def _minority_accusations_bits(self, target: SlotKey, diag: int) -> None:
        """Bitset twin of :meth:`_minority_accusations`.

        Reporters are visited in frame-delivery order for the diagnosed
        slot — senders ``s+1..N`` (frames of round ``r``) then ``1..s``
        (frames of round ``r+1``) — which is exactly the tuple path's
        dict insertion order, keeping accusation traces byte-identical.
        """
        masks = self._report_masks.get(target)
        if masks is None:
            return
        present, ones_mask = masks
        r, s = target
        n = self.config.n_nodes
        for reporter in chain(range(s + 1, n + 1), range(1, s + 1)):
            if reporter == s:
                continue
            bit = 1 << (reporter - 1)
            if not present & bit:
                continue
            vote = 1 if ones_mask & bit else 0
            if vote != diag and self.active[reporter - 1]:
                if reporter not in self._accused:
                    self._accused.add(reporter)
                    self.trace.record(self._now, "clique", node=self.node_id,
                                      diagnosed_round=r, slot=s,
                                      accused=(reporter,))
                    self._write_window()

    def _apply_isolation(self, j: int, target: SlotKey) -> None:
        controller = self.node.controller
        if self.config.isolation_mode is IsolationMode.IGNORE:
            controller.set_sender_status(j, SenderStatus.IGNORED)
        else:
            controller.set_sender_status(j, SenderStatus.OBSERVED)
        if j == self.node_id and self.config.effective_halt_on_self_isolation:
            controller.disable_transmission()
        if self._m_on:
            self._m_isolations.inc()
        self.trace.record(self._now, "isolation", node=self.node_id,
                          diagnosed_round=target[0], slot=target[1],
                          isolated=j, penalty=self.pr.penalties[j - 1])

    # ------------------------------------------------------------------
    def _prune(self, round_index: int) -> None:
        # Working stores are bounded to the pipeline depth; the verdict
        # log is kept whole (two ints per slot) for latency analysis.
        horizon = round_index - 3
        for store in (self._vbits, self._reports, self._report_masks):
            stale = [key for key in store if key[0] < horizon]
            for key in stale:
                del store[key]

    # ------------------------------------------------------------------
    def active_nodes(self) -> Tuple[int, ...]:
        """IDs of nodes this service currently considers active."""
        return tuple(j for j in range(1, self.config.n_nodes + 1)
                     if self.active[j - 1] == 1)

    def verdict_for(self, round_index: int, slot: int) -> Optional[int]:
        """The per-slot verdict, if still retained."""
        return self.verdicts.get((round_index, slot))


__all__ = ["LowLatencyDiagnosticService"]
