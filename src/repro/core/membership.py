"""The membership protocol (Sec. 7 of the paper).

When an *asymmetric* fault occurs, receivers are partitioned into two
*cliques*: the nodes that received the message and the nodes that did
not.  The base diagnostic protocol reaches a consistent decision on the
sender but cannot tell that a minority of obedient receivers now holds
an inconsistent state.  The membership variant fixes that:

* the **analysis phase runs before dissemination**, so the node knows
  the consistent health vector when it forms its outgoing syndrome;
* nodes whose received syndromes *disagree* with the consistent health
  vector are accused as members of the minority clique (*minority
  accusations*), by marking them faulty in the outgoing aligned local
  syndrome;
* in the next protocol execution the accused nodes are consistently
  diagnosed as faulty (either every obedient node received their
  disagreeing syndrome, or their dissemination failed benignly and the
  local detection mechanisms accuse them — Theorem 2) and leave the
  view.

The service maintains the classical group-membership output: a
monotonically shrinking *view* containing the nodes never deemed
faulty.  Theorem 2: a new unique view is formed within two complete
executions of the protocol (membership liveness) and members of
consecutive views have received the same set of messages (view
synchrony).
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, List, Optional, Tuple

from .diagnostic import DiagnosticService

ViewCallback = Callable[[int, int, FrozenSet[int]], None]


class MembershipService(DiagnosticService):
    """The modified diagnostic protocol acting as a membership service.

    Accepts every :class:`DiagnosticService` argument plus an optional
    ``on_view_change`` callback ``(node_id, round, new_view)``.
    """

    analysis_before_dissemination = True

    def __init__(self, *args, on_view_change: Optional[ViewCallback] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.on_view_change = on_view_change
        self.view: FrozenSet[int] = frozenset(
            range(1, self.config.n_nodes + 1))
        self.view_id: int = 0
        #: ``(round, view)`` history, starting with the initial view.
        self.view_history: List[Tuple[Optional[int], FrozenSet[int]]] = [
            (None, self.view)]
        if self._m_on:
            self._m_view_changes = self.metrics.counter(
                "membership.view_changes")
            self._m_accusations = self.metrics.counter(
                "membership.clique_accusations")

    # ------------------------------------------------------------------
    def _post_analysis(self, al_dm: List[Any], al_ls: List[int],
                       cons_hv: List[int], k: int) -> List[int]:
        """Fold minority accusations into the outgoing syndrome and
        update the view."""
        n = self.config.n_nodes
        al_ls = list(al_ls)
        accused = []
        # ε rows never enter the mask: those disseminators failed
        # benignly and are already being accused by every node's local
        # detection mechanisms.  Both matrix representations implement
        # the same predicate; the bitset one is a single XOR per row.
        mask = self._last_matrix.disagree_mask(cons_hv)
        while mask:
            low = mask & -mask
            mask ^= low
            j = low.bit_length()
            if self.active[j - 1] == 0:
                continue
            accused.append(j)
            al_ls[j - 1] = 0
        if accused:
            if self._m_on:
                self._m_accusations.inc(len(accused))
            self.trace.record(self._now, "clique", node=self.node_id,
                              round_index=k, accused=tuple(accused))

        # View update: exclude every node consistently deemed faulty.
        faulty = {j for j in range(1, n + 1) if cons_hv[j - 1] == 0}
        new_view = self.view - faulty
        if new_view != self.view:
            self.view = frozenset(new_view)
            self.view_id += 1
            self.view_history.append((k, self.view))
            if self._m_on:
                self._m_view_changes.inc()
            self.trace.record(self._now, "view", node=self.node_id,
                              round_index=k, view=tuple(sorted(self.view)),
                              view_id=self.view_id)
            if self.on_view_change is not None:
                self.on_view_change(self.node_id, k, self.view)
        return al_ls

    # ------------------------------------------------------------------
    def in_view(self, j: int) -> bool:
        """Whether node ``j`` belongs to this node's current view."""
        return j in self.view


__all__ = ["MembershipService"]
