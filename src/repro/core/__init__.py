"""The paper's contribution: tunable add-on diagnostic and membership
protocols for time-triggered systems.

Modules map to the paper's sections:

* :mod:`repro.core.syndrome`, :mod:`repro.core.voting`,
  :mod:`repro.core.alignment` — the building blocks of Alg. 1 (Sec. 5);
* :mod:`repro.core.diagnostic` — the diagnostic job ``diag_i`` (Alg. 1);
* :mod:`repro.core.penalty_reward` — the p/r algorithm (Alg. 2);
* :mod:`repro.core.membership` — the membership variant (Sec. 7);
* :mod:`repro.core.lowlatency` — the system-level variant (Sec. 10);
* :mod:`repro.core.reintegration` — observation-based reintegration
  (Sec. 9 extension);
* :mod:`repro.core.config`, :mod:`repro.core.service` — configuration
  and the middleware facade.
"""

from .alignment import diagnosed_round, read_align, select_dissemination
from .bitmatrix import (
    AnalysisCache,
    BitDiagnosticMatrix,
    pack_syndrome,
    unpack_syndrome,
)
from .config import (
    AEROSPACE_PENALTY_THRESHOLD,
    AUTOMOTIVE_CRITICALITY_LEVELS,
    AUTOMOTIVE_PENALTY_THRESHOLD,
    AUTOMOTIVE_TOLERATED_OUTAGE,
    AEROSPACE_CRITICALITY_LEVELS,
    AEROSPACE_TOLERATED_OUTAGE,
    PAPER_REWARD_THRESHOLD,
    CriticalityClass,
    IsolationMode,
    ProtocolConfig,
    aerospace_config,
    automotive_config,
    uniform_config,
)
from .diagnostic import TRACE_ALL, TRACE_DECISIONS, TRACE_FAULTS, DiagnosticService
from .lowlatency import LowLatencyDiagnosticService
from .membership import MembershipService
from .penalty_reward import (
    PenaltyRewardState,
    faulty_rounds_to_isolation,
    isolation_latency_seconds,
    rounds_to_isolation,
    transient_correlation_probability,
)
from .reintegration import ReintegrationPolicy, attach_reintegration
from .service import (
    DiagnosedCluster,
    LowLatencyCluster,
    MembershipCluster,
    attach_reintegration_everywhere,
)
from .syndrome import (
    EPSILON,
    DiagnosticMatrix,
    clear_intern_cache,
    intern_cache_stats,
    make_syndrome,
)
from .voting import (
    BOTTOM,
    benign_only_bound_holds,
    h_maj,
    h_maj_counts,
    vote_bound_holds,
)

__all__ = [
    "diagnosed_round",
    "read_align",
    "select_dissemination",
    "CriticalityClass",
    "IsolationMode",
    "ProtocolConfig",
    "aerospace_config",
    "automotive_config",
    "uniform_config",
    "PAPER_REWARD_THRESHOLD",
    "AUTOMOTIVE_PENALTY_THRESHOLD",
    "AEROSPACE_PENALTY_THRESHOLD",
    "AUTOMOTIVE_CRITICALITY_LEVELS",
    "AEROSPACE_CRITICALITY_LEVELS",
    "AUTOMOTIVE_TOLERATED_OUTAGE",
    "AEROSPACE_TOLERATED_OUTAGE",
    "DiagnosticService",
    "TRACE_ALL",
    "TRACE_DECISIONS",
    "TRACE_FAULTS",
    "LowLatencyDiagnosticService",
    "MembershipService",
    "PenaltyRewardState",
    "faulty_rounds_to_isolation",
    "isolation_latency_seconds",
    "rounds_to_isolation",
    "transient_correlation_probability",
    "ReintegrationPolicy",
    "attach_reintegration",
    "DiagnosedCluster",
    "LowLatencyCluster",
    "MembershipCluster",
    "attach_reintegration_everywhere",
    "EPSILON",
    "DiagnosticMatrix",
    "make_syndrome",
    "clear_intern_cache",
    "intern_cache_stats",
    "AnalysisCache",
    "BitDiagnosticMatrix",
    "pack_syndrome",
    "unpack_syndrome",
    "BOTTOM",
    "h_maj",
    "h_maj_counts",
    "vote_bound_holds",
    "benign_only_bound_holds",
]
