"""The penalty/reward algorithm (Alg. 2).

The p/r algorithm converts the per-round consistent health vectors into
isolation decisions while filtering external transient faults.  Each
node keeps, *for every node in the system*, a penalty and a reward
counter:

* when node ``i`` is diagnosed faulty, ``penalties[i]`` grows by the
  node's criticality level ``s_i`` and ``rewards[i]`` resets;
* when node ``i`` is diagnosed healthy while carrying penalties,
  ``rewards[i]`` grows by one; after ``R`` consecutive fault-free
  rounds both counters reset — the previous faults are considered
  uncorrelated external transients and forgotten;
* when ``penalties[i]`` exceeds ``P`` the node is marked for isolation.

Because the health vectors are consistent across obedient nodes
(Theorem 1), every obedient node's counters evolve identically and
isolation is decided in the same round everywhere.

:func:`rounds_to_isolation` gives the closed-form behaviour under a
continuous fault, used by the tuning experiments (Sec. 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from .config import ProtocolConfig


@dataclass
class PenaltyRewardState:
    """Replicated counter state of Alg. 2 on one node.

    The instance is deterministic: identical inputs produce identical
    counter evolutions, which tests use to assert the consistency of
    isolation decisions across nodes.  ``metrics`` (an optional
    :class:`repro.obs.MetricsRegistry`) counts counter movements
    online; the fault-free path stays one boolean test per update.
    """

    config: ProtocolConfig
    metrics: Optional[Any] = None
    penalties: List[int] = field(init=False)
    rewards: List[int] = field(init=False)

    def __post_init__(self) -> None:
        n = self.config.n_nodes
        self.penalties = [0] * n
        self.rewards = [0] * n
        metrics = self.metrics
        self._m_on = metrics is not None and metrics.enabled
        if self._m_on:
            self._m_penalty = metrics.counter("pr.penalty_increments")
            self._m_reward = metrics.counter("pr.reward_increments")
            self._m_forget = metrics.counter("pr.forget_resets")
            self._m_isolate = metrics.counter("pr.isolation_verdicts")

    def update(self, cons_hv: Sequence[int]) -> List[int]:
        """One round of Alg. 2.

        ``cons_hv`` is the consistent health vector for the diagnosed
        round (entry ``j-1`` for node ``j``; 0 = faulty).  Returns
        ``curr_act``: 1 entries for nodes that may stay active this
        round, 0 for nodes whose penalty crossed the threshold.  The
        caller ANDs this into its activity vector (Alg. 1 line 15).
        """
        cfg = self.config
        if len(cons_hv) != cfg.n_nodes:
            raise ValueError(
                f"cons_hv must have {cfg.n_nodes} entries, got {len(cons_hv)}")
        curr_act = [1] * cfg.n_nodes
        m_on = self._m_on
        for idx in range(cfg.n_nodes):
            if cons_hv[idx] == 0:
                self.penalties[idx] += cfg.criticalities[idx]
                self.rewards[idx] = 0
                if m_on:
                    self._m_penalty.inc()
                if self.penalties[idx] > cfg.penalty_threshold:
                    curr_act[idx] = 0
                    if m_on:
                        self._m_isolate.inc()
            elif self.penalties[idx] > 0:
                self.rewards[idx] += 1
                if m_on:
                    self._m_reward.inc()
                if self.rewards[idx] >= cfg.reward_threshold:
                    self.penalties[idx] = 0
                    self.rewards[idx] = 0
                    if m_on:
                        self._m_forget.inc()
        return curr_act

    def update_single(self, node_id: int, faulty: bool) -> int:
        """Alg. 2's per-node body for one slot verdict.

        Used by the low-latency variant (Sec. 10), which produces one
        health decision per *slot* instead of one vector per round.
        Returns the node's ``curr_act`` entry (0 = isolate).
        """
        cfg = self.config
        idx = node_id - 1
        m_on = self._m_on
        if faulty:
            self.penalties[idx] += cfg.criticalities[idx]
            self.rewards[idx] = 0
            if m_on:
                self._m_penalty.inc()
            if self.penalties[idx] > cfg.penalty_threshold:
                if m_on:
                    self._m_isolate.inc()
                return 0
        elif self.penalties[idx] > 0:
            self.rewards[idx] += 1
            if m_on:
                self._m_reward.inc()
            if self.rewards[idx] >= cfg.reward_threshold:
                self.penalties[idx] = 0
                self.rewards[idx] = 0
                if m_on:
                    self._m_forget.inc()
        return 1

    def counters_of(self, node_id: int) -> tuple:
        """``(penalty, reward)`` counters for a node (1-based)."""
        return (self.penalties[node_id - 1], self.rewards[node_id - 1])

    def reset_node(self, node_id: int) -> None:
        """Clear both counters for a node (used on reintegration)."""
        self.penalties[node_id - 1] = 0
        self.rewards[node_id - 1] = 0

    def snapshot(self) -> dict:
        """Counters as a plain dict, for traces and assertions."""
        return {"penalties": list(self.penalties), "rewards": list(self.rewards)}


def faulty_rounds_to_isolation(penalty_threshold: int, criticality: int) -> int:
    """Consecutive faulty rounds before a node is isolated.

    Alg. 2 isolates when the penalty *exceeds* ``P``, so a node with
    criticality ``s`` is isolated on faulty round ``floor(P / s) + 1``.
    """
    if criticality < 1:
        raise ValueError("criticality must be >= 1")
    return penalty_threshold // criticality + 1


def rounds_to_isolation(config: ProtocolConfig, node_id: int) -> int:
    """Faulty-round budget of ``node_id`` under its configured criticality."""
    return faulty_rounds_to_isolation(config.penalty_threshold,
                                      config.criticality_of(node_id))


def isolation_latency_seconds(config: ProtocolConfig, node_id: int,
                              round_length: float) -> float:
    """Worst-case diagnostic latency for a continuously faulty node.

    From the first faulty round to the isolation decision: the
    faulty-round budget plus the dissemination/analysis pipeline depth
    (Lemma 1), in seconds.
    """
    rounds = rounds_to_isolation(config, node_id)
    return (rounds + config.detection_pipeline_rounds()) * round_length


def transient_correlation_probability(rate: float, reward_threshold: int,
                                      round_length: float) -> float:
    """Probability that two independent transients are correlated.

    After a transient fault hits a node, its penalties survive for
    ``R`` fault-free rounds.  With external transients arriving as a
    Poisson process of ``rate`` (per second), the probability that the
    next independent transient arrives inside the window — and is thus
    incorrectly correlated with the previous one — is
    ``1 - exp(-rate * R * T)``.  This is the tradeoff plotted in Fig. 3.
    """
    if rate < 0:
        raise ValueError("rate must be >= 0")
    window = reward_threshold * round_length
    return 1.0 - math.exp(-rate * window)


__all__ = [
    "PenaltyRewardState",
    "faulty_rounds_to_isolation",
    "rounds_to_isolation",
    "isolation_latency_seconds",
    "transient_correlation_probability",
]
